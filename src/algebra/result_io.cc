#include "algebra/result_io.h"

#include <algorithm>
#include <set>

namespace rdfql {
namespace {

std::vector<VarId> SortedColumns(const MappingSet& result,
                                 const Dictionary& dict) {
  std::set<VarId> vars;
  for (const Mapping& m : result) {
    for (const auto& [v, t] : m.bindings()) vars.insert(v);
  }
  std::vector<VarId> columns(vars.begin(), vars.end());
  std::sort(columns.begin(), columns.end(), [&dict](VarId a, VarId b) {
    return dict.VarName(a) < dict.VarName(b);
  });
  return columns;
}

std::vector<Mapping> SortedRows(const MappingSet& result) {
  std::vector<Mapping> rows = result.mappings();
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string CsvEscape(const std::string& value) {
  bool needs_quotes = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string WriteCsv(const MappingSet& result, const Dictionary& dict) {
  std::vector<VarId> columns = SortedColumns(result, dict);
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ',';
    out += CsvEscape(dict.VarName(columns[c]));
  }
  out += '\n';
  for (const Mapping& m : SortedRows(result)) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out += ',';
      std::optional<TermId> t = m.Get(columns[c]);
      if (t.has_value()) out += CsvEscape(dict.IriName(*t));
    }
    out += '\n';
  }
  return out;
}

std::string WriteResultsJson(const MappingSet& result,
                             const Dictionary& dict) {
  std::vector<VarId> columns = SortedColumns(result, dict);
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ',';
    out += '"' + JsonEscape(dict.VarName(columns[c])) + '"';
  }
  out += "]},\"results\":{\"bindings\":[";
  bool first_row = true;
  for (const Mapping& m : SortedRows(result)) {
    if (!first_row) out += ',';
    first_row = false;
    out += '{';
    bool first_cell = true;
    for (const auto& [v, t] : m.bindings()) {
      if (!first_cell) out += ',';
      first_cell = false;
      out += '"' + JsonEscape(dict.VarName(v)) +
             "\":{\"type\":\"iri\",\"value\":\"" +
             JsonEscape(dict.IriName(t)) + "\"}";
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

}  // namespace rdfql
