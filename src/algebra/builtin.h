#ifndef RDFQL_ALGEBRA_BUILTIN_H_
#define RDFQL_ALGEBRA_BUILTIN_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/mapping.h"
#include "rdf/dictionary.h"

namespace rdfql {

class Builtin;
using BuiltinPtr = std::shared_ptr<const Builtin>;

/// A SPARQL built-in condition R in the fragment of [30] used by the paper:
/// atoms bound(?X), ?X = c, ?X = ?Y closed under ¬, ∧, ∨, plus the constants
/// true/false (definable in the fragment, kept primitive for the
/// transformations of Appendix C).
///
/// Nodes are immutable and shared; all construction goes through the static
/// factories, which also perform the obvious constant foldings.
class Builtin {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kBound,    // bound(?X)
    kEqConst,  // ?X = c
    kEqVars,   // ?X = ?Y
    kNot,
    kAnd,
    kOr,
  };

  static BuiltinPtr True();
  static BuiltinPtr False();
  static BuiltinPtr Bound(VarId v);
  static BuiltinPtr EqConst(VarId v, TermId c);
  static BuiltinPtr EqVars(VarId a, VarId b);
  static BuiltinPtr Not(BuiltinPtr r);
  static BuiltinPtr And(BuiltinPtr a, BuiltinPtr b);
  static BuiltinPtr Or(BuiltinPtr a, BuiltinPtr b);

  /// Conjunction / disjunction of a list (empty list = true / false).
  static BuiltinPtr AndAll(const std::vector<BuiltinPtr>& items);
  static BuiltinPtr OrAll(const std::vector<BuiltinPtr>& items);

  Kind kind() const { return kind_; }
  VarId var() const { return var_; }        // kBound, kEqConst, kEqVars
  VarId var2() const { return var2_; }      // kEqVars
  TermId constant() const { return constant_; }  // kEqConst
  const BuiltinPtr& left() const { return left_; }    // kNot/kAnd/kOr
  const BuiltinPtr& right() const { return right_; }  // kAnd/kOr

  /// µ ⊨ R per Section 2.1 (two-valued: unbound atoms are false, negation
  /// is classical).
  bool Eval(const Mapping& m) const;

  /// Adds var(R) into `out`.
  void CollectVars(std::set<VarId>* out) const;

  /// Adds the IRIs mentioned (the constants of = atoms) into `out`.
  void CollectIris(std::set<TermId>* out) const;

  /// Renders in the paper's notation, e.g. `(bound(?x) | !(?y = c))`.
  std::string ToString(const Dictionary& dict) const;

  /// Structural equality.
  static bool Equal(const BuiltinPtr& a, const BuiltinPtr& b);

 private:
  explicit Builtin(Kind kind) : kind_(kind) {}

  Kind kind_;
  VarId var_ = kInvalidVarId;
  VarId var2_ = kInvalidVarId;
  TermId constant_ = kInvalidTermId;
  BuiltinPtr left_;
  BuiltinPtr right_;
};

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_BUILTIN_H_
