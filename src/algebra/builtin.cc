#include "algebra/builtin.h"

#include "util/check.h"

namespace rdfql {

BuiltinPtr Builtin::True() {
  static const BuiltinPtr& instance = *new BuiltinPtr(new Builtin(Kind::kTrue));
  return instance;
}

BuiltinPtr Builtin::False() {
  static const BuiltinPtr& instance =
      *new BuiltinPtr(new Builtin(Kind::kFalse));
  return instance;
}

BuiltinPtr Builtin::Bound(VarId v) {
  auto* b = new Builtin(Kind::kBound);
  b->var_ = v;
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::EqConst(VarId v, TermId c) {
  auto* b = new Builtin(Kind::kEqConst);
  b->var_ = v;
  b->constant_ = c;
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::EqVars(VarId a, VarId b_var) {
  auto* b = new Builtin(Kind::kEqVars);
  b->var_ = a;
  b->var2_ = b_var;
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::Not(BuiltinPtr r) {
  RDFQL_CHECK(r != nullptr);
  if (r->kind_ == Kind::kTrue) return False();
  if (r->kind_ == Kind::kFalse) return True();
  auto* b = new Builtin(Kind::kNot);
  b->left_ = std::move(r);
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::And(BuiltinPtr a, BuiltinPtr b_cond) {
  RDFQL_CHECK(a != nullptr && b_cond != nullptr);
  if (a->kind_ == Kind::kFalse || b_cond->kind_ == Kind::kFalse) {
    return False();
  }
  if (a->kind_ == Kind::kTrue) return b_cond;
  if (b_cond->kind_ == Kind::kTrue) return a;
  auto* b = new Builtin(Kind::kAnd);
  b->left_ = std::move(a);
  b->right_ = std::move(b_cond);
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::Or(BuiltinPtr a, BuiltinPtr b_cond) {
  RDFQL_CHECK(a != nullptr && b_cond != nullptr);
  if (a->kind_ == Kind::kTrue || b_cond->kind_ == Kind::kTrue) return True();
  if (a->kind_ == Kind::kFalse) return b_cond;
  if (b_cond->kind_ == Kind::kFalse) return a;
  auto* b = new Builtin(Kind::kOr);
  b->left_ = std::move(a);
  b->right_ = std::move(b_cond);
  return BuiltinPtr(b);
}

BuiltinPtr Builtin::AndAll(const std::vector<BuiltinPtr>& items) {
  BuiltinPtr acc = True();
  for (const BuiltinPtr& r : items) acc = And(acc, r);
  return acc;
}

BuiltinPtr Builtin::OrAll(const std::vector<BuiltinPtr>& items) {
  BuiltinPtr acc = False();
  for (const BuiltinPtr& r : items) acc = Or(acc, r);
  return acc;
}

bool Builtin::Eval(const Mapping& m) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kBound:
      return m.Binds(var_);
    case Kind::kEqConst: {
      std::optional<TermId> v = m.Get(var_);
      return v.has_value() && *v == constant_;
    }
    case Kind::kEqVars: {
      std::optional<TermId> a = m.Get(var_);
      std::optional<TermId> b = m.Get(var2_);
      return a.has_value() && b.has_value() && *a == *b;
    }
    case Kind::kNot:
      return !left_->Eval(m);
    case Kind::kAnd:
      return left_->Eval(m) && right_->Eval(m);
    case Kind::kOr:
      return left_->Eval(m) || right_->Eval(m);
  }
  return false;
}

void Builtin::CollectVars(std::set<VarId>* out) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kBound:
      out->insert(var_);
      return;
    case Kind::kEqConst:
      out->insert(var_);
      return;
    case Kind::kEqVars:
      out->insert(var_);
      out->insert(var2_);
      return;
    case Kind::kNot:
      left_->CollectVars(out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectVars(out);
      right_->CollectVars(out);
      return;
  }
}

void Builtin::CollectIris(std::set<TermId>* out) const {
  switch (kind_) {
    case Kind::kEqConst:
      out->insert(constant_);
      return;
    case Kind::kNot:
      left_->CollectIris(out);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectIris(out);
      right_->CollectIris(out);
      return;
    default:
      return;
  }
}

std::string Builtin::ToString(const Dictionary& dict) const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kBound:
      return "bound(?" + dict.VarName(var_) + ")";
    case Kind::kEqConst:
      return "?" + dict.VarName(var_) + " = " + dict.IriName(constant_);
    case Kind::kEqVars:
      return "?" + dict.VarName(var_) + " = ?" + dict.VarName(var2_);
    case Kind::kNot:
      return "!(" + left_->ToString(dict) + ")";
    case Kind::kAnd:
      return "(" + left_->ToString(dict) + " & " + right_->ToString(dict) +
             ")";
    case Kind::kOr:
      return "(" + left_->ToString(dict) + " | " + right_->ToString(dict) +
             ")";
  }
  return "?";
}

bool Builtin::Equal(const BuiltinPtr& a, const BuiltinPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kBound:
      return a->var_ == b->var_;
    case Kind::kEqConst:
      return a->var_ == b->var_ && a->constant_ == b->constant_;
    case Kind::kEqVars:
      return a->var_ == b->var_ && a->var2_ == b->var2_;
    case Kind::kNot:
      return Equal(a->left_, b->left_);
    case Kind::kAnd:
    case Kind::kOr:
      return Equal(a->left_, b->left_) && Equal(a->right_, b->right_);
  }
  return false;
}

}  // namespace rdfql
