#include "algebra/mapping_set.h"

#include <algorithm>
#include <unordered_map>

#include "obs/tracer.h"
#include "util/limits.h"
#include "util/thread_pool.h"

namespace rdfql {
namespace {

// How many outer-loop iterations a serial kernel runs between cooperative
// checkpoints. Power of two so the test compiles to a mask; small enough
// that a tripped token stops a quadratic scan promptly, large enough that
// the ungoverned cost (a relaxed load) vanishes in the loop body.
constexpr uint64_t kCheckpointStride = 1024;

// Below this many probe-side (resp. left-side) mappings the fork/join
// overhead outweighs the work; the kernels stay serial. The threshold only
// affects scheduling, never results — outputs are scheduling-independent.
constexpr size_t kParallelKernelMinInput = 64;

// Chunk layout for a parallel kernel: `chunks` contiguous ranges covering
// [0, n), each at least kParallelKernelMinInput/2 long, at most 4 per
// thread so the atomic claim cursor balances uneven chunks.
size_t NumChunks(size_t n, int threads) {
  size_t by_threads = static_cast<size_t>(threads) * 4;
  size_t by_size = n / (kParallelKernelMinInput / 2);
  size_t chunks = std::min(by_threads, by_size);
  return chunks < 2 ? 2 : chunks;
}

bool UseParallel(ThreadPool* pool, size_t n) {
  return pool != nullptr && pool->num_threads() > 1 &&
         n >= kParallelKernelMinInput;
}

// Variables bound in every mapping of `s` (the certain variables). For an
// empty set, returns empty — callers handle that case directly.
std::vector<VarId> CertainVars(const MappingSet& s) {
  std::vector<VarId> certain;
  bool first = true;
  for (const Mapping& m : s) {
    if (first) {
      certain = m.Domain();
      first = false;
      continue;
    }
    std::vector<VarId> dom = m.Domain();
    std::vector<VarId> keep;
    std::set_intersection(certain.begin(), certain.end(), dom.begin(),
                          dom.end(), std::back_inserter(keep));
    certain.swap(keep);
    if (certain.empty()) break;
  }
  return certain;
}

// Hash of µ restricted to `vars` (vars ⊆ dom(µ) guaranteed by caller).
uint64_t KeyHash(const Mapping& m, const std::vector<VarId>& vars) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (VarId v : vars) {
    h = (h ^ *m.Get(v)) * 0x9e3779b97f4a7c15ULL;
  }
  return h;
}

}  // namespace

MappingSet MappingSet::FromList(const std::vector<Mapping>& mappings) {
  MappingSet out;
  for (const Mapping& m : mappings) out.Add(m);
  return out;
}

bool MappingSet::Add(const Mapping& m) {
  if (!set_.insert(m).second) return false;
  items_.push_back(m);
  AccountAdd(m.ApproxBytes());
  return true;
}

MappingSet::MappingSet(const MappingSet& other)
    : items_(other.items_), set_(other.set_) {
  // A copy is a fresh allocation: charge it in full to whichever
  // accountant is installed *now* (e.g. UnionSets copying its left input
  // inside an accounted evaluation).
  if (ResourceAccountant::Current() == nullptr) return;
  for (const Mapping& m : items_) AccountAdd(m.ApproxBytes());
}

MappingSet& MappingSet::operator=(const MappingSet& other) {
  if (this == &other) return *this;
  DetachAccounting();
  items_ = other.items_;
  set_ = other.set_;
  if (ResourceAccountant::Current() != nullptr) {
    for (const Mapping& m : items_) AccountAdd(m.ApproxBytes());
  }
  return *this;
}

MappingSet::MappingSet(MappingSet&& other) noexcept
    : items_(std::move(other.items_)),
      set_(std::move(other.set_)),
      acct_(other.acct_),
      acct_epoch_(other.acct_epoch_),
      acct_mappings_(other.acct_mappings_),
      acct_bytes_(other.acct_bytes_) {
  other.items_.clear();
  other.set_.clear();
  other.acct_ = nullptr;
  other.acct_mappings_ = 0;
  other.acct_bytes_ = 0;
}

MappingSet& MappingSet::operator=(MappingSet&& other) noexcept {
  if (this == &other) return *this;
  DetachAccounting();
  items_ = std::move(other.items_);
  set_ = std::move(other.set_);
  acct_ = other.acct_;
  acct_epoch_ = other.acct_epoch_;
  acct_mappings_ = other.acct_mappings_;
  acct_bytes_ = other.acct_bytes_;
  other.items_.clear();
  other.set_.clear();
  other.acct_ = nullptr;
  other.acct_mappings_ = 0;
  other.acct_bytes_ = 0;
  return *this;
}

void MappingSet::DetachAccounting() {
  if (acct_ != nullptr && acct_->epoch() == acct_epoch_) {
    acct_->OnRemove(acct_mappings_, acct_bytes_);
  }
  acct_ = nullptr;
  acct_mappings_ = 0;
  acct_bytes_ = 0;
}

MappingSet MappingSet::Join(const MappingSet& a, const MappingSet& b,
                            ThreadPool* pool) {
  MappingSet out;
  if (a.empty() || b.empty()) return out;

  // Partition on variables certainly bound on both sides; mappings inside a
  // bucket still get the full compatibility check for the remaining
  // (optional) variables.
  std::vector<VarId> ca = CertainVars(a);
  std::vector<VarId> cb = CertainVars(b);
  std::vector<VarId> shared;
  std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(),
                        std::back_inserter(shared));

  if (shared.empty()) return JoinNestedLoop(a, b);

  const MappingSet& build = a.size() <= b.size() ? a : b;
  const MappingSet& probe = a.size() <= b.size() ? b : a;

  std::unordered_map<uint64_t, std::vector<const Mapping*>> table;
  for (const Mapping& m : build) {
    table[KeyHash(m, shared)].push_back(&m);
  }

  if (UseParallel(pool, probe.size())) {
    // Each chunk probes the shared (read-only) table into its own output
    // vector; chunks concatenate in index order, so the candidate stream —
    // and therefore the deduplicated result — matches the serial loop.
    const std::vector<Mapping>& ps = probe.mappings();
    size_t chunks = NumChunks(ps.size(), pool->num_threads());
    std::vector<std::vector<Mapping>> results(chunks);
    std::vector<uint64_t> probe_counts(chunks, 0);
    pool->ParallelFor(chunks, [&](size_t c) {
      // Per-chunk cooperative checkpoint: once the query's token trips,
      // remaining chunks become no-ops (the whole result is discarded).
      if (!CooperativeCheckpoint()) return;
      size_t lo = ps.size() * c / chunks;
      size_t hi = ps.size() * (c + 1) / chunks;
      uint64_t local_probes = 0;
      std::vector<Mapping>& local = results[c];
      for (size_t i = lo; i < hi; ++i) {
        auto it = table.find(KeyHash(ps[i], shared));
        if (it == table.end()) continue;
        for (const Mapping* other : it->second) {
          ++local_probes;
          if (ps[i].CompatibleWith(*other)) {
            local.push_back(ps[i].UnionWith(*other));
          }
        }
      }
      probe_counts[c] = local_probes;
    });
    uint64_t probes = 0;
    for (size_t c = 0; c < chunks; ++c) {
      probes += probe_counts[c];
      for (const Mapping& m : results[c]) out.Add(m);
    }
    if (OpCounters* oc = ScopedOpCounters::Current()) {
      oc->join_probes += probes;
    }
    return out;
  }

  uint64_t probes = 0;
  uint64_t visited = 0;
  for (const Mapping& m : probe) {
    if ((++visited & (kCheckpointStride - 1)) == 0 &&
        !CooperativeCheckpoint()) {
      break;
    }
    auto it = table.find(KeyHash(m, shared));
    if (it == table.end()) continue;
    for (const Mapping* other : it->second) {
      ++probes;
      if (m.CompatibleWith(*other)) out.Add(m.UnionWith(*other));
    }
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) oc->join_probes += probes;
  return out;
}

MappingSet MappingSet::JoinNestedLoop(const MappingSet& a,
                                      const MappingSet& b) {
  MappingSet out;
  uint64_t visited = 0;
  bool cancelled = false;
  for (const Mapping& m1 : a) {
    // Cross products make the *pair* the unit of work: striding on the
    // outer loop alone would let a handful of wide rows run unchecked
    // (and unaccounted) for seconds between polls.
    for (const Mapping& m2 : b) {
      if ((++visited & (kCheckpointStride - 1)) == 0 &&
          !CooperativeCheckpoint()) {
        cancelled = true;
        break;
      }
      if (m1.CompatibleWith(m2)) out.Add(m1.UnionWith(m2));
    }
    if (cancelled) break;
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->join_probes += static_cast<uint64_t>(a.size()) * b.size();
  }
  return out;
}

MappingSet MappingSet::UnionSets(const MappingSet& a, const MappingSet& b) {
  MappingSet out = a;
  for (const Mapping& m : b) out.Add(m);
  return out;
}

MappingSet MappingSet::Minus(const MappingSet& a, const MappingSet& b,
                             ThreadPool* pool) {
  MappingSet out;
  if (UseParallel(pool, a.size())) {
    // Each left mapping's verdict is independent; chunk survivors keep
    // their relative order and concatenate in chunk order, reproducing the
    // serial output exactly (including the early-exit probe counts).
    const std::vector<Mapping>& as = a.mappings();
    size_t chunks = NumChunks(as.size(), pool->num_threads());
    std::vector<std::vector<const Mapping*>> kept(chunks);
    std::vector<uint64_t> pair_counts(chunks, 0);
    pool->ParallelFor(chunks, [&](size_t c) {
      if (!CooperativeCheckpoint()) return;
      size_t lo = as.size() * c / chunks;
      size_t hi = as.size() * (c + 1) / chunks;
      uint64_t local_pairs = 0;
      for (size_t i = lo; i < hi; ++i) {
        bool incompatible_with_all = true;
        for (const Mapping& m2 : b) {
          ++local_pairs;
          if (as[i].CompatibleWith(m2)) {
            incompatible_with_all = false;
            break;
          }
        }
        if (incompatible_with_all) kept[c].push_back(&as[i]);
      }
      pair_counts[c] = local_pairs;
    });
    uint64_t pairs = 0;
    for (size_t c = 0; c < chunks; ++c) {
      pairs += pair_counts[c];
      for (const Mapping* m : kept[c]) out.Add(*m);
    }
    if (OpCounters* oc = ScopedOpCounters::Current()) {
      oc->join_probes += pairs;
    }
    return out;
  }
  uint64_t pairs = 0;
  uint64_t visited = 0;
  for (const Mapping& m1 : a) {
    if ((++visited & (kCheckpointStride - 1)) == 0 &&
        !CooperativeCheckpoint()) {
      break;
    }
    bool incompatible_with_all = true;
    for (const Mapping& m2 : b) {
      ++pairs;
      if (m1.CompatibleWith(m2)) {
        incompatible_with_all = false;
        break;
      }
    }
    if (incompatible_with_all) out.Add(m1);
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) oc->join_probes += pairs;
  return out;
}

MappingSet MappingSet::LeftOuterJoin(const MappingSet& a, const MappingSet& b,
                                     ThreadPool* pool) {
  return UnionSets(Join(a, b, pool), Minus(a, b, pool));
}

bool MappingSet::Subsumed(const MappingSet& a, const MappingSet& b) {
  for (const Mapping& m1 : a) {
    bool found = false;
    for (const Mapping& m2 : b) {
      if (m1.SubsumedBy(m2)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool operator==(const MappingSet& a, const MappingSet& b) {
  if (a.size() != b.size()) return false;
  for (const Mapping& m : a) {
    if (!b.Contains(m)) return false;
  }
  return true;
}

std::string MappingSet::ToString(const Dictionary& dict) const {
  std::vector<Mapping> sorted = items_;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Mapping& m : sorted) {
    out += m.ToString(dict);
    out += '\n';
  }
  return out;
}

size_t MappingSet::ApproxBytes() const {
  size_t bytes = 0;
  for (const Mapping& m : items_) bytes += m.ApproxBytes();
  return bytes;
}

}  // namespace rdfql
