#include "algebra/pattern.h"

#include <algorithm>

#include "obs/pipeline.h"
#include "util/check.h"

namespace rdfql {
namespace {

std::vector<VarId> SortedUnion(const std::vector<VarId>& a,
                               const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<VarId> SortedIntersection(const std::vector<VarId>& a,
                                      const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Term RenameTerm(Term t, const std::map<VarId, VarId>& renaming) {
  if (!t.is_var()) return t;
  auto it = renaming.find(t.var());
  return it == renaming.end() ? t : Term::Var(it->second);
}

BuiltinPtr RenameBuiltin(const BuiltinPtr& r,
                         const std::map<VarId, VarId>& renaming) {
  auto rename = [&renaming](VarId v) {
    auto it = renaming.find(v);
    return it == renaming.end() ? v : it->second;
  };
  switch (r->kind()) {
    case Builtin::Kind::kTrue:
    case Builtin::Kind::kFalse:
      return r;
    case Builtin::Kind::kBound:
      return Builtin::Bound(rename(r->var()));
    case Builtin::Kind::kEqConst:
      return Builtin::EqConst(rename(r->var()), r->constant());
    case Builtin::Kind::kEqVars:
      return Builtin::EqVars(rename(r->var()), rename(r->var2()));
    case Builtin::Kind::kNot:
      return Builtin::Not(RenameBuiltin(r->left(), renaming));
    case Builtin::Kind::kAnd:
      return Builtin::And(RenameBuiltin(r->left(), renaming),
                          RenameBuiltin(r->right(), renaming));
    case Builtin::Kind::kOr:
      return Builtin::Or(RenameBuiltin(r->left(), renaming),
                         RenameBuiltin(r->right(), renaming));
  }
  return r;
}

Term BindTerm(Term t, const std::map<VarId, TermId>& bindings) {
  if (!t.is_var()) return t;
  auto it = bindings.find(t.var());
  return it == bindings.end() ? t : Term::Iri(it->second);
}

BuiltinPtr BindBuiltin(const BuiltinPtr& r,
                       const std::map<VarId, TermId>& bindings) {
  auto lookup = [&bindings](VarId v) {
    auto it = bindings.find(v);
    return it == bindings.end() ? std::optional<TermId>()
                                : std::optional<TermId>(it->second);
  };
  switch (r->kind()) {
    case Builtin::Kind::kTrue:
    case Builtin::Kind::kFalse:
      return r;
    case Builtin::Kind::kBound: {
      return lookup(r->var()).has_value() ? Builtin::True() : r;
    }
    case Builtin::Kind::kEqConst: {
      std::optional<TermId> v = lookup(r->var());
      if (!v.has_value()) return r;
      return *v == r->constant() ? Builtin::True() : Builtin::False();
    }
    case Builtin::Kind::kEqVars: {
      std::optional<TermId> a = lookup(r->var());
      std::optional<TermId> b = lookup(r->var2());
      if (a.has_value() && b.has_value()) {
        return *a == *b ? Builtin::True() : Builtin::False();
      }
      if (a.has_value()) return Builtin::EqConst(r->var2(), *a);
      if (b.has_value()) return Builtin::EqConst(r->var(), *b);
      return r;
    }
    case Builtin::Kind::kNot:
      return Builtin::Not(BindBuiltin(r->left(), bindings));
    case Builtin::Kind::kAnd:
      return Builtin::And(BindBuiltin(r->left(), bindings),
                          BindBuiltin(r->right(), bindings));
    case Builtin::Kind::kOr:
      return Builtin::Or(BindBuiltin(r->left(), bindings),
                         BindBuiltin(r->right(), bindings));
  }
  return r;
}

}  // namespace

std::vector<VarId> TriplePatternVars(const TriplePattern& t) {
  std::vector<VarId> out;
  if (t.s.is_var()) out.push_back(t.s.var());
  if (t.p.is_var()) out.push_back(t.p.var());
  if (t.o.is_var()) out.push_back(t.o.var());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Triple Instantiate(const TriplePattern& t, const Mapping& m) {
  auto value = [&m](Term term) -> TermId {
    if (term.is_var()) {
      std::optional<TermId> v = m.Get(term.var());
      RDFQL_CHECK_MSG(v.has_value(), "Instantiate: unbound variable");
      return *v;
    }
    return term.iri();
  };
  return Triple(value(t.s), value(t.p), value(t.o));
}

PatternPtr Pattern::MakeTriple(const TriplePattern& t) {
  auto* p = new Pattern(PatternKind::kTriple);
  p->triple_ = t;
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::And(PatternPtr l, PatternPtr r) {
  RDFQL_CHECK(l != nullptr && r != nullptr);
  auto* p = new Pattern(PatternKind::kAnd);
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Union(PatternPtr l, PatternPtr r) {
  RDFQL_CHECK(l != nullptr && r != nullptr);
  auto* p = new Pattern(PatternKind::kUnion);
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Opt(PatternPtr l, PatternPtr r) {
  RDFQL_CHECK(l != nullptr && r != nullptr);
  auto* p = new Pattern(PatternKind::kOpt);
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Minus(PatternPtr l, PatternPtr r) {
  RDFQL_CHECK(l != nullptr && r != nullptr);
  auto* p = new Pattern(PatternKind::kMinus);
  p->left_ = std::move(l);
  p->right_ = std::move(r);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Filter(PatternPtr child, BuiltinPtr condition) {
  RDFQL_CHECK(child != nullptr && condition != nullptr);
  auto* p = new Pattern(PatternKind::kFilter);
  p->left_ = std::move(child);
  p->condition_ = std::move(condition);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Select(std::vector<VarId> vars, PatternPtr child) {
  RDFQL_CHECK(child != nullptr);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  auto* p = new Pattern(PatternKind::kSelect);
  p->left_ = std::move(child);
  p->projection_ = std::move(vars);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::Ns(PatternPtr child) {
  RDFQL_CHECK(child != nullptr);
  auto* p = new Pattern(PatternKind::kNs);
  p->left_ = std::move(child);
  p->ComputeVarCaches();
  return PatternPtr(p);
}

PatternPtr Pattern::AndAll(const std::vector<PatternPtr>& items) {
  RDFQL_CHECK(!items.empty());
  PatternPtr acc = items[0];
  for (size_t i = 1; i < items.size(); ++i) acc = And(acc, items[i]);
  return acc;
}

PatternPtr Pattern::UnionAll(const std::vector<PatternPtr>& items) {
  RDFQL_CHECK(!items.empty());
  PatternPtr acc = items[0];
  for (size_t i = 1; i < items.size(); ++i) acc = Union(acc, items[i]);
  return acc;
}

void Pattern::ComputeVarCaches() {
  switch (kind_) {
    case PatternKind::kTriple:
      vars_ = TriplePatternVars(triple_);
      scope_vars_ = vars_;
      return;
    case PatternKind::kAnd:
    case PatternKind::kUnion:
    case PatternKind::kOpt:
      vars_ = SortedUnion(left_->vars_, right_->vars_);
      scope_vars_ = SortedUnion(left_->scope_vars_, right_->scope_vars_);
      return;
    case PatternKind::kMinus:
      vars_ = SortedUnion(left_->vars_, right_->vars_);
      scope_vars_ = left_->scope_vars_;
      return;
    case PatternKind::kFilter: {
      std::set<VarId> cond_vars;
      condition_->CollectVars(&cond_vars);
      std::vector<VarId> cv(cond_vars.begin(), cond_vars.end());
      vars_ = SortedUnion(left_->vars_, cv);
      scope_vars_ = left_->scope_vars_;
      return;
    }
    case PatternKind::kSelect:
      vars_ = SortedUnion(left_->vars_, projection_);
      scope_vars_ = SortedIntersection(left_->scope_vars_, projection_);
      return;
    case PatternKind::kNs:
      vars_ = left_->vars_;
      scope_vars_ = left_->scope_vars_;
      return;
  }
}

std::vector<TermId> Pattern::Iris() const {
  std::set<TermId> acc;
  // Iterative DFS to avoid building the set recursively at every level.
  std::vector<const Pattern*> stack = {this};
  while (!stack.empty()) {
    const Pattern* p = stack.back();
    stack.pop_back();
    switch (p->kind_) {
      case PatternKind::kTriple:
        if (p->triple_.s.is_iri()) acc.insert(p->triple_.s.iri());
        if (p->triple_.p.is_iri()) acc.insert(p->triple_.p.iri());
        if (p->triple_.o.is_iri()) acc.insert(p->triple_.o.iri());
        break;
      case PatternKind::kFilter:
        p->condition_->CollectIris(&acc);
        stack.push_back(p->left_.get());
        break;
      case PatternKind::kSelect:
      case PatternKind::kNs:
        stack.push_back(p->left_.get());
        break;
      default:
        stack.push_back(p->left_.get());
        stack.push_back(p->right_.get());
        break;
    }
  }
  return std::vector<TermId>(acc.begin(), acc.end());
}

size_t Pattern::SizeInNodes() const {
  switch (kind_) {
    case PatternKind::kTriple:
      return 1;
    case PatternKind::kFilter:
    case PatternKind::kSelect:
    case PatternKind::kNs:
      return 1 + left_->SizeInNodes();
    default:
      return 1 + left_->SizeInNodes() + right_->SizeInNodes();
  }
}

bool Pattern::Uses(PatternKind op) const {
  if (kind_ == op) return true;
  switch (kind_) {
    case PatternKind::kTriple:
      return false;
    case PatternKind::kFilter:
    case PatternKind::kSelect:
    case PatternKind::kNs:
      return left_->Uses(op);
    default:
      return left_->Uses(op) || right_->Uses(op);
  }
}

bool Pattern::Equal(const PatternPtr& a, const PatternPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case PatternKind::kTriple:
      return a->triple_ == b->triple_;
    case PatternKind::kFilter:
      return Builtin::Equal(a->condition_, b->condition_) &&
             Equal(a->left_, b->left_);
    case PatternKind::kSelect:
      return a->projection_ == b->projection_ && Equal(a->left_, b->left_);
    case PatternKind::kNs:
      return Equal(a->left_, b->left_);
    default:
      return Equal(a->left_, b->left_) && Equal(a->right_, b->right_);
  }
}

PatternPtr Pattern::RenameVars(const PatternPtr& p,
                               const std::map<VarId, VarId>& renaming) {
  switch (p->kind_) {
    case PatternKind::kTriple:
      return MakeTriple(RenameTerm(p->triple_.s, renaming),
                        RenameTerm(p->triple_.p, renaming),
                        RenameTerm(p->triple_.o, renaming));
    case PatternKind::kAnd:
      return And(RenameVars(p->left_, renaming),
                 RenameVars(p->right_, renaming));
    case PatternKind::kUnion:
      return Union(RenameVars(p->left_, renaming),
                   RenameVars(p->right_, renaming));
    case PatternKind::kOpt:
      return Opt(RenameVars(p->left_, renaming),
                 RenameVars(p->right_, renaming));
    case PatternKind::kMinus:
      return Minus(RenameVars(p->left_, renaming),
                   RenameVars(p->right_, renaming));
    case PatternKind::kFilter:
      return Filter(RenameVars(p->left_, renaming),
                    RenameBuiltin(p->condition_, renaming));
    case PatternKind::kSelect: {
      std::vector<VarId> proj;
      proj.reserve(p->projection_.size());
      for (VarId v : p->projection_) {
        auto it = renaming.find(v);
        proj.push_back(it == renaming.end() ? v : it->second);
      }
      return Select(std::move(proj), RenameVars(p->left_, renaming));
    }
    case PatternKind::kNs:
      return Ns(RenameVars(p->left_, renaming));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return nullptr;
}

PatternShape ShapeOfPattern(const Pattern& p) {
  PatternShape shape;
  shape.vars = p.Vars().size();
  shape.union_width = 1;
  // Both walks are iterative: UNF/NS-elimination outputs are left-deep
  // UNION spines far deeper than the call stack tolerates.
  std::vector<const Pattern*> stack{&p};
  while (!stack.empty()) {
    const Pattern* cur = stack.back();
    stack.pop_back();
    ++shape.nodes;
    if (cur->kind() == PatternKind::kUnion) {
      // Count the maximal UNION spine rooted here in one sweep; its
      // non-UNION leaves go back on the node stack.
      uint64_t width = 0;
      std::vector<const Pattern*> walk{cur};
      while (!walk.empty()) {
        const Pattern* s = walk.back();
        walk.pop_back();
        if (s->kind() == PatternKind::kUnion) {
          if (s != cur) ++shape.nodes;
          walk.push_back(s->right().get());
          walk.push_back(s->left().get());
        } else {
          ++width;
          stack.push_back(s);
        }
      }
      if (width > shape.union_width) shape.union_width = width;
    } else {
      switch (cur->kind()) {
        case PatternKind::kTriple:
          break;
        case PatternKind::kFilter:
        case PatternKind::kSelect:
        case PatternKind::kNs:
          stack.push_back(cur->child().get());
          break;
        default:
          stack.push_back(cur->left().get());
          stack.push_back(cur->right().get());
          break;
      }
    }
  }
  return shape;
}

PatternPtr Pattern::BindVars(const PatternPtr& p,
                             const std::map<VarId, TermId>& bindings) {
  switch (p->kind_) {
    case PatternKind::kTriple:
      return MakeTriple(BindTerm(p->triple_.s, bindings),
                        BindTerm(p->triple_.p, bindings),
                        BindTerm(p->triple_.o, bindings));
    case PatternKind::kAnd:
      return And(BindVars(p->left_, bindings),
                 BindVars(p->right_, bindings));
    case PatternKind::kUnion:
      return Union(BindVars(p->left_, bindings),
                   BindVars(p->right_, bindings));
    case PatternKind::kOpt:
      return Opt(BindVars(p->left_, bindings),
                 BindVars(p->right_, bindings));
    case PatternKind::kMinus:
      return Minus(BindVars(p->left_, bindings),
                   BindVars(p->right_, bindings));
    case PatternKind::kFilter:
      return Filter(BindVars(p->left_, bindings),
                    BindBuiltin(p->condition_, bindings));
    case PatternKind::kSelect: {
      std::vector<VarId> projection;
      for (VarId v : p->projection_) {
        if (bindings.find(v) == bindings.end()) projection.push_back(v);
      }
      return Select(std::move(projection), BindVars(p->left_, bindings));
    }
    case PatternKind::kNs:
      return Ns(BindVars(p->left_, bindings));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace rdfql
