#ifndef RDFQL_ALGEBRA_MAPPING_SET_H_
#define RDFQL_ALGEBRA_MAPPING_SET_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/mapping.h"
#include "obs/accounting.h"

namespace rdfql {

class ThreadPool;

/// A set of mappings Ω, the result type of SPARQL graph-pattern evaluation.
///
/// Set semantics with deterministic iteration order (insertion order) so
/// results print stably. Implements the four algebra operators of
/// Section 2.1 — join ⋈, union ∪, difference ∖ and left-outer join ⟕ —
/// and the subsumption preorder Ω1 ⊑ Ω2 of Section 3.1.
class MappingSet {
 public:
  MappingSet() = default;
  ~MappingSet() { DetachAccounting(); }

  /// Copies re-account their mappings against the accountant installed at
  /// copy time; moves carry the source's accounting along (and leave the
  /// source empty and unaccounted).
  MappingSet(const MappingSet& other);
  MappingSet& operator=(const MappingSet& other);
  MappingSet(MappingSet&& other) noexcept;
  MappingSet& operator=(MappingSet&& other) noexcept;

  /// Builds from a list (duplicates collapse).
  static MappingSet FromList(const std::vector<Mapping>& mappings);

  /// Adds µ; returns true if it was new.
  bool Add(const Mapping& m);

  bool Contains(const Mapping& m) const { return set_.count(m) > 0; }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const std::vector<Mapping>& mappings() const { return items_; }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  /// Ω1 ⋈ Ω2 = { µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ∼ µ2 }.
  ///
  /// Uses a hash partition on the variables that are bound in *every*
  /// mapping of each side (the certain variables); falls back to pairwise
  /// checks within buckets, so it is correct for heterogeneous domains.
  ///
  /// With a non-null `pool` the probe side is split into contiguous chunks
  /// evaluated across the pool's threads; chunk outputs are concatenated in
  /// chunk order before the deduplicating insert, so the result — content
  /// *and* iteration order — is bit-for-bit the serial result regardless of
  /// scheduling. A null pool (the default) is the unchanged serial path.
  static MappingSet Join(const MappingSet& a, const MappingSet& b,
                         ThreadPool* pool = nullptr);

  /// Reference nested-loop join (baseline for the join ablation bench).
  static MappingSet JoinNestedLoop(const MappingSet& a, const MappingSet& b);

  /// Ω1 ∪ Ω2.
  static MappingSet UnionSets(const MappingSet& a, const MappingSet& b);

  /// Ω1 ∖ Ω2 = { µ ∈ Ω1 | ∀ µ' ∈ Ω2 : µ ≁ µ' }. Same parallel contract as
  /// Join: Ω1 is chunked, per-chunk survivors concatenate in chunk order.
  static MappingSet Minus(const MappingSet& a, const MappingSet& b,
                          ThreadPool* pool = nullptr);

  /// Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2).
  static MappingSet LeftOuterJoin(const MappingSet& a, const MappingSet& b,
                                  ThreadPool* pool = nullptr);

  /// Ω1 ⊑ Ω2: every µ1 ∈ Ω1 is subsumed by some µ2 ∈ Ω2.
  static bool Subsumed(const MappingSet& a, const MappingSet& b);

  /// Set equality.
  friend bool operator==(const MappingSet& a, const MappingSet& b);
  friend bool operator!=(const MappingSet& a, const MappingSet& b) {
    return !(a == b);
  }

  /// Renders the mappings, one per line, sorted for stability.
  std::string ToString(const Dictionary& dict) const;

  /// Approximate resident bytes of the mappings — the sum of the same
  /// per-mapping estimate the ResourceAccountant charges. Feeds the query
  /// cache's result byte budgets.
  size_t ApproxBytes() const;

  /// Returns this set's memory to its accountant (if any) and stops
  /// reporting. The evaluator detaches a query's result set before handing
  /// it out, so per-query peaks cover intermediates plus the result but
  /// the escaping set never holds a pointer to a dead accountant.
  void DetachAccounting();

 private:
  /// Charges one freshly inserted mapping of `bytes` to the accountant.
  /// Latches (accountant, epoch) on first use; a latched set whose
  /// accountant was Reset since goes silent rather than corrupting the new
  /// epoch's live counts.
  void AccountAdd(size_t bytes) {
    if (acct_ == nullptr) {
      ResourceAccountant* cur = ResourceAccountant::Current();
      if (cur == nullptr) [[likely]] {
        return;
      }
      acct_ = cur;
      acct_epoch_ = cur->epoch();
    }
    if (acct_->epoch() != acct_epoch_) return;
    acct_->OnAdd(1, bytes);
    ++acct_mappings_;
    acct_bytes_ += bytes;
  }

  std::vector<Mapping> items_;
  std::unordered_set<Mapping, MappingHash> set_;

  ResourceAccountant* acct_ = nullptr;
  uint64_t acct_epoch_ = 0;
  uint64_t acct_mappings_ = 0;
  uint64_t acct_bytes_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_MAPPING_SET_H_
