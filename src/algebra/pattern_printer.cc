#include "algebra/pattern_printer.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace rdfql {
namespace {

bool IsPlainWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '@' ||
         c == ':' || c == '+' || c == '-' || c == '/';
}

bool IsReservedWord(const std::string& s) {
  static const char* kReserved[] = {"AND",    "UNION", "OPT",   "MINUS",
                                    "FILTER", "SELECT", "WHERE", "NS",
                                    "bound",  "true",  "false", "CONSTRUCT"};
  for (const char* word : kReserved) {
    if (s == word) return true;
  }
  return false;
}

std::string TermToken(Term t, const Dictionary& dict) {
  if (t.is_var()) return "?" + dict.VarName(t.var());
  return IriToken(dict.IriName(t.iri()));
}

void Render(const Pattern& p, const Dictionary& dict, std::string* out) {
  switch (p.kind()) {
    case PatternKind::kTriple: {
      *out += "(" + TermToken(p.triple().s, dict) + " " +
              TermToken(p.triple().p, dict) + " " +
              TermToken(p.triple().o, dict) + ")";
      return;
    }
    case PatternKind::kAnd:
    case PatternKind::kUnion:
    case PatternKind::kOpt:
    case PatternKind::kMinus: {
      const char* op = p.kind() == PatternKind::kAnd     ? "AND"
                       : p.kind() == PatternKind::kUnion ? "UNION"
                       : p.kind() == PatternKind::kOpt   ? "OPT"
                                                         : "MINUS";
      *out += "(";
      Render(*p.left(), dict, out);
      *out += " ";
      *out += op;
      *out += " ";
      Render(*p.right(), dict, out);
      *out += ")";
      return;
    }
    case PatternKind::kFilter: {
      *out += "(";
      Render(*p.child(), dict, out);
      *out += " FILTER ";
      *out += p.condition()->ToString(dict);
      *out += ")";
      return;
    }
    case PatternKind::kSelect: {
      *out += "(SELECT {";
      bool first = true;
      for (VarId v : p.projection()) {
        if (!first) *out += " ";
        first = false;
        *out += "?" + dict.VarName(v);
      }
      *out += "} WHERE ";
      Render(*p.child(), dict, out);
      *out += ")";
      return;
    }
    case PatternKind::kNs: {
      *out += "NS(";
      Render(*p.child(), dict, out);
      *out += ")";
      return;
    }
  }
}

}  // namespace

std::string IriToken(const std::string& iri) {
  bool plain = !iri.empty() && !IsReservedWord(iri);
  if (plain) {
    for (char c : iri) {
      if (!IsPlainWordChar(c)) {
        plain = false;
        break;
      }
    }
    // A bare token must not start like a variable/number punctuation.
    if (plain && (iri[0] == '?' || iri[0] == '<')) plain = false;
  }
  if (plain) return iri;
  return "<" + iri + ">";
}

std::string PatternToString(const PatternPtr& pattern,
                            const Dictionary& dict) {
  RDFQL_CHECK(pattern != nullptr);
  std::string out;
  Render(*pattern, dict, &out);
  return out;
}

std::string TriplePatternToString(const TriplePattern& t,
                                  const Dictionary& dict) {
  return "(" + TermToken(t.s, dict) + " " + TermToken(t.p, dict) + " " +
         TermToken(t.o, dict) + ")";
}

std::string ConstructToString(const std::vector<TriplePattern>& templ,
                              const PatternPtr& where,
                              const Dictionary& dict) {
  std::string out = "CONSTRUCT {";
  for (const TriplePattern& t : templ) {
    out += " " + TriplePatternToString(t, dict);
  }
  out += " } WHERE ";
  out += PatternToString(where, dict);
  return out;
}

std::string MappingTable(const MappingSet& result, const Dictionary& dict) {
  // Collect the column set (every variable bound anywhere in the result).
  std::set<VarId> var_set;
  for (const Mapping& m : result) {
    for (const auto& [v, t] : m.bindings()) var_set.insert(v);
  }
  std::vector<VarId> columns(var_set.begin(), var_set.end());
  std::sort(columns.begin(), columns.end(),
            [&dict](VarId a, VarId b) {
              return dict.VarName(a) < dict.VarName(b);
            });

  std::vector<std::vector<std::string>> rows;
  for (const Mapping& m : result) {
    std::vector<std::string> row;
    for (VarId v : columns) {
      std::optional<TermId> t = m.Get(v);
      row.push_back(t ? dict.IriName(*t) : "");
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());

  std::vector<std::string> header;
  for (VarId v : columns) header.push_back("?" + dict.VarName(v));

  std::vector<size_t> widths(columns.size(), 0);
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c];
      line += std::string(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::string out;
  if (columns.empty()) {
    // Results with only the empty mapping (or none at all).
    out += result.empty() ? "(no solutions)\n"
                          : "(the empty mapping, x" +
                                std::to_string(result.size()) + ")\n";
    return out;
  }
  out += render_row(header);
  std::string sep = "|";
  for (size_t c = 0; c < columns.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace rdfql
