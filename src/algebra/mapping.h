#ifndef RDFQL_ALGEBRA_MAPPING_H_
#define RDFQL_ALGEBRA_MAPPING_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfql {

/// A mapping µ: a partial function from variables V to IRIs I (Section 2.1).
///
/// Stored as a vector of (VarId, TermId) bindings sorted by VarId, so
/// compatibility, union and subsumption are linear merge walks and equal
/// mappings have equal representations (hashable).
class Mapping {
 public:
  /// The empty mapping µ∅ (dom(µ) = ∅).
  Mapping() = default;

  /// Builds from unordered bindings; later duplicates of a variable must
  /// agree with earlier ones (checked).
  static Mapping FromBindings(std::vector<std::pair<VarId, TermId>> bindings);

  /// Adds or overwrites the binding ?v → t.
  void Set(VarId v, TermId t);

  /// The bound value of ?v, if any.
  std::optional<TermId> Get(VarId v) const;

  bool Binds(VarId v) const { return Get(v).has_value(); }

  /// |dom(µ)|.
  size_t size() const { return bindings_.size(); }
  bool empty() const { return bindings_.empty(); }

  /// dom(µ) as a sorted VarId list.
  std::vector<VarId> Domain() const;

  /// Sorted (VarId, TermId) pairs.
  const std::vector<std::pair<VarId, TermId>>& bindings() const {
    return bindings_;
  }

  /// µ1 ∼ µ2: agree on every shared variable.
  bool CompatibleWith(const Mapping& other) const;

  /// µ1 ∪ µ2; requires CompatibleWith(other).
  Mapping UnionWith(const Mapping& other) const;

  /// µ1 ⪯ µ2: dom(µ1) ⊆ dom(µ2) and they agree on dom(µ1).
  bool SubsumedBy(const Mapping& other) const;

  /// µ1 ≺ µ2: subsumed and not equal.
  bool ProperlySubsumedBy(const Mapping& other) const {
    return size() < other.size() && SubsumedBy(other);
  }

  /// µ|V — restriction to the (sorted or unsorted) variable list V.
  Mapping RestrictTo(const std::vector<VarId>& vars) const;

  /// Fixed per-mapping overhead the resource accountant charges on top of
  /// the binding payload (vector slot + dedup-set node bookkeeping).
  static constexpr size_t kApproxFixedBytes = 64;

  /// Approximate footprint as the accountant counts it. Deliberately a
  /// simple closed formula — fixed overhead plus 8 bytes per binding — so
  /// tests can hand-compute expected byte totals exactly.
  size_t ApproxBytes() const {
    return kApproxFixedBytes + bindings_.size() * sizeof(bindings_[0]);
  }

  /// Renders as `[?x -> a, ?y -> b]`.
  std::string ToString(const Dictionary& dict) const;

  size_t Hash() const;

  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.bindings_ == b.bindings_;
  }
  friend bool operator!=(const Mapping& a, const Mapping& b) {
    return !(a == b);
  }
  /// Arbitrary total order (for deterministic sorting of result sets).
  friend bool operator<(const Mapping& a, const Mapping& b) {
    return a.bindings_ < b.bindings_;
  }

 private:
  std::vector<std::pair<VarId, TermId>> bindings_;
};

struct MappingHash {
  size_t operator()(const Mapping& m) const { return m.Hash(); }
};

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_MAPPING_H_
