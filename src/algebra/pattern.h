#ifndef RDFQL_ALGEBRA_PATTERN_H_
#define RDFQL_ALGEBRA_PATTERN_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "algebra/builtin.h"
#include "rdf/triple.h"

namespace rdfql {

class Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/// Operators of NS-SPARQL graph patterns (Sections 2.1 and 5.1).
///
/// `kMinus` is the derived difference operator of Appendix D
/// (P1 MINUS P2 keeps the mappings of P1 incompatible with every mapping of
/// P2). We keep it as a first-class node — `DesugarMinus` in
/// transform/opt_rewriter.h rewrites it into the paper's OPT+FILTER
/// encoding, and the fragment classifier treats it as requiring OPT+FILTER.
enum class PatternKind {
  kTriple,
  kAnd,
  kUnion,
  kOpt,
  kFilter,
  kSelect,
  kNs,
  kMinus,
};

/// An immutable SPARQL/NS-SPARQL graph pattern node.
///
/// Nodes are shared (`shared_ptr<const Pattern>`), so the transformation
/// passes — some of which are intentionally exponential, mirroring the
/// paper's constructions — share subtrees instead of copying them.
/// Per-node caches of var(P) (all mentioned variables) and scope(P) (the
/// variables that may appear in an answer's domain) are computed at
/// construction.
class Pattern {
 public:
  // --- Factories (the only way to construct nodes) ---
  static PatternPtr MakeTriple(const TriplePattern& t);
  static PatternPtr MakeTriple(Term s, Term p, Term o) {
    return MakeTriple(TriplePattern(s, p, o));
  }
  static PatternPtr And(PatternPtr l, PatternPtr r);
  static PatternPtr Union(PatternPtr l, PatternPtr r);
  static PatternPtr Opt(PatternPtr l, PatternPtr r);
  static PatternPtr Minus(PatternPtr l, PatternPtr r);
  static PatternPtr Filter(PatternPtr child, BuiltinPtr condition);
  static PatternPtr Select(std::vector<VarId> vars, PatternPtr child);
  static PatternPtr Ns(PatternPtr child);

  /// Left-deep AND / UNION of a non-empty list.
  static PatternPtr AndAll(const std::vector<PatternPtr>& items);
  static PatternPtr UnionAll(const std::vector<PatternPtr>& items);

  // --- Accessors ---
  PatternKind kind() const { return kind_; }
  const TriplePattern& triple() const { return triple_; }
  const PatternPtr& left() const { return left_; }
  const PatternPtr& right() const { return right_; }
  const PatternPtr& child() const { return left_; }
  const BuiltinPtr& condition() const { return condition_; }
  /// Projection list of a kSelect node, sorted.
  const std::vector<VarId>& projection() const { return projection_; }

  /// var(P): every variable mentioned in P (triples, conditions,
  /// projection lists), sorted.
  const std::vector<VarId>& Vars() const { return vars_; }

  /// scope(P): the variables that can occur in the domain of an answer
  /// mapping (projection cuts this down; MINUS keeps only the left side).
  const std::vector<VarId>& ScopeVars() const { return scope_vars_; }

  /// I(P): every IRI mentioned in P, sorted.
  std::vector<TermId> Iris() const;

  /// Number of AST nodes (used by the blow-up benchmarks).
  size_t SizeInNodes() const;

  /// True if `op` occurs anywhere in the pattern ("O-free" checks).
  bool Uses(PatternKind op) const;

  /// Structural equality (not semantic equivalence).
  static bool Equal(const PatternPtr& a, const PatternPtr& b);

  /// Replaces every occurrence of each variable per `renaming` (applies to
  /// triples, filter conditions and projection lists). Variables not in the
  /// map are kept.
  static PatternPtr RenameVars(const PatternPtr& p,
                               const std::map<VarId, VarId>& renaming);

  /// Parameter binding (prepared-query style): substitutes IRIs for
  /// variables. Triple positions become constants; filter atoms over bound
  /// variables partially evaluate (bound(?x) → true, ?x = c → true/false,
  /// ?x = ?y → ?y = value); bound variables drop out of projections. For
  /// patterns in the monotone fragments,
  ///   ⟦BindVars(P, σ)⟧G = { µ|_{var(P) ∖ dom σ} : µ ∈ ⟦P⟧G, σ ⪯ µ }.
  static PatternPtr BindVars(const PatternPtr& p,
                             const std::map<VarId, TermId>& bindings);

 private:
  explicit Pattern(PatternKind kind) : kind_(kind) {}

  void ComputeVarCaches();

  PatternKind kind_;
  TriplePattern triple_;
  PatternPtr left_;
  PatternPtr right_;
  BuiltinPtr condition_;
  std::vector<VarId> projection_;

  std::vector<VarId> vars_;
  std::vector<VarId> scope_vars_;
};

/// Convenience: sorted var(t) of a triple pattern.
std::vector<VarId> TriplePatternVars(const TriplePattern& t);

/// µ(t): instantiates a triple pattern under µ; requires var(t) ⊆ dom(µ).
Triple Instantiate(const TriplePattern& t, const Mapping& m);

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_PATTERN_H_
