#include "algebra/mapping.h"

#include <algorithm>

#include "util/check.h"

namespace rdfql {

Mapping Mapping::FromBindings(
    std::vector<std::pair<VarId, TermId>> bindings) {
  std::sort(bindings.begin(), bindings.end());
  Mapping m;
  for (const auto& [v, t] : bindings) {
    if (!m.bindings_.empty() && m.bindings_.back().first == v) {
      RDFQL_CHECK_MSG(m.bindings_.back().second == t,
                      "conflicting duplicate binding");
      continue;
    }
    m.bindings_.emplace_back(v, t);
  }
  return m;
}

void Mapping::Set(VarId v, TermId t) {
  auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), v,
      [](const std::pair<VarId, TermId>& b, VarId key) {
        return b.first < key;
      });
  if (it != bindings_.end() && it->first == v) {
    it->second = t;
  } else {
    bindings_.insert(it, {v, t});
  }
}

std::optional<TermId> Mapping::Get(VarId v) const {
  auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), v,
      [](const std::pair<VarId, TermId>& b, VarId key) {
        return b.first < key;
      });
  if (it != bindings_.end() && it->first == v) return it->second;
  return std::nullopt;
}

std::vector<VarId> Mapping::Domain() const {
  std::vector<VarId> out;
  out.reserve(bindings_.size());
  for (const auto& [v, t] : bindings_) out.push_back(v);
  return out;
}

bool Mapping::CompatibleWith(const Mapping& other) const {
  // Disjoint VarId ranges (common under INL joins, where one side binds a
  // low prefix of variables and the other a high suffix) share no
  // variables, hence are vacuously compatible — skip the merge walk.
  if (bindings_.empty() || other.bindings_.empty() ||
      bindings_.back().first < other.bindings_.front().first ||
      other.bindings_.back().first < bindings_.front().first) {
    return true;
  }
  // Merge walk over two sorted binding lists.
  size_t i = 0, j = 0;
  while (i < bindings_.size() && j < other.bindings_.size()) {
    if (bindings_[i].first < other.bindings_[j].first) {
      ++i;
    } else if (bindings_[i].first > other.bindings_[j].first) {
      ++j;
    } else {
      if (bindings_[i].second != other.bindings_[j].second) return false;
      ++i;
      ++j;
    }
  }
  return true;
}

Mapping Mapping::UnionWith(const Mapping& other) const {
  Mapping out;
  out.bindings_.reserve(bindings_.size() + other.bindings_.size());
  // Non-overlapping VarId ranges concatenate without a merge walk.
  if (bindings_.empty() || other.bindings_.empty() ||
      bindings_.back().first < other.bindings_.front().first) {
    out.bindings_ = bindings_;
    out.bindings_.insert(out.bindings_.end(), other.bindings_.begin(),
                         other.bindings_.end());
    return out;
  }
  if (other.bindings_.back().first < bindings_.front().first) {
    out.bindings_ = other.bindings_;
    out.bindings_.insert(out.bindings_.end(), bindings_.begin(),
                         bindings_.end());
    return out;
  }
  size_t i = 0, j = 0;
  while (i < bindings_.size() || j < other.bindings_.size()) {
    if (j >= other.bindings_.size() ||
        (i < bindings_.size() &&
         bindings_[i].first < other.bindings_[j].first)) {
      out.bindings_.push_back(bindings_[i++]);
    } else if (i >= bindings_.size() ||
               bindings_[i].first > other.bindings_[j].first) {
      out.bindings_.push_back(other.bindings_[j++]);
    } else {
      RDFQL_CHECK_MSG(bindings_[i].second == other.bindings_[j].second,
                      "UnionWith on incompatible mappings");
      out.bindings_.push_back(bindings_[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

bool Mapping::SubsumedBy(const Mapping& other) const {
  if (size() > other.size()) return false;
  size_t j = 0;
  for (const auto& [v, t] : bindings_) {
    while (j < other.bindings_.size() && other.bindings_[j].first < v) ++j;
    if (j >= other.bindings_.size() || other.bindings_[j].first != v ||
        other.bindings_[j].second != t) {
      return false;
    }
    ++j;
  }
  return true;
}

Mapping Mapping::RestrictTo(const std::vector<VarId>& vars) const {
  Mapping out;
  for (const auto& [v, t] : bindings_) {
    if (std::find(vars.begin(), vars.end(), v) != vars.end()) {
      out.bindings_.emplace_back(v, t);
    }
  }
  return out;
}

std::string Mapping::ToString(const Dictionary& dict) const {
  std::string out = "[";
  bool first = true;
  for (const auto& [v, t] : bindings_) {
    if (!first) out += ", ";
    first = false;
    out += "?" + dict.VarName(v) + " -> " + dict.IriName(t);
  }
  out += "]";
  return out;
}

size_t Mapping::Hash() const {
  uint64_t h = 0x51ed270b76435a81ULL;
  for (const auto& [v, t] : bindings_) {
    h = (h ^ v) * 0x9e3779b97f4a7c15ULL;
    h = (h ^ t) * 0x9e3779b97f4a7c15ULL;
  }
  return static_cast<size_t>(h ^ (h >> 32));
}

}  // namespace rdfql
