#ifndef RDFQL_ALGEBRA_RESULT_IO_H_
#define RDFQL_ALGEBRA_RESULT_IO_H_

#include <string>

#include "algebra/mapping_set.h"

namespace rdfql {

/// Serializes a result set as CSV: a header row with the variable names
/// (sorted), then one row per mapping with empty cells for unbound
/// variables. Values containing commas, quotes or newlines are quoted per
/// RFC 4180. Rows are sorted for determinism.
std::string WriteCsv(const MappingSet& result, const Dictionary& dict);

/// Serializes a result set in the spirit of the W3C "SPARQL Query Results
/// JSON" format:
///   {"head":{"vars":[...]},
///    "results":{"bindings":[{"x":{"type":"iri","value":"..."}, ...}]}}
/// Unbound variables are omitted from their binding object, like the
/// standard does. Rows are sorted for determinism.
std::string WriteResultsJson(const MappingSet& result,
                             const Dictionary& dict);

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_RESULT_IO_H_
