#ifndef RDFQL_ALGEBRA_PATTERN_PRINTER_H_
#define RDFQL_ALGEBRA_PATTERN_PRINTER_H_

#include <string>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"

namespace rdfql {

/// Renders a pattern in the paper's concrete syntax, fully parenthesized,
/// e.g. `((?x founder ?o) AND ((?o stands_for w) OPT (?x email ?e)))`.
/// The output round-trips through `ParsePattern`.
std::string PatternToString(const PatternPtr& pattern,
                            const Dictionary& dict);

/// Renders an IRI as a token: bare if it is a plain word, `<...>` otherwise.
std::string IriToken(const std::string& iri);

/// Renders a triple pattern as `(s p o)`.
std::string TriplePatternToString(const TriplePattern& t,
                                  const Dictionary& dict);

/// Renders a CONSTRUCT query (`CONSTRUCT { ... } WHERE ...`); the output
/// round-trips through `ParseConstruct`.
std::string ConstructToString(const std::vector<TriplePattern>& templ,
                              const PatternPtr& where,
                              const Dictionary& dict);

/// Renders a mapping set as the tabular notation used by the paper's
/// examples: one column per variable (sorted by name), one row per mapping,
/// blank cells for unbound variables. Rows are sorted for stability.
std::string MappingTable(const MappingSet& result, const Dictionary& dict);

}  // namespace rdfql

#endif  // RDFQL_ALGEBRA_PATTERN_PRINTER_H_
