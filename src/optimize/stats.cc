#include "optimize/stats.h"

#include <algorithm>
#include <unordered_set>

namespace rdfql {

GraphStats GraphStats::Collect(const Graph& graph) {
  GraphStats stats;
  stats.total_ = graph.size();

  std::unordered_map<TermId, std::unordered_set<TermId>> subjects;
  std::unordered_map<TermId, std::unordered_set<TermId>> objects;
  std::unordered_set<TermId> all_subjects;
  std::unordered_set<TermId> all_objects;
  for (const Triple& t : graph.triples()) {
    stats.by_predicate_[t.p].count++;
    subjects[t.p].insert(t.s);
    objects[t.p].insert(t.o);
    all_subjects.insert(t.s);
    all_objects.insert(t.o);
  }
  for (auto& [p, ps] : stats.by_predicate_) {
    ps.subjects = subjects[p].size();
    ps.objects = objects[p].size();
  }
  stats.distinct_subjects_ = all_subjects.size();
  stats.distinct_objects_ = all_objects.size();
  return stats;
}

size_t GraphStats::PredicateCount(TermId p) const {
  auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? 0 : it->second.count;
}

size_t GraphStats::DistinctSubjects(TermId p) const {
  auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? 0 : it->second.subjects;
}

size_t GraphStats::DistinctObjects(TermId p) const {
  auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? 0 : it->second.objects;
}

double GraphStats::EstimateCardinality(const TriplePattern& t) const {
  if (t.p.is_iri()) {
    auto it = by_predicate_.find(t.p.iri());
    if (it == by_predicate_.end()) return 0.0;
    double estimate = static_cast<double>(it->second.count);
    if (t.s.is_iri()) {
      estimate /= std::max<size_t>(1, it->second.subjects);
    }
    if (t.o.is_iri()) {
      estimate /= std::max<size_t>(1, it->second.objects);
    }
    return estimate;
  }
  double estimate = static_cast<double>(total_);
  if (t.s.is_iri()) estimate /= std::max<size_t>(1, distinct_subjects_);
  if (t.o.is_iri()) estimate /= std::max<size_t>(1, distinct_objects_);
  return estimate;
}

}  // namespace rdfql
