#ifndef RDFQL_OPTIMIZE_STATS_H_
#define RDFQL_OPTIMIZE_STATS_H_

#include <unordered_map>

#include "algebra/pattern.h"
#include "rdf/graph.h"

namespace rdfql {

/// Summary statistics of a graph used for cardinality estimation: per
/// predicate, the triple count and the number of distinct subjects and
/// objects. Built in one pass; cheap enough to rebuild after bulk loads.
class GraphStats {
 public:
  /// Collects statistics from `graph`.
  static GraphStats Collect(const Graph& graph);

  size_t total_triples() const { return total_; }

  /// Triples with predicate `p` (0 if unseen).
  size_t PredicateCount(TermId p) const;
  size_t DistinctSubjects(TermId p) const;
  size_t DistinctObjects(TermId p) const;

  /// Estimated number of matches of a triple pattern: uses the predicate
  /// statistics when the predicate is a constant, uniform fractions for
  /// constant subject/object positions, and the whole graph otherwise.
  double EstimateCardinality(const TriplePattern& t) const;

 private:
  struct PredicateStats {
    size_t count = 0;
    size_t subjects = 0;
    size_t objects = 0;
  };

  size_t total_ = 0;
  size_t distinct_subjects_ = 0;
  size_t distinct_objects_ = 0;
  std::unordered_map<TermId, PredicateStats> by_predicate_;
};

}  // namespace rdfql

#endif  // RDFQL_OPTIMIZE_STATS_H_
