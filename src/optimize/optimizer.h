#ifndef RDFQL_OPTIMIZE_OPTIMIZER_H_
#define RDFQL_OPTIMIZE_OPTIMIZER_H_

#include "algebra/pattern.h"
#include "obs/metrics.h"
#include "optimize/stats.h"
#include "rdf/dictionary.h"

namespace rdfql {

/// Which rewrites the optimizer applies (all semantics-preserving; each
/// can be switched off for the ablation benchmarks).
struct OptimizerOptions {
  /// Merge stacked FILTERs and split conjunctive conditions.
  bool normalize_filters = true;
  /// Push FILTERs towards the leaves — into UNION branches always, and
  /// into AND/OPT-left branches when every condition variable is certainly
  /// bound there (see the safety argument in optimizer.cc).
  bool push_filters = true;
  /// Flatten AND chains and greedily reorder the conjuncts by estimated
  /// cardinality and variable connectivity.
  bool reorder_joins = true;
  /// Remove UNION branches that are syntactically unsatisfiable
  /// (FILTER false).
  bool prune_unsatisfiable = true;
  /// When set, each applied rewrite and each statistics-estimation call is
  /// counted under `optimizer.*` (see docs/observability.md).
  MetricsRegistry* metrics = nullptr;
};

/// A statistics-driven, rule-based pattern optimizer in the spirit of the
/// static-analysis line of work the paper builds on ([23], [32]): pure
/// pattern-to-pattern rewrites validated against the reference evaluator.
class Optimizer {
 public:
  Optimizer(const GraphStats* stats, OptimizerOptions options = {})
      : stats_(stats), options_(options) {}

  /// Returns an equivalent pattern (⟦P⟧G = ⟦opt(P)⟧G on every graph).
  PatternPtr Optimize(const PatternPtr& pattern) const;

 private:
  PatternPtr Rewrite(const PatternPtr& p) const;
  PatternPtr ReorderAnds(const PatternPtr& p) const;
  PatternPtr PushFilter(const PatternPtr& child, BuiltinPtr condition) const;
  /// Bumps `optimizer.<name>` when options_.metrics is set.
  void Count(const char* name, uint64_t n = 1) const;

  const GraphStats* stats_;
  OptimizerOptions options_;
};

}  // namespace rdfql

#endif  // RDFQL_OPTIMIZE_OPTIMIZER_H_
