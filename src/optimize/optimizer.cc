#include "optimize/optimizer.h"

#include <algorithm>
#include <set>

#include "transform/union_normal_form.h"
#include "util/check.h"

namespace rdfql {
namespace {

// Syntactic unsatisfiability: the pattern provably has no answers on any
// graph (driven by FILTER false, which the Builtin factories produce when
// folding contradictions).
bool IsUnsatisfiable(const Pattern& p) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      return false;
    case PatternKind::kFilter:
      return p.condition()->kind() == Builtin::Kind::kFalse ||
             IsUnsatisfiable(*p.child());
    case PatternKind::kAnd:
      return IsUnsatisfiable(*p.left()) || IsUnsatisfiable(*p.right());
    case PatternKind::kUnion:
      return IsUnsatisfiable(*p.left()) && IsUnsatisfiable(*p.right());
    case PatternKind::kOpt:
    case PatternKind::kMinus:
      return IsUnsatisfiable(*p.left());
    case PatternKind::kSelect:
    case PatternKind::kNs:
      return IsUnsatisfiable(*p.child());
  }
  return false;
}

void SplitConjuncts(const BuiltinPtr& cond, std::vector<BuiltinPtr>* out) {
  if (cond->kind() == Builtin::Kind::kAnd) {
    SplitConjuncts(cond->left(), out);
    SplitConjuncts(cond->right(), out);
  } else {
    out->push_back(cond);
  }
}

bool VarsCertainlyBoundIn(const BuiltinPtr& cond, const PatternPtr& p) {
  std::set<VarId> cond_vars;
  cond->CollectVars(&cond_vars);
  std::vector<VarId> certain = CertainVars(p);
  for (VarId v : cond_vars) {
    if (!std::binary_search(certain.begin(), certain.end(), v)) return false;
  }
  return true;
}

bool VarsSubsetOf(const BuiltinPtr& cond, const std::vector<VarId>& vars) {
  std::set<VarId> cond_vars;
  cond->CollectVars(&cond_vars);
  for (VarId v : cond_vars) {
    if (!std::binary_search(vars.begin(), vars.end(), v)) return false;
  }
  return true;
}

void FlattenAnd(const PatternPtr& p, std::vector<PatternPtr>* out) {
  if (p->kind() == PatternKind::kAnd) {
    FlattenAnd(p->left(), out);
    FlattenAnd(p->right(), out);
  } else {
    out->push_back(p);
  }
}

size_t SharedVarCount(const std::vector<VarId>& bound,
                      const std::vector<VarId>& vars) {
  size_t n = 0;
  for (VarId v : vars) {
    if (std::binary_search(bound.begin(), bound.end(), v)) ++n;
  }
  return n;
}

}  // namespace

void Optimizer::Count(const char* name, uint64_t n) const {
  if (options_.metrics != nullptr && n > 0) {
    options_.metrics->GetCounter(std::string("optimizer.") + name)->Inc(n);
  }
}

PatternPtr Optimizer::Optimize(const PatternPtr& pattern) const {
  RDFQL_CHECK(pattern != nullptr);
  Count("runs");
  return Rewrite(pattern);
}

PatternPtr Optimizer::Rewrite(const PatternPtr& p) const {
  switch (p->kind()) {
    case PatternKind::kTriple:
      return p;
    case PatternKind::kAnd: {
      PatternPtr node =
          Pattern::And(Rewrite(p->left()), Rewrite(p->right()));
      return options_.reorder_joins ? ReorderAnds(node) : node;
    }
    case PatternKind::kUnion: {
      PatternPtr l = Rewrite(p->left());
      PatternPtr r = Rewrite(p->right());
      if (options_.prune_unsatisfiable) {
        // Dropping an empty branch of a UNION is always sound.
        bool l_dead = IsUnsatisfiable(*l);
        bool r_dead = IsUnsatisfiable(*r);
        if (l_dead != r_dead) Count("union_branches_pruned");
        if (l_dead && !r_dead) return r;
        if (r_dead && !l_dead) return l;
      }
      return Pattern::Union(l, r);
    }
    case PatternKind::kOpt:
      return Pattern::Opt(Rewrite(p->left()), Rewrite(p->right()));
    case PatternKind::kMinus:
      return Pattern::Minus(Rewrite(p->left()), Rewrite(p->right()));
    case PatternKind::kFilter: {
      PatternPtr child = Rewrite(p->child());
      BuiltinPtr cond = p->condition();
      if (options_.normalize_filters &&
          child->kind() == PatternKind::kFilter) {
        // (P FILTER R1) FILTER R2 ≡ P FILTER (R1 ∧ R2).
        cond = Builtin::And(child->condition(), cond);
        child = child->child();
        Count("filters_merged");
      }
      if (!options_.push_filters) return Pattern::Filter(child, cond);
      std::vector<BuiltinPtr> conjuncts;
      SplitConjuncts(cond, &conjuncts);
      PatternPtr out = child;
      for (const BuiltinPtr& r : conjuncts) out = PushFilter(out, r);
      return out;
    }
    case PatternKind::kSelect:
      return Pattern::Select(p->projection(), Rewrite(p->child()));
    case PatternKind::kNs:
      return Pattern::Ns(Rewrite(p->child()));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return nullptr;
}

// Pushes a single condition towards the leaves. Safety arguments:
//  - UNION: ⟦(P1 ∪ P2) FILTER R⟧ = ⟦P1 FILTER R⟧ ∪ ⟦P2 FILTER R⟧ always.
//  - AND / OPT / MINUS left: if every variable of R is *certainly* bound
//    by the branch, each result µ extends a branch mapping µ' that agrees
//    with µ on var(R), so µ ⊨ R ⇔ µ' ⊨ R. (Certainty matters: for an
//    optionally bound ?x, !bound(?x) could hold for µ' but not for µ.)
//  - SELECT: if var(R) ⊆ V, projection does not change R's verdict.
//  - NS: never pushed — filtering changes which answers are maximal.
PatternPtr Optimizer::PushFilter(const PatternPtr& child,
                                 BuiltinPtr condition) const {
  switch (child->kind()) {
    case PatternKind::kUnion:
      Count("filters_pushed");
      return Pattern::Union(PushFilter(child->left(), condition),
                            PushFilter(child->right(), condition));
    case PatternKind::kAnd:
      if (VarsCertainlyBoundIn(condition, child->left())) {
        Count("filters_pushed");
        return Pattern::And(PushFilter(child->left(), condition),
                            child->right());
      }
      if (VarsCertainlyBoundIn(condition, child->right())) {
        Count("filters_pushed");
        return Pattern::And(child->left(),
                            PushFilter(child->right(), condition));
      }
      return Pattern::Filter(child, condition);
    case PatternKind::kOpt:
      if (VarsCertainlyBoundIn(condition, child->left())) {
        Count("filters_pushed");
        return Pattern::Opt(PushFilter(child->left(), condition),
                            child->right());
      }
      return Pattern::Filter(child, condition);
    case PatternKind::kMinus:
      if (VarsCertainlyBoundIn(condition, child->left())) {
        Count("filters_pushed");
        return Pattern::Minus(PushFilter(child->left(), condition),
                              child->right());
      }
      return Pattern::Filter(child, condition);
    case PatternKind::kSelect:
      if (VarsSubsetOf(condition, child->projection())) {
        Count("filters_pushed");
        return Pattern::Select(child->projection(),
                               PushFilter(child->child(), condition));
      }
      return Pattern::Filter(child, condition);
    default:
      return Pattern::Filter(child, condition);
  }
}

PatternPtr Optimizer::ReorderAnds(const PatternPtr& p) const {
  std::vector<PatternPtr> conjuncts;
  FlattenAnd(p, &conjuncts);
  if (conjuncts.size() <= 2) return p;
  Count("joins_reordered");

  auto estimate = [this](const PatternPtr& q) -> double {
    if (q->kind() == PatternKind::kTriple) {
      Count("stats_estimates");
      return stats_->EstimateCardinality(q->triple());
    }
    // Non-leaf conjuncts: assume graph-sized.
    return static_cast<double>(stats_->total_triples()) + 1.0;
  };

  std::vector<bool> used(conjuncts.size(), false);
  std::vector<PatternPtr> ordered;
  std::vector<VarId> bound;

  // Seed with the cheapest conjunct; then greedily prefer connected
  // conjuncts (max shared variables), breaking ties by estimate.
  for (size_t step = 0; step < conjuncts.size(); ++step) {
    int best = -1;
    size_t best_shared = 0;
    double best_cost = 0.0;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i]) continue;
      size_t shared = SharedVarCount(bound, conjuncts[i]->Vars());
      double cost = estimate(conjuncts[i]);
      bool better;
      if (best == -1) {
        better = true;
      } else if (step > 0 && shared != best_shared) {
        better = shared > best_shared;
      } else {
        better = cost < best_cost;
      }
      if (better) {
        best = static_cast<int>(i);
        best_shared = shared;
        best_cost = cost;
      }
    }
    used[best] = true;
    ordered.push_back(conjuncts[best]);
    std::vector<VarId> merged;
    std::set_union(bound.begin(), bound.end(),
                   conjuncts[best]->Vars().begin(),
                   conjuncts[best]->Vars().end(),
                   std::back_inserter(merged));
    bound.swap(merged);
  }
  return Pattern::AndAll(ordered);
}

}  // namespace rdfql
