#include "parser/lexer.h"

namespace rdfql {
namespace {

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '@' ||
         c == ':' || c == '+' || c == '-' || c == '/';
}

bool IsWordStart(char c) {
  // A bare-word IRI must not start with '.', which is the statement dot.
  return IsWordChar(c) && c != '.';
}

TokenKind KeywordKind(const std::string& word) {
  if (word == "AND") return TokenKind::kKwAnd;
  if (word == "UNION") return TokenKind::kKwUnion;
  if (word == "OPT") return TokenKind::kKwOpt;
  if (word == "MINUS") return TokenKind::kKwMinus;
  if (word == "FILTER") return TokenKind::kKwFilter;
  if (word == "SELECT") return TokenKind::kKwSelect;
  if (word == "WHERE") return TokenKind::kKwWhere;
  if (word == "NS") return TokenKind::kKwNs;
  if (word == "CONSTRUCT") return TokenKind::kKwConstruct;
  if (word == "bound") return TokenKind::kKwBound;
  if (word == "true") return TokenKind::kKwTrue;
  if (word == "false") return TokenKind::kKwFalse;
  return TokenKind::kIri;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kVar: return "variable";
    case TokenKind::kIri: return "IRI";
    case TokenKind::kKwAnd: return "AND";
    case TokenKind::kKwUnion: return "UNION";
    case TokenKind::kKwOpt: return "OPT";
    case TokenKind::kKwMinus: return "MINUS";
    case TokenKind::kKwFilter: return "FILTER";
    case TokenKind::kKwSelect: return "SELECT";
    case TokenKind::kKwWhere: return "WHERE";
    case TokenKind::kKwNs: return "NS";
    case TokenKind::kKwConstruct: return "CONSTRUCT";
    case TokenKind::kKwBound: return "bound";
    case TokenKind::kKwTrue: return "true";
    case TokenKind::kKwFalse: return "false";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNeq: return "'!='";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '(':
        out.push_back({TokenKind::kLParen, "", start});
        ++i;
        continue;
      case ')':
        out.push_back({TokenKind::kRParen, "", start});
        ++i;
        continue;
      case '{':
        out.push_back({TokenKind::kLBrace, "", start});
        ++i;
        continue;
      case '}':
        out.push_back({TokenKind::kRBrace, "", start});
        ++i;
        continue;
      case '=':
        out.push_back({TokenKind::kEq, "", start});
        ++i;
        continue;
      case '&':
        out.push_back({TokenKind::kAmp, "", start});
        ++i;
        continue;
      case '|':
        out.push_back({TokenKind::kPipe, "", start});
        ++i;
        continue;
      case '.':
        out.push_back({TokenKind::kDot, "", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          out.push_back({TokenKind::kNeq, "", start});
          i += 2;
        } else {
          out.push_back({TokenKind::kBang, "", start});
          ++i;
        }
        continue;
      case '?': {
        ++i;
        size_t word_start = i;
        while (i < n && IsWordChar(text[i])) ++i;
        if (i == word_start) {
          return Status::ParseError("empty variable name at offset " +
                                    std::to_string(start));
        }
        out.push_back({TokenKind::kVar,
                       std::string(text.substr(word_start, i - word_start)),
                       start});
        continue;
      }
      case '<': {
        ++i;
        size_t iri_start = i;
        while (i < n && text[i] != '>') ++i;
        if (i >= n) {
          return Status::ParseError("unterminated '<' IRI at offset " +
                                    std::to_string(start));
        }
        out.push_back({TokenKind::kIri,
                       std::string(text.substr(iri_start, i - iri_start)),
                       start});
        ++i;  // skip '>'
        continue;
      }
      default:
        break;
    }
    if (IsWordStart(c)) {
      while (i < n && IsWordChar(text[i])) ++i;
      std::string word(text.substr(start, i - start));
      TokenKind kind = KeywordKind(word);
      Token tok{kind, kind == TokenKind::kIri ? word : "", start};
      out.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  out.push_back({TokenKind::kEof, "", n});
  return out;
}

}  // namespace rdfql
