#ifndef RDFQL_PARSER_PARSER_H_
#define RDFQL_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "algebra/pattern.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfql {

/// Parses a graph pattern in the paper's syntax. Examples:
///
///   (?p founder ?o)
///   ((?o stands_for w) AND ((?p founder ?o) UNION (?p supporter ?o)))
///   (SELECT {?p} WHERE (?p founder ?o))
///   ((?x born Chile) OPT (?x email ?y))
///   NS((?x a b) UNION ((?x a b) AND (?x c ?y)))
///   ((?x a b) FILTER (bound(?y) | ?x = c))
///
/// Binary operators can be chained without parentheses; precedence from
/// tightest to loosest is FILTER (postfix), AND, OPT/MINUS, UNION, all
/// left-associative. New IRIs and variables are interned into `dict`.
Result<PatternPtr> ParsePattern(std::string_view text, Dictionary* dict);

/// The two components of a CONSTRUCT query, before the construct module
/// wraps them (Section 6.1): `CONSTRUCT { (t) (t) ... } WHERE pattern`.
struct ParsedConstruct {
  std::vector<TriplePattern> templ;
  PatternPtr where;
};

/// Parses a CONSTRUCT query in the paper's syntax.
Result<ParsedConstruct> ParseConstruct(std::string_view text,
                                       Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_PARSER_PARSER_H_
