#ifndef RDFQL_PARSER_LEXER_H_
#define RDFQL_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rdfql {

enum class TokenKind {
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kVar,        // ?name (text excludes the '?')
  kIri,        // bare word or <...> (text excludes the brackets)
  kKwAnd,
  kKwUnion,
  kKwOpt,
  kKwMinus,
  kKwFilter,
  kKwSelect,
  kKwWhere,
  kKwNs,
  kKwConstruct,
  kKwBound,
  kKwTrue,
  kKwFalse,
  kEq,         // =
  kNeq,        // !=
  kBang,       // !
  kAmp,        // &
  kPipe,       // |
  kDot,        // .
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   // payload for kVar / kIri
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes the paper-syntax query language. Keywords are case-sensitive
/// uppercase (AND, UNION, OPT, MINUS, FILTER, SELECT, WHERE, NS,
/// CONSTRUCT) plus lowercase `bound`, `true`, `false`; everything else
/// word-like is an IRI. `#` starts a comment to end of line.
Result<std::vector<Token>> Tokenize(std::string_view text);

/// Name of a token kind, for error messages.
const char* TokenKindName(TokenKind kind);

}  // namespace rdfql

#endif  // RDFQL_PARSER_LEXER_H_
