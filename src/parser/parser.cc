#include "parser/parser.h"

#include "parser/lexer.h"

namespace rdfql {
namespace {

/// Recursive-descent parser over the token stream. Grammar:
///
///   pattern   := union
///   union     := optchain ( UNION optchain )*
///   optchain  := andchain ( (OPT | MINUS) andchain )*
///   andchain  := postfix ( AND postfix )*
///   postfix   := primary ( FILTER condUnit )*
///   primary   := '(' triple-or-pattern ')' | NS '(' pattern ')'
///              | SELECT '{' var* '}' WHERE pattern
///   condUnit  := '(' cond ')' | atomCond          (* greedy single unit *)
///   cond      := condAnd ( '|' condAnd )*
///   condAnd   := condNot ( '&' condNot )*
///   condNot   := '!' condNot | '(' cond ')' | atomCond
///   atomCond  := bound '(' var ')' | true | false
///              | var ('=' | '!=') (var | iri)
class Parser {
 public:
  Parser(std::vector<Token> tokens, Dictionary* dict)
      : tokens_(std::move(tokens)), dict_(dict) {}

  Result<PatternPtr> ParseFullPattern() {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr p, ParseUnion());
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return p;
  }

  Result<ParsedConstruct> ParseFullConstruct() {
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kKwConstruct));
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    ParsedConstruct out;
    while (!At(TokenKind::kRBrace)) {
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      RDFQL_ASSIGN_OR_RETURN(TriplePattern t, ParseTripleBody());
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      out.templ.push_back(t);
      if (At(TokenKind::kDot)) Advance();  // optional separators
    }
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kKwWhere));
    RDFQL_ASSIGN_OR_RETURN(out.where, ParseUnion());
    RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kEof));
    return out;
  }

 private:
  // Nesting-depth guard: the parser recurses per '(' / NS( / SELECT level,
  // so a crafted `((((…))))` input would exhaust the C++ call stack long
  // before any semantic limit fires. 512 levels is far beyond any real
  // query yet well inside a default thread stack.
  static constexpr int kMaxDepth = 512;

  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    int* depth_;
  };

  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) {
      return Status::ParseError(
          "pattern nesting too deep (more than " +
          std::to_string(kMaxDepth) + " levels) at offset " +
          std::to_string(Peek().offset));
    }
    return Status::Ok();
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Status::ParseError(std::string("expected ") +
                                TokenKindName(kind) + ", found " +
                                TokenKindName(Peek().kind) + " at offset " +
                                std::to_string(Peek().offset));
    }
    Advance();
    return Status::Ok();
  }

  // Interning wrappers: the dictionary signals 31-bit id-space exhaustion
  // with an invalid id rather than aborting; surface it as a typed error.
  Result<VarId> InternVar(std::string_view name) {
    VarId v = dict_->InternVar(name);
    if (v == kInvalidVarId) {
      return Status::ResourceExhausted("variable id space exhausted");
    }
    return v;
  }

  Result<TermId> InternIri(std::string_view iri) {
    TermId id = dict_->InternIri(iri);
    if (id == kInvalidTermId) {
      return Status::ResourceExhausted("IRI id space exhausted");
    }
    return id;
  }

  Result<PatternPtr> ParseUnion() {
    // Every pattern-recursion cycle passes through here (ParsePrimary's
    // '(' / NS / SELECT branches all re-enter ParseUnion).
    RDFQL_RETURN_IF_ERROR(CheckDepth());
    DepthGuard guard(&depth_);
    RDFQL_ASSIGN_OR_RETURN(PatternPtr left, ParseOptChain());
    while (At(TokenKind::kKwUnion)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(PatternPtr right, ParseOptChain());
      left = Pattern::Union(left, right);
    }
    return left;
  }

  Result<PatternPtr> ParseOptChain() {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr left, ParseAndChain());
    while (At(TokenKind::kKwOpt) || At(TokenKind::kKwMinus)) {
      bool is_opt = At(TokenKind::kKwOpt);
      Advance();
      RDFQL_ASSIGN_OR_RETURN(PatternPtr right, ParseAndChain());
      left = is_opt ? Pattern::Opt(left, right)
                    : Pattern::Minus(left, right);
    }
    return left;
  }

  Result<PatternPtr> ParseAndChain() {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr left, ParsePostfix());
    while (At(TokenKind::kKwAnd)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(PatternPtr right, ParsePostfix());
      left = Pattern::And(left, right);
    }
    return left;
  }

  Result<PatternPtr> ParsePostfix() {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr p, ParsePrimary());
    while (At(TokenKind::kKwFilter)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr cond, ParseCondUnit());
      p = Pattern::Filter(p, cond);
    }
    return p;
  }

  Result<PatternPtr> ParsePrimary() {
    if (At(TokenKind::kKwNs)) {
      Advance();
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr inner, ParseUnion());
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Pattern::Ns(inner);
    }
    if (At(TokenKind::kKwSelect)) {
      Advance();
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
      std::vector<VarId> vars;
      while (At(TokenKind::kVar)) {
        RDFQL_ASSIGN_OR_RETURN(VarId v, InternVar(Advance().text));
        vars.push_back(v);
      }
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kKwWhere));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr inner, ParseUnion());
      return Pattern::Select(std::move(vars), inner);
    }
    if (At(TokenKind::kLParen)) {
      Advance();
      // Disambiguate triple vs grouped pattern: a pattern never starts with
      // a bare term, so a VAR or IRI here means a triple.
      if (At(TokenKind::kVar) || At(TokenKind::kIri)) {
        RDFQL_ASSIGN_OR_RETURN(TriplePattern t, ParseTripleBody());
        RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Pattern::MakeTriple(t);
      }
      RDFQL_ASSIGN_OR_RETURN(PatternPtr inner, ParseUnion());
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return Status::ParseError(
        std::string("expected a pattern, found ") +
        TokenKindName(Peek().kind) + " at offset " +
        std::to_string(Peek().offset));
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kVar)) {
      RDFQL_ASSIGN_OR_RETURN(VarId v, InternVar(Advance().text));
      return Term::Var(v);
    }
    if (At(TokenKind::kIri)) {
      RDFQL_ASSIGN_OR_RETURN(TermId id, InternIri(Advance().text));
      return Term::Iri(id);
    }
    return Status::ParseError(std::string("expected a term, found ") +
                              TokenKindName(Peek().kind) + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<TriplePattern> ParseTripleBody() {
    RDFQL_ASSIGN_OR_RETURN(Term s, ParseTerm());
    RDFQL_ASSIGN_OR_RETURN(Term p, ParseTerm());
    RDFQL_ASSIGN_OR_RETURN(Term o, ParseTerm());
    return TriplePattern(s, p, o);
  }

  // One FILTER operand: either a parenthesized condition or a single atom.
  Result<BuiltinPtr> ParseCondUnit() {
    if (At(TokenKind::kLParen)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr cond, ParseCondOr());
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return cond;
    }
    if (At(TokenKind::kBang)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr inner, ParseCondNot());
      return Builtin::Not(inner);
    }
    return ParseCondAtom();
  }

  Result<BuiltinPtr> ParseCondOr() {
    RDFQL_ASSIGN_OR_RETURN(BuiltinPtr left, ParseCondAnd());
    while (At(TokenKind::kPipe)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr right, ParseCondAnd());
      left = Builtin::Or(left, right);
    }
    return left;
  }

  Result<BuiltinPtr> ParseCondAnd() {
    RDFQL_ASSIGN_OR_RETURN(BuiltinPtr left, ParseCondNot());
    while (At(TokenKind::kAmp)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr right, ParseCondNot());
      left = Builtin::And(left, right);
    }
    return left;
  }

  Result<BuiltinPtr> ParseCondNot() {
    // Every condition-recursion cycle passes through here ('!' recurses
    // directly, '(' via ParseCondOr → ParseCondAnd → ParseCondNot).
    RDFQL_RETURN_IF_ERROR(CheckDepth());
    DepthGuard guard(&depth_);
    if (At(TokenKind::kBang)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr inner, ParseCondNot());
      return Builtin::Not(inner);
    }
    if (At(TokenKind::kLParen)) {
      Advance();
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr cond, ParseCondOr());
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return cond;
    }
    return ParseCondAtom();
  }

  Result<BuiltinPtr> ParseCondAtom() {
    if (At(TokenKind::kKwTrue)) {
      Advance();
      return Builtin::True();
    }
    if (At(TokenKind::kKwFalse)) {
      Advance();
      return Builtin::False();
    }
    if (At(TokenKind::kKwBound)) {
      Advance();
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      if (!At(TokenKind::kVar)) {
        return Status::ParseError("expected variable inside bound()");
      }
      RDFQL_ASSIGN_OR_RETURN(VarId v, InternVar(Advance().text));
      RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return Builtin::Bound(v);
    }
    if (At(TokenKind::kVar)) {
      RDFQL_ASSIGN_OR_RETURN(VarId v, InternVar(Advance().text));
      bool negated = At(TokenKind::kNeq);
      if (!negated) {
        RDFQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      } else {
        Advance();
      }
      BuiltinPtr eq;
      if (At(TokenKind::kVar)) {
        RDFQL_ASSIGN_OR_RETURN(VarId rhs, InternVar(Advance().text));
        eq = Builtin::EqVars(v, rhs);
      } else if (At(TokenKind::kIri)) {
        RDFQL_ASSIGN_OR_RETURN(TermId rhs, InternIri(Advance().text));
        eq = Builtin::EqConst(v, rhs);
      } else {
        return Status::ParseError("expected term on right of '='");
      }
      return negated ? Builtin::Not(eq) : eq;
    }
    return Status::ParseError(
        std::string("expected a filter condition, found ") +
        TokenKindName(Peek().kind) + " at offset " +
        std::to_string(Peek().offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  Dictionary* dict_;
};

}  // namespace

Result<PatternPtr> ParsePattern(std::string_view text, Dictionary* dict) {
  RDFQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict);
  return parser.ParseFullPattern();
}

Result<ParsedConstruct> ParseConstruct(std::string_view text,
                                       Dictionary* dict) {
  RDFQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), dict);
  return parser.ParseFullConstruct();
}

}  // namespace rdfql
