#include "eval/reference_evaluator.h"

#include <optional>
#include <vector>

#include "obs/tracer.h"
#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

using Rows = std::vector<Mapping>;

// Extends `m` with term := value; returns nullopt on clash.
std::optional<Mapping> Bind(Mapping m, Term term, TermId value) {
  if (term.is_iri()) {
    return term.iri() == value ? std::optional<Mapping>(m) : std::nullopt;
  }
  std::optional<TermId> existing = m.Get(term.var());
  if (existing.has_value()) {
    if (*existing != value) return std::nullopt;
    return m;
  }
  m.Set(term.var(), value);
  return m;
}

Rows EvalTriple(const Graph& g, const TriplePattern& t) {
  Rows out;
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->index_probes += g.size();
  }
  for (const Triple& triple : g.triples()) {
    std::optional<Mapping> m = Bind(Mapping(), t.s, triple.s);
    if (m) m = Bind(*m, t.p, triple.p);
    if (m) m = Bind(*m, t.o, triple.o);
    if (m) out.push_back(*m);
  }
  return out;
}

Rows Eval(const Graph& g, const Pattern& p);

Rows Join(const Rows& a, const Rows& b) {
  Rows out;
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->join_probes += static_cast<uint64_t>(a.size()) * b.size();
  }
  for (const Mapping& m1 : a) {
    for (const Mapping& m2 : b) {
      if (m1.CompatibleWith(m2)) out.push_back(m1.UnionWith(m2));
    }
  }
  return out;
}

Rows Difference(const Rows& a, const Rows& b) {
  Rows out;
  uint64_t pairs = 0;
  for (const Mapping& m1 : a) {
    bool clash = false;
    for (const Mapping& m2 : b) {
      ++pairs;
      if (m1.CompatibleWith(m2)) {
        clash = true;
        break;
      }
    }
    if (!clash) out.push_back(m1);
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) oc->join_probes += pairs;
  return out;
}

Rows Eval(const Graph& g, const Pattern& p) {
  // Same cooperative contract as the production evaluator: once a token
  // installed by an enclosing scope trips, every node yields nothing and
  // the caller must treat the result as void (see ReferenceEval's header).
  if (!CooperativeCheckpoint()) [[unlikely]] {
    return Rows();
  }
  switch (p.kind()) {
    case PatternKind::kTriple:
      return EvalTriple(g, p.triple());
    case PatternKind::kAnd:
      return Join(Eval(g, *p.left()), Eval(g, *p.right()));
    case PatternKind::kUnion: {
      Rows out = Eval(g, *p.left());
      Rows right = Eval(g, *p.right());
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case PatternKind::kOpt: {
      Rows l = Eval(g, *p.left());
      Rows r = Eval(g, *p.right());
      Rows out = Join(l, r);
      Rows bare = Difference(l, r);
      out.insert(out.end(), bare.begin(), bare.end());
      return out;
    }
    case PatternKind::kMinus:
      return Difference(Eval(g, *p.left()), Eval(g, *p.right()));
    case PatternKind::kFilter: {
      Rows out;
      for (const Mapping& m : Eval(g, *p.child())) {
        if (p.condition()->Eval(m)) out.push_back(m);
      }
      return out;
    }
    case PatternKind::kSelect: {
      Rows out;
      for (const Mapping& m : Eval(g, *p.child())) {
        out.push_back(m.RestrictTo(p.projection()));
      }
      return out;
    }
    case PatternKind::kNs: {
      Rows in = Eval(g, *p.child());
      Rows out;
      uint64_t pairs = 0;
      for (size_t i = 0; i < in.size(); ++i) {
        bool subsumed = false;
        for (size_t j = 0; j < in.size(); ++j) {
          if (i == j) continue;
          ++pairs;
          if (in[i].ProperlySubsumedBy(in[j])) {
            subsumed = true;
            break;
          }
        }
        if (!subsumed) out.push_back(in[i]);
      }
      if (OpCounters* oc = ScopedOpCounters::Current()) {
        oc->ns_pairs_compared += pairs;
      }
      return out;
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return Rows();
}

}  // namespace

MappingSet ReferenceEval(const Graph& graph, const PatternPtr& pattern,
                         Tracer* tracer) {
  RDFQL_CHECK(pattern != nullptr);
  if (tracer == nullptr) return MappingSet::FromList(Eval(graph, *pattern));
  ScopedSpan span(tracer, "REFERENCE");
  OpCounters counters;
  MappingSet result;
  {
    ScopedOpCounters install(&counters);
    result = MappingSet::FromList(Eval(graph, *pattern));
  }
  counters.mappings_out = result.size();
  counters.AttachTo(&span);
  return result;
}

}  // namespace rdfql
