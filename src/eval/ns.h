#ifndef RDFQL_EVAL_NS_H_
#define RDFQL_EVAL_NS_H_

#include "algebra/mapping_set.h"

namespace rdfql {

class ThreadPool;

/// ⟦P⟧max: removes every mapping properly subsumed by another mapping of
/// the set (the semantics of the NS operator, Section 5.1).
///
/// Reference implementation: O(n²) pairwise subsumption tests.
MappingSet RemoveSubsumedNaive(const MappingSet& input);

/// Optimized implementation: buckets mappings by domain, then for each
/// strict superset pair of domains (D ⊊ D') probes a hash set of the
/// D-projections of bucket D'. When the number of distinct domains is small
/// (the common case — domains come from the pattern's OPT/UNION structure),
/// this is near-linear instead of quadratic.
///
/// With a non-null `pool`, candidate buckets are distributed across the
/// pool's threads — each worker decides subsumption for its own buckets
/// against the (read-only) superset buckets into a private dead set, and
/// the final pass filters the input in its original order, so the result
/// and the `ns_pairs_compared` count are identical to the serial run.
MappingSet RemoveSubsumedBucketed(const MappingSet& input,
                                  ThreadPool* pool = nullptr);

/// True iff no mapping of the set is properly subsumed by another
/// (i.e. Ω = Ωmax; used by the subsumption-freeness testers).
bool IsSubsumptionFree(const MappingSet& input);

}  // namespace rdfql

#endif  // RDFQL_EVAL_NS_H_
