#ifndef RDFQL_EVAL_WD_EVALUATOR_H_
#define RDFQL_EVAL_WD_EVALUATOR_H_

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfql {

/// Specialized top-down evaluation of *well-designed* patterns over their
/// pattern tree (the algorithmic counterpart of Proposition 5.6 and the
/// well-designed-pattern-tree literature the paper builds on, [23]/[8]).
///
/// Instead of materializing every OPT operand and running ⟕ = ⋈ ∪ ∖, the
/// evaluator walks the tree once per candidate answer: each node's
/// AND/FILTER block is evaluated with the parent's bindings *seeded into
/// the graph-index probes* (sideways information passing), and a child
/// that yields no compatible extension simply contributes nothing — which
/// is exactly OPT's semantics on well-designed inputs, where a child
/// variable shared with the outside must occur in the parent block.
///
/// With a non-null `tracer` the whole walk is recorded under one
/// "WD-TOPDOWN" span carrying `index_probes` / `join_probes` /
/// `mappings_out`; with a non-null `metrics` the same counts land under
/// `wd_eval.*` (the walk is per-seed recursive, so per-tree-node spans
/// would explode — aggregate counters are the useful granularity here).
///
/// Fails with InvalidArgument when the pattern is not well designed.
Result<MappingSet> EvalWellDesignedTopDown(const Graph& graph,
                                           const PatternPtr& pattern,
                                           Tracer* tracer = nullptr,
                                           MetricsRegistry* metrics = nullptr);

}  // namespace rdfql

#endif  // RDFQL_EVAL_WD_EVALUATOR_H_
