#include "eval/evaluator.h"

#include "algebra/pattern_printer.h"
#include "eval/ns.h"
#include "util/check.h"

namespace rdfql {

const char* PatternOpName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kTriple:
      return "TRIPLE";
    case PatternKind::kAnd:
      return "AND";
    case PatternKind::kUnion:
      return "UNION";
    case PatternKind::kOpt:
      return "OPT";
    case PatternKind::kMinus:
      return "MINUS";
    case PatternKind::kFilter:
      return "FILTER";
    case PatternKind::kSelect:
      return "SELECT";
    case PatternKind::kNs:
      return "NS";
  }
  return "?";
}

MappingSet Evaluator::Eval(const PatternPtr& pattern) const {
  RDFQL_CHECK(pattern != nullptr);
  return EvalNode(*pattern);
}

MappingSet Evaluator::EvalMax(const PatternPtr& pattern) const {
  return ApplyNs(Eval(pattern));
}

MappingSet Evaluator::ApplyNs(const MappingSet& input) const {
  return options_.ns == EvalOptions::NsAlgo::kBucketed
             ? RemoveSubsumedBucketed(input)
             : RemoveSubsumedNaive(input);
}

MappingSet Evaluator::IndexJoinWithTriple(const MappingSet& left,
                                          const TriplePattern& t) const {
  MappingSet out;
  uint64_t probes = 0;
  uint64_t pairs = 0;
  for (const Mapping& m : left) {
    // Substitute the bound variables of µ into the triple pattern and
    // probe the graph index with the resulting prefix.
    auto position = [&m](Term term) -> TermId {
      if (term.is_iri()) return term.iri();
      std::optional<TermId> v = m.Get(term.var());
      return v.has_value() ? *v : kInvalidTermId;
    };
    ++probes;
    matcher_(
        position(t.s), position(t.p), position(t.o),
        [&t, &m, &out, &pairs](const Triple& match) {
          ++pairs;
          Mapping extended = m;
          bool ok = true;
          auto bind = [&extended, &ok](Term term, TermId value) {
            if (!term.is_var() || !ok) return;
            std::optional<TermId> existing = extended.Get(term.var());
            if (existing.has_value()) {
              if (*existing != value) ok = false;
            } else {
              extended.Set(term.var(), value);
            }
          };
          bind(t.s, match.s);
          bind(t.p, match.p);
          bind(t.o, match.o);
          if (ok) out.Add(extended);
        });
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->index_probes += probes;
    oc->join_probes += pairs;
  }
  return out;
}

MappingSet Evaluator::EvalTriple(const TriplePattern& t) const {
  MappingSet out;
  TermId s = t.s.is_iri() ? t.s.iri() : kInvalidTermId;
  TermId p = t.p.is_iri() ? t.p.iri() : kInvalidTermId;
  TermId o = t.o.is_iri() ? t.o.iri() : kInvalidTermId;

  matcher_(s, p, o, [&t, &out](const Triple& match) {
    // Build µ with dom(µ) = var(t); repeated variables must agree.
    Mapping m;
    bool ok = true;
    auto bind = [&m, &ok](Term term, TermId value) {
      if (!term.is_var() || !ok) return;
      std::optional<TermId> existing = m.Get(term.var());
      if (existing.has_value()) {
        if (*existing != value) ok = false;
      } else {
        m.Set(term.var(), value);
      }
    };
    bind(t.s, match.s);
    bind(t.p, match.p);
    bind(t.o, match.o);
    if (ok) out.Add(m);
  });
  if (OpCounters* oc = ScopedOpCounters::Current()) ++oc->index_probes;
  return out;
}

MappingSet Evaluator::EvalNode(const Pattern& p) const {
  if (!options_.observed()) [[likely]] {
    return EvalNodeImpl(p);
  }
  return EvalNodeObserved(p);
}

std::string Evaluator::NodeDetail(const Pattern& p) const {
  const Dictionary* dict = options_.trace_dict;
  if (dict == nullptr) return "";
  switch (p.kind()) {
    case PatternKind::kTriple:
      return TriplePatternToString(p.triple(), *dict);
    case PatternKind::kFilter:
      return p.condition()->ToString(*dict);
    case PatternKind::kSelect: {
      std::string vars;
      for (VarId v : p.projection()) vars += " ?" + dict->VarName(v);
      return "{" + (vars.empty() ? "" : vars.substr(1)) + "}";
    }
    default:
      return "";
  }
}

MappingSet Evaluator::EvalNodeObserved(const Pattern& p) const {
  ScopedSpan span(options_.tracer, PatternOpName(p.kind()), NodeDetail(p));
  OpCounters counters;
  MappingSet result;
  {
    // Children re-enter EvalNodeObserved and install their own sink, so
    // `counters` sees exactly this node's own work.
    ScopedOpCounters install(&counters);
    result = EvalNodeImpl(p);
  }
  counters.mappings_out = result.size();
  counters.AttachTo(&span);
  if (MetricsRegistry* m = options_.metrics) {
    m->GetCounter("eval.nodes")->Inc();
    m->GetCounter("eval.join_probes")->Inc(counters.join_probes);
    m->GetCounter("eval.index_probes")->Inc(counters.index_probes);
    m->GetCounter("eval.ns_pairs_compared")->Inc(counters.ns_pairs_compared);
    m->GetCounter("eval.filter_evals")->Inc(counters.filter_evals);
    m->GetCounter("eval.mappings_out")->Inc(counters.mappings_out);
  }
  return result;
}

MappingSet Evaluator::EvalNodeImpl(const Pattern& p) const {
  switch (p.kind()) {
    case PatternKind::kTriple:
      return EvalTriple(p.triple());
    case PatternKind::kAnd: {
      MappingSet l = EvalNode(*p.left());
      if (options_.join == EvalOptions::Join::kIndexNestedLoop &&
          p.right()->kind() == PatternKind::kTriple) {
        return IndexJoinWithTriple(l, p.right()->triple());
      }
      MappingSet r = EvalNode(*p.right());
      return options_.join == EvalOptions::Join::kNestedLoop
                 ? MappingSet::JoinNestedLoop(l, r)
                 : MappingSet::Join(l, r);
    }
    case PatternKind::kUnion:
      return MappingSet::UnionSets(EvalNode(*p.left()), EvalNode(*p.right()));
    case PatternKind::kOpt: {
      MappingSet l = EvalNode(*p.left());
      // The difference half of ⟕ = ⋈ ∪ ∖ needs ⟦P2⟧G materialized whatever
      // the join strategy, so the index-join shortcut never pays here (see
      // the note on EvalOptions::Join::kIndexNestedLoop in evaluator.h).
      MappingSet r = EvalNode(*p.right());
      MappingSet joined = options_.join == EvalOptions::Join::kNestedLoop
                              ? MappingSet::JoinNestedLoop(l, r)
                              : MappingSet::Join(l, r);
      return MappingSet::UnionSets(joined, MappingSet::Minus(l, r));
    }
    case PatternKind::kMinus:
      return MappingSet::Minus(EvalNode(*p.left()), EvalNode(*p.right()));
    case PatternKind::kFilter: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        if (p.condition()->Eval(m)) out.Add(m);
      }
      if (OpCounters* oc = ScopedOpCounters::Current()) {
        oc->filter_evals += in.size();
      }
      return out;
    }
    case PatternKind::kSelect: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        out.Add(m.RestrictTo(p.projection()));
      }
      return out;
    }
    case PatternKind::kNs:
      return ApplyNs(EvalNode(*p.child()));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return MappingSet();
}

MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options) {
  return Evaluator(&graph, options).Eval(pattern);
}

}  // namespace rdfql
