#include "eval/evaluator.h"

#include "eval/ns.h"
#include "util/check.h"

namespace rdfql {

MappingSet Evaluator::Eval(const PatternPtr& pattern) const {
  RDFQL_CHECK(pattern != nullptr);
  return EvalNode(*pattern);
}

MappingSet Evaluator::EvalMax(const PatternPtr& pattern) const {
  return ApplyNs(Eval(pattern));
}

MappingSet Evaluator::ApplyNs(const MappingSet& input) const {
  return options_.ns == EvalOptions::NsAlgo::kBucketed
             ? RemoveSubsumedBucketed(input)
             : RemoveSubsumedNaive(input);
}

MappingSet Evaluator::IndexJoinWithTriple(const MappingSet& left,
                                          const TriplePattern& t) const {
  MappingSet out;
  for (const Mapping& m : left) {
    // Substitute the bound variables of µ into the triple pattern and
    // probe the graph index with the resulting prefix.
    auto position = [&m](Term term) -> TermId {
      if (term.is_iri()) return term.iri();
      std::optional<TermId> v = m.Get(term.var());
      return v.has_value() ? *v : kInvalidTermId;
    };
    matcher_(
        position(t.s), position(t.p), position(t.o),
        [&t, &m, &out](const Triple& match) {
          Mapping extended = m;
          bool ok = true;
          auto bind = [&extended, &ok](Term term, TermId value) {
            if (!term.is_var() || !ok) return;
            std::optional<TermId> existing = extended.Get(term.var());
            if (existing.has_value()) {
              if (*existing != value) ok = false;
            } else {
              extended.Set(term.var(), value);
            }
          };
          bind(t.s, match.s);
          bind(t.p, match.p);
          bind(t.o, match.o);
          if (ok) out.Add(extended);
        });
  }
  return out;
}

MappingSet Evaluator::EvalTriple(const TriplePattern& t) const {
  MappingSet out;
  TermId s = t.s.is_iri() ? t.s.iri() : kInvalidTermId;
  TermId p = t.p.is_iri() ? t.p.iri() : kInvalidTermId;
  TermId o = t.o.is_iri() ? t.o.iri() : kInvalidTermId;

  matcher_(s, p, o, [&t, &out](const Triple& match) {
    // Build µ with dom(µ) = var(t); repeated variables must agree.
    Mapping m;
    bool ok = true;
    auto bind = [&m, &ok](Term term, TermId value) {
      if (!term.is_var() || !ok) return;
      std::optional<TermId> existing = m.Get(term.var());
      if (existing.has_value()) {
        if (*existing != value) ok = false;
      } else {
        m.Set(term.var(), value);
      }
    };
    bind(t.s, match.s);
    bind(t.p, match.p);
    bind(t.o, match.o);
    if (ok) out.Add(m);
  });
  return out;
}

MappingSet Evaluator::EvalNode(const Pattern& p) const {
  switch (p.kind()) {
    case PatternKind::kTriple:
      return EvalTriple(p.triple());
    case PatternKind::kAnd: {
      MappingSet l = EvalNode(*p.left());
      if (options_.join == EvalOptions::Join::kIndexNestedLoop &&
          p.right()->kind() == PatternKind::kTriple) {
        return IndexJoinWithTriple(l, p.right()->triple());
      }
      MappingSet r = EvalNode(*p.right());
      return options_.join == EvalOptions::Join::kNestedLoop
                 ? MappingSet::JoinNestedLoop(l, r)
                 : MappingSet::Join(l, r);
    }
    case PatternKind::kUnion:
      return MappingSet::UnionSets(EvalNode(*p.left()), EvalNode(*p.right()));
    case PatternKind::kOpt: {
      MappingSet l = EvalNode(*p.left());
      MappingSet r = EvalNode(*p.right());
      // OPT needs the materialized right side for the difference anyway.
      MappingSet joined = options_.join == EvalOptions::Join::kNestedLoop
                              ? MappingSet::JoinNestedLoop(l, r)
                              : MappingSet::Join(l, r);
      return MappingSet::UnionSets(joined, MappingSet::Minus(l, r));
    }
    case PatternKind::kMinus:
      return MappingSet::Minus(EvalNode(*p.left()), EvalNode(*p.right()));
    case PatternKind::kFilter: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        if (p.condition()->Eval(m)) out.Add(m);
      }
      return out;
    }
    case PatternKind::kSelect: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        out.Add(m.RestrictTo(p.projection()));
      }
      return out;
    }
    case PatternKind::kNs:
      return ApplyNs(EvalNode(*p.child()));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return MappingSet();
}

MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options) {
  return Evaluator(&graph, options).Eval(pattern);
}

}  // namespace rdfql
