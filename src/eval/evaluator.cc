#include "eval/evaluator.h"

#include <optional>

#include "algebra/pattern_printer.h"
#include "eval/ns.h"
#include "util/check.h"

namespace rdfql {

const char* PatternOpName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kTriple:
      return "TRIPLE";
    case PatternKind::kAnd:
      return "AND";
    case PatternKind::kUnion:
      return "UNION";
    case PatternKind::kOpt:
      return "OPT";
    case PatternKind::kMinus:
      return "MINUS";
    case PatternKind::kFilter:
      return "FILTER";
    case PatternKind::kSelect:
      return "SELECT";
    case PatternKind::kNs:
      return "NS";
  }
  return "?";
}

void Evaluator::InitPool() {
  if (options_.threads <= 1) return;
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
    return;
  }
  owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
  pool_ = owned_pool_.get();
}

MappingSet Evaluator::Eval(const PatternPtr& pattern) const {
  RDFQL_CHECK(pattern != nullptr);
  // Install only a non-null accountant: options_.accountant == nullptr must
  // not shadow one a caller put up around this evaluation.
  std::optional<ScopedAccounting> install;
  if (options_.accountant != nullptr) install.emplace(options_.accountant);
  MappingSet result = EvalNode(*pattern);
  result.DetachAccounting();
  return result;
}

MappingSet Evaluator::EvalMax(const PatternPtr& pattern) const {
  RDFQL_CHECK(pattern != nullptr);
  std::optional<ScopedAccounting> install;
  if (options_.accountant != nullptr) install.emplace(options_.accountant);
  MappingSet result = ApplyNs(EvalNode(*pattern));
  result.DetachAccounting();
  return result;
}

Result<MappingSet> Evaluator::EvalChecked(const PatternPtr& pattern) const {
  return EvalGoverned(pattern, /*max=*/false);
}

Result<MappingSet> Evaluator::EvalMaxChecked(const PatternPtr& pattern) const {
  return EvalGoverned(pattern, /*max=*/true);
}

Result<MappingSet> Evaluator::EvalGoverned(const PatternPtr& pattern,
                                           bool max) const {
  RDFQL_CHECK(pattern != nullptr);
  if (!options_.governed()) {
    // Nothing to enforce: take the plain path (no token install, so the
    // per-operator checkpoints stay a null test).
    return max ? EvalMax(pattern) : Eval(pattern);
  }
  CancellationToken local_token;
  CancellationToken* token =
      options_.cancel != nullptr ? options_.cancel : &local_token;
  if (token->cancelled()) return token->status();
  Deadline deadline = options_.deadline;
  if (options_.limits.max_wall_ms != 0) {
    Deadline budget = Deadline::AfterMs(options_.limits.max_wall_ms);
    if (budget.SoonerThan(deadline)) deadline = budget;
  }
  token->ArmDeadline(deadline);
  // Live-memory caps ride on the accountant; conjure a private one when the
  // caller wants caps but no figures.
  bool memory_caps = options_.limits.max_live_mappings != 0 ||
                     options_.limits.max_bytes != 0;
  ResourceAccountant local_acct;
  ResourceAccountant* acct = options_.accountant;
  if (acct == nullptr && memory_caps) acct = &local_acct;
  if (acct != nullptr && memory_caps) {
    acct->ArmCaps(options_.limits.max_live_mappings, options_.limits.max_bytes,
                  token);
  }
  std::optional<ScopedAccounting> install_acct;
  if (acct != nullptr) install_acct.emplace(acct);
  ScopedCancellation install_token(token);
  MappingSet result = max ? ApplyNs(EvalNode(*pattern)) : EvalNode(*pattern);
  if (acct != nullptr) acct->DisarmCaps();
  if (token->cancelled()) return token->status();
  result.DetachAccounting();
  return result;
}

MappingSet Evaluator::ApplyNs(const MappingSet& input) const {
  return options_.ns == EvalOptions::NsAlgo::kBucketed
             ? RemoveSubsumedBucketed(input, pool_)
             : RemoveSubsumedNaive(input);
}

void Evaluator::EvalBranches(const Pattern& left, const Pattern& right,
                             MappingSet* l, MappingSet* r) const {
  // Callers only reach here when ParallelSubtrees() holds; the guard is
  // kept as a safety net. Keeping the serial fallback at the call sites
  // (not here) matters for stack depth: UCQ expansions produce patterns
  // tens of thousands of nodes deep, and an extra frame per level is the
  // difference between fitting in the stack and overflowing it.
  if (pool_ == nullptr || options_.tracer != nullptr) {
    *l = EvalNode(left);
    *r = EvalNode(right);
    return;
  }
  // A branch that lands on a worker thread starts with no counter sink
  // installed there; give each branch a private sink mirroring the calling
  // thread's, and merge after the join so totals match the serial run.
  OpCounters* parent_sink = ScopedOpCounters::Current();
  OpCounters branch_counters[2];
  pool_->ParallelFor(2, [&](size_t i) {
    ScopedOpCounters install(parent_sink != nullptr ? &branch_counters[i]
                                                    : nullptr);
    if (i == 0) {
      *l = EvalNode(left);
    } else {
      *r = EvalNode(right);
    }
  });
  if (parent_sink != nullptr) {
    parent_sink->MergeFrom(branch_counters[0]);
    parent_sink->MergeFrom(branch_counters[1]);
  }
}

MappingSet Evaluator::EvalUnionSpine(const Pattern& p) const {
  // In-order leaves of the maximal UNION subtree rooted at p, collected
  // with an explicit stack (the spine can be deeper than the call stack).
  std::vector<const Pattern*> disjuncts;
  std::vector<const Pattern*> walk{&p};
  while (!walk.empty()) {
    const Pattern* cur = walk.back();
    walk.pop_back();
    if (cur->kind() == PatternKind::kUnion) {
      walk.push_back(cur->right().get());
      walk.push_back(cur->left().get());
    } else {
      disjuncts.push_back(cur);
    }
  }
  std::vector<MappingSet> parts(disjuncts.size());
  if (ParallelSubtrees() && disjuncts.size() > 1) {
    OpCounters* parent_sink = ScopedOpCounters::Current();
    std::vector<OpCounters> sinks(parent_sink != nullptr ? disjuncts.size()
                                                         : 0);
    pool_->ParallelFor(disjuncts.size(), [&](size_t i) {
      ScopedOpCounters install(parent_sink != nullptr ? &sinks[i] : nullptr);
      parts[i] = EvalNode(*disjuncts[i]);
    });
    for (const OpCounters& s : sinks) parent_sink->MergeFrom(s);
  } else {
    for (size_t i = 0; i < disjuncts.size(); ++i) {
      parts[i] = EvalNode(*disjuncts[i]);
    }
  }
  // Folding left to right with the deduplicating Add reproduces exactly
  // what the recursive UnionSets nest would: first occurrence wins, in
  // disjunct order.
  MappingSet out;
  for (const MappingSet& part : parts) {
    for (const Mapping& m : part) out.Add(m);
  }
  return out;
}

MappingSet Evaluator::IndexJoinWithTriple(const MappingSet& left,
                                          const TriplePattern& t) const {
  MappingSet out;
  uint64_t probes = 0;
  uint64_t pairs = 0;
  uint64_t visited = 0;
  for (const Mapping& m : left) {
    if ((++visited & 1023u) == 0 && !CooperativeCheckpoint()) break;
    // Substitute the bound variables of µ into the triple pattern and
    // probe the graph index with the resulting prefix.
    auto position = [&m](Term term) -> TermId {
      if (term.is_iri()) return term.iri();
      std::optional<TermId> v = m.Get(term.var());
      return v.has_value() ? *v : kInvalidTermId;
    };
    ++probes;
    matcher_(
        position(t.s), position(t.p), position(t.o),
        [&t, &m, &out, &pairs](const Triple& match) {
          ++pairs;
          Mapping extended = m;
          bool ok = true;
          auto bind = [&extended, &ok](Term term, TermId value) {
            if (!term.is_var() || !ok) return;
            std::optional<TermId> existing = extended.Get(term.var());
            if (existing.has_value()) {
              if (*existing != value) ok = false;
            } else {
              extended.Set(term.var(), value);
            }
          };
          bind(t.s, match.s);
          bind(t.p, match.p);
          bind(t.o, match.o);
          if (ok) out.Add(extended);
        });
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->index_probes += probes;
    oc->join_probes += pairs;
  }
  return out;
}

MappingSet Evaluator::EvalTriple(const TriplePattern& t) const {
  MappingSet out;
  TermId s = t.s.is_iri() ? t.s.iri() : kInvalidTermId;
  TermId p = t.p.is_iri() ? t.p.iri() : kInvalidTermId;
  TermId o = t.o.is_iri() ? t.o.iri() : kInvalidTermId;

  matcher_(s, p, o, [&t, &out](const Triple& match) {
    // Build µ with dom(µ) = var(t); repeated variables must agree.
    Mapping m;
    bool ok = true;
    auto bind = [&m, &ok](Term term, TermId value) {
      if (!term.is_var() || !ok) return;
      std::optional<TermId> existing = m.Get(term.var());
      if (existing.has_value()) {
        if (*existing != value) ok = false;
      } else {
        m.Set(term.var(), value);
      }
    };
    bind(t.s, match.s);
    bind(t.p, match.p);
    bind(t.o, match.o);
    if (ok) out.Add(m);
  });
  if (OpCounters* oc = ScopedOpCounters::Current()) ++oc->index_probes;
  return out;
}

MappingSet Evaluator::EvalNode(const Pattern& p) const {
  // Mirrors the span labels into the sampling profiler's tag stack, so
  // folded stacks read Engine::Query;Eval;AND;TRIPLE just like a Chrome
  // trace. With a tracer attached, ScopedSpan (EvalNodeObserved) pushes
  // the same tag instead — gating here avoids AND;AND double frames.
  ProfileFrame profile_frame(
      profiled_ && options_.tracer == nullptr ? PatternOpName(p.kind())
                                              : nullptr);
  if (!options_.observed()) [[likely]] {
    return EvalNodeImpl(p);
  }
  return EvalNodeObserved(p);
}

std::string Evaluator::NodeDetail(const Pattern& p) const {
  const Dictionary* dict = options_.trace_dict;
  if (dict == nullptr) return "";
  switch (p.kind()) {
    case PatternKind::kTriple:
      return TriplePatternToString(p.triple(), *dict);
    case PatternKind::kFilter:
      return p.condition()->ToString(*dict);
    case PatternKind::kSelect: {
      std::string vars;
      for (VarId v : p.projection()) vars += " ?" + dict->VarName(v);
      return "{" + (vars.empty() ? "" : vars.substr(1)) + "}";
    }
    default:
      return "";
  }
}

MappingSet Evaluator::EvalNodeObserved(const Pattern& p) const {
  ScopedSpan span(options_.tracer, PatternOpName(p.kind()), NodeDetail(p));
  OpCounters counters;
  MappingSet result;
  {
    // Children re-enter EvalNodeObserved and install their own sink, so
    // `counters` sees exactly this node's own work.
    ScopedOpCounters install(&counters);
    result = EvalNodeImpl(p);
  }
  counters.mappings_out = result.size();
  counters.AttachTo(&span);
  if (MetricsRegistry* m = options_.metrics) {
    m->GetCounter("eval.nodes")->Inc();
    m->GetCounter("eval.join_probes")->Inc(counters.join_probes);
    m->GetCounter("eval.index_probes")->Inc(counters.index_probes);
    m->GetCounter("eval.ns_pairs_compared")->Inc(counters.ns_pairs_compared);
    m->GetCounter("eval.filter_evals")->Inc(counters.filter_evals);
    m->GetCounter("eval.mappings_out")->Inc(counters.mappings_out);
  }
  return result;
}

MappingSet Evaluator::EvalNodeImpl(const Pattern& p) const {
  // The per-operator cooperative checkpoint. Ungoverned queries pay one
  // relaxed load + null test here (bench_limits_overhead keeps it honest);
  // once a token trips, every remaining operator short-circuits to an empty
  // set and EvalChecked turns the trip into the query's error.
  if (!CooperativeCheckpoint()) [[unlikely]] {
    return MappingSet();
  }
  switch (p.kind()) {
    case PatternKind::kTriple:
      return EvalTriple(p.triple());
    case PatternKind::kAnd: {
      if (options_.join == EvalOptions::Join::kIndexNestedLoop &&
          p.right()->kind() == PatternKind::kTriple) {
        MappingSet l = EvalNode(*p.left());
        ProfileFrame join_frame(profiled_ ? "JoinIndexNested" : nullptr);
        return IndexJoinWithTriple(l, p.right()->triple());
      }
      MappingSet l, r;
      if (ParallelSubtrees()) {
        EvalBranches(*p.left(), *p.right(), &l, &r);
      } else {
        l = EvalNode(*p.left());
        r = EvalNode(*p.right());
      }
      if (options_.join == EvalOptions::Join::kNestedLoop) {
        ProfileFrame join_frame(profiled_ ? "JoinNested" : nullptr);
        return MappingSet::JoinNestedLoop(l, r);
      }
      ProfileFrame join_frame(profiled_ ? "JoinHash" : nullptr);
      return MappingSet::Join(l, r, pool_);
    }
    case PatternKind::kUnion: {
      // The unobserved path flattens the whole UNION spine (stack safety
      // on deep UCQ chains + multi-way parallel disjuncts); the observed
      // path recurses two-way so each UNION node keeps its own span.
      if (!options_.observed()) {
        return EvalUnionSpine(p);
      }
      MappingSet l = EvalNode(*p.left());
      MappingSet r = EvalNode(*p.right());
      return MappingSet::UnionSets(l, r);
    }
    case PatternKind::kOpt: {
      // The difference half of ⟕ = ⋈ ∪ ∖ needs ⟦P2⟧G materialized whatever
      // the join strategy, so the index-join shortcut never pays here (see
      // the note on EvalOptions::Join::kIndexNestedLoop in evaluator.h).
      MappingSet l, r;
      if (ParallelSubtrees()) {
        EvalBranches(*p.left(), *p.right(), &l, &r);
      } else {
        l = EvalNode(*p.left());
        r = EvalNode(*p.right());
      }
      MappingSet joined;
      if (options_.join == EvalOptions::Join::kNestedLoop) {
        ProfileFrame join_frame(profiled_ ? "JoinNested" : nullptr);
        joined = MappingSet::JoinNestedLoop(l, r);
      } else {
        ProfileFrame join_frame(profiled_ ? "JoinHash" : nullptr);
        joined = MappingSet::Join(l, r, pool_);
      }
      return MappingSet::UnionSets(joined, MappingSet::Minus(l, r, pool_));
    }
    case PatternKind::kMinus: {
      MappingSet l, r;
      if (ParallelSubtrees()) {
        EvalBranches(*p.left(), *p.right(), &l, &r);
      } else {
        l = EvalNode(*p.left());
        r = EvalNode(*p.right());
      }
      return MappingSet::Minus(l, r, pool_);
    }
    case PatternKind::kFilter: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        if (p.condition()->Eval(m)) out.Add(m);
      }
      if (OpCounters* oc = ScopedOpCounters::Current()) {
        oc->filter_evals += in.size();
      }
      return out;
    }
    case PatternKind::kSelect: {
      MappingSet in = EvalNode(*p.child());
      MappingSet out;
      for (const Mapping& m : in) {
        out.Add(m.RestrictTo(p.projection()));
      }
      return out;
    }
    case PatternKind::kNs:
      return ApplyNs(EvalNode(*p.child()));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return MappingSet();
}

MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options) {
  return Evaluator(&graph, options).Eval(pattern);
}

}  // namespace rdfql
