#include "eval/ns.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "obs/accounting.h"
#include "obs/tracer.h"
#include "util/limits.h"
#include "util/thread_pool.h"

namespace rdfql {

MappingSet RemoveSubsumedNaive(const MappingSet& input) {
  MappingSet out;
  uint64_t pairs = 0;
  uint64_t visited = 0;
  for (const Mapping& m : input) {
    // The n² scan is the NS kernel's unbounded loop; poll the query's
    // token every few outer rows so a deadline stops it promptly.
    if ((++visited & 1023u) == 0 && !CooperativeCheckpoint()) break;
    bool subsumed = false;
    for (const Mapping& other : input) {
      ++pairs;
      if (m.ProperlySubsumedBy(other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.Add(m);
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->ns_pairs_compared += pairs;
  }
  return out;
}

namespace {

// Marks the mappings of `bucket` (domain `dom`) that appear as a
// projection of some mapping in a strictly-larger bucket; returns the pair
// count charged to this bucket (identical to the serial accounting).
uint64_t MarkSubsumedInBucket(
    const std::vector<VarId>& dom, const std::vector<const Mapping*>& bucket,
    const std::map<std::vector<VarId>, std::vector<const Mapping*>>& buckets,
    std::unordered_set<const Mapping*>* dead) {
  uint64_t pairs = 0;
  for (const auto& [sup_dom, sup_bucket] : buckets) {
    if (!CooperativeCheckpoint()) break;
    if (sup_dom.size() <= dom.size()) continue;
    if (!std::includes(sup_dom.begin(), sup_dom.end(), dom.begin(),
                       dom.end())) {
      continue;
    }
    std::unordered_set<Mapping, MappingHash> projections;
    projections.reserve(sup_bucket.size());
    uint64_t scratch_bytes = 0;
    for (const Mapping* sup : sup_bucket) {
      auto [it, inserted] = projections.insert(sup->RestrictTo(dom));
      if (inserted) scratch_bytes += it->ApproxBytes();
    }
    // The projection set is the kernel's dominant transient allocation;
    // report it so per-query peaks reflect NS pruning, not just operator
    // inputs/outputs.
    ResourceAccountant* acct = ResourceAccountant::Current();
    if (acct != nullptr) acct->OnAdd(projections.size(), scratch_bytes);
    pairs += sup_bucket.size() + bucket.size();
    for (const Mapping* m : bucket) {
      if (dead->count(m)) continue;
      if (projections.count(*m)) dead->insert(m);
    }
    if (acct != nullptr) acct->OnRemove(projections.size(), scratch_bytes);
  }
  return pairs;
}

}  // namespace

MappingSet RemoveSubsumedBucketed(const MappingSet& input, ThreadPool* pool) {
  // Bucket by domain.
  std::map<std::vector<VarId>, std::vector<const Mapping*>> buckets;
  for (const Mapping& m : input) {
    buckets[m.Domain()].push_back(&m);
  }

  // For each pair D ⊊ D', mark the mappings of bucket D that appear as a
  // projection of some mapping in bucket D'. Distinct candidate buckets
  // are independent (a bucket's dead marks never feed another bucket's
  // decision), so they parallelize with a private dead set per task; the
  // final filter walks the input in its original order either way.
  uint64_t pairs = 0;
  std::unordered_set<const Mapping*> dead;
  if (pool != nullptr && pool->num_threads() > 1 && buckets.size() > 1) {
    std::vector<const std::pair<const std::vector<VarId>,
                                std::vector<const Mapping*>>*>
        bucket_list;
    bucket_list.reserve(buckets.size());
    for (const auto& entry : buckets) bucket_list.push_back(&entry);
    std::vector<std::unordered_set<const Mapping*>> dead_local(
        bucket_list.size());
    std::vector<uint64_t> pairs_local(bucket_list.size(), 0);
    pool->ParallelFor(bucket_list.size(), [&](size_t i) {
      if (!CooperativeCheckpoint()) return;
      pairs_local[i] =
          MarkSubsumedInBucket(bucket_list[i]->first, bucket_list[i]->second,
                               buckets, &dead_local[i]);
    });
    for (size_t i = 0; i < bucket_list.size(); ++i) {
      pairs += pairs_local[i];
      dead.insert(dead_local[i].begin(), dead_local[i].end());
    }
  } else {
    for (const auto& [dom, bucket] : buckets) {
      pairs += MarkSubsumedInBucket(dom, bucket, buckets, &dead);
    }
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->ns_pairs_compared += pairs;
  }

  MappingSet out;
  for (const Mapping& m : input) {
    if (!dead.count(&m)) out.Add(m);
  }
  return out;
}

bool IsSubsumptionFree(const MappingSet& input) {
  for (const Mapping& m : input) {
    for (const Mapping& other : input) {
      if (m.ProperlySubsumedBy(other)) return false;
    }
  }
  return true;
}

}  // namespace rdfql
