#include "eval/ns.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "obs/tracer.h"

namespace rdfql {

MappingSet RemoveSubsumedNaive(const MappingSet& input) {
  MappingSet out;
  uint64_t pairs = 0;
  for (const Mapping& m : input) {
    bool subsumed = false;
    for (const Mapping& other : input) {
      ++pairs;
      if (m.ProperlySubsumedBy(other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.Add(m);
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->ns_pairs_compared += pairs;
  }
  return out;
}

MappingSet RemoveSubsumedBucketed(const MappingSet& input) {
  // Bucket by domain.
  std::map<std::vector<VarId>, std::vector<const Mapping*>> buckets;
  for (const Mapping& m : input) {
    buckets[m.Domain()].push_back(&m);
  }

  // For each pair D ⊊ D', mark the mappings of bucket D that appear as a
  // projection of some mapping in bucket D'.
  uint64_t pairs = 0;
  std::unordered_set<const Mapping*> dead;
  for (auto& [dom, bucket] : buckets) {
    for (auto& [sup_dom, sup_bucket] : buckets) {
      if (sup_dom.size() <= dom.size()) continue;
      if (!std::includes(sup_dom.begin(), sup_dom.end(), dom.begin(),
                         dom.end())) {
        continue;
      }
      std::unordered_set<Mapping, MappingHash> projections;
      projections.reserve(sup_bucket.size());
      for (const Mapping* sup : sup_bucket) {
        projections.insert(sup->RestrictTo(dom));
      }
      pairs += sup_bucket.size() + bucket.size();
      for (const Mapping* m : bucket) {
        if (dead.count(m)) continue;
        if (projections.count(*m)) dead.insert(m);
      }
    }
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->ns_pairs_compared += pairs;
  }

  MappingSet out;
  for (const Mapping& m : input) {
    if (!dead.count(&m)) out.Add(m);
  }
  return out;
}

bool IsSubsumptionFree(const MappingSet& input) {
  for (const Mapping& m : input) {
    for (const Mapping& other : input) {
      if (m.ProperlySubsumedBy(other)) return false;
    }
  }
  return true;
}

}  // namespace rdfql
