#include "eval/wd_evaluator.h"

#include "transform/wd_to_simple.h"
#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

// Extends every seed mapping by one triple pattern, probing the graph
// index with the seed's bindings substituted in.
MappingSet ExtendByTriple(const Graph& graph, const MappingSet& seeds,
                          const TriplePattern& t) {
  MappingSet out;
  uint64_t pairs = 0;
  uint64_t visited = 0;
  for (const Mapping& m : seeds) {
    if ((++visited & 255u) == 0 && !CooperativeCheckpoint()) break;
    auto position = [&m](Term term) -> TermId {
      if (term.is_iri()) return term.iri();
      std::optional<TermId> v = m.Get(term.var());
      return v.has_value() ? *v : kInvalidTermId;
    };
    graph.Match(position(t.s), position(t.p), position(t.o),
                [&t, &m, &out, &pairs](const Triple& match) {
                  ++pairs;
                  Mapping extended = m;
                  bool ok = true;
                  auto bind = [&extended, &ok](Term term, TermId value) {
                    if (!term.is_var() || !ok) return;
                    std::optional<TermId> existing =
                        extended.Get(term.var());
                    if (existing.has_value()) {
                      if (*existing != value) ok = false;
                    } else {
                      extended.Set(term.var(), value);
                    }
                  };
                  bind(t.s, match.s);
                  bind(t.p, match.p);
                  bind(t.o, match.o);
                  if (ok) out.Add(extended);
                });
  }
  if (OpCounters* oc = ScopedOpCounters::Current()) {
    oc->index_probes += seeds.size();
    oc->join_probes += pairs;
  }
  return out;
}

// Evaluates `node`'s block seeded with `seeds`, then optionally extends
// through every child (a child with no compatible extension contributes
// nothing — OPT semantics under well-designedness).
MappingSet EvalNode(const Graph& graph, const WdTreeNode& node,
                    const MappingSet& seeds) {
  // Cooperative checkpoint at every block boundary (the recursion runs once
  // per seed mapping, so a tripped token stops the walk promptly); the
  // top-level entry point turns the trip into a typed error.
  if (!CooperativeCheckpoint()) [[unlikely]] {
    return MappingSet();
  }
  MappingSet current = seeds;
  for (const TriplePattern& t : node.triples) {
    current = ExtendByTriple(graph, current, t);
    if (current.empty()) return current;
  }
  for (const BuiltinPtr& condition : node.filters) {
    MappingSet filtered;
    for (const Mapping& m : current) {
      if (condition->Eval(m)) filtered.Add(m);
    }
    current = std::move(filtered);
    if (current.empty()) return current;
  }
  for (const auto& child : node.children) {
    MappingSet next;
    for (const Mapping& m : current) {
      MappingSet seed;
      seed.Add(m);
      MappingSet extensions = EvalNode(graph, *child, seed);
      if (extensions.empty()) {
        next.Add(m);
      } else {
        for (const Mapping& e : extensions) next.Add(e);
      }
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace

Result<MappingSet> EvalWellDesignedTopDown(const Graph& graph,
                                           const PatternPtr& pattern,
                                           Tracer* tracer,
                                           MetricsRegistry* metrics) {
  RDFQL_ASSIGN_OR_RETURN(std::unique_ptr<WdTreeNode> tree,
                         BuildWdTree(pattern));
  MappingSet seeds;
  seeds.Add(Mapping());
  if (tracer == nullptr && metrics == nullptr) {
    MappingSet result = EvalNode(graph, *tree, seeds);
    if (CancellationToken* token = CancellationToken::Current();
        token != nullptr && token->cancelled()) {
      return token->status();
    }
    return result;
  }
  ScopedSpan span(tracer, "WD-TOPDOWN");
  OpCounters counters;
  MappingSet result;
  {
    ScopedOpCounters install(&counters);
    result = EvalNode(graph, *tree, seeds);
  }
  counters.mappings_out = result.size();
  counters.AttachTo(&span);
  if (CancellationToken* token = CancellationToken::Current();
      token != nullptr && token->cancelled()) {
    return token->status();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("wd_eval.evals")->Inc();
    metrics->GetCounter("wd_eval.index_probes")->Inc(counters.index_probes);
    metrics->GetCounter("wd_eval.join_probes")->Inc(counters.join_probes);
    metrics->GetCounter("wd_eval.mappings_out")->Inc(counters.mappings_out);
  }
  return result;
}

}  // namespace rdfql
