#ifndef RDFQL_EVAL_REFERENCE_EVALUATOR_H_
#define RDFQL_EVAL_REFERENCE_EVALUATOR_H_

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "obs/tracer.h"
#include "rdf/graph.h"

namespace rdfql {

/// A deliberately independent re-implementation of ⟦·⟧G, transcribed
/// directly from the paper's definitions with no shared algorithmic code:
/// triple matching by full scans, joins and differences by nested loops
/// over plain vectors, NS by pairwise maximality checks. It exists purely
/// as a differential-testing oracle for the production `Evaluator` — any
/// disagreement between the two on any (pattern, graph) pair is a bug.
///
/// With a non-null `tracer`, the evaluation is recorded under a single
/// "REFERENCE" span with `index_probes` (full-scan triples visited),
/// `join_probes`, `ns_pairs_compared` and `mappings_out` counters — enough
/// to compare its work against the production evaluator's without giving
/// the oracle its own (bug-prone) per-node machinery.
///
/// Governance: the oracle honors a CancellationToken installed by an
/// enclosing ScopedCancellation (it stops at the next operator once the
/// token trips) but cannot report the error itself — callers that install
/// a token must check it after the call and discard the partial result.
MappingSet ReferenceEval(const Graph& graph, const PatternPtr& pattern,
                         Tracer* tracer = nullptr);

}  // namespace rdfql

#endif  // RDFQL_EVAL_REFERENCE_EVALUATOR_H_
