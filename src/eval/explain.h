#ifndef RDFQL_EVAL_EXPLAIN_H_
#define RDFQL_EVAL_EXPLAIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"

namespace rdfql {

/// One node of an evaluation trace: the operator, its result cardinality,
/// its wall time and work counters, and its children — the EXPLAIN ANALYZE
/// of the engine. Built from the span tree the tracer records during a
/// real evaluation (not an estimate).
struct PlanNode {
  std::string label;        // e.g. "AND", "TRIPLE (?x a ?y)", "NS"
  size_t cardinality = 0;   // |result| at this node
  uint64_t wall_ns = 0;     // wall-clock time spent in this node's subtree
  /// Work counters recorded at this node (own work, children excluded):
  /// join_probes, index_probes, ns_pairs_compared, filter_evals.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Value of the named counter, 0 if absent.
  uint64_t GetCounter(std::string_view name) const;
};

/// The result of an explained evaluation.
struct Explanation {
  MappingSet result;
  std::unique_ptr<PlanNode> plan;

  /// Total mappings materialized across all operators (a work proxy).
  size_t TotalIntermediate() const;

  /// Renders the plan as an indented tree, one operator per line, with the
  /// cardinality first (the stable part of the contract) and then timing
  /// and work counters:
  ///   AND [12] (t=34.1us join_probes=96)
  ///     TRIPLE (?x a ?y) [30] (t=10.5us index_probes=1)
  ///     ...
  std::string ToString() const;
};

/// Evaluates with the production evaluator under a tracer, recording every
/// operator's output cardinality, wall time and work counters. Used by the
/// shell's `explain` command and the optimizer tests (intermediate-size
/// assertions). `options`' tracer/trace_dict fields are overridden; join
/// and NS algorithm choices are honored.
Explanation ExplainEval(const Graph& graph, const PatternPtr& pattern,
                        const Dictionary& dict, EvalOptions options = {});

/// Converts a recorded span (tree) into a PlanNode tree; exposed for
/// callers that run their own tracer (Engine::QueryExplained).
std::unique_ptr<PlanNode> PlanFromSpan(const TraceSpan& span);

}  // namespace rdfql

#endif  // RDFQL_EVAL_EXPLAIN_H_
