#ifndef RDFQL_EVAL_EXPLAIN_H_
#define RDFQL_EVAL_EXPLAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "rdf/graph.h"

namespace rdfql {

/// One node of an evaluation trace: the operator, its result cardinality,
/// and its children — the EXPLAIN ANALYZE of the engine.
struct PlanNode {
  std::string label;        // e.g. "AND", "TRIPLE (?x a ?y)", "NS"
  size_t cardinality = 0;   // |result| at this node
  std::vector<std::unique_ptr<PlanNode>> children;
};

/// The result of an explained evaluation.
struct Explanation {
  MappingSet result;
  std::unique_ptr<PlanNode> plan;

  /// Total mappings materialized across all operators (a work proxy).
  size_t TotalIntermediate() const;

  /// Renders the plan as an indented tree, one operator per line:
  ///   AND [12]
  ///     TRIPLE (?x a ?y) [30]
  ///     ...
  std::string ToString() const;
};

/// Evaluates with the reference bottom-up semantics while recording every
/// operator's output cardinality. Used by the shell's `explain` command
/// and the optimizer tests (intermediate-size assertions).
Explanation ExplainEval(const Graph& graph, const PatternPtr& pattern,
                        const Dictionary& dict);

}  // namespace rdfql

#endif  // RDFQL_EVAL_EXPLAIN_H_
