#include "eval/explain.h"

#include <cstdio>

#include "obs/tracer.h"
#include "util/check.h"

namespace rdfql {
namespace {

size_t Total(const PlanNode& node) {
  size_t n = node.cardinality;
  for (const auto& c : node.children) n += Total(*c);
  return n;
}

void AppendTime(uint64_t ns, std::string* out) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  }
  out->append(buf);
}

void Render(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label + " [" + std::to_string(node.cardinality) + "]";
  *out += " (t=";
  AppendTime(node.wall_ns, out);
  for (const auto& [name, value] : node.counters) {
    if (name == "mappings_out" || value == 0) continue;
    *out += " " + name + "=" + std::to_string(value);
  }
  *out += ")\n";
  for (const auto& c : node.children) Render(*c, depth + 1, out);
}

}  // namespace

uint64_t PlanNode::GetCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::unique_ptr<PlanNode> PlanFromSpan(const TraceSpan& span) {
  auto node = std::make_unique<PlanNode>();
  node->label =
      span.detail.empty() ? span.op : span.op + " " + span.detail;
  node->cardinality = span.GetCounter("mappings_out");
  node->wall_ns = span.duration_ns;
  node->counters = span.counters;
  for (const auto& child : span.children) {
    node->children.push_back(PlanFromSpan(*child));
  }
  return node;
}

size_t Explanation::TotalIntermediate() const {
  return plan == nullptr ? 0 : Total(*plan);
}

std::string Explanation::ToString() const {
  std::string out;
  if (plan != nullptr) Render(*plan, 0, &out);
  return out;
}

Explanation ExplainEval(const Graph& graph, const PatternPtr& pattern,
                        const Dictionary& dict, EvalOptions options) {
  RDFQL_CHECK(pattern != nullptr);
  Tracer tracer;
  options.tracer = &tracer;
  options.trace_dict = &dict;
  Evaluator evaluator(&graph, options);
  Explanation explanation;
  explanation.result = evaluator.Eval(pattern);
  RDFQL_CHECK(tracer.root() != nullptr);
  explanation.plan = PlanFromSpan(*tracer.root());
  return explanation;
}

}  // namespace rdfql
