#include "eval/explain.h"

#include "algebra/pattern_printer.h"
#include "eval/evaluator.h"
#include "eval/ns.h"
#include "util/check.h"

namespace rdfql {
namespace {

struct Tracer {
  const Graph* graph;
  const Dictionary* dict;

  MappingSet Eval(const Pattern& p, PlanNode* node) {
    MappingSet result = EvalInner(p, node);
    node->cardinality = result.size();
    return result;
  }

  MappingSet EvalInner(const Pattern& p, PlanNode* node) {
    switch (p.kind()) {
      case PatternKind::kTriple: {
        node->label =
            "TRIPLE " + PatternToString(Pattern::MakeTriple(p.triple()),
                                        *dict);
        Evaluator ev(graph);
        return ev.Eval(Pattern::MakeTriple(p.triple()));
      }
      case PatternKind::kAnd:
      case PatternKind::kUnion:
      case PatternKind::kOpt:
      case PatternKind::kMinus: {
        node->label = p.kind() == PatternKind::kAnd     ? "AND"
                      : p.kind() == PatternKind::kUnion ? "UNION"
                      : p.kind() == PatternKind::kOpt   ? "OPT"
                                                        : "MINUS";
        auto left = std::make_unique<PlanNode>();
        auto right = std::make_unique<PlanNode>();
        MappingSet l = Eval(*p.left(), left.get());
        MappingSet r = Eval(*p.right(), right.get());
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(right));
        switch (p.kind()) {
          case PatternKind::kAnd:
            return MappingSet::Join(l, r);
          case PatternKind::kUnion:
            return MappingSet::UnionSets(l, r);
          case PatternKind::kOpt:
            return MappingSet::LeftOuterJoin(l, r);
          default:
            return MappingSet::Minus(l, r);
        }
      }
      case PatternKind::kFilter: {
        node->label = "FILTER " + p.condition()->ToString(*dict);
        auto child = std::make_unique<PlanNode>();
        MappingSet in = Eval(*p.child(), child.get());
        node->children.push_back(std::move(child));
        MappingSet out;
        for (const Mapping& m : in) {
          if (p.condition()->Eval(m)) out.Add(m);
        }
        return out;
      }
      case PatternKind::kSelect: {
        std::string vars;
        for (VarId v : p.projection()) vars += " ?" + dict->VarName(v);
        node->label = "SELECT {" + (vars.empty() ? "" : vars.substr(1)) + "}";
        auto child = std::make_unique<PlanNode>();
        MappingSet in = Eval(*p.child(), child.get());
        node->children.push_back(std::move(child));
        MappingSet out;
        for (const Mapping& m : in) out.Add(m.RestrictTo(p.projection()));
        return out;
      }
      case PatternKind::kNs: {
        node->label = "NS";
        auto child = std::make_unique<PlanNode>();
        MappingSet in = Eval(*p.child(), child.get());
        node->children.push_back(std::move(child));
        return RemoveSubsumedBucketed(in);
      }
    }
    RDFQL_CHECK_MSG(false, "unreachable");
    return MappingSet();
  }
};

size_t Total(const PlanNode& node) {
  size_t n = node.cardinality;
  for (const auto& c : node.children) n += Total(*c);
  return n;
}

void Render(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label + " [" + std::to_string(node.cardinality) + "]\n";
  for (const auto& c : node.children) Render(*c, depth + 1, out);
}

}  // namespace

size_t Explanation::TotalIntermediate() const {
  return plan == nullptr ? 0 : Total(*plan);
}

std::string Explanation::ToString() const {
  std::string out;
  if (plan != nullptr) Render(*plan, 0, &out);
  return out;
}

Explanation ExplainEval(const Graph& graph, const PatternPtr& pattern,
                        const Dictionary& dict) {
  RDFQL_CHECK(pattern != nullptr);
  Explanation explanation;
  explanation.plan = std::make_unique<PlanNode>();
  Tracer tracer{&graph, &dict};
  explanation.result = tracer.Eval(*pattern, explanation.plan.get());
  return explanation;
}

}  // namespace rdfql
