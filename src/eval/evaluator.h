#ifndef RDFQL_EVAL_EVALUATOR_H_
#define RDFQL_EVAL_EVALUATOR_H_

#include <functional>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rdf/graph.h"
#include "rdf/static_graph.h"

namespace rdfql {

/// Tunables for the evaluator — the pairs of algorithms back the ablation
/// benchmarks (E15/E16 in DESIGN.md) — plus the observability opt-ins.
struct EvalOptions {
  enum class Join {
    kHash,        // partition on certainly-shared variables
    kNestedLoop,  // reference pairwise join
    // For (P AND t) with t a triple pattern: probe the graph indexes once
    // per left mapping with the bound positions substituted (binding
    // propagation), instead of materializing ⟦t⟧G and joining. Falls back
    // to the hash join for non-triple right-hand sides.
    //
    // Note on OPT: the index-join shortcut is deliberately NOT taken for
    // the join half of (P1 OPT P2) even when P2 is a triple pattern. OPT
    // is computed as (P1 ⋈ P2) ∪ (P1 ∖ P2) and the difference half needs
    // ⟦P2⟧G materialized regardless, so probing the index for the join
    // half would evaluate P2's matches a second time — strictly more work
    // for identical results. evaluator_test.cc (OptAgreesAcrossJoin
    // Strategies) asserts the strategies agree on OPT patterns.
    kIndexNestedLoop,
  };
  enum class NsAlgo { kBucketed, kNaive };

  Join join = Join::kHash;
  NsAlgo ns = NsAlgo::kBucketed;

  // --- Observability (all opt-in; defaults keep the hot path free) ---
  /// When set, every operator node is evaluated under an RAII span carrying
  /// its wall time and work counters; the span tree mirrors the pattern
  /// tree. The tracer must outlive the evaluation (single-threaded use).
  Tracer* tracer = nullptr;
  /// When set, per-operator work counters are also accumulated into this
  /// registry under `eval.*` names (see docs/observability.md).
  MetricsRegistry* metrics = nullptr;
  /// Dictionary for human-readable span labels ("(?x p ?y)"). Optional;
  /// without it spans carry only the operator kind.
  const Dictionary* trace_dict = nullptr;

  bool observed() const { return tracer != nullptr || metrics != nullptr; }
};

/// Bottom-up evaluator implementing ⟦P⟧G exactly as defined in Section 2.1
/// of the paper (plus NS from Section 5.1 and the derived MINUS of
/// Appendix D). The evaluator is the library's semantic ground truth: every
/// transformation and every reduction is tested against it.
class Evaluator {
 public:
  /// A storage probe: same contract as Graph::Match / StaticGraph::Match.
  using Matcher = std::function<size_t(
      TermId, TermId, TermId, const std::function<void(const Triple&)>&)>;

  explicit Evaluator(const Graph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {}

  /// Evaluates directly against the immutable CSR store.
  explicit Evaluator(const StaticGraph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {}

  /// ⟦P⟧G.
  MappingSet Eval(const PatternPtr& pattern) const;

  /// ⟦P⟧max_G — the maximal answers (Section 5.1).
  MappingSet EvalMax(const PatternPtr& pattern) const;

 private:
  MappingSet EvalNode(const Pattern& p) const;
  /// The uninstrumented operator dispatch (the hot path).
  MappingSet EvalNodeImpl(const Pattern& p) const;
  /// EvalNodeImpl wrapped in a span + per-node counter sink.
  MappingSet EvalNodeObserved(const Pattern& p) const;
  MappingSet EvalTriple(const TriplePattern& t) const;
  MappingSet IndexJoinWithTriple(const MappingSet& left,
                                 const TriplePattern& t) const;
  MappingSet ApplyNs(const MappingSet& input) const;
  /// Span label for a node ("(?x p ?y)" for triples, the condition for
  /// FILTER, ...); empty without options_.trace_dict.
  std::string NodeDetail(const Pattern& p) const;

  Matcher matcher_;
  EvalOptions options_;
};

/// One-shot convenience wrapper.
MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options = {});

/// The operator's display name ("TRIPLE", "AND", ...), shared by spans and
/// EXPLAIN output.
const char* PatternOpName(PatternKind kind);

}  // namespace rdfql

#endif  // RDFQL_EVAL_EVALUATOR_H_
