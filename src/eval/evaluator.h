#ifndef RDFQL_EVAL_EVALUATOR_H_
#define RDFQL_EVAL_EVALUATOR_H_

#include <functional>
#include <memory>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rdf/graph.h"
#include "rdf/static_graph.h"
#include "util/limits.h"
#include "util/profile_state.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfql {

class QueryLog;

/// Per-query override for the engine's query cache (plan or result side),
/// mirroring the limits/query-log pattern: an explicit value wins
/// wholesale. kDefault follows the attached cache's configuration; kOff
/// bypasses the cache for this query (counted as a bypass); kOn requests
/// caching where the attached cache supports it — with no cache attached
/// (or that side disabled by its sizing), it cannot conjure one.
enum class CacheMode { kDefault, kOn, kOff };

/// Tunables for the evaluator — the pairs of algorithms back the ablation
/// benchmarks (E15/E16 in DESIGN.md) — plus the observability opt-ins.
struct EvalOptions {
  enum class Join {
    kHash,        // partition on certainly-shared variables
    kNestedLoop,  // reference pairwise join
    // For (P AND t) with t a triple pattern: probe the graph indexes once
    // per left mapping with the bound positions substituted (binding
    // propagation), instead of materializing ⟦t⟧G and joining. Falls back
    // to the hash join for non-triple right-hand sides.
    //
    // Note on OPT: the index-join shortcut is deliberately NOT taken for
    // the join half of (P1 OPT P2) even when P2 is a triple pattern. OPT
    // is computed as (P1 ⋈ P2) ∪ (P1 ∖ P2) and the difference half needs
    // ⟦P2⟧G materialized regardless, so probing the index for the join
    // half would evaluate P2's matches a second time — strictly more work
    // for identical results. evaluator_test.cc (OptAgreesAcrossJoin
    // Strategies) asserts the strategies agree on OPT patterns.
    kIndexNestedLoop,
  };
  enum class NsAlgo { kBucketed, kNaive };

  Join join = Join::kHash;
  NsAlgo ns = NsAlgo::kBucketed;

  // --- Parallelism (opt-in; default is the bit-for-bit serial path) ---
  /// Number of evaluation threads. 1 (the default) is exactly the serial
  /// evaluator: no pool, no forks, byte-identical results and counters.
  /// With threads > 1 the hot kernels (hash join probes, MINUS scans,
  /// bucketed NS pruning) split their input across a thread pool and the
  /// independent AND/UNION/OPT/MINUS subtrees evaluate concurrently.
  /// Results are merged deterministically (chunk/insertion order), so any
  /// thread count produces the same MappingSet — content and iteration
  /// order — and the same work counters as threads = 1.
  int threads = 1;
  /// Optional externally owned pool to run on (so repeated evaluations
  /// don't pay thread startup). If null and threads > 1, the Evaluator
  /// constructs a private pool of `threads` threads for its lifetime.
  /// Ignored when threads <= 1.
  ThreadPool* pool = nullptr;

  // --- Observability (all opt-in; defaults keep the hot path free) ---
  /// When set, every operator node is evaluated under an RAII span carrying
  /// its wall time and work counters; the span tree mirrors the pattern
  /// tree. The tracer must outlive the evaluation (single-threaded use).
  Tracer* tracer = nullptr;
  /// When set, per-operator work counters are also accumulated into this
  /// registry under `eval.*` names (see docs/observability.md).
  MetricsRegistry* metrics = nullptr;
  /// Dictionary for human-readable span labels ("(?x p ?y)"). Optional;
  /// without it spans carry only the operator kind.
  const Dictionary* trace_dict = nullptr;
  /// When set, the evaluation runs under this accountant: every MappingSet
  /// insert/destruction (intermediates included, on every pool thread) and
  /// the NS kernel's scratch report to it, so live/peak mapping and byte
  /// figures cover the whole query. The result set is detached before it is
  /// returned — its memory counts toward the peak but not the final live
  /// figure, and the escaping set holds no pointer to the accountant.
  ResourceAccountant* accountant = nullptr;
  /// Consumed by Engine::Query / Engine::QueryExplained (the evaluator
  /// itself never touches it): overrides the engine's default QueryLog for
  /// this query, mirroring the limits pattern — per-query value wins
  /// wholesale. The engine writes one QueryLogRecord per query to the
  /// resolved sink; null here with no engine default keeps the pre-log
  /// code path bit for bit.
  QueryLog* query_log = nullptr;
  /// Consumed by the Engine's text-query entry points (the evaluator
  /// itself never touches them): per-query use of the engine's attached
  /// QueryCache. See CacheMode; the plan cache skips re-parsing, the
  /// result cache serves materialized answers keyed by (query hash, graph
  /// name, graph epoch, options fingerprint).
  CacheMode use_plan_cache = CacheMode::kDefault;
  CacheMode use_result_cache = CacheMode::kDefault;

  // --- Resource governance (opt-in; see docs/robustness.md) ---
  /// Budgets enforced by EvalChecked/EvalMaxChecked: wall clock, live
  /// mappings and approximate bytes (max_ast_nodes only concerns the
  /// translation pipeline). The plain Eval/EvalMax entry points ignore
  /// these fields — they cannot report an error.
  ResourceLimits limits;
  /// Absolute deadline; combined with limits.max_wall_ms (whichever fires
  /// first). Default: never.
  Deadline deadline;
  /// Optional caller-owned token: Cancel() from any thread aborts the
  /// evaluation with kCancelled at the next checkpoint. When set, it is
  /// also the token deadline/cap violations trip, so the caller can watch
  /// one object. When null, EvalChecked uses a private token.
  CancellationToken* cancel = nullptr;

  bool observed() const { return tracer != nullptr || metrics != nullptr; }
  bool governed() const {
    return cancel != nullptr || !deadline.infinite() || limits.Enforced();
  }
};

/// Bottom-up evaluator implementing ⟦P⟧G exactly as defined in Section 2.1
/// of the paper (plus NS from Section 5.1 and the derived MINUS of
/// Appendix D). The evaluator is the library's semantic ground truth: every
/// transformation and every reduction is tested against it.
class Evaluator {
 public:
  /// A storage probe: same contract as Graph::Match / StaticGraph::Match.
  using Matcher = std::function<size_t(
      TermId, TermId, TermId, const std::function<void(const Triple&)>&)>;

  explicit Evaluator(const Graph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {
    InitPool();
  }

  /// Evaluates directly against the immutable CSR store.
  explicit Evaluator(const StaticGraph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {
    InitPool();
  }

  /// ⟦P⟧G.
  MappingSet Eval(const PatternPtr& pattern) const;

  /// ⟦P⟧max_G — the maximal answers (Section 5.1).
  MappingSet EvalMax(const PatternPtr& pattern) const;

  /// ⟦P⟧G under the options' resource governance: enforces
  /// options.limits / options.deadline / options.cancel cooperatively and
  /// returns kDeadlineExceeded / kResourceExhausted / kCancelled instead of
  /// a truncated result. With no governance configured this is exactly
  /// Eval() wrapped in an always-OK Result. Results are bit-identical to
  /// Eval() whenever no limit trips.
  Result<MappingSet> EvalChecked(const PatternPtr& pattern) const;

  /// EvalMax with the same governance contract as EvalChecked.
  Result<MappingSet> EvalMaxChecked(const PatternPtr& pattern) const;

 private:
  Result<MappingSet> EvalGoverned(const PatternPtr& pattern, bool max) const;
  /// Resolves options_.threads/pool into pool_ (see EvalOptions::pool).
  void InitPool();
  MappingSet EvalNode(const Pattern& p) const;
  /// The uninstrumented operator dispatch (the hot path).
  MappingSet EvalNodeImpl(const Pattern& p) const;
  /// EvalNodeImpl wrapped in a span + per-node counter sink.
  MappingSet EvalNodeObserved(const Pattern& p) const;
  /// Whether independent subtrees may evaluate concurrently: a pool is
  /// available and no tracer is attached (the span tree is single-threaded
  /// by contract). Callers fall back to direct EvalNode calls otherwise —
  /// inline, so the serial path adds no stack frame per tree level.
  bool ParallelSubtrees() const {
    return pool_ != nullptr && options_.tracer == nullptr;
  }
  /// Evaluates two independent subtrees into *l / *r on the pool; call
  /// only when ParallelSubtrees() holds.
  void EvalBranches(const Pattern& left, const Pattern& right, MappingSet* l,
                    MappingSet* r) const;
  /// Evaluates the in-order disjuncts of a maximal UNION spine and folds
  /// them left to right — iteratively, because UCQ expansions build spines
  /// tens of thousands of nodes deep that would overflow the stack if each
  /// level recursed. Used on the unobserved path only (the traced path
  /// keeps per-node recursion so every UNION node gets its span).
  MappingSet EvalUnionSpine(const Pattern& p) const;
  MappingSet EvalTriple(const TriplePattern& t) const;
  MappingSet IndexJoinWithTriple(const MappingSet& left,
                                 const TriplePattern& t) const;
  MappingSet ApplyNs(const MappingSet& input) const;
  /// Span label for a node ("(?x p ?y)" for triples, the condition for
  /// FILTER, ...); empty without options_.trace_dict.
  std::string NodeDetail(const Pattern& p) const;

  Matcher matcher_;
  EvalOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  /// Null on the serial path; the active pool when threads > 1.
  ThreadPool* pool_ = nullptr;
  /// Snapshot of ProfilingEnabled() at construction: per-node profile
  /// frames key off one member test, so with profiling off the dispatch
  /// path carries no atomic load — and a profiler starting mid-query
  /// simply sees this query's frames from the next query on.
  bool profiled_ = ProfilingEnabled();
};

/// One-shot convenience wrapper.
MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options = {});

/// The operator's display name ("TRIPLE", "AND", ...), shared by spans and
/// EXPLAIN output.
const char* PatternOpName(PatternKind kind);

}  // namespace rdfql

#endif  // RDFQL_EVAL_EVALUATOR_H_
