#ifndef RDFQL_EVAL_EVALUATOR_H_
#define RDFQL_EVAL_EVALUATOR_H_

#include <functional>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "rdf/graph.h"
#include "rdf/static_graph.h"

namespace rdfql {

/// Tunables for the evaluator — the pairs of algorithms back the ablation
/// benchmarks (E15/E16 in DESIGN.md).
struct EvalOptions {
  enum class Join {
    kHash,        // partition on certainly-shared variables
    kNestedLoop,  // reference pairwise join
    // For (P AND t) with t a triple pattern: probe the graph indexes once
    // per left mapping with the bound positions substituted (binding
    // propagation), instead of materializing ⟦t⟧G and joining. Falls back
    // to the hash join for non-triple right-hand sides.
    kIndexNestedLoop,
  };
  enum class NsAlgo { kBucketed, kNaive };

  Join join = Join::kHash;
  NsAlgo ns = NsAlgo::kBucketed;
};

/// Bottom-up evaluator implementing ⟦P⟧G exactly as defined in Section 2.1
/// of the paper (plus NS from Section 5.1 and the derived MINUS of
/// Appendix D). The evaluator is the library's semantic ground truth: every
/// transformation and every reduction is tested against it.
class Evaluator {
 public:
  /// A storage probe: same contract as Graph::Match / StaticGraph::Match.
  using Matcher = std::function<size_t(
      TermId, TermId, TermId, const std::function<void(const Triple&)>&)>;

  explicit Evaluator(const Graph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {}

  /// Evaluates directly against the immutable CSR store.
  explicit Evaluator(const StaticGraph* graph, EvalOptions options = {})
      : matcher_([graph](TermId s, TermId p, TermId o,
                         const std::function<void(const Triple&)>& fn) {
          return graph->Match(s, p, o, fn);
        }),
        options_(options) {}

  /// ⟦P⟧G.
  MappingSet Eval(const PatternPtr& pattern) const;

  /// ⟦P⟧max_G — the maximal answers (Section 5.1).
  MappingSet EvalMax(const PatternPtr& pattern) const;

 private:
  MappingSet EvalNode(const Pattern& p) const;
  MappingSet EvalTriple(const TriplePattern& t) const;
  MappingSet IndexJoinWithTriple(const MappingSet& left,
                                 const TriplePattern& t) const;
  MappingSet ApplyNs(const MappingSet& input) const;

  Matcher matcher_;
  EvalOptions options_;
};

/// One-shot convenience wrapper.
MappingSet EvalPattern(const Graph& graph, const PatternPtr& pattern,
                       EvalOptions options = {});

}  // namespace rdfql

#endif  // RDFQL_EVAL_EVALUATOR_H_
