#ifndef RDFQL_UPDATE_UPDATE_H_
#define RDFQL_UPDATE_UPDATE_H_

#include <vector>

#include "algebra/pattern.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"

namespace rdfql {

/// SPARQL-Update-flavoured graph mutation, built on the engine's own
/// pattern evaluation (the paper's Section 6 composability theme in the
/// other direction: query results flowing back into the store).
///
/// All operations mutate `graph` in place and return the number of
/// triples actually added/removed (set semantics, like everything else).

/// INSERT DATA: adds ground triples.
size_t InsertData(Graph* graph, const std::vector<Triple>& triples);

/// DELETE DATA: removes ground triples.
size_t DeleteData(Graph* graph, const std::vector<Triple>& triples);

/// INSERT { template } WHERE { pattern }: evaluates the pattern against
/// the *current* graph state, instantiates the template per answer
/// (skipping template triples with unbound variables, as in CONSTRUCT),
/// then inserts all produced triples at once — the paper-standard
/// snapshot semantics, so the insertions cannot feed their own matching.
size_t InsertWhere(Graph* graph, const std::vector<TriplePattern>& templ,
                   const PatternPtr& pattern, EvalOptions options = {});

/// DELETE { template } WHERE { pattern }: same snapshot evaluation; all
/// instantiated triples are removed.
size_t DeleteWhere(Graph* graph, const std::vector<TriplePattern>& templ,
                   const PatternPtr& pattern, EvalOptions options = {});

}  // namespace rdfql

#endif  // RDFQL_UPDATE_UPDATE_H_
