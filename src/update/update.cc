#include "update/update.h"

namespace rdfql {
namespace {

// Materializes the template instantiations of a pattern's answers over
// the current graph snapshot (exactly CONSTRUCT's ans(Q,G), Section 6.1).
std::vector<Triple> Instantiations(const Graph& graph,
                                   const std::vector<TriplePattern>& templ,
                                   const PatternPtr& pattern,
                                   EvalOptions options) {
  std::vector<Triple> out;
  MappingSet solutions = EvalPattern(graph, pattern, options);
  for (const Mapping& m : solutions) {
    for (const TriplePattern& t : templ) {
      bool all_bound = true;
      for (VarId v : TriplePatternVars(t)) {
        if (!m.Binds(v)) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) out.push_back(Instantiate(t, m));
    }
  }
  return out;
}

}  // namespace

size_t InsertData(Graph* graph, const std::vector<Triple>& triples) {
  size_t added = 0;
  for (const Triple& t : triples) {
    if (graph->Insert(t)) ++added;
  }
  return added;
}

size_t DeleteData(Graph* graph, const std::vector<Triple>& triples) {
  size_t removed = 0;
  for (const Triple& t : triples) {
    if (graph->Erase(t)) ++removed;
  }
  return removed;
}

size_t InsertWhere(Graph* graph, const std::vector<TriplePattern>& templ,
                   const PatternPtr& pattern, EvalOptions options) {
  return InsertData(graph, Instantiations(*graph, templ, pattern, options));
}

size_t DeleteWhere(Graph* graph, const std::vector<TriplePattern>& templ,
                   const PatternPtr& pattern, EvalOptions options) {
  return DeleteData(graph, Instantiations(*graph, templ, pattern, options));
}

}  // namespace rdfql
