#ifndef RDFQL_TRANSFORM_UNION_NORMAL_FORM_H_
#define RDFQL_TRANSFORM_UNION_NORMAL_FORM_H_

#include <vector>

#include "algebra/pattern.h"
#include "obs/pipeline.h"
#include "util/status.h"

namespace rdfql {

/// Limits for the intentionally exponential normal-form constructions; when
/// exceeded the transformation returns ResourceExhausted instead of
/// consuming the machine.
struct NormalFormLimits {
  size_t max_disjuncts = 1u << 20;
  /// Cap on the AST nodes of a stage's output, counted the way the
  /// evaluator (and PipelineReport) sees them: shared subtrees count once
  /// per reference. 0 = unlimited. The transforms pre-flight this bound
  /// from the input's shape and refuse *before* materializing anything, so
  /// a double-exponential blowup (Thm 5.1) costs a size computation, not
  /// the machine.
  size_t max_output_nodes = 0;
};

/// UNION normal form (Proposition D.1): returns the disjuncts D1..Dn of an
/// equivalent pattern D1 UNION ... UNION Dn where every Di is UNION-free.
///
/// The rewriting distributes UNION over AND, FILTER and SELECT, and splits
/// OPT as (P1 OPT P2) ≡ (P1 AND P2) UNION (P1 MINUS P2), pushing a
/// union-free right-hand side into chained MINUS. The input must be NS-free
/// (NS does not distribute over UNION; EliminateNs handles it first).
Result<std::vector<PatternPtr>> UnionNormalForm(
    const PatternPtr& pattern, const NormalFormLimits& limits = {},
    PipelineReport* report = nullptr);

/// One disjunct of the fixed-domain UNION normal form of Lemma D.2: a
/// UNION-free pattern all of whose answers bind exactly `domain`.
struct FixedDomainDisjunct {
  PatternPtr pattern;
  std::vector<VarId> domain;  // sorted
};

/// Fixed-domain UNION normal form (Lemma D.2): an equivalent union of
/// UNION-free disjuncts, each annotated with the exact domain V ⊆ var(P)
/// bound by all of its answers (enforced with a bound/!bound FILTER
/// profile). Disjuncts whose domain constraint is syntactically
/// unsatisfiable (V outside [certain(D), scope(D)]) are pruned.
Result<std::vector<FixedDomainDisjunct>> FixedDomainUnionNormalForm(
    const PatternPtr& pattern, const NormalFormLimits& limits = {},
    PipelineReport* report = nullptr);

/// Variables bound in *every* answer of the pattern, syntactically
/// approximated from below (used to prune Lemma D.2's 2^|var(P)| domain
/// candidates; always a subset of the true certain variables).
std::vector<VarId> CertainVars(const PatternPtr& pattern);

}  // namespace rdfql

#endif  // RDFQL_TRANSFORM_UNION_NORMAL_FORM_H_
