#include "transform/wd_to_simple.h"

#include "analysis/well_designed.h"
#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

// Merges `src` into `dst` (AND of two blocks: triples, filters and OPT
// children all accumulate at the root — sound for well-designed patterns).
void MergeInto(WdTreeNode* dst, WdTreeNode&& src) {
  dst->triples.insert(dst->triples.end(), src.triples.begin(),
                      src.triples.end());
  dst->filters.insert(dst->filters.end(), src.filters.begin(),
                      src.filters.end());
  for (auto& child : src.children) {
    dst->children.push_back(std::move(child));
  }
}

// Null signals a non-AOF node. BuildWdTree pre-checks AOF membership (via
// IsWellDesigned), so this "cannot happen" — but it is driven by user query
// text, so it degrades to a typed error at the public entry point instead
// of aborting a serving process.
std::unique_ptr<WdTreeNode> Build(const Pattern& p) {
  switch (p.kind()) {
    case PatternKind::kTriple: {
      auto node = std::make_unique<WdTreeNode>();
      node->triples.push_back(p.triple());
      return node;
    }
    case PatternKind::kAnd: {
      std::unique_ptr<WdTreeNode> l = Build(*p.left());
      std::unique_ptr<WdTreeNode> r = Build(*p.right());
      if (l == nullptr || r == nullptr) return nullptr;
      MergeInto(l.get(), std::move(*r));
      return l;
    }
    case PatternKind::kOpt: {
      std::unique_ptr<WdTreeNode> l = Build(*p.left());
      std::unique_ptr<WdTreeNode> r = Build(*p.right());
      if (l == nullptr || r == nullptr) return nullptr;
      l->children.push_back(std::move(r));
      return l;
    }
    case PatternKind::kFilter: {
      std::unique_ptr<WdTreeNode> node = Build(*p.child());
      if (node == nullptr) return nullptr;
      node->filters.push_back(p.condition());
      return node;
    }
    default:
      return nullptr;
  }
}

struct Block {
  std::vector<TriplePattern> triples;
  std::vector<BuiltinPtr> filters;
};

void Append(Block* acc, const WdTreeNode& node) {
  acc->triples.insert(acc->triples.end(), node.triples.begin(),
                      node.triples.end());
  acc->filters.insert(acc->filters.end(), node.filters.begin(),
                      node.filters.end());
}

// Enumerates every connected subtree containing `node`, emitting the
// accumulated block for each. Returns false if `max_subtrees` was hit.
bool EnumerateSubtrees(const WdTreeNode& node, Block prefix,
                       std::vector<Block>* out, size_t max_subtrees) {
  // The enumeration is exponential in the tree size; poll the query's
  // token per node so a deadline interrupts it (the caller distinguishes
  // a trip from the subtree limit).
  if (!CooperativeCheckpoint()) return false;
  Append(&prefix, node);
  // For each subset of children, recursively expand. We iterate
  // combinatorially: children contribute independently, so enumerate the
  // cartesian product of (skip | each-subtree-choice) per child. To keep
  // memory in check we materialize child choices first.
  std::vector<std::vector<Block>> child_choices;
  for (const auto& child : node.children) {
    std::vector<Block> choices;
    if (!EnumerateSubtrees(*child, Block{}, &choices, max_subtrees)) {
      return false;
    }
    child_choices.push_back(std::move(choices));
  }
  // Cartesian product over children of ({skip} ∪ choices).
  std::vector<Block> acc = {prefix};
  for (const std::vector<Block>& choices : child_choices) {
    std::vector<Block> next;
    for (const Block& base : acc) {
      next.push_back(base);  // skip this child
      for (const Block& choice : choices) {
        Block combined = base;
        combined.triples.insert(combined.triples.end(),
                                choice.triples.begin(), choice.triples.end());
        combined.filters.insert(combined.filters.end(),
                                choice.filters.begin(), choice.filters.end());
        next.push_back(std::move(combined));
        if (next.size() + out->size() > max_subtrees) return false;
      }
    }
    acc.swap(next);
  }
  out->insert(out->end(), acc.begin(), acc.end());
  return true;
}

PatternPtr BlockToPattern(const Block& block) {
  RDFQL_CHECK(!block.triples.empty());
  std::vector<PatternPtr> triples;
  triples.reserve(block.triples.size());
  for (const TriplePattern& t : block.triples) {
    triples.push_back(Pattern::MakeTriple(t));
  }
  PatternPtr cq = Pattern::AndAll(triples);
  if (!block.filters.empty()) {
    cq = Pattern::Filter(cq, Builtin::AndAll(block.filters));
  }
  return cq;
}

}  // namespace

Result<std::unique_ptr<WdTreeNode>> BuildWdTree(const PatternPtr& pattern) {
  std::string why;
  if (!IsWellDesigned(pattern, &why)) {
    return Status::InvalidArgument("pattern is not well designed: " + why);
  }
  std::unique_ptr<WdTreeNode> tree = Build(*pattern);
  if (tree == nullptr) {
    return Status::InvalidArgument("BuildWdTree: pattern not in SPARQL[AOF]");
  }
  return tree;
}

PatternPtr WdTreeToPattern(const WdTreeNode& node) {
  RDFQL_CHECK(!node.triples.empty());
  std::vector<PatternPtr> triples;
  for (const TriplePattern& t : node.triples) {
    triples.push_back(Pattern::MakeTriple(t));
  }
  PatternPtr block = Pattern::AndAll(triples);
  if (!node.filters.empty()) {
    block = Pattern::Filter(block, Builtin::AndAll(node.filters));
  }
  for (const auto& child : node.children) {
    block = Pattern::Opt(block, WdTreeToPattern(*child));
  }
  return block;
}

Result<PatternPtr> ToOptNormalForm(const PatternPtr& pattern,
                                   PipelineReport* report) {
  ScopedStage stage(report, "opt_normal_form",
                    ShapeIfReporting(report, *pattern));
  Result<PatternPtr> out = [&]() -> Result<PatternPtr> {
    RDFQL_ASSIGN_OR_RETURN(std::unique_ptr<WdTreeNode> tree,
                           BuildWdTree(pattern));
    return WdTreeToPattern(*tree);
  }();
  if (stage.active()) {
    if (out.ok()) {
      stage.SetOut(ShapeOfPattern(**out));
    } else {
      stage.SetError(out.status().ToString());
    }
  }
  return out;
}

namespace {

Result<PatternPtr> WellDesignedToAufUnionImpl(const PatternPtr& pattern,
                                              size_t max_subtrees) {
  RDFQL_ASSIGN_OR_RETURN(std::unique_ptr<WdTreeNode> tree,
                         BuildWdTree(pattern));
  std::vector<Block> blocks;
  if (!EnumerateSubtrees(*tree, Block{}, &blocks, max_subtrees)) {
    if (CancellationToken* token = CancellationToken::Current();
        token != nullptr && token->cancelled()) {
      return token->status();
    }
    return Status::ResourceExhausted(
        "wd_to_simple exceeded the subtree limit (" +
        std::to_string(max_subtrees) +
        ") — the Prop 5.6 exponential blowup; raise max_subtrees or "
        "rewrite the query");
  }
  RDFQL_CHECK(!blocks.empty());
  std::vector<PatternPtr> disjuncts;
  disjuncts.reserve(blocks.size());
  for (const Block& b : blocks) disjuncts.push_back(BlockToPattern(b));
  return Pattern::UnionAll(disjuncts);
}

}  // namespace

Result<PatternPtr> WellDesignedToAufUnion(const PatternPtr& pattern,
                                          size_t max_subtrees,
                                          PipelineReport* report) {
  ScopedStage stage(report, "wd_to_auf_union",
                    ShapeIfReporting(report, *pattern));
  Result<PatternPtr> out = WellDesignedToAufUnionImpl(pattern, max_subtrees);
  if (stage.active()) {
    if (out.ok()) {
      PatternShape shape = ShapeOfPattern(**out);
      stage.SetOut(shape);
      stage.SetDetail(std::to_string(shape.union_width) + " disjuncts");
    } else {
      stage.SetError(out.status().ToString());
    }
  }
  return out;
}

Result<PatternPtr> WellDesignedToSimple(const PatternPtr& pattern,
                                        size_t max_subtrees,
                                        PipelineReport* report) {
  ScopedStage stage(report, "wd_to_simple",
                    ShapeIfReporting(report, *pattern));
  // The inner translation reports its own "wd_to_auf_union" stage only when
  // called directly; here the enclosing stage covers it.
  Result<PatternPtr> out = [&]() -> Result<PatternPtr> {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr inner,
                           WellDesignedToAufUnionImpl(pattern, max_subtrees));
    return Pattern::Ns(inner);
  }();
  if (stage.active()) {
    if (out.ok()) {
      PatternShape shape = ShapeOfPattern(**out);
      stage.SetOut(shape);
      stage.SetDetail(std::to_string(shape.union_width) + " disjuncts");
    } else {
      stage.SetError(out.status().ToString());
    }
  }
  return out;
}

}  // namespace rdfql
