#include "transform/union_normal_form.h"

#include <algorithm>

#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

Status TooBig() {
  return Status::ResourceExhausted(
      "union_normal_form exceeded the disjunct limit");
}

Status TooManyNodes(const char* stage, uint64_t predicted, size_t cap) {
  return Status::ResourceExhausted(
      std::string(stage) + " would materialize ~" +
      std::to_string(predicted) + " AST nodes (max_ast_nodes=" +
      std::to_string(cap) +
      ") — this is the paper's exponential blowup; raise the limit or "
      "rewrite the query");
}

/// Cancelled / past-deadline check for the (potentially exponential)
/// transform recursions; OK when no token is installed.
Status StageCheckpoint() {
  CancellationToken* token = CancellationToken::Current();
  if (token != nullptr && !token->Check()) return token->status();
  return Status::Ok();
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > ~b ? ~uint64_t{0} : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > ~uint64_t{0} / b ? ~uint64_t{0} : a * b;
}

/// Σ over the disjuncts of their tree-walk node counts — the size the
/// evaluator actually visits (shared PatternPtr subtrees count per use).
uint64_t TotalNodes(const std::vector<PatternPtr>& disjuncts) {
  uint64_t total = 0;
  for (const PatternPtr& d : disjuncts) {
    total = SatAdd(total, ShapeOfPattern(*d).nodes);
  }
  return total;
}

Result<std::vector<PatternPtr>> Unf(const PatternPtr& p,
                                    const NormalFormLimits& limits) {
  RDFQL_RETURN_IF_ERROR(StageCheckpoint());
  switch (p->kind()) {
    case PatternKind::kTriple:
      return std::vector<PatternPtr>{p};
    case PatternKind::kUnion: {
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> l,
                             Unf(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> r,
                             Unf(p->right(), limits));
      if (l.size() + r.size() > limits.max_disjuncts) return TooBig();
      l.insert(l.end(), r.begin(), r.end());
      return l;
    }
    case PatternKind::kAnd: {
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> l,
                             Unf(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> r,
                             Unf(p->right(), limits));
      if (l.size() * r.size() > limits.max_disjuncts) return TooBig();
      if (limits.max_output_nodes != 0) {
        // Every (a AND b) contributes nodes(a) + nodes(b) + 1 to the
        // evaluator-visible output size; refuse before building any of it.
        uint64_t predicted =
            SatAdd(SatAdd(SatMul(TotalNodes(l), r.size()),
                          SatMul(TotalNodes(r), l.size())),
                   SatMul(l.size(), r.size()));
        if (predicted > limits.max_output_nodes) {
          return TooManyNodes("union_normal_form", predicted,
                              limits.max_output_nodes);
        }
      }
      std::vector<PatternPtr> out;
      out.reserve(l.size() * r.size());
      for (const PatternPtr& a : l) {
        for (const PatternPtr& b : r) {
          out.push_back(Pattern::And(a, b));
        }
      }
      return out;
    }
    case PatternKind::kOpt: {
      // (P1 OPT P2) ≡ (P1 AND P2) UNION (P1 MINUS P2); both halves then
      // distribute over the disjuncts of P1 and P2.
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> l,
                             Unf(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> r,
                             Unf(p->right(), limits));
      size_t total = l.size() * r.size() + l.size();
      if (total > limits.max_disjuncts) return TooBig();
      if (limits.max_output_nodes != 0) {
        uint64_t ln = TotalNodes(l);
        uint64_t rn = TotalNodes(r);
        // AND half: nodes(a)+nodes(b)+1 per pair; MINUS half: each a keeps
        // its own nodes plus one chained MINUS over all of r's disjuncts.
        uint64_t and_half = SatAdd(SatAdd(SatMul(ln, r.size()),
                                          SatMul(rn, l.size())),
                                   SatMul(l.size(), r.size()));
        uint64_t minus_half =
            SatAdd(ln, SatMul(l.size(), SatAdd(rn, r.size())));
        uint64_t predicted = SatAdd(and_half, minus_half);
        if (predicted > limits.max_output_nodes) {
          return TooManyNodes("union_normal_form", predicted,
                              limits.max_output_nodes);
        }
      }
      std::vector<PatternPtr> out;
      out.reserve(total);
      for (const PatternPtr& a : l) {
        for (const PatternPtr& b : r) {
          out.push_back(Pattern::And(a, b));
        }
      }
      for (const PatternPtr& a : l) {
        // P1 MINUS (D1 ∪ ... ∪ Dm) ≡ ((P1 MINUS D1) ... MINUS Dm).
        PatternPtr acc = a;
        for (const PatternPtr& b : r) acc = Pattern::Minus(acc, b);
        out.push_back(acc);
      }
      return out;
    }
    case PatternKind::kMinus: {
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> l,
                             Unf(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> r,
                             Unf(p->right(), limits));
      if (limits.max_output_nodes != 0) {
        uint64_t predicted =
            SatAdd(TotalNodes(l),
                   SatMul(l.size(), SatAdd(TotalNodes(r), r.size())));
        if (predicted > limits.max_output_nodes) {
          return TooManyNodes("union_normal_form", predicted,
                              limits.max_output_nodes);
        }
      }
      std::vector<PatternPtr> out;
      out.reserve(l.size());
      for (const PatternPtr& a : l) {
        PatternPtr acc = a;
        for (const PatternPtr& b : r) acc = Pattern::Minus(acc, b);
        out.push_back(acc);
      }
      return out;
    }
    case PatternKind::kFilter: {
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> inner,
                             Unf(p->child(), limits));
      std::vector<PatternPtr> out;
      out.reserve(inner.size());
      for (const PatternPtr& a : inner) {
        out.push_back(Pattern::Filter(a, p->condition()));
      }
      return out;
    }
    case PatternKind::kSelect: {
      RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> inner,
                             Unf(p->child(), limits));
      std::vector<PatternPtr> out;
      out.reserve(inner.size());
      for (const PatternPtr& a : inner) {
        out.push_back(Pattern::Select(p->projection(), a));
      }
      return out;
    }
    case PatternKind::kNs:
      return Status::InvalidArgument(
          "UnionNormalForm requires an NS-free pattern (run EliminateNs "
          "first)");
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return std::vector<PatternPtr>{};
}

}  // namespace

Result<std::vector<PatternPtr>> UnionNormalForm(
    const PatternPtr& pattern, const NormalFormLimits& limits,
    PipelineReport* report) {
  RDFQL_CHECK(pattern != nullptr);
  ScopedStage stage(report, "union_normal_form",
                    ShapeIfReporting(report, *pattern));
  Result<std::vector<PatternPtr>> out = Unf(pattern, limits);
  if (stage.active()) {
    if (out.ok()) {
      // Shape of the equivalent D1 UNION ... UNION Dn.
      PatternShape shape;
      shape.vars = pattern->Vars().size();
      shape.union_width = out->size();
      for (const PatternPtr& d : *out) {
        shape.nodes += ShapeOfPattern(*d).nodes;
      }
      shape.nodes += out->empty() ? 0 : out->size() - 1;
      stage.SetOut(shape);
      stage.SetDetail(std::to_string(out->size()) + " disjuncts");
    } else {
      stage.SetError(out.status().ToString());
    }
  }
  return out;
}

std::vector<VarId> CertainVars(const PatternPtr& pattern) {
  switch (pattern->kind()) {
    case PatternKind::kTriple:
      return pattern->Vars();
    case PatternKind::kAnd: {
      std::vector<VarId> l = CertainVars(pattern->left());
      std::vector<VarId> r = CertainVars(pattern->right());
      std::vector<VarId> out;
      std::set_union(l.begin(), l.end(), r.begin(), r.end(),
                     std::back_inserter(out));
      return out;
    }
    case PatternKind::kUnion: {
      std::vector<VarId> l = CertainVars(pattern->left());
      std::vector<VarId> r = CertainVars(pattern->right());
      std::vector<VarId> out;
      std::set_intersection(l.begin(), l.end(), r.begin(), r.end(),
                            std::back_inserter(out));
      return out;
    }
    case PatternKind::kOpt:
    case PatternKind::kMinus:
      return CertainVars(pattern->left());
    case PatternKind::kFilter:
    case PatternKind::kNs:
      return CertainVars(pattern->child());
    case PatternKind::kSelect: {
      std::vector<VarId> inner = CertainVars(pattern->child());
      std::vector<VarId> out;
      std::set_intersection(inner.begin(), inner.end(),
                            pattern->projection().begin(),
                            pattern->projection().end(),
                            std::back_inserter(out));
      return out;
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return {};
}

namespace {

Result<std::vector<FixedDomainDisjunct>> FixedDomainUnfImpl(
    const PatternPtr& pattern, const NormalFormLimits& limits) {
  RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> disjuncts,
                         UnionNormalForm(pattern, limits));

  std::vector<FixedDomainDisjunct> out;
  uint64_t predicted_nodes = 0;
  for (const PatternPtr& d : disjuncts) {
    RDFQL_RETURN_IF_ERROR(StageCheckpoint());
    // Lemma D.2 conjoins, for every V ⊆ var(P), the bound/!bound profile of
    // V onto every disjunct. Profiles outside [certain(D), scope(D)] yield
    // empty disjuncts and are pruned (the enumeration below only walks the
    // free positions, so the blow-up is 2^|scope \ certain| per disjunct).
    std::vector<VarId> certain = CertainVars(d);
    const std::vector<VarId>& scope = d->ScopeVars();
    std::vector<VarId> optional_vars;
    std::set_difference(scope.begin(), scope.end(), certain.begin(),
                        certain.end(), std::back_inserter(optional_vars));
    if (optional_vars.size() >= 30 ||
        out.size() + (size_t{1} << optional_vars.size()) >
            limits.max_disjuncts) {
      return TooBig();
    }
    if (limits.max_output_nodes != 0) {
      // Each of the 2^k profile copies carries the disjunct plus a FILTER
      // over a k-conjunct bound/!bound profile (≈ 2k builtin nodes).
      predicted_nodes = SatAdd(
          predicted_nodes,
          SatMul(uint64_t{1} << optional_vars.size(),
                 SatAdd(ShapeOfPattern(*d).nodes,
                        2 * optional_vars.size() + 1)));
      if (predicted_nodes > limits.max_output_nodes) {
        return TooManyNodes("fixed_domain_unf", predicted_nodes,
                            limits.max_output_nodes);
      }
    }
    for (uint64_t mask = 0; mask < (uint64_t{1} << optional_vars.size());
         ++mask) {
      std::vector<VarId> domain = certain;
      std::vector<BuiltinPtr> profile;
      for (size_t i = 0; i < optional_vars.size(); ++i) {
        if (mask & (uint64_t{1} << i)) {
          domain.push_back(optional_vars[i]);
          profile.push_back(Builtin::Bound(optional_vars[i]));
        } else {
          profile.push_back(Builtin::Not(Builtin::Bound(optional_vars[i])));
        }
      }
      std::sort(domain.begin(), domain.end());
      PatternPtr constrained =
          profile.empty() ? d : Pattern::Filter(d, Builtin::AndAll(profile));
      out.push_back(FixedDomainDisjunct{constrained, std::move(domain)});
    }
  }
  return out;
}

}  // namespace

Result<std::vector<FixedDomainDisjunct>> FixedDomainUnionNormalForm(
    const PatternPtr& pattern, const NormalFormLimits& limits,
    PipelineReport* report) {
  ScopedStage stage(report, "fixed_domain_unf",
                    ShapeIfReporting(report, *pattern));
  Result<std::vector<FixedDomainDisjunct>> result =
      FixedDomainUnfImpl(pattern, limits);
  if (stage.active()) {
    if (result.ok()) {
      PatternShape shape;
      shape.vars = pattern->Vars().size();
      shape.union_width = result->size();
      for (const FixedDomainDisjunct& d : *result) {
        shape.nodes += ShapeOfPattern(*d.pattern).nodes;
      }
      shape.nodes += result->empty() ? 0 : result->size() - 1;
      stage.SetOut(shape);
      stage.SetDetail(std::to_string(result->size()) + " disjuncts");
    } else {
      stage.SetError(result.status().ToString());
    }
  }
  return result;
}

}  // namespace rdfql
