#ifndef RDFQL_TRANSFORM_NS_ELIMINATION_H_
#define RDFQL_TRANSFORM_NS_ELIMINATION_H_

#include "algebra/pattern.h"
#include "obs/pipeline.h"
#include "transform/union_normal_form.h"
#include "util/status.h"

namespace rdfql {

/// Theorem 5.1 / Lemma D.3: rewrites an NS–SPARQL pattern into an
/// equivalent SPARQL pattern (no NS nodes; the result may use MINUS, which
/// is itself SPARQL-definable — see DesugarMinus).
///
/// The algorithm processes NS nodes innermost-first; for each NS(Q) it
/// builds the fixed-domain UNION normal form of Q (Lemma D.2) and replaces
/// each disjunct D with domain V by
///     D MINUS (D''_1 UNION ... UNION D''_k)
/// over the disjuncts D''_i whose domain strictly contains V. The size of
/// the output is double-exponential in the input in the worst case
/// (bench_ns_elimination measures the curve); `limits` caps the work.
///
/// With a non-null `report`, records one "ns_elimination" pipeline stage
/// (wall time, input/output PatternShape, blowup) — as do all the public
/// transforms in this directory for their own stage names.
Result<PatternPtr> EliminateNs(const PatternPtr& pattern,
                               const NormalFormLimits& limits = {},
                               PipelineReport* report = nullptr);

}  // namespace rdfql

#endif  // RDFQL_TRANSFORM_NS_ELIMINATION_H_
