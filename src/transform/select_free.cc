#include "transform/select_free.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

PatternPtr Sf(const PatternPtr& p, Dictionary* dict) {
  // Once the pipeline's token trips, stop rewriting and hand back the node
  // unchanged; TranslateExplained checks the token after every stage and
  // discards the partial output.
  if (!CooperativeCheckpoint()) [[unlikely]] {
    return p;
  }
  switch (p->kind()) {
    case PatternKind::kTriple:
      return p;
    case PatternKind::kSelect: {
      // Replace in (P')_sf every variable of var(P') \ V by a fresh one;
      // freshly generated names are globally unique, so sibling disjointness
      // (Definition F.1's side condition) holds by construction.
      PatternPtr inner = Sf(p->child(), dict);
      std::map<VarId, VarId> renaming;
      for (VarId v : p->child()->Vars()) {
        if (!std::binary_search(p->projection().begin(),
                                p->projection().end(), v)) {
          renaming[v] = dict->FreshVar("sf_" + dict->VarName(v));
        }
      }
      return Pattern::RenameVars(inner, renaming);
    }
    case PatternKind::kAnd:
      return Pattern::And(Sf(p->left(), dict), Sf(p->right(), dict));
    case PatternKind::kUnion:
      return Pattern::Union(Sf(p->left(), dict), Sf(p->right(), dict));
    case PatternKind::kOpt:
      return Pattern::Opt(Sf(p->left(), dict), Sf(p->right(), dict));
    case PatternKind::kMinus:
      return Pattern::Minus(Sf(p->left(), dict), Sf(p->right(), dict));
    case PatternKind::kFilter:
      return Pattern::Filter(Sf(p->child(), dict), p->condition());
    case PatternKind::kNs:
      return Pattern::Ns(Sf(p->child(), dict));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace

PatternPtr SelectFreeVersion(const PatternPtr& pattern, Dictionary* dict,
                             PipelineReport* report) {
  RDFQL_CHECK(pattern != nullptr);
  ScopedStage stage(report, "select_free",
                    ShapeIfReporting(report, *pattern));
  PatternPtr out = Sf(pattern, dict);
  if (stage.active()) stage.SetOut(ShapeOfPattern(*out));
  return out;
}

}  // namespace rdfql
