#ifndef RDFQL_TRANSFORM_WD_TO_SIMPLE_H_
#define RDFQL_TRANSFORM_WD_TO_SIMPLE_H_

#include <memory>
#include <vector>

#include "algebra/pattern.h"
#include "obs/pipeline.h"
#include "util/status.h"

namespace rdfql {

/// A well-designed pattern tree: each node is an AND/FILTER block (a set of
/// triple patterns plus filter conditions); each child hangs off its parent
/// by an implicit OPT. This is the normal form underlying Proposition 5.6
/// (and the literature on well-designed SPARQL, [23]/[32]).
struct WdTreeNode {
  std::vector<TriplePattern> triples;
  std::vector<BuiltinPtr> filters;
  std::vector<std::unique_ptr<WdTreeNode>> children;
};

/// Builds the pattern tree of a well-designed SPARQL[AOF] pattern.
/// Fails with InvalidArgument if the pattern is not well designed.
Result<std::unique_ptr<WdTreeNode>> BuildWdTree(const PatternPtr& pattern);

/// Proposition 5.6 (constructive direction): translates a well-designed
/// SPARQL[AOF] pattern with arbitrarily nested OPT into an equivalent
/// simple pattern NS(Q1 UNION ... UNION Qk) with one NS at the top, where
/// every Qi is a conjunctive AND/FILTER pattern — one per connected subtree
/// of the pattern tree containing the root. The number of subtrees is
/// exponential in the tree size in the worst case; `max_subtrees` caps it.
Result<PatternPtr> WellDesignedToSimple(const PatternPtr& pattern,
                                        size_t max_subtrees = 1u << 16,
                                        PipelineReport* report = nullptr);

/// Rebuilds a pattern from a well-designed pattern tree: the node's block
/// is the AND of its triples (FILTERed by its conditions), children attach
/// with nested OPTs. Inverse of `BuildWdTree` up to equivalence.
PatternPtr WdTreeToPattern(const WdTreeNode& node);

/// Proposition A.1, made constructive: every well-designed SPARQL[AOF]
/// pattern is equivalent to one in OPT normal form
/// (...((P1 OPT P2) OPT P3)... with P1 OPT-free) — obtained by a
/// tree round trip. Fails for non-well-designed inputs.
Result<PatternPtr> ToOptNormalForm(const PatternPtr& pattern,
                                   PipelineReport* report = nullptr);

/// The inner SPARQL[AUF] union of `WellDesignedToSimple` without the
/// enclosing NS — this is the subsumption-equivalent monotone pattern
/// promised by Theorem 4.1 for well-designed inputs.
Result<PatternPtr> WellDesignedToAufUnion(const PatternPtr& pattern,
                                          size_t max_subtrees = 1u << 16,
                                          PipelineReport* report = nullptr);

}  // namespace rdfql

#endif  // RDFQL_TRANSFORM_WD_TO_SIMPLE_H_
