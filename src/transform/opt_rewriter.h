#ifndef RDFQL_TRANSFORM_OPT_REWRITER_H_
#define RDFQL_TRANSFORM_OPT_REWRITER_H_

#include "algebra/pattern.h"
#include "obs/pipeline.h"
#include "rdf/dictionary.h"

namespace rdfql {

/// Section 5.1: replaces every OPT node by the NS encoding
///     (P1 OPT P2)  ⇝  NS(P1 UNION (P1 AND P2)).
/// The result is subsumption-equivalent to the input, and exactly
/// equivalent whenever the input is subsumption-free (in general
/// NS(P1 UNION (P1 AND P2)) ≡ NS(P1 OPT P2) — the NS encoding keeps the
/// maximal answers). The rewrite shows NS is "an alternative way of
/// obtaining optional information".
PatternPtr RewriteOptToNs(const PatternPtr& pattern,
                          PipelineReport* report = nullptr);

/// Appendix D: desugars every MINUS node into pure SPARQL,
///     P1 MINUS P2  ⇝  (P1 OPT (P2 AND (?v1 ?v2 ?v3))) FILTER !bound(?v1)
/// with fresh variables ?v1 ?v2 ?v3 interned in `dict`.
PatternPtr DesugarMinus(const PatternPtr& pattern, Dictionary* dict,
                        PipelineReport* report = nullptr);

/// The monotone envelope of a pattern: strips every non-monotone construct
/// upward,
///     P1 OPT P2   ⇝  (P1 AND P2) UNION P1,
///     P1 MINUS P2 ⇝  P1,
///     NS(P)       ⇝  P,
/// yielding a pattern in SPARQL[AUFS] (for inputs over AUOFS+NS+MINUS)
/// that satisfies ⟦P⟧G ⊆ ⟦envelope⟧G on every graph.
///
/// This is the constructive candidate for Theorem 4.1: when P is (weakly)
/// monotone enough, envelope ≡s P — `FindAufsTranslation` in
/// fo/interpolant_search.h verifies that claim instance by instance.
PatternPtr MonotoneEnvelope(const PatternPtr& pattern,
                            PipelineReport* report = nullptr);

}  // namespace rdfql

#endif  // RDFQL_TRANSFORM_OPT_REWRITER_H_
