#include "transform/opt_rewriter.h"

#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

// Generic bottom-up rebuild with a per-node hook for the interesting kinds.
template <typename OptFn, typename MinusFn, typename NsFn>
PatternPtr Rebuild(const PatternPtr& p, const OptFn& on_opt,
                   const MinusFn& on_minus, const NsFn& on_ns) {
  // Cooperative early-out: a tripped token stops the walk (the node comes
  // back unchanged; the pipeline driver turns the trip into an error).
  if (!CooperativeCheckpoint()) [[unlikely]] {
    return p;
  }
  switch (p->kind()) {
    case PatternKind::kTriple:
      return p;
    case PatternKind::kAnd:
      return Pattern::And(Rebuild(p->left(), on_opt, on_minus, on_ns),
                          Rebuild(p->right(), on_opt, on_minus, on_ns));
    case PatternKind::kUnion:
      return Pattern::Union(Rebuild(p->left(), on_opt, on_minus, on_ns),
                            Rebuild(p->right(), on_opt, on_minus, on_ns));
    case PatternKind::kOpt:
      return on_opt(Rebuild(p->left(), on_opt, on_minus, on_ns),
                    Rebuild(p->right(), on_opt, on_minus, on_ns));
    case PatternKind::kMinus:
      return on_minus(Rebuild(p->left(), on_opt, on_minus, on_ns),
                      Rebuild(p->right(), on_opt, on_minus, on_ns));
    case PatternKind::kFilter:
      return Pattern::Filter(Rebuild(p->child(), on_opt, on_minus, on_ns),
                             p->condition());
    case PatternKind::kSelect:
      return Pattern::Select(p->projection(),
                             Rebuild(p->child(), on_opt, on_minus, on_ns));
    case PatternKind::kNs:
      return on_ns(Rebuild(p->child(), on_opt, on_minus, on_ns));
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace

PatternPtr RewriteOptToNs(const PatternPtr& pattern,
                          PipelineReport* report) {
  ScopedStage stage(report, "opt_to_ns", ShapeIfReporting(report, *pattern));
  PatternPtr out = Rebuild(
      pattern,
      [](PatternPtr l, PatternPtr r) {
        return Pattern::Ns(Pattern::Union(l, Pattern::And(l, r)));
      },
      [](PatternPtr l, PatternPtr r) { return Pattern::Minus(l, r); },
      [](PatternPtr c) { return Pattern::Ns(c); });
  if (stage.active()) stage.SetOut(ShapeOfPattern(*out));
  return out;
}

PatternPtr DesugarMinus(const PatternPtr& pattern, Dictionary* dict,
                        PipelineReport* report) {
  ScopedStage stage(report, "desugar_minus",
                    ShapeIfReporting(report, *pattern));
  PatternPtr out = Rebuild(
      pattern,
      [](PatternPtr l, PatternPtr r) { return Pattern::Opt(l, r); },
      [dict](PatternPtr l, PatternPtr r) {
        VarId v1 = dict->FreshVar("m1");
        VarId v2 = dict->FreshVar("m2");
        VarId v3 = dict->FreshVar("m3");
        PatternPtr probe = Pattern::MakeTriple(
            Term::Var(v1), Term::Var(v2), Term::Var(v3));
        return Pattern::Filter(
            Pattern::Opt(l, Pattern::And(r, probe)),
            Builtin::Not(Builtin::Bound(v1)));
      },
      [](PatternPtr c) { return Pattern::Ns(c); });
  if (stage.active()) stage.SetOut(ShapeOfPattern(*out));
  return out;
}

PatternPtr MonotoneEnvelope(const PatternPtr& pattern,
                            PipelineReport* report) {
  ScopedStage stage(report, "monotone_envelope",
                    ShapeIfReporting(report, *pattern));
  PatternPtr out = Rebuild(
      pattern,
      [](PatternPtr l, PatternPtr r) {
        return Pattern::Union(Pattern::And(l, r), l);
      },
      [](PatternPtr l, PatternPtr) { return l; },
      [](PatternPtr c) { return c; });
  if (stage.active()) stage.SetOut(ShapeOfPattern(*out));
  return out;
}

}  // namespace rdfql
