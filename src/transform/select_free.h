#ifndef RDFQL_TRANSFORM_SELECT_FREE_H_
#define RDFQL_TRANSFORM_SELECT_FREE_H_

#include "algebra/pattern.h"
#include "obs/pipeline.h"
#include "rdf/dictionary.h"

namespace rdfql {

/// The SELECT-free version P_sf of a pattern (Definition F.1, used by
/// Proposition 6.7 to strip SELECT from CONSTRUCT[AUFS] queries).
///
/// Every SELECT node is removed and the variables it would have projected
/// away are renamed to fresh variables; sibling subpatterns receive
/// disjoint fresh variables. Lemma F.2 relates P and P_sf: µ ∈ ⟦P⟧G iff
/// some µ' ∈ ⟦P_sf⟧G has µ ⪯ µ' and dom(µ) = dom(µ') ∩ var(P).
PatternPtr SelectFreeVersion(const PatternPtr& pattern, Dictionary* dict,
                             PipelineReport* report = nullptr);

}  // namespace rdfql

#endif  // RDFQL_TRANSFORM_SELECT_FREE_H_
