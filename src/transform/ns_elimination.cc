#include "transform/ns_elimination.h"

#include <algorithm>

#include "util/check.h"
#include "util/limits.h"

namespace rdfql {
namespace {

bool StrictSubset(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  return a.size() < b.size() &&
         std::includes(b.begin(), b.end(), a.begin(), a.end());
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > ~b ? ~uint64_t{0} : a + b;
}

// Rewrites one NS node whose child `q` is already NS-free.
Result<PatternPtr> EliminateOneNs(const PatternPtr& q,
                                  const NormalFormLimits& limits) {
  RDFQL_ASSIGN_OR_RETURN(std::vector<FixedDomainDisjunct> disjuncts,
                         FixedDomainUnionNormalForm(q, limits));
  RDFQL_CHECK(!disjuncts.empty());

  if (limits.max_output_nodes != 0) {
    // Pre-flight Lemma D.3's output before building it: disjunct i keeps
    // its own nodes and subtracts a UNION over every strictly-larger-domain
    // disjunct, so the output is quadratic in the (already exponential)
    // disjunct count — the double-exponential face of Thm 5.1.
    std::vector<uint64_t> nodes(disjuncts.size());
    for (size_t i = 0; i < disjuncts.size(); ++i) {
      nodes[i] = ShapeOfPattern(*disjuncts[i].pattern).nodes;
    }
    uint64_t predicted = 0;
    for (size_t i = 0; i < disjuncts.size(); ++i) {
      predicted = SatAdd(predicted, nodes[i]);
      for (size_t j = 0; j < disjuncts.size(); ++j) {
        if (StrictSubset(disjuncts[i].domain, disjuncts[j].domain)) {
          predicted = SatAdd(predicted, SatAdd(nodes[j], 2));
        }
      }
      if (predicted > limits.max_output_nodes) {
        return Status::ResourceExhausted(
            "ns_elimination would materialize ~" + std::to_string(predicted) +
            "+ AST nodes (max_ast_nodes=" +
            std::to_string(limits.max_output_nodes) +
            ") — the Thm 5.1 double-exponential blowup; raise the limit or "
            "rewrite the query");
      }
    }
  }

  std::vector<PatternPtr> pieces;
  pieces.reserve(disjuncts.size());
  for (const FixedDomainDisjunct& d : disjuncts) {
    // Subtract every disjunct with a strictly larger domain: a mapping of
    // `d` survives NS iff it is compatible with no mapping binding strictly
    // more variables (Lemma D.3).
    std::vector<PatternPtr> larger;
    for (const FixedDomainDisjunct& other : disjuncts) {
      if (StrictSubset(d.domain, other.domain)) {
        larger.push_back(other.pattern);
      }
    }
    if (larger.empty()) {
      pieces.push_back(d.pattern);
    } else {
      pieces.push_back(Pattern::Minus(d.pattern, Pattern::UnionAll(larger)));
    }
  }
  return Pattern::UnionAll(pieces);
}

Result<PatternPtr> Eliminate(const PatternPtr& p,
                             const NormalFormLimits& limits) {
  if (CancellationToken* token = CancellationToken::Current();
      token != nullptr && !token->Check()) {
    return token->status();
  }
  switch (p->kind()) {
    case PatternKind::kTriple:
      return p;
    case PatternKind::kAnd: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr l, Eliminate(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr r, Eliminate(p->right(), limits));
      return Pattern::And(l, r);
    }
    case PatternKind::kUnion: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr l, Eliminate(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr r, Eliminate(p->right(), limits));
      return Pattern::Union(l, r);
    }
    case PatternKind::kOpt: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr l, Eliminate(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr r, Eliminate(p->right(), limits));
      return Pattern::Opt(l, r);
    }
    case PatternKind::kMinus: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr l, Eliminate(p->left(), limits));
      RDFQL_ASSIGN_OR_RETURN(PatternPtr r, Eliminate(p->right(), limits));
      return Pattern::Minus(l, r);
    }
    case PatternKind::kFilter: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr c, Eliminate(p->child(), limits));
      return Pattern::Filter(c, p->condition());
    }
    case PatternKind::kSelect: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr c, Eliminate(p->child(), limits));
      return Pattern::Select(p->projection(), c);
    }
    case PatternKind::kNs: {
      RDFQL_ASSIGN_OR_RETURN(PatternPtr c, Eliminate(p->child(), limits));
      return EliminateOneNs(c, limits);
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return Status::Internal("unreachable");
}

}  // namespace

Result<PatternPtr> EliminateNs(const PatternPtr& pattern,
                               const NormalFormLimits& limits,
                               PipelineReport* report) {
  RDFQL_CHECK(pattern != nullptr);
  ScopedStage stage(report, "ns_elimination",
                    ShapeIfReporting(report, *pattern));
  Result<PatternPtr> out = Eliminate(pattern, limits);
  if (stage.active()) {
    if (out.ok()) {
      stage.SetOut(ShapeOfPattern(**out));
    } else {
      stage.SetError(out.status().ToString());
    }
  }
  return out;
}

}  // namespace rdfql
