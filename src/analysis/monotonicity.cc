#include "analysis/monotonicity.h"

#include <vector>

#include "eval/ns.h"
#include "util/random.h"

namespace rdfql {
namespace {

// The IRI pool counterexample graphs draw from: every IRI of the pattern
// plus a few fresh ones (fresh IRIs are essential — e.g. the witnesses of
// Theorems 3.5/3.6 need triples over IRIs absent from the pattern).
std::vector<TermId> BuildIriPool(const PatternPtr& pattern, Dictionary* dict,
                                 int fresh_iris) {
  std::vector<TermId> pool = pattern->Iris();
  for (int i = 0; i < fresh_iris; ++i) {
    pool.push_back(dict->InternIri("mono_pool_" + std::to_string(i)));
  }
  return pool;
}

void CollectTriplePatterns(const Pattern& p, std::vector<TriplePattern>* out) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      out->push_back(p.triple());
      return;
    case PatternKind::kFilter:
    case PatternKind::kSelect:
    case PatternKind::kNs:
      CollectTriplePatterns(*p.child(), out);
      return;
    default:
      CollectTriplePatterns(*p.left(), out);
      CollectTriplePatterns(*p.right(), out);
      return;
  }
}

// Draws one triple, biased towards instantiations of the pattern's own
// triple patterns (fully random triples almost never hit the constants a
// pattern mentions, which would make the testers blind).
Triple RandomTriple(const std::vector<TermId>& pool,
                    const std::vector<TriplePattern>& shapes, Rng* rng) {
  if (!shapes.empty() && rng->NextBool(0.7)) {
    const TriplePattern& t = shapes[rng->NextBelow(shapes.size())];
    auto instantiate = [&pool, rng](Term term) {
      return term.is_iri() ? term.iri() : rng->Pick(pool);
    };
    return Triple(instantiate(t.s), instantiate(t.p), instantiate(t.o));
  }
  return Triple(rng->Pick(pool), rng->Pick(pool), rng->Pick(pool));
}

Graph RandomGraph(const std::vector<TermId>& pool,
                  const std::vector<TriplePattern>& shapes, int max_triples,
                  Rng* rng) {
  Graph g;
  int n = static_cast<int>(rng->NextBelow(max_triples + 1));
  for (int i = 0; i < n; ++i) {
    g.Insert(RandomTriple(pool, shapes, rng));
  }
  return g;
}

Graph ExtendGraph(const Graph& base, const std::vector<TermId>& pool,
                  const std::vector<TriplePattern>& shapes, int max_extra,
                  Rng* rng) {
  Graph g = base;
  int n = 1 + static_cast<int>(rng->NextBelow(max_extra));
  for (int i = 0; i < n; ++i) {
    g.Insert(RandomTriple(pool, shapes, rng));
  }
  return g;
}

using PairPredicate =
    std::function<std::optional<Mapping>(const MappingSet&, const MappingSet&)>;

// Shared driver: draws (G1, G2 ⊇ G1) pairs and applies `violation`, which
// returns a witness mapping if the property fails on that pair.
std::optional<PropertyCounterexample> SearchPairs(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options, const PairPredicate& violation,
    const std::string& what) {
  std::vector<TermId> pool = BuildIriPool(pattern, dict, options.fresh_iris);
  std::vector<TriplePattern> shapes;
  CollectTriplePatterns(*pattern, &shapes);
  Rng rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Graph g1 = RandomGraph(pool, shapes, options.max_base_triples, &rng);
    Graph g2 =
        ExtendGraph(g1, pool, shapes, options.max_extra_triples, &rng);
    MappingSet r1 = EvalPattern(g1, pattern);
    MappingSet r2 = EvalPattern(g2, pattern);
    std::optional<Mapping> witness = violation(r1, r2);
    if (witness.has_value()) {
      PropertyCounterexample ce;
      ce.g1 = std::move(g1);
      ce.g2 = std::move(g2);
      ce.witness = *witness;
      ce.explanation = what;
      return ce;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<PropertyCounterexample> FindWeakMonotonicityCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options) {
  return SearchPairs(
      pattern, dict, options,
      [](const MappingSet& r1, const MappingSet& r2) -> std::optional<Mapping> {
        for (const Mapping& m : r1) {
          bool subsumed = false;
          for (const Mapping& m2 : r2) {
            if (m.SubsumedBy(m2)) {
              subsumed = true;
              break;
            }
          }
          if (!subsumed) return m;
        }
        return std::nullopt;
      },
      "mapping from eval over G1 is subsumed by no mapping over G2 ⊇ G1");
}

std::optional<PropertyCounterexample> FindMonotonicityCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options) {
  return SearchPairs(
      pattern, dict, options,
      [](const MappingSet& r1, const MappingSet& r2) -> std::optional<Mapping> {
        for (const Mapping& m : r1) {
          if (!r2.Contains(m)) return m;
        }
        return std::nullopt;
      },
      "mapping from eval over G1 is absent from eval over G2 ⊇ G1");
}

std::optional<PropertyCounterexample> FindSubsumptionFreenessCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options) {
  std::vector<TermId> pool = BuildIriPool(pattern, dict, options.fresh_iris);
  std::vector<TriplePattern> shapes;
  CollectTriplePatterns(*pattern, &shapes);
  Rng rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Graph g = RandomGraph(
        pool, shapes, options.max_base_triples + options.max_extra_triples,
        &rng);
    MappingSet r = EvalPattern(g, pattern);
    for (const Mapping& m : r) {
      for (const Mapping& other : r) {
        if (m.ProperlySubsumedBy(other)) {
          PropertyCounterexample ce;
          ce.g1 = g;
          ce.g2 = std::move(g);
          ce.witness = m;
          ce.explanation = "answer properly subsumed by another answer";
          return ce;
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> FindEquivalenceGap(
    const PatternPtr& p, const PatternPtr& q, Dictionary* dict,
    const MonotonicityOptions& options) {
  std::vector<TermId> pool = BuildIriPool(p, dict, options.fresh_iris);
  for (TermId iri : q->Iris()) pool.push_back(iri);
  std::vector<TriplePattern> shapes;
  CollectTriplePatterns(*p, &shapes);
  CollectTriplePatterns(*q, &shapes);
  Rng rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Graph g = RandomGraph(
        pool, shapes, options.max_base_triples + options.max_extra_triples,
        &rng);
    MappingSet rp = EvalPattern(g, p);
    MappingSet rq = EvalPattern(g, q);
    if (rp == rq) continue;
    Mapping witness;
    for (const Mapping& m : rp) {
      if (!rq.Contains(m)) {
        witness = m;
        break;
      }
    }
    for (const Mapping& m : rq) {
      if (!rp.Contains(m)) {
        witness = m;
        break;
      }
    }
    return PropertyCounterexample{g, g, witness,
                                  "⟦P⟧G differs from ⟦Q⟧G"};
  }
  return std::nullopt;
}

bool LooksWeaklyMonotone(const PatternPtr& pattern, Dictionary* dict,
                         const MonotonicityOptions& options) {
  return !FindWeakMonotonicityCounterexample(pattern, dict, options)
              .has_value();
}

bool LooksMonotone(const PatternPtr& pattern, Dictionary* dict,
                   const MonotonicityOptions& options) {
  return !FindMonotonicityCounterexample(pattern, dict, options).has_value();
}

bool LooksSubsumptionFree(const PatternPtr& pattern, Dictionary* dict,
                          const MonotonicityOptions& options) {
  return !FindSubsumptionFreenessCounterexample(pattern, dict, options)
              .has_value();
}

}  // namespace rdfql
