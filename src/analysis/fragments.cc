#include "analysis/fragments.h"

#include "analysis/well_designed.h"
#include "util/check.h"

namespace rdfql {
namespace {

void Collect(const Pattern& p, OperatorProfile* out) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      return;
    case PatternKind::kAnd:
      out->uses_and = true;
      break;
    case PatternKind::kUnion:
      out->uses_union = true;
      break;
    case PatternKind::kOpt:
      out->uses_opt = true;
      break;
    case PatternKind::kMinus:
      out->uses_minus = true;
      break;
    case PatternKind::kFilter:
      out->uses_filter = true;
      break;
    case PatternKind::kSelect:
      out->uses_select = true;
      break;
    case PatternKind::kNs:
      out->uses_ns = true;
      break;
  }
  switch (p.kind()) {
    case PatternKind::kFilter:
    case PatternKind::kSelect:
    case PatternKind::kNs:
      Collect(*p.child(), out);
      return;
    default:
      Collect(*p.left(), out);
      Collect(*p.right(), out);
      return;
  }
}

}  // namespace

OperatorProfile GetOperatorProfile(const PatternPtr& pattern) {
  RDFQL_CHECK(pattern != nullptr);
  OperatorProfile out;
  Collect(*pattern, &out);
  return out;
}

bool InFragment(const PatternPtr& pattern, std::string_view letters) {
  OperatorProfile prof = GetOperatorProfile(pattern);
  if (prof.uses_ns) return false;
  bool allow_and = false, allow_union = false, allow_opt = false,
       allow_filter = false, allow_select = false;
  for (char c : letters) {
    switch (c) {
      case 'A':
        allow_and = true;
        break;
      case 'U':
        allow_union = true;
        break;
      case 'O':
        allow_opt = true;
        break;
      case 'F':
        allow_filter = true;
        break;
      case 'S':
        allow_select = true;
        break;
      default:
        RDFQL_CHECK_MSG(false, "unknown fragment letter");
    }
  }
  if (prof.uses_and && !allow_and) return false;
  if (prof.uses_union && !allow_union) return false;
  if (prof.uses_opt && !allow_opt) return false;
  if (prof.uses_filter && !allow_filter) return false;
  if (prof.uses_select && !allow_select) return false;
  // MINUS desugars to OPT + FILTER (Appendix D).
  if (prof.uses_minus && (!allow_opt || !allow_filter)) return false;
  return true;
}

bool IsSimplePattern(const PatternPtr& pattern) {
  if (pattern == nullptr || pattern->kind() != PatternKind::kNs) return false;
  return InFragment(pattern->child(), "AUFS");
}

bool IsNsPattern(const PatternPtr& pattern) {
  return NsPatternWidth(pattern) > 0;
}

size_t NsPatternWidth(const PatternPtr& pattern) {
  if (pattern == nullptr) return 0;
  std::vector<PatternPtr> disjuncts = TopLevelDisjuncts(pattern);
  for (const PatternPtr& d : disjuncts) {
    if (!IsSimplePattern(d)) return 0;
  }
  return disjuncts.size();
}

bool IsProjectedSimplePattern(const PatternPtr& pattern) {
  if (pattern == nullptr) return false;
  if (IsSimplePattern(pattern)) return true;
  return pattern->kind() == PatternKind::kSelect &&
         IsSimplePattern(pattern->child());
}

bool IsProjectedNsPattern(const PatternPtr& pattern) {
  if (pattern == nullptr) return false;
  // SELECT over an ns-pattern...
  if (pattern->kind() == PatternKind::kSelect &&
      IsNsPattern(pattern->child())) {
    return true;
  }
  // ... or a union of projected simple patterns.
  for (const PatternPtr& d : TopLevelDisjuncts(pattern)) {
    if (!IsProjectedSimplePattern(d)) return false;
  }
  return true;
}

std::vector<PatternPtr> TopLevelDisjuncts(const PatternPtr& pattern) {
  RDFQL_CHECK(pattern != nullptr);
  std::vector<PatternPtr> out;
  std::vector<PatternPtr> stack = {pattern};
  while (!stack.empty()) {
    PatternPtr p = stack.back();
    stack.pop_back();
    if (p->kind() == PatternKind::kUnion) {
      // Right first so the output preserves left-to-right order.
      stack.push_back(p->right());
      stack.push_back(p->left());
    } else {
      out.push_back(p);
    }
  }
  return out;
}

bool IsUnionNormalForm(const PatternPtr& pattern) {
  for (const PatternPtr& d : TopLevelDisjuncts(pattern)) {
    if (d->Uses(PatternKind::kUnion)) return false;
  }
  return true;
}

bool IsSyntacticallySubsumptionFree(const PatternPtr& pattern) {
  if (pattern == nullptr) return false;
  if (InFragment(pattern, "AFS")) return true;
  if (IsWellDesigned(pattern)) return true;
  if (IsSimplePattern(pattern)) return true;
  // NS(P) for arbitrary P is subsumption-free by the semantics of NS.
  if (pattern->kind() == PatternKind::kNs) return true;
  return false;
}

std::string DescribeFragment(const PatternPtr& pattern) {
  OperatorProfile prof = GetOperatorProfile(pattern);
  if (prof.uses_ns) {
    if (IsSimplePattern(pattern)) return "SP-SPARQL (simple pattern)";
    if (IsNsPattern(pattern)) {
      return "USP-SPARQL (ns-pattern, width " +
             std::to_string(NsPatternWidth(pattern)) + ")";
    }
    if (IsProjectedSimplePattern(pattern)) {
      return "projected SP-SPARQL (Section 8 extension)";
    }
    if (IsProjectedNsPattern(pattern)) {
      return "projected USP-SPARQL (Section 8 extension)";
    }
    return "NS-SPARQL";
  }
  std::string letters;
  if (prof.uses_and) letters += 'A';
  if (prof.uses_union) letters += 'U';
  if (prof.uses_opt || prof.uses_minus) letters += 'O';
  if (prof.uses_filter || prof.uses_minus) letters += 'F';
  if (prof.uses_select) letters += 'S';
  if (letters.empty()) return "SPARQL[triple]";
  return "SPARQL[" + letters + "]";
}

}  // namespace rdfql
