#include "analysis/well_designed.h"

#include <algorithm>
#include <set>

#include "analysis/fragments.h"

namespace rdfql {
namespace {

// Number of syntactic occurrence *sites* of ?x in p (triples count each
// position; conditions and projections count once per mention site).
size_t CountOccurrences(const Pattern& p, VarId x);

size_t CountBuiltinOccurrences(const Builtin& r, VarId x) {
  switch (r.kind()) {
    case Builtin::Kind::kTrue:
    case Builtin::Kind::kFalse:
      return 0;
    case Builtin::Kind::kBound:
      return r.var() == x ? 1 : 0;
    case Builtin::Kind::kEqConst:
      return r.var() == x ? 1 : 0;
    case Builtin::Kind::kEqVars:
      return (r.var() == x ? 1 : 0) + (r.var2() == x ? 1 : 0);
    case Builtin::Kind::kNot:
      return CountBuiltinOccurrences(*r.left(), x);
    case Builtin::Kind::kAnd:
    case Builtin::Kind::kOr:
      return CountBuiltinOccurrences(*r.left(), x) +
             CountBuiltinOccurrences(*r.right(), x);
  }
  return 0;
}

size_t CountOccurrences(const Pattern& p, VarId x) {
  switch (p.kind()) {
    case PatternKind::kTriple: {
      size_t n = 0;
      if (p.triple().s.is_var() && p.triple().s.var() == x) ++n;
      if (p.triple().p.is_var() && p.triple().p.var() == x) ++n;
      if (p.triple().o.is_var() && p.triple().o.var() == x) ++n;
      return n;
    }
    case PatternKind::kFilter:
      return CountOccurrences(*p.child(), x) +
             CountBuiltinOccurrences(*p.condition(), x);
    case PatternKind::kSelect: {
      size_t n = CountOccurrences(*p.child(), x);
      if (std::find(p.projection().begin(), p.projection().end(), x) !=
          p.projection().end()) {
        ++n;
      }
      return n;
    }
    case PatternKind::kNs:
      return CountOccurrences(*p.child(), x);
    default:
      return CountOccurrences(*p.left(), x) + CountOccurrences(*p.right(), x);
  }
}

bool VarInSorted(const std::vector<VarId>& vars, VarId x) {
  return std::binary_search(vars.begin(), vars.end(), x);
}

// Checks conditions 1 and 2 of Definition 3.4 for every sub-pattern of
// `node`, where `root` is the whole pattern.
bool CheckWdConditions(const Pattern& root, const Pattern& node,
                       std::string* why) {
  switch (node.kind()) {
    case PatternKind::kTriple:
      return true;
    case PatternKind::kFilter: {
      std::set<VarId> cond_vars;
      node.condition()->CollectVars(&cond_vars);
      for (VarId x : cond_vars) {
        if (!VarInSorted(node.child()->Vars(), x)) {
          if (why) *why = "FILTER condition mentions a variable not in its scope pattern";
          return false;
        }
      }
      return CheckWdConditions(root, *node.child(), why);
    }
    case PatternKind::kAnd:
      return CheckWdConditions(root, *node.left(), why) &&
             CheckWdConditions(root, *node.right(), why);
    case PatternKind::kOpt: {
      const Pattern& p1 = *node.left();
      const Pattern& p2 = *node.right();
      for (VarId x : p2.Vars()) {
        if (VarInSorted(p1.Vars(), x)) continue;
        // ?x ∈ var(P2) \ var(P1): it must not occur outside this OPT node.
        size_t total = CountOccurrences(root, x);
        size_t inside = CountOccurrences(node, x);
        if (total > inside) {
          if (why) {
            *why = "OPT right-hand variable occurs outside the OPT without "
                   "appearing on the left";
          }
          return false;
        }
      }
      return CheckWdConditions(root, p1, why) &&
             CheckWdConditions(root, p2, why);
    }
    default:
      if (why) *why = "pattern is not in SPARQL[AOF]";
      return false;
  }
}

}  // namespace

bool IsWellDesigned(const PatternPtr& pattern, std::string* why) {
  if (pattern == nullptr) return false;
  if (!InFragment(pattern, "AOF")) {
    if (why) *why = "pattern is not in SPARQL[AOF]";
    return false;
  }
  return CheckWdConditions(*pattern, *pattern, why);
}

bool IsUnionOfWellDesigned(const PatternPtr& pattern, std::string* why) {
  if (pattern == nullptr) return false;
  for (const PatternPtr& disjunct : TopLevelDisjuncts(pattern)) {
    if (!IsWellDesigned(disjunct, why)) return false;
  }
  return true;
}

}  // namespace rdfql
