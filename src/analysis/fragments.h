#ifndef RDFQL_ANALYSIS_FRAGMENTS_H_
#define RDFQL_ANALYSIS_FRAGMENTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/pattern.h"

namespace rdfql {

/// Which operators occur in a pattern. MINUS is recorded separately but is
/// derived from OPT + FILTER (Appendix D), so fragment membership counts it
/// as using both.
struct OperatorProfile {
  bool uses_and = false;
  bool uses_union = false;
  bool uses_opt = false;
  bool uses_filter = false;
  bool uses_select = false;
  bool uses_ns = false;
  bool uses_minus = false;
};

OperatorProfile GetOperatorProfile(const PatternPtr& pattern);

/// Membership in the fragment SPARQL[O] named by `letters` using the
/// paper's convention: A = AND, U = UNION, O = OPT, F = FILTER,
/// S = SELECT. A MINUS node requires both O and F; an NS node is never in
/// a SPARQL[·] fragment (NS–SPARQL is the extension).
bool InFragment(const PatternPtr& pattern, std::string_view letters);

/// Simple pattern (Definition 5.3): NS(P) with P ∈ SPARQL[AUFS].
bool IsSimplePattern(const PatternPtr& pattern);

/// ns-pattern (Definition 5.7): P1 UNION ... UNION Pn with each Pi simple.
bool IsNsPattern(const PatternPtr& pattern);

/// Number of disjuncts of an ns-pattern (the k of USP–SPARQL_k, Thm 7.2);
/// 0 if the pattern is not an ns-pattern.
size_t NsPatternWidth(const PatternPtr& pattern);

/// The paper's Section 8 future-work fragments: projection on top of
/// simple and ns-patterns preserves weak monotonicity, giving more
/// expressive open-world-safe languages. A *projected simple pattern* is
/// (SELECT V WHERE NS(P)) with P ∈ SPARQL[AUFS]; a *projected ns-pattern*
/// is (SELECT V WHERE P1 UNION ... UNION Pn) or a union of projected
/// simple patterns.
bool IsProjectedSimplePattern(const PatternPtr& pattern);
bool IsProjectedNsPattern(const PatternPtr& pattern);

/// Flattens top-level UNION nodes into the list of disjuncts.
std::vector<PatternPtr> TopLevelDisjuncts(const PatternPtr& pattern);

/// UNION-normal-form (Appendix D): a top-level union of UNION-free
/// disjuncts.
bool IsUnionNormalForm(const PatternPtr& pattern);

/// Syntactic *sufficient* conditions for subsumption-freeness (§5.2): every
/// pattern in SPARQL[AFS] is subsumption-free, and so is every
/// well-designed pattern in SPARQL[AOF] ([30]); simple patterns are
/// subsumption-free by construction. Returns false when membership cannot
/// be established syntactically (the semantic property is undecidable).
bool IsSyntacticallySubsumptionFree(const PatternPtr& pattern);

/// Human-readable fragment summary, e.g. "SPARQL[AUF]" or "NS-SPARQL".
std::string DescribeFragment(const PatternPtr& pattern);

}  // namespace rdfql

#endif  // RDFQL_ANALYSIS_FRAGMENTS_H_
