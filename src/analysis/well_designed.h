#ifndef RDFQL_ANALYSIS_WELL_DESIGNED_H_
#define RDFQL_ANALYSIS_WELL_DESIGNED_H_

#include <string>

#include "algebra/pattern.h"

namespace rdfql {

/// Well-designedness of a SPARQL[AOF] pattern (Definition 3.4):
///   1. for every sub-pattern (P1 FILTER R): var(R) ⊆ var(P1);
///   2. for every sub-pattern (P1 OPT P2) and ?X ∈ var(P2): if ?X occurs in
///      P outside (P1 OPT P2) then ?X ∈ var(P1).
///
/// Returns false for patterns outside SPARQL[AOF] (UNION/SELECT/NS/MINUS
/// nodes), matching the paper's definition. When `why` is non-null and the
/// result is false, it receives a one-line explanation.
bool IsWellDesigned(const PatternPtr& pattern, std::string* why = nullptr);

/// Well-designedness of a SPARQL[AUOF] pattern (Section 3.3): a top-level
/// union P1 UNION ... UNION Pn where each Pi is a well-designed
/// SPARQL[AOF] pattern.
bool IsUnionOfWellDesigned(const PatternPtr& pattern,
                           std::string* why = nullptr);

}  // namespace rdfql

#endif  // RDFQL_ANALYSIS_WELL_DESIGNED_H_
