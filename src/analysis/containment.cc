#include "analysis/containment.h"

#include <algorithm>
#include <map>

#include "analysis/fragments.h"
#include "eval/evaluator.h"
#include "util/check.h"

namespace rdfql {
namespace {

Status NotConjunctive() {
  return Status::Unsupported(
      "pattern is outside the conjunctive (AND-only) fragment");
}

Status CollectTriples(const Pattern& p, std::vector<TriplePattern>* out) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      out->push_back(p.triple());
      return Status::Ok();
    case PatternKind::kAnd:
      RDFQL_RETURN_IF_ERROR(CollectTriples(*p.left(), out));
      return CollectTriples(*p.right(), out);
    default:
      return NotConjunctive();
  }
}

}  // namespace

Result<CqView> ExtractCq(const PatternPtr& pattern) {
  RDFQL_CHECK(pattern != nullptr);
  CqView view;
  const Pattern* body = pattern.get();
  if (body->kind() == PatternKind::kSelect) {
    view.head = body->ScopeVars();
    body = body->child().get();
  }
  RDFQL_RETURN_IF_ERROR(CollectTriples(*body, &view.triples));
  if (pattern->kind() != PatternKind::kSelect) {
    view.head = pattern->ScopeVars();
  }
  return view;
}

bool CqContained(const CqView& q1, const CqView& q2, Dictionary* dict) {
  // Containment requires comparable heads.
  if (q1.head != q2.head) return false;

  // Freeze Q1: map each variable to a fresh IRI and materialize the
  // canonical graph.
  std::map<VarId, TermId> frozen;
  auto freeze = [&frozen, dict](Term t) -> TermId {
    if (!t.is_var()) return t.iri();
    auto it = frozen.find(t.var());
    if (it != frozen.end()) return it->second;
    TermId id = dict->FreshIri("frz_" + dict->VarName(t.var()));
    frozen[t.var()] = id;
    return id;
  };
  Graph canonical;
  for (const TriplePattern& t : q1.triples) {
    canonical.Insert(freeze(t.s), freeze(t.p), freeze(t.o));
  }

  // Q1 ⊑ Q2 iff the frozen head of Q1 is an answer of Q2 over the
  // canonical graph (the classical Chandra–Merlin argument).
  std::vector<PatternPtr> triples;
  for (const TriplePattern& t : q2.triples) {
    triples.push_back(Pattern::MakeTriple(t));
  }
  RDFQL_CHECK(!triples.empty());
  PatternPtr q2_pattern =
      Pattern::Select(q2.head, Pattern::AndAll(triples));

  Mapping frozen_head;
  for (VarId v : q1.head) {
    auto it = frozen.find(v);
    // A head variable that does not occur in the body can never be bound;
    // both sides then produce no bindings for it, which the evaluator
    // handles by simply not producing answers — treat as not contained.
    if (it == frozen.end()) return false;
    frozen_head.Set(v, it->second);
  }
  return EvalPattern(canonical, q2_pattern).Contains(frozen_head);
}

bool CqEquivalent(const CqView& q1, const CqView& q2, Dictionary* dict) {
  return CqContained(q1, q2, dict) && CqContained(q2, q1, dict);
}

Result<bool> UcqPatternContained(const PatternPtr& p1, const PatternPtr& p2,
                                 Dictionary* dict) {
  std::vector<CqView> left, right;
  for (const PatternPtr& d : TopLevelDisjuncts(p1)) {
    RDFQL_ASSIGN_OR_RETURN(CqView v, ExtractCq(d));
    left.push_back(std::move(v));
  }
  for (const PatternPtr& d : TopLevelDisjuncts(p2)) {
    RDFQL_ASSIGN_OR_RETURN(CqView v, ExtractCq(d));
    right.push_back(std::move(v));
  }
  for (const CqView& l : left) {
    bool covered = false;
    for (const CqView& r : right) {
      if (CqContained(l, r, dict)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

Result<bool> UcqPatternEquivalent(const PatternPtr& p1,
                                  const PatternPtr& p2, Dictionary* dict) {
  RDFQL_ASSIGN_OR_RETURN(bool forward, UcqPatternContained(p1, p2, dict));
  if (!forward) return false;
  return UcqPatternContained(p2, p1, dict);
}

CqView MinimizeCq(const CqView& query, Dictionary* dict) {
  CqView current = query;
  bool changed = true;
  while (changed && current.triples.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.triples.size(); ++i) {
      CqView candidate = current;
      candidate.triples.erase(candidate.triples.begin() + i);
      // Dropping an atom always relaxes the query (candidate ⊒ current);
      // it is safe iff the relaxation is still contained in the original.
      if (CqContained(candidate, current, dict)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

PatternPtr CqToPattern(const CqView& query) {
  RDFQL_CHECK(!query.triples.empty());
  std::vector<PatternPtr> triples;
  for (const TriplePattern& t : query.triples) {
    triples.push_back(Pattern::MakeTriple(t));
  }
  PatternPtr body = Pattern::AndAll(triples);
  if (query.head == body->Vars()) return body;
  return Pattern::Select(query.head, body);
}

PatternPtr MinimizeUnion(const PatternPtr& pattern, Dictionary* dict) {
  std::vector<PatternPtr> disjuncts = TopLevelDisjuncts(pattern);
  if (disjuncts.size() <= 1) return pattern;

  std::vector<Result<CqView>> views;
  views.reserve(disjuncts.size());
  for (const PatternPtr& d : disjuncts) views.push_back(ExtractCq(d));

  std::vector<bool> dead(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!views[i].ok() || dead[i]) continue;
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || dead[j] || !views[j].ok()) continue;
      // Drop i if it is contained in j. Ties (mutual containment) keep the
      // lower index.
      if (CqContained(views[i].value(), views[j].value(), dict) &&
          !(j > i && CqContained(views[j].value(), views[i].value(), dict))) {
        dead[i] = true;
        break;
      }
    }
  }
  std::vector<PatternPtr> kept;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!dead[i]) kept.push_back(disjuncts[i]);
  }
  RDFQL_CHECK(!kept.empty());
  return Pattern::UnionAll(kept);
}

}  // namespace rdfql
