#ifndef RDFQL_ANALYSIS_MONOTONICITY_H_
#define RDFQL_ANALYSIS_MONOTONICITY_H_

#include <cstdint>
#include <optional>
#include <string>

#include "algebra/pattern.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"

namespace rdfql {

/// Knobs for the randomized property testers. Checking weak monotonicity is
/// undecidable (Section 1), so these testers are refutation-complete in the
/// limit: they search for counterexample pairs G1 ⊆ G2 built from the IRIs
/// of the pattern plus `fresh_iris` extra IRIs.
struct MonotonicityOptions {
  int trials = 300;
  int max_base_triples = 6;
  int max_extra_triples = 3;
  int fresh_iris = 3;
  uint64_t seed = 0x5eed;
};

/// A refutation of (weak) monotonicity or subsumption-freeness.
struct PropertyCounterexample {
  Graph g1;
  Graph g2;        // g1 ⊆ g2 (unused by the subsumption-freeness tester)
  Mapping witness; // the mapping that is lost / not subsumed / subsumed
  std::string explanation;
};

/// Searches for G1 ⊆ G2 with ⟦P⟧G1 ⋢ ⟦P⟧G2 (Definition 3.2 violated).
std::optional<PropertyCounterexample> FindWeakMonotonicityCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Searches for G1 ⊆ G2 with ⟦P⟧G1 ⊄ ⟦P⟧G2 (monotonicity violated).
std::optional<PropertyCounterexample> FindMonotonicityCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Searches for a graph G with ⟦P⟧G ≠ ⟦P⟧max_G (subsumption-freeness
/// violated, Section 5.2).
std::optional<PropertyCounterexample> FindSubsumptionFreenessCounterexample(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Randomized check of plain equivalence P ≡ Q: samples graphs from the
/// union of both patterns' IRIs and triple shapes and compares ⟦P⟧G with
/// ⟦Q⟧G. Returns the first witness of disagreement (in `witness`, with
/// g1 = g2 = the graph). Refutations are certain; acceptance is
/// probabilistic — the workhorse behind the transformation test suites.
std::optional<PropertyCounterexample> FindEquivalenceGap(
    const PatternPtr& p, const PatternPtr& q, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Convenience wrappers: true when no counterexample was found within the
/// trial budget (sound for refutation, probabilistic for acceptance).
bool LooksWeaklyMonotone(const PatternPtr& pattern, Dictionary* dict,
                         const MonotonicityOptions& options = {});
bool LooksMonotone(const PatternPtr& pattern, Dictionary* dict,
                   const MonotonicityOptions& options = {});
bool LooksSubsumptionFree(const PatternPtr& pattern, Dictionary* dict,
                          const MonotonicityOptions& options = {});

}  // namespace rdfql

#endif  // RDFQL_ANALYSIS_MONOTONICITY_H_
