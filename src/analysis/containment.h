#ifndef RDFQL_ANALYSIS_CONTAINMENT_H_
#define RDFQL_ANALYSIS_CONTAINMENT_H_

#include <vector>

#include "algebra/pattern.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfql {

/// A conjunctive-query view of a pattern: a set of triple patterns with a
/// projection (head) — the fragment where containment is decidable by the
/// classical freezing/homomorphism argument (NP-complete, like Eval for
/// SPARQL[A], Section 7's backdrop). Extractable from AND-only patterns,
/// optionally under one top-level SELECT.
struct CqView {
  std::vector<TriplePattern> triples;
  std::vector<VarId> head;  // sorted output variables
};

/// Extracts the CQ view; fails with Unsupported for patterns outside the
/// conjunctive fragment (UNION/OPT/MINUS/FILTER/NS, or nested SELECT).
Result<CqView> ExtractCq(const PatternPtr& pattern);

/// Decides Q1 ⊑ Q2 (for every graph G, ⟦Q1⟧G ⊆ ⟦Q2⟧G) exactly, by
/// freezing Q1 into its canonical graph and evaluating Q2 over it.
/// Fresh frozen IRIs are interned in `dict`.
bool CqContained(const CqView& q1, const CqView& q2, Dictionary* dict);

/// Q1 ≡ Q2 on every graph.
bool CqEquivalent(const CqView& q1, const CqView& q2, Dictionary* dict);

/// Classical CQ minimization (computing the core): repeatedly drops a
/// triple atom if the reduced query is still equivalent to the original
/// (checked exactly with `CqContained`). The result is the unique core up
/// to renaming. Runs in O(atoms² · hom-check).
CqView MinimizeCq(const CqView& query, Dictionary* dict);

/// Builds the SPARQL pattern of a CQ view: (SELECT head WHERE (AND of
/// triples)); if the head equals all variables, the SELECT is omitted.
PatternPtr CqToPattern(const CqView& query);

/// Exact containment for UCQ-shaped patterns (UNION-normal-form patterns
/// whose disjuncts are conjunctive, possibly under one SELECT): p1 ⊑ p2
/// iff every disjunct of p1 is CQ-contained in some disjunct of p2 — the
/// classical UCQ containment criterion, sound and complete for this
/// fragment. Fails with Unsupported outside it.
Result<bool> UcqPatternContained(const PatternPtr& p1, const PatternPtr& p2,
                                 Dictionary* dict);

/// Exact equivalence for UCQ-shaped patterns.
Result<bool> UcqPatternEquivalent(const PatternPtr& p1,
                                  const PatternPtr& p2, Dictionary* dict);

/// Removes from a UNION of patterns every disjunct whose CQ view is
/// contained in another disjunct's (sound for plain UNION semantics and
/// for NS(U): dropping set-contained answers changes neither the union of
/// answers nor its maximal elements). Disjuncts outside the conjunctive
/// fragment are kept untouched.
PatternPtr MinimizeUnion(const PatternPtr& pattern, Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_ANALYSIS_CONTAINMENT_H_
