#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "obs/metrics.h"

namespace rdfql {
namespace {

/// The single active profiler. Guarded by a leaky mutex (Stop may run
/// during static destruction of an engine owned by a static).
std::mutex* ActiveMu() {
  static std::mutex* mu = new std::mutex();
  return mu;
}
Profiler** ActiveSlot() {
  static Profiler** slot = new Profiler*(nullptr);
  return slot;
}

}  // namespace

Profiler::Profiler(ProfilerOptions options) : options_(options) {}

Profiler::~Profiler() { Stop(); }

bool Profiler::Start() {
  {
    std::lock_guard<std::mutex> lock(*ActiveMu());
    Profiler*& active = *ActiveSlot();
    if (active != nullptr && active != this) return false;
    active = this;
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (running_) return true;
    running_ = true;
    stopping_ = false;
  }
  SetProfilingEnabled(true);
  if (options_.hz > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
  return true;
}

void Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!running_) return;
    running_ = false;
    stopping_ = true;
  }
  SetProfilingEnabled(false);
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(*ActiveMu());
  Profiler*& active = *ActiveSlot();
  if (active == this) active = nullptr;
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(loop_mu_);
  return running_;
}

Profiler* Profiler::Active() {
  std::lock_guard<std::mutex> lock(*ActiveMu());
  return *ActiveSlot();
}

void Profiler::Loop() {
  uint64_t period_ns = 1'000'000'000ull / options_.hz;
  if (period_ns == 0) period_ns = 1;
  std::unique_lock<std::mutex> lock(loop_mu_);
  while (true) {
    loop_cv_.wait_for(lock, std::chrono::nanoseconds(period_ns),
                      [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    Sample();
    lock.lock();
  }
}

void Profiler::TickNow() { Sample(); }

void Profiler::Sample() {
  // One stack buffer reused across threads: kMaxDepth frames + a possible
  // truncation marker + a possible wait-state frame.
  const char* stack[ProfileThreadSlot::kMaxDepth + 2];
  std::lock_guard<std::mutex> lock(trie_mu_);
  ++ticks_;
  ProfileThreadRegistry::Instance().ForEach([&](const ProfileThreadSlot& slot) {
    uint32_t raw_depth = 0;
    size_t n =
        slot.SnapshotStack(stack, ProfileThreadSlot::kMaxDepth, &raw_depth);
    if (raw_depth > ProfileThreadSlot::kMaxDepth) stack[n++] = "truncated";
    ProfileThreadState state = slot.state();
    if (state == ProfileThreadState::kLockWait ||
        state == ProfileThreadState::kPoolQueueWait) {
      stack[n++] = ProfileThreadStateName(state);
    } else if (n == 0) {
      // Parked worker or a registered thread between queries: one "idle"
      // frame keeps total samples proportional to wall time without
      // polluting real stacks.
      stack[0] = "idle";
      n = 1;
    }
    Node* node = &root_;
    for (size_t i = 0; i < n; ++i) {
      const char* tag = stack[i];
      if (tag == nullptr) tag = "?";  // torn read of a mid-push frame
      std::unique_ptr<Node>& child = node->children[tag];
      if (child == nullptr) child = std::make_unique<Node>();
      node = child.get();
    }
    ++node->self;
    ++samples_;
  });
}

uint64_t Profiler::ticks() const {
  std::lock_guard<std::mutex> lock(trie_mu_);
  return ticks_;
}

uint64_t Profiler::samples() const {
  std::lock_guard<std::mutex> lock(trie_mu_);
  return samples_;
}

std::string Profiler::ToFolded() const {
  std::string out;
  std::lock_guard<std::mutex> lock(trie_mu_);
  // std::map keys iterate in pointer order; collect and sort the rendered
  // lines so the output is deterministic across runs.
  std::vector<std::string> lines;
  struct Frame {
    const Node* node;
    std::string path;
  };
  std::vector<Frame> work;
  work.push_back({&root_, ""});
  while (!work.empty()) {
    Frame f = work.back();
    work.pop_back();
    if (f.node->self > 0 && !f.path.empty()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %" PRIu64, f.node->self);
      lines.push_back(f.path + buf);
    }
    for (const auto& [tag, child] : f.node->children) {
      std::string path = f.path.empty() ? std::string(tag)
                                        : f.path + ";" + tag;
      work.push_back({child.get(), std::move(path)});
    }
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::vector<ProfileTagTotal> Profiler::TopTags(size_t n) const {
  std::map<std::string, ProfileTagTotal> by_tag;
  {
    std::lock_guard<std::mutex> lock(trie_mu_);
    // DFS carrying the set of tags on the current path, so a tag that
    // recurses (UNION under UNION) counts each sample's total once.
    struct Frame {
      const Node* node;
      std::vector<const char*> path;
    };
    std::vector<Frame> work;
    work.push_back({&root_, {}});
    while (!work.empty()) {
      Frame f = work.back();
      work.pop_back();
      if (f.node->self > 0 && !f.path.empty()) {
        ProfileTagTotal& leaf = by_tag[f.path.back()];
        if (leaf.tag.empty()) leaf.tag = f.path.back();
        leaf.self += f.node->self;
        std::set<const char*> distinct(f.path.begin(), f.path.end());
        for (const char* tag : distinct) {
          ProfileTagTotal& t = by_tag[tag];
          if (t.tag.empty()) t.tag = tag;
          t.total += f.node->self;
        }
      }
      for (const auto& [tag, child] : f.node->children) {
        Frame next{child.get(), f.path};
        next.path.push_back(tag);
        work.push_back(std::move(next));
      }
    }
  }
  std::vector<ProfileTagTotal> tags;
  tags.reserve(by_tag.size());
  for (auto& [name, t] : by_tag) tags.push_back(std::move(t));
  std::sort(tags.begin(), tags.end(),
            [](const ProfileTagTotal& a, const ProfileTagTotal& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.tag < b.tag;
            });
  if (tags.size() > n) tags.resize(n);
  return tags;
}

std::string Profiler::ToJson() const {
  std::vector<ProfileTagTotal> tags = TopTags(static_cast<size_t>(-1));
  uint64_t ticks, samples;
  {
    std::lock_guard<std::mutex> lock(trie_mu_);
    ticks = ticks_;
    samples = samples_;
  }
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"hz\":%" PRIu64 ",\"ticks\":%" PRIu64 ",\"samples\":%" PRIu64
                ",\"tags\":[",
                options_.hz, ticks, samples);
  out += buf;
  bool first = true;
  for (const ProfileTagTotal& t : tags) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"tag\":\"";
    AppendJsonEscaped(t.tag, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"self\":%" PRIu64 ",\"total\":%" PRIu64 "}", t.self,
                  t.total);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace rdfql
