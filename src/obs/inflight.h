#ifndef RDFQL_OBS_INFLIGHT_H_
#define RDFQL_OBS_INFLIGHT_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/accounting.h"
#include "util/limits.h"
#include "util/status.h"

namespace rdfql {

/// Where a registered query currently is. Updated at the engine's existing
/// phase boundaries (parse -> eval -> finish), so the registry shows "what
/// is this query doing" without new instrumentation inside the kernels.
enum class QueryPhase {
  kStarting = 0,
  kParsing,
  kEvaluating,
  kFinishing,
};

/// Short lowercase name for display ("parse", "eval", ...).
const char* QueryPhaseName(QueryPhase phase);

/// One row of an InflightSnapshot: the registry slot's identity plus live
/// figures read at snapshot time. Plain data, safe to hold after the query
/// finishes.
struct InflightQueryInfo {
  size_t slot = 0;
  uint64_t generation = 0;
  uint64_t correlation_id = 0;
  uint64_t query_hash = 0;
  std::string graph;
  std::string query;     // truncated to kMaxStoredQueryBytes
  std::string fragment;  // DescribeFragment(), set once parsed
  QueryPhase phase = QueryPhase::kStarting;
  uint64_t start_unix_ms = 0;
  uint64_t wall_ns = 0;  // elapsed at snapshot time
  uint64_t live_mappings = 0;
  uint64_t live_bytes = 0;
  uint64_t peak_bytes = 0;
  int threads = 1;
  bool watchdog_cancelled = false;
};

/// A point-in-time view of the registry. Each row is internally consistent
/// (captured under its slot's mutex); rows are captured independently, so
/// the snapshot is a per-query-consistent sweep, not a global barrier.
struct InflightSnapshot {
  uint64_t unix_ms = 0;
  uint64_t registered_total = 0;
  uint64_t watchdog_cancelled_total = 0;
  std::vector<InflightQueryInfo> queries;

  /// Aligned `ps`-style table for the shell's `.ps` command and rdfql_top.
  std::string ToText() const;
};

class InflightRegistry;

/// One registry slot. The engine talks to the slot it was handed (phase
/// updates, the slot-owned accountant/token); the watchdog reaches slots
/// only through InflightRegistry::WatchdogCancel, which revalidates the
/// generation under the slot mutex.
class InflightSlot {
 public:
  InflightSlot() = default;
  InflightSlot(const InflightSlot&) = delete;
  InflightSlot& operator=(const InflightSlot&) = delete;

  /// Phase transitions are relaxed atomics: the query thread writes, the
  /// snapshot thread reads, and a torn-free int is all consistency needs.
  void SetPhase(QueryPhase phase) {
    phase_.store(static_cast<int>(phase), std::memory_order_relaxed);
  }
  void SetCorrelationId(uint64_t id) {
    correlation_id_.store(id, std::memory_order_relaxed);
  }
  void SetThreads(int threads) {
    threads_.store(threads, std::memory_order_relaxed);
  }
  /// Set once the pattern is parsed and classified (locks the slot).
  void SetFragment(std::string_view fragment);

  /// The slot-owned accountant, Reset() on registration. Wire it into
  /// EvalOptions so the snapshot's live bytes/mappings track the query.
  ResourceAccountant* accountant() { return &accountant_; }
  /// The slot-owned token, fresh on registration. Wire it into EvalOptions
  /// so the watchdog can cancel the query. Valid until the slot is
  /// re-registered, which cannot happen before Unregister.
  CancellationToken* token() { return token_.get(); }

  /// True once the watchdog cancelled this registration — how the engine
  /// distinguishes a `watchdog_cancelled` outcome from an ordinary
  /// kCancelled without inventing a status code or parsing messages.
  bool watchdog_cancelled() const {
    return watchdog_cancelled_.load(std::memory_order_relaxed);
  }

 private:
  friend class InflightRegistry;

  /// Lock-free claim flag: Register scans with a CAS, Unregister releases.
  std::atomic<bool> claimed_{false};
  mutable std::mutex mu_;
  bool active_ = false;       // guarded by mu_
  uint64_t generation_ = 0;   // guarded by mu_; bumped on each Register
  std::string graph_;         // guarded by mu_
  std::string query_;         // guarded by mu_
  std::string fragment_;      // guarded by mu_
  uint64_t start_unix_ms_ = 0;   // guarded by mu_
  uint64_t start_steady_ns_ = 0; // guarded by mu_
  std::atomic<uint64_t> correlation_id_{0};
  std::atomic<uint64_t> query_hash_{0};
  std::atomic<int> phase_{0};
  std::atomic<int> threads_{1};
  std::atomic<bool> watchdog_cancelled_{false};
  ResourceAccountant accountant_;
  std::unique_ptr<CancellationToken> token_;  // replaced under mu_
};

/// The in-flight query registry: a fixed array of slots with lock-cheap
/// registration (one CAS to claim, one short slot-lock to initialize) and a
/// consistent Snapshot(). When every slot is busy Register returns null and
/// the query simply runs unmonitored — registration is observability, never
/// admission control.
class InflightRegistry {
 public:
  static constexpr size_t kMaxSlots = 64;
  /// Queries longer than this are truncated in the registry (the query log
  /// still records the full text).
  static constexpr size_t kMaxStoredQueryBytes = 256;

  InflightRegistry() = default;
  InflightRegistry(const InflightRegistry&) = delete;
  InflightRegistry& operator=(const InflightRegistry&) = delete;

  /// Claims a slot, resets its accountant, installs a fresh token, and
  /// returns it — or null when all slots are busy.
  InflightSlot* Register(std::string_view graph, std::string_view query,
                         uint64_t query_hash);
  void Unregister(InflightSlot* slot);

  InflightSnapshot Snapshot() const;

  /// Cancels the registration identified by (slot index, generation) with
  /// `reason`, marking it watchdog-cancelled. Returns false when the
  /// registration already ended (stale generation) — the reuse-safe way for
  /// a watchdog acting on an older Snapshot.
  bool WatchdogCancel(size_t slot_index, uint64_t generation, Status reason);

  size_t active() const { return active_.load(std::memory_order_relaxed); }
  uint64_t registered_total() const {
    return registered_total_.load(std::memory_order_relaxed);
  }
  uint64_t watchdog_cancelled_total() const {
    return watchdog_cancelled_total_.load(std::memory_order_relaxed);
  }

 private:
  std::array<InflightSlot, kMaxSlots> slots_;
  std::atomic<size_t> active_{0};
  std::atomic<size_t> next_hint_{0};  // round-robin scan start
  std::atomic<uint64_t> registered_total_{0};
  std::atomic<uint64_t> watchdog_cancelled_total_{0};
};

/// RAII registration used by the engine. Construction with a null registry
/// is a no-op (monitoring disabled). Nested engine entry points on the same
/// thread (Query -> Eval) reuse the already-registered slot instead of
/// double-registering, tracked through a thread-local current-slot pointer.
class InflightScope {
 public:
  InflightScope(InflightRegistry* registry, std::string_view graph,
                std::string_view query, uint64_t query_hash);
  ~InflightScope();
  InflightScope(const InflightScope&) = delete;
  InflightScope& operator=(const InflightScope&) = delete;

  /// The slot this scope owns or borrowed; null when monitoring is off or
  /// the registry was full.
  InflightSlot* slot() const { return slot_; }

  /// The slot registered by an enclosing scope on this thread, if any.
  static InflightSlot* CurrentSlot();

 private:
  InflightRegistry* registry_ = nullptr;
  InflightSlot* slot_ = nullptr;
  bool owned_ = false;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_INFLIGHT_H_
