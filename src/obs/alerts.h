#ifndef RDFQL_OBS_ALERTS_H_
#define RDFQL_OBS_ALERTS_H_

// Declarative SLO/alerting over the metrics history ring (obs/history.h).
//
// Rules are data — a JSON file, no expression language, no dependencies.
// Each rule names an aggregation over a metric, a comparison, and one or
// more trailing windows; the rule breaches only when EVERY window breaches,
// which is the standard multi-window burn-rate guard against paging on a
// transient spike (short window: "it is bad right now"; long window: "it
// has been bad long enough to matter"). Because the paper's fragments sit
// in different complexity classes (well-designed patterns are coNP-complete
// while full OPT patterns are PSPACE-complete), a single global latency
// threshold is meaningless — rules carry an optional `fragment` key, and
// the engine records a per-fragment latency histogram for every fragment
// named by some rule, so `p99{fragment=SPARQL[AO]} > 50ms` is expressible.
//
// Rule file shape (key order inside an object is free):
//
//   {"version":1,"rules":[
//     {"name":"opt-p99",
//      "agg":"p99",                    // value|rate|delta|p50|p90|p99|
//                                      // burn_rate
//      "metric":"engine.eval_ns",
//      "fragment":"SPARQL[AO]",        // optional; keys the histogram
//      "op":">",                       // ">" or "<"
//      "threshold":"50ms",             // number (raw units) or duration
//      "windows":["30s","5m"],         // ALL must breach
//      "for":"10s",                    // pending this long before firing
//      "keep":"30s",                   // clear this long before resolving
//      "severity":"page",              // free-form label, default "warn"
//      "escalate_watchdog_wall_ms":100 // optional escalation hook
//     },
//     {"name":"rejection-burn","agg":"burn_rate",
//      "metric":"engine.queries_rejected","denominator":"engine.queries",
//      "objective":0.01,"op":">","threshold":2,"windows":["1m","10m"]}]}
//
// `burn_rate` computes (rate(metric)/rate(denominator))/objective — how
// many times faster than budget the error budget is burning; a threshold
// of 1 means "exactly on budget".
//
// The state machine per rule is pending → firing → resolved: a breach
// moves an idle rule to pending (and straight to firing once it has held
// for `for`); while firing, the condition must stay clear for `keep`
// (hysteresis) before the rule resolves. Every transition appends one JSONL
// record to the alert log, which reuses the query-log sink discipline:
// serialize outside the lock, one fwrite+fflush per line under it, bounded
// in-memory ring for live introspection.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/history.h"

namespace rdfql {

/// The registry name of the per-fragment latency histogram the engine
/// observes for fragments named by alert rules, e.g.
/// "engine.eval_ns.fragment.SPARQL[AO]".
std::string FragmentMetricName(std::string_view metric,
                               std::string_view fragment);

/// Parses "500ms" / "30s" / "5m" / "1h" (or a bare number of milliseconds)
/// into milliseconds. Returns false on any other shape.
bool ParseDurationMs(std::string_view text, uint64_t* out_ms);

struct AlertCondition {
  enum class Agg {
    kValue,     // latest gauge value
    kRate,      // counter increments per second over the window
    kDelta,     // counter increments over the window
    kP50,       // interpolated histogram quantiles over the window
    kP90,
    kP99,
    kBurnRate,  // (rate(metric)/rate(denominator))/objective
  };
  Agg agg = Agg::kRate;
  std::string metric;
  std::string denominator;  // burn_rate only
  double objective = 0;     // burn_rate only: allowed bad fraction
  std::string fragment;     // optional; rewrites metric per fragment
  char op = '>';
  double threshold = 0;
  std::vector<uint64_t> windows_ms;  // every window must breach
};

struct AlertRule {
  std::string name;
  std::string severity = "warn";
  AlertCondition condition;
  uint64_t for_ms = 0;   // breach must hold this long before firing
  uint64_t keep_ms = 0;  // hysteresis: clear this long before resolving
  /// When non-zero, a firing rule with a fragment asks the telemetry
  /// watchdog to tighten that fragment's wall budget to this many ms.
  uint64_t escalate_watchdog_wall_ms = 0;
};

/// Parses a rule file (shape documented above). Returns false and fills
/// *error on the first violation (unknown key, duplicate rule name, missing
/// required field, malformed duration, ...).
bool ParseAlertRules(std::string_view json, std::vector<AlertRule>* out,
                     std::string* error);

/// One state transition, as logged to the alert JSONL log:
///   {"v":1,"unix_ms":..,"rule":..,"state":"pending|firing|resolved",
///    "severity":..,"fragment":..,"value":..,"threshold":..,
///    "windows_ms":[..]}
struct AlertTransition {
  uint64_t unix_ms = 0;
  std::string rule;
  std::string state;
  std::string severity;
  std::string fragment;
  double value = 0;
  double threshold = 0;
  std::vector<uint64_t> windows_ms;

  std::string ToJson() const;
};

/// Parses one line of an alert log (inverse of AlertTransition::ToJson).
bool ParseAlertLogLine(std::string_view line, AlertTransition* out,
                       std::string* error);

struct AlertLogOptions {
  std::string path;  // empty: in-memory ring only
  bool append = true;
  size_t ring_capacity = 256;
};

/// JSONL sink for alert transitions; same discipline as QueryLog: records
/// serialize outside the lock, the file sees one fwrite+fflush per line
/// under it, and a bounded ring keeps the latest transitions for live
/// introspection.
class AlertLog {
 public:
  explicit AlertLog(AlertLogOptions options = AlertLogOptions());
  ~AlertLog();
  AlertLog(const AlertLog&) = delete;
  AlertLog& operator=(const AlertLog&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const AlertLogOptions& options() const { return options_; }

  void Record(const AlertTransition& transition);
  std::vector<AlertTransition> Snapshot() const;
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  void Flush();

 private:
  const AlertLogOptions options_;
  std::string error_;
  std::atomic<uint64_t> recorded_{0};
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::deque<AlertTransition> ring_;
};

/// Point-in-time view of every rule's state.
struct AlertRuleStatus {
  std::string name;
  std::string severity;
  std::string state;     // "ok" | "pending" | "firing" | "resolved"
  std::string fragment;  // empty unless the rule is fragment-scoped
  double value = 0;      // last evaluation of the first window
  double threshold = 0;
  uint64_t since_unix_ms = 0;  // when the current state was entered
  uint64_t fires = 0;          // times this rule has fired
};

struct AlertSnapshot {
  uint64_t unix_ms = 0;
  uint64_t pending_total = 0;
  uint64_t firing_total = 0;
  uint64_t resolved_total = 0;
  std::vector<AlertRuleStatus> rules;

  size_t FiringNow() const;
  std::string ToText() const;
  std::string ToJson() const;
};

/// Evaluates a fixed rule set against a MetricsHistory once per telemetry
/// tick and drives the per-rule state machines. Rules are immutable after
/// construction (lock-free reads from query threads via WantsFragment);
/// per-rule state is guarded by a mutex so Snapshot() may race Evaluate().
class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules,
                       AlertLogOptions log_options = AlertLogOptions());

  const std::vector<AlertRule>& rules() const { return rules_; }
  bool log_ok() const { return log_.ok(); }
  const std::string& log_error() const { return log_.error(); }
  AlertLog* log() { return &log_; }

  /// True when some rule is scoped to `fragment` — the engine observes the
  /// per-fragment latency histogram only for those.
  bool WantsFragment(std::string_view fragment) const;
  bool wants_fragments() const { return !fragments_.empty(); }

  /// Evaluates every rule against `history` at `now_ms`, advancing state
  /// machines and logging transitions. Called by the telemetry tick.
  void Evaluate(const MetricsHistory& history, uint64_t now_ms);

  AlertSnapshot Snapshot() const;

  uint64_t pending_total() const {
    return pending_total_.load(std::memory_order_relaxed);
  }
  uint64_t firing_total() const {
    return firing_total_.load(std::memory_order_relaxed);
  }
  uint64_t resolved_total() const {
    return resolved_total_.load(std::memory_order_relaxed);
  }
  int64_t firing_now() const {
    return firing_now_.load(std::memory_order_relaxed);
  }

  /// (fragment, wall_ms) for every firing rule with an escalation budget —
  /// the telemetry sampler folds these into its effective watchdog policy
  /// and drops them again once the rule resolves.
  std::vector<std::pair<std::string, uint64_t>> WatchdogEscalations() const;

 private:
  enum class State { kOk, kPending, kFiring, kResolved };
  struct RuleState {
    State state = State::kOk;
    uint64_t since_unix_ms = 0;    // entered current state
    uint64_t pending_since = 0;    // breach onset (pending/firing)
    uint64_t clear_since = 0;      // 0 = breaching; else first clear eval
    double value = 0;
    uint64_t fires = 0;
  };

  static const char* StateName(State s);
  void TransitionLocked(size_t i, State to, uint64_t now_ms,
                        std::vector<AlertTransition>* out);

  const std::vector<AlertRule> rules_;
  const std::set<std::string, std::less<>> fragments_;
  AlertLog log_;

  std::atomic<uint64_t> pending_total_{0};
  std::atomic<uint64_t> firing_total_{0};
  std::atomic<uint64_t> resolved_total_{0};
  std::atomic<int64_t> firing_now_{0};

  mutable std::mutex mu_;
  std::vector<RuleState> states_;
  uint64_t last_eval_unix_ms_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_ALERTS_H_
