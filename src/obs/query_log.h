#ifndef RDFQL_OBS_QUERY_LOG_H_
#define RDFQL_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace rdfql {

/// One query's flight record: everything an operator needs to reconstruct
/// what a query did after the fact — identity (stable hash + correlation
/// id), the paper-fragment classification the complexity theorems speak
/// about, phase wall times, result and memory figures, and the typed
/// outcome. Records are written by Engine::Query / Engine::QueryExplained
/// when a QueryLog is attached, one record per query.
struct QueryLogRecord {
  /// Monotone per-log id; also attached to the query's EXPLAIN plan as the
  /// `correlation_id` counter, so a log record and a trace can be joined.
  uint64_t correlation_id = 0;
  /// FNV-1a of the canonicalized query text (see StableQueryHash) — stable
  /// across sessions and machines, so identical (and trivially
  /// reformatted) queries aggregate under one key.
  uint64_t query_hash = 0;
  std::string graph;
  /// Raw query text, truncated to QueryLogOptions::max_query_bytes.
  std::string query;
  /// DescribeFragment() of the parsed pattern, e.g. "SPARQL[AUF]",
  /// "NS-SPARQL"; empty when the query never parsed.
  std::string fragment;
  /// "ok", or the typed error category: "parse_error", "not_found",
  /// "resource_exhausted", "deadline_exceeded", "cancelled", ...
  std::string outcome = "ok";
  /// The status message when outcome != "ok".
  std::string error;
  uint64_t unix_ms = 0;  // wall-clock time the query started
  uint64_t parse_ns = 0;
  uint64_t optimize_ns = 0;  // 0 unless the caller ran the optimizer
  uint64_t eval_ns = 0;
  uint64_t rows_out = 0;        // result cardinality
  uint64_t total_mappings = 0;  // mappings materialized end to end
  uint64_t peak_mappings = 0;   // accountant high-water marks
  uint64_t peak_bytes = 0;
  int threads = 1;
  /// Query-cache outcome: "result_hit" (answer served from the result
  /// cache), "plan_hit" (parse skipped, evaluation ran), "miss" (caching
  /// on, nothing reusable) or "bypass" (cache attached but disabled for
  /// this query). Empty — and omitted from the JSON — when the engine has
  /// no cache attached.
  std::string cache;
  /// parse + eval crossed QueryLogOptions::slow_ms.
  bool slow = false;
  /// Full EXPLAIN ANALYZE text, captured for slow queries when
  /// QueryLogOptions::explain_slow is set.
  std::string explain;

  uint64_t TotalNs() const { return parse_ns + optimize_ns + eval_ns; }
};

/// Configuration for a QueryLog sink.
struct QueryLogOptions {
  /// JSONL file to append records to; empty keeps records in memory only
  /// (the ring buffer still fills, e.g. for the shell's `.stats`).
  std::string path;
  /// Open `path` in append mode instead of truncating.
  bool append = false;
  /// Newest records kept in memory for Snapshot().
  size_t ring_capacity = 1024;
  /// Record every Nth successful query (1 = all). Slow and failed queries
  /// are always recorded — they are the ones an operator is looking for.
  uint64_t sample_every = 1;
  /// Queries whose parse+eval wall time reaches this many milliseconds are
  /// marked slow (and EXPLAIN-captured, see below). 0 disables.
  uint64_t slow_ms = 0;
  /// Capture the full EXPLAIN ANALYZE text for slow queries. On the plain
  /// Engine::Query path this re-runs the query once under a tracer (cost:
  /// roughly 2x for the offending query — bounded, and only for queries
  /// already past the slow threshold); QueryExplained has the text anyway.
  bool explain_slow = true;
  /// Truncation limit for the raw query text stored per record.
  size_t max_query_bytes = 2048;
};

/// Canonical form of a query's text for hashing and cache keying: comments
/// (`#` to end of line) are dropped, runs of whitespace collapse to a
/// single space, and leading/trailing whitespace disappears — except
/// inside `<...>` IRIs and `"..."` literals, which are preserved byte for
/// byte. Idempotent, so canonical text hashes to its own hash.
std::string CanonicalizeQueryText(std::string_view query);

/// Stable FNV-1a 64-bit hash of the *canonicalized* query text (computed
/// in one streaming pass, no allocation). Trivially reformatted queries —
/// different indentation, line breaks or comments — share a hash, so they
/// aggregate under one key in the query log and share a query-cache entry.
/// This is the hash-stability contract: the value for a given canonical
/// text never changes across sessions, machines or versions.
uint64_t StableQueryHash(std::string_view query);

/// One JSONL line (no trailing newline): a flat JSON object with a `"v":1`
/// version tag and one key per QueryLogRecord field.
std::string QueryLogRecordToJson(const QueryLogRecord& record);

/// Parses one JSONL line back into a record. Unknown keys are ignored
/// (forward compatibility); a malformed line or a missing version tag
/// fails with a message in *error. Shared by tools/rdfql_stats and tests.
bool ParseQueryLogLine(std::string_view line, QueryLogRecord* out,
                       std::string* error);

/// A thread-safe structured sink for query records: a bounded in-memory
/// ring buffer plus an optional JSONL file writer. Record() serializes
/// outside the lock and writes each line with a single fwrite under the
/// mutex, so concurrent queries can never interleave bytes within a line.
class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options = {});
  ~QueryLog();

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// False when the configured file could not be opened (the ring buffer
  /// still works); error() carries the reason.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  const QueryLogOptions& options() const { return options_; }

  /// Next correlation id (1, 2, ...). The engine stamps each query with
  /// one before evaluation starts.
  uint64_t NextCorrelationId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Logs one record, subject to sampling: slow or failed records are
  /// always kept, others every options().sample_every-th submission.
  void Record(QueryLogRecord record);

  /// Copy of the ring buffer, oldest first.
  std::vector<QueryLogRecord> Snapshot() const;

  /// Records submitted / kept (written to ring+file) / dropped by
  /// sampling / marked slow.
  uint64_t records_seen() const {
    return seen_.load(std::memory_order_relaxed);
  }
  uint64_t records_logged() const;
  uint64_t records_sampled_out() const;
  uint64_t slow_queries() const;

  /// Flushes the file writer (records are flushed per line already; this
  /// exists for callers that want a barrier, e.g. before forking a reader).
  void Flush();

 private:
  QueryLogOptions options_;
  std::string error_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> seen_{0};
  mutable std::mutex mu_;
  std::deque<QueryLogRecord> ring_;  // guarded by mu_
  std::FILE* file_ = nullptr;        // guarded by mu_
  uint64_t logged_ = 0;              // guarded by mu_
  uint64_t sampled_out_ = 0;         // guarded by mu_
  uint64_t slow_ = 0;                // guarded by mu_
};

/// Offline workload analysis over query records, shared by tools/
/// rdfql_stats (aggregating JSONL files) and the shell's `.stats`
/// dot-command (aggregating the session ring). Latency percentiles come
/// from the same power-of-two-bucket Histogram the engine's metrics use,
/// so `rdfql_stats` reproduces exactly what Engine::MetricsSnapshot
/// reports for the same workload.
class QueryLogAggregator {
 public:
  QueryLogAggregator() = default;
  QueryLogAggregator(const QueryLogAggregator&) = delete;
  QueryLogAggregator& operator=(const QueryLogAggregator&) = delete;

  void Add(const QueryLogRecord& record);

  uint64_t records() const { return records_; }
  uint64_t slow_queries() const { return slow_; }
  const std::map<std::string, uint64_t>& outcomes() const {
    return outcomes_;
  }
  /// Cache-outcome counts ("result_hit", "plan_hit", "miss", "bypass");
  /// empty when no record carried a cache field.
  const std::map<std::string, uint64_t>& cache_outcomes() const {
    return cache_outcomes_;
  }

  /// The pseudo-fragment key aggregating every record.
  static constexpr const char* kAllFragments = "(all)";

  /// eval_ns percentile for one fragment (or kAllFragments), estimated
  /// with Histogram::Percentile — identical to the engine's histograms.
  double FragmentPercentile(const std::string& fragment, double q) const;
  uint64_t FragmentCount(const std::string& fragment) const;
  std::vector<std::string> Fragments() const;  // sorted, kAllFragments first

  /// Human-readable report: outcome breakdown, per-fragment latency
  /// percentiles, top-N slowest queries, top-N peak-memory outliers.
  std::string ToText(size_t top_n = 5) const;
  /// The same report as one JSON object.
  std::string ToJson(size_t top_n = 5) const;

  /// The most-repeated query hashes — the workload's cache-hit potential:
  /// per canonical hash, the repeat count, eval-latency p50/p99 and an
  /// example query text, ordered by count descending. `rdfql_stats
  /// --top-hashes N` prints exactly this.
  std::string TopHashesText(size_t top_n) const;
  /// The same report as one JSON object ({"top_hashes":[...]}).
  std::string TopHashesJson(size_t top_n) const;

 private:
  struct FragmentAgg {
    uint64_t count = 0;
    std::unique_ptr<Histogram> eval_ns;
  };
  struct HashAgg {
    uint64_t count = 0;
    std::unique_ptr<Histogram> eval_ns;
    std::string example;  // first query text seen for this hash
  };
  const FragmentAgg* FindFragment(const std::string& fragment) const;
  /// by_hash_ entries ordered by count descending (ties: hash ascending),
  /// truncated to top_n.
  std::vector<std::pair<uint64_t, const HashAgg*>> TopHashes(
      size_t top_n) const;

  uint64_t records_ = 0;
  uint64_t slow_ = 0;
  std::map<std::string, uint64_t> outcomes_;
  std::map<std::string, uint64_t> cache_outcomes_;
  std::map<std::string, FragmentAgg> by_fragment_;
  std::map<uint64_t, HashAgg> by_hash_;
  std::vector<QueryLogRecord> kept_;  // for top-N tables
};

}  // namespace rdfql

#endif  // RDFQL_OBS_QUERY_LOG_H_
