#include "obs/telemetry.h"

#include "obs/json_util.h"
#include "obs/openmetrics.h"
#include "obs/profiler.h"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace rdfql {
namespace {

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

using jsonutil::AppendBool;
using jsonutil::AppendBuckets;
using jsonutil::AppendDouble;
using jsonutil::AppendInt;
using jsonutil::AppendString;
using jsonutil::AppendUint;
using SnapshotParser = jsonutil::JsonParser;

bool PhaseFromName(std::string_view name, QueryPhase* out) {
  if (name == "start") *out = QueryPhase::kStarting;
  else if (name == "parse") *out = QueryPhase::kParsing;
  else if (name == "eval") *out = QueryPhase::kEvaluating;
  else if (name == "finish") *out = QueryPhase::kFinishing;
  else return false;
  return true;
}

void AppendInflightQuery(const InflightQueryInfo& q, std::string* out) {
  bool first = true;
  out->push_back('{');
  AppendUint("slot", q.slot, &first, out);
  AppendUint("generation", q.generation, &first, out);
  AppendUint("id", q.correlation_id, &first, out);
  AppendUint("hash", q.query_hash, &first, out);
  AppendString("graph", q.graph, &first, out);
  AppendString("query", q.query, &first, out);
  AppendString("fragment", q.fragment, &first, out);
  AppendString("phase", QueryPhaseName(q.phase), &first, out);
  AppendUint("start_unix_ms", q.start_unix_ms, &first, out);
  AppendUint("wall_ns", q.wall_ns, &first, out);
  AppendUint("live_mappings", q.live_mappings, &first, out);
  AppendUint("live_bytes", q.live_bytes, &first, out);
  AppendUint("peak_bytes", q.peak_bytes, &first, out);
  AppendInt("threads", q.threads, &first, out);
  AppendBool("watchdog_cancelled", q.watchdog_cancelled, &first, out);
  out->push_back('}');
}

bool ParseInflightQuery(SnapshotParser* p, InflightQueryInfo* q,
                        std::string* error) {
  uint64_t slot = 0;
  int64_t threads = 1;
  std::string phase;
  if (!p->Eat('{') || !p->Key("slot") || !p->ParseUint(&slot) ||
      !p->Eat(',') || !p->Key("generation") || !p->ParseUint(&q->generation) ||
      !p->Eat(',') || !p->Key("id") || !p->ParseUint(&q->correlation_id) ||
      !p->Eat(',') || !p->Key("hash") || !p->ParseUint(&q->query_hash) ||
      !p->Eat(',') || !p->Key("graph") || !p->ParseString(&q->graph) ||
      !p->Eat(',') || !p->Key("query") || !p->ParseString(&q->query) ||
      !p->Eat(',') || !p->Key("fragment") || !p->ParseString(&q->fragment) ||
      !p->Eat(',') || !p->Key("phase") || !p->ParseString(&phase) ||
      !p->Eat(',') || !p->Key("start_unix_ms") ||
      !p->ParseUint(&q->start_unix_ms) || !p->Eat(',') || !p->Key("wall_ns") ||
      !p->ParseUint(&q->wall_ns) || !p->Eat(',') || !p->Key("live_mappings") ||
      !p->ParseUint(&q->live_mappings) || !p->Eat(',') ||
      !p->Key("live_bytes") || !p->ParseUint(&q->live_bytes) || !p->Eat(',') ||
      !p->Key("peak_bytes") || !p->ParseUint(&q->peak_bytes) || !p->Eat(',') ||
      !p->Key("threads") || !p->ParseInt(&threads) || !p->Eat(',') ||
      !p->Key("watchdog_cancelled") || !p->ParseBool(&q->watchdog_cancelled) ||
      !p->Eat('}')) {
    return p->Fail(error, "malformed inflight query");
  }
  q->slot = static_cast<size_t>(slot);
  q->threads = static_cast<int>(threads);
  if (!PhaseFromName(phase, &q->phase)) {
    return p->Fail(error, "unknown phase '" + phase + "'");
  }
  return true;
}

bool ParseWindow(SnapshotParser* p, TelemetryWindow* w, std::string* error) {
  if (!p->Eat('{') || !p->Key("end_unix_ms") || !p->ParseUint(&w->end_unix_ms) ||
      !p->Eat(',') || !p->Key("seconds") || !p->ParseDouble(&w->seconds) ||
      !p->Eat(',') || !p->Key("queries") || !p->ParseUint(&w->queries) ||
      !p->Eat(',') || !p->Key("rejections") || !p->ParseUint(&w->rejections) ||
      !p->Eat(',') || !p->Key("watchdog_cancels") ||
      !p->ParseUint(&w->watchdog_cancels) || !p->Eat(',') ||
      !p->Key("eval_count") || !p->ParseUint(&w->eval_count) || !p->Eat(',') ||
      !p->Key("eval_buckets") || !p->ParseBuckets(&w->eval_buckets) ||
      !p->Eat('}')) {
    return p->Fail(error, "malformed telemetry window");
  }
  return true;
}

}  // namespace

bool WatchdogPolicy::Enabled() const {
  if (defaults.Enforced()) return true;
  for (const auto& [fragment, limits] : per_fragment) {
    if (limits.Enforced()) return true;
  }
  return false;
}

const WatchdogLimits& WatchdogPolicy::For(const std::string& fragment) const {
  auto it = per_fragment.find(fragment);
  return it != per_fragment.end() ? it->second : defaults;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out;
  out.reserve(1024);
  bool first = true;
  out.push_back('{');
  AppendUint("unix_ms", unix_ms, &first, &out);
  AppendUint("interval_ms", interval_ms, &first, &out);
  AppendUint("ticks", ticks, &first, &out);
  AppendUint("queries_total", queries_total, &first, &out);
  AppendUint("rejected_total", rejected_total, &first, &out);
  AppendUint("watchdog_cancelled_total", watchdog_cancelled_total, &first,
             &out);
  AppendInt("queries_active", queries_active, &first, &out);
  AppendDouble("qps", qps, &first, &out);
  AppendDouble("rejections_per_s", rejections_per_s, &first, &out);
  AppendDouble("eval_p50_ns", eval_p50_ns, &first, &out);
  AppendDouble("eval_p99_ns", eval_p99_ns, &first, &out);
  out += ",\"windows\":[";
  bool wfirst = true;
  for (const TelemetryWindow& w : windows) {
    if (!wfirst) out.push_back(',');
    wfirst = false;
    bool f = true;
    out.push_back('{');
    AppendUint("end_unix_ms", w.end_unix_ms, &f, &out);
    AppendDouble("seconds", w.seconds, &f, &out);
    AppendUint("queries", w.queries, &f, &out);
    AppendUint("rejections", w.rejections, &f, &out);
    AppendUint("watchdog_cancels", w.watchdog_cancels, &f, &out);
    AppendUint("eval_count", w.eval_count, &f, &out);
    AppendBuckets("eval_buckets", w.eval_buckets, &f, &out);
    out.push_back('}');
  }
  out += "],\"inflight\":{";
  bool ifirst = true;
  AppendUint("unix_ms", inflight.unix_ms, &ifirst, &out);
  AppendUint("registered_total", inflight.registered_total, &ifirst, &out);
  AppendUint("watchdog_cancelled_total", inflight.watchdog_cancelled_total,
             &ifirst, &out);
  out += ",\"queries\":[";
  bool qfirst = true;
  for (const InflightQueryInfo& q : inflight.queries) {
    if (!qfirst) out.push_back(',');
    qfirst = false;
    AppendInflightQuery(q, &out);
  }
  out += "]}";
  if (!hot_tags.empty()) {
    out += ",\"hot_tags\":[";
    bool hfirst = true;
    for (const auto& [tag, self] : hot_tags) {
      if (!hfirst) out.push_back(',');
      hfirst = false;
      bool f = true;
      out.push_back('{');
      AppendString("tag", tag, &f, &out);
      AppendUint("self", self, &f, &out);
      out.push_back('}');
    }
    out.push_back(']');
  }
  if (has_alerts) {
    out += ",\"alerts\":";
    out += alerts.ToJson();
  }
  if (!build_sha.empty() || !build_type.empty()) {
    out += ",\"build\":{";
    bool bfirst = true;
    AppendString("sha", build_sha, &bfirst, &out);
    AppendString("build", build_type, &bfirst, &out);
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

bool ParseTelemetrySnapshot(std::string_view json, TelemetrySnapshot* out,
                            std::string* error) {
  *out = TelemetrySnapshot();
  SnapshotParser p(json);
  if (!p.Eat('{') || !p.Key("unix_ms") || !p.ParseUint(&out->unix_ms) ||
      !p.Eat(',') || !p.Key("interval_ms") ||
      !p.ParseUint(&out->interval_ms) || !p.Eat(',') || !p.Key("ticks") ||
      !p.ParseUint(&out->ticks) || !p.Eat(',') || !p.Key("queries_total") ||
      !p.ParseUint(&out->queries_total) || !p.Eat(',') ||
      !p.Key("rejected_total") || !p.ParseUint(&out->rejected_total) ||
      !p.Eat(',') || !p.Key("watchdog_cancelled_total") ||
      !p.ParseUint(&out->watchdog_cancelled_total) || !p.Eat(',') ||
      !p.Key("queries_active") || !p.ParseInt(&out->queries_active) ||
      !p.Eat(',') || !p.Key("qps") || !p.ParseDouble(&out->qps) ||
      !p.Eat(',') || !p.Key("rejections_per_s") ||
      !p.ParseDouble(&out->rejections_per_s) || !p.Eat(',') ||
      !p.Key("eval_p50_ns") || !p.ParseDouble(&out->eval_p50_ns) ||
      !p.Eat(',') || !p.Key("eval_p99_ns") ||
      !p.ParseDouble(&out->eval_p99_ns)) {
    return p.Fail(error, "malformed telemetry header");
  }
  if (!p.Eat(',') || !p.Key("windows") || !p.Eat('[')) {
    return p.Fail(error, "missing windows array");
  }
  if (!p.Peek(']')) {
    do {
      TelemetryWindow w;
      if (!ParseWindow(&p, &w, error)) return false;
      out->windows.push_back(std::move(w));
    } while (p.Eat(','));
  }
  if (!p.Eat(']')) return p.Fail(error, "unterminated windows array");
  if (!p.Eat(',') || !p.Key("inflight") || !p.Eat('{') || !p.Key("unix_ms") ||
      !p.ParseUint(&out->inflight.unix_ms) || !p.Eat(',') ||
      !p.Key("registered_total") ||
      !p.ParseUint(&out->inflight.registered_total) || !p.Eat(',') ||
      !p.Key("watchdog_cancelled_total") ||
      !p.ParseUint(&out->inflight.watchdog_cancelled_total) || !p.Eat(',') ||
      !p.Key("queries") || !p.Eat('[')) {
    return p.Fail(error, "malformed inflight section");
  }
  if (!p.Peek(']')) {
    do {
      InflightQueryInfo q;
      if (!ParseInflightQuery(&p, &q, error)) return false;
      out->inflight.queries.push_back(std::move(q));
    } while (p.Eat(','));
  }
  if (!p.Eat(']') || !p.Eat('}')) {
    return p.Fail(error, "unterminated inflight section");
  }
  // Optional trailing sections, each emitted only when its producer was
  // attached: hot_tags (profiler), alerts (alert engine), build
  // (provenance). Absent forms parse too.
  bool more = p.Eat(',');
  while (more) {
    if (p.Key("hot_tags")) {
      if (!p.Eat('[')) return p.Fail(error, "malformed hot_tags");
      if (!p.Peek(']')) {
        do {
          std::string tag;
          uint64_t self = 0;
          if (!p.Eat('{') || !p.Key("tag") || !p.ParseString(&tag) ||
              !p.Eat(',') || !p.Key("self") || !p.ParseUint(&self) ||
              !p.Eat('}')) {
            return p.Fail(error, "malformed hot_tags entry");
          }
          out->hot_tags.emplace_back(std::move(tag), self);
        } while (p.Eat(','));
      }
      if (!p.Eat(']')) return p.Fail(error, "unterminated hot_tags array");
    } else if (p.Key("alerts")) {
      out->has_alerts = true;
      if (!p.Eat('{') || !p.Key("unix_ms") ||
          !p.ParseUint(&out->alerts.unix_ms) || !p.Eat(',') ||
          !p.Key("pending_total") ||
          !p.ParseUint(&out->alerts.pending_total) || !p.Eat(',') ||
          !p.Key("firing_total") || !p.ParseUint(&out->alerts.firing_total) ||
          !p.Eat(',') || !p.Key("resolved_total") ||
          !p.ParseUint(&out->alerts.resolved_total) || !p.Eat(',') ||
          !p.Key("rules") || !p.Eat('[')) {
        return p.Fail(error, "malformed alerts section");
      }
      if (!p.Peek(']')) {
        do {
          AlertRuleStatus r;
          if (!p.Eat('{') || !p.Key("name") || !p.ParseString(&r.name) ||
              !p.Eat(',') || !p.Key("severity") ||
              !p.ParseString(&r.severity) || !p.Eat(',') || !p.Key("state") ||
              !p.ParseString(&r.state) || !p.Eat(',') || !p.Key("fragment") ||
              !p.ParseString(&r.fragment) || !p.Eat(',') || !p.Key("value") ||
              !p.ParseDouble(&r.value) || !p.Eat(',') ||
              !p.Key("threshold") || !p.ParseDouble(&r.threshold) ||
              !p.Eat(',') || !p.Key("since_unix_ms") ||
              !p.ParseUint(&r.since_unix_ms) || !p.Eat(',') ||
              !p.Key("fires") || !p.ParseUint(&r.fires) || !p.Eat('}')) {
            return p.Fail(error, "malformed alert rule status");
          }
          out->alerts.rules.push_back(std::move(r));
        } while (p.Eat(','));
      }
      if (!p.Eat(']') || !p.Eat('}')) {
        return p.Fail(error, "unterminated alerts section");
      }
    } else if (p.Key("build")) {
      if (!p.Eat('{') || !p.Key("sha") || !p.ParseString(&out->build_sha) ||
          !p.Eat(',') || !p.Key("build") ||
          !p.ParseString(&out->build_type) || !p.Eat('}')) {
        return p.Fail(error, "malformed build section");
      }
    } else {
      return p.Fail(error, "unknown trailing section");
    }
    more = p.Eat(',');
  }
  if (!p.Eat('}') || !p.AtEnd()) {
    return p.Fail(error, "trailing content");
  }
  return true;
}

TelemetrySampler::TelemetrySampler(MetricsRegistry* metrics,
                                   InflightRegistry* inflight,
                                   TelemetryOptions options)
    : metrics_(metrics), inflight_(inflight), options_(std::move(options)) {
  prev_steady_ns_ = SteadyNowNs();
  if (options_.window_count == 0) options_.window_count = 1;
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final tick so the snapshot (and its file) reflects the end state.
  TickNow();
  // And a final history flush, so short-lived runs persist their ring even
  // if they never reached the periodic persist threshold.
  if (options_.history != nullptr) options_.history->WriteFile();
}

WatchdogPolicy TelemetrySampler::EffectiveWatchdog() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  WatchdogPolicy effective = options_.watchdog;
  for (const auto& [fragment, limits] : escalations_) {
    effective.per_fragment[fragment] = limits;
  }
  return effective;
}

void TelemetrySampler::TickNow() { Tick(); }

uint64_t TelemetrySampler::ticks() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return ticks_;
}

TelemetrySnapshot TelemetrySampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return latest_;
}

void TelemetrySampler::Loop() {
  std::unique_lock<std::mutex> lock(loop_mu_);
  while (true) {
    loop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void TelemetrySampler::Tick() {
  // Watchdog sweep first, so a cancellation issued this tick is visible in
  // the snapshot taken just below (the slot's flag and wall time persist
  // until the query observes the token and unregisters). The policy is the
  // configured one plus any per-fragment escalations from firing alert
  // rules (computed at the end of the previous tick).
  WatchdogPolicy sweep_policy = EffectiveWatchdog();
  if (inflight_ != nullptr && sweep_policy.Enabled()) {
    InflightSnapshot sweep = inflight_->Snapshot();
    for (const InflightQueryInfo& q : sweep.queries) {
      if (q.watchdog_cancelled) continue;
      const WatchdogLimits& limits = sweep_policy.For(q.fragment);
      uint64_t wall_ms = q.wall_ns / 1'000'000ull;
      char reason[160];
      if (limits.max_wall_ms != 0 && wall_ms > limits.max_wall_ms) {
        std::snprintf(reason, sizeof(reason),
                      "watchdog: query exceeded max_wall_ms=%" PRIu64
                      " (ran %" PRIu64 " ms)",
                      limits.max_wall_ms, wall_ms);
        inflight_->WatchdogCancel(q.slot, q.generation,
                                  Status::Cancelled(reason));
      } else if (limits.max_live_bytes != 0 &&
                 q.live_bytes > limits.max_live_bytes) {
        std::snprintf(reason, sizeof(reason),
                      "watchdog: query exceeded max_live_bytes=%" PRIu64
                      " (~%" PRIu64 " bytes live)",
                      limits.max_live_bytes, q.live_bytes);
        inflight_->WatchdogCancel(q.slot, q.generation,
                                  Status::Cancelled(reason));
      }
    }
  }

  uint64_t now_steady = SteadyNowNs();
  RegistrySnapshot m = metrics_ != nullptr ? metrics_->Snapshot()
                                           : RegistrySnapshot();
  InflightSnapshot inf =
      inflight_ != nullptr ? inflight_->Snapshot() : InflightSnapshot();
  uint64_t now_unix_ms = inf.unix_ms != 0 ? inf.unix_ms : UnixNowMs();

  // History + alerts ride the same tick: the ring records the registry
  // delta, then the rules are evaluated against the updated ring, and any
  // watchdog escalations from firing rules take effect at the next sweep.
  if (options_.history != nullptr) {
    options_.history->Record(m, now_unix_ms);
    if (options_.alerts != nullptr) {
      options_.alerts->Evaluate(*options_.history, now_unix_ms);
      std::vector<std::pair<std::string, uint64_t>> escalations =
          options_.alerts->WatchdogEscalations();
      std::lock_guard<std::mutex> lock(state_mu_);
      escalations_.clear();
      for (const auto& [fragment, wall_ms] : escalations) {
        WatchdogLimits limits = options_.watchdog.For(fragment);
        if (limits.max_wall_ms == 0 || wall_ms < limits.max_wall_ms) {
          limits.max_wall_ms = wall_ms;
        }
        escalations_[fragment] = limits;
      }
    }
  }

  auto counter = [&m](const char* name) -> uint64_t {
    auto it = m.counters.find(name);
    return it != m.counters.end() ? it->second : 0;
  };
  uint64_t queries = counter("engine.queries");
  uint64_t rejections = counter("engine.queries_rejected") +
                        counter("engine.queries_deadline_exceeded") +
                        counter("engine.queries_cancelled");
  uint64_t watchdog = inf.watchdog_cancelled_total;
  uint64_t eval_count = 0;
  std::map<uint64_t, uint64_t> eval_buckets;
  if (auto it = m.histograms.find("engine.eval_ns");
      it != m.histograms.end()) {
    eval_count = it->second.count;
    for (const auto& [bound, n] : it->second.buckets) eval_buckets[bound] = n;
  }

  TelemetrySnapshot published;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    TelemetryWindow w;
    w.end_unix_ms = now_unix_ms;
    w.seconds =
        static_cast<double>(SaturatingSub(now_steady, prev_steady_ns_)) / 1e9;
    w.queries = SaturatingSub(queries, prev_queries_);
    w.rejections = SaturatingSub(rejections, prev_rejections_);
    w.watchdog_cancels = SaturatingSub(watchdog, prev_watchdog_);
    w.eval_count = SaturatingSub(eval_count, prev_eval_count_);
    for (const auto& [bound, n] : eval_buckets) {
      auto it = prev_eval_buckets_.find(bound);
      uint64_t delta = SaturatingSub(n, it != prev_eval_buckets_.end()
                                            ? it->second
                                            : 0);
      if (delta > 0) w.eval_buckets.emplace_back(bound, delta);
    }
    prev_steady_ns_ = now_steady;
    prev_queries_ = queries;
    prev_rejections_ = rejections;
    prev_watchdog_ = watchdog;
    prev_eval_count_ = eval_count;
    prev_eval_buckets_ = std::move(eval_buckets);
    have_prev_ = true;

    windows_.push_back(std::move(w));
    while (windows_.size() > options_.window_count) windows_.pop_front();

    // Aggregate the retained windows into the published rates.
    TelemetrySnapshot snap;
    snap.unix_ms = windows_.back().end_unix_ms;
    snap.interval_ms = options_.interval_ms;
    snap.ticks = ++ticks_;
    snap.queries_total = queries;
    snap.rejected_total = rejections;
    snap.watchdog_cancelled_total = watchdog;
    snap.queries_active = static_cast<int64_t>(inf.queries.size());
    double seconds = 0;
    uint64_t window_queries = 0, window_rejections = 0, window_evals = 0;
    std::map<uint64_t, uint64_t> merged;
    for (const TelemetryWindow& win : windows_) {
      seconds += win.seconds;
      window_queries += win.queries;
      window_rejections += win.rejections;
      window_evals += win.eval_count;
      for (const auto& [bound, n] : win.eval_buckets) merged[bound] += n;
    }
    if (seconds > 0) {
      snap.qps = static_cast<double>(window_queries) / seconds;
      snap.rejections_per_s = static_cast<double>(window_rejections) / seconds;
    }
    std::vector<std::pair<uint64_t, uint64_t>> merged_vec(merged.begin(),
                                                          merged.end());
    snap.eval_p50_ns = HistogramPercentile(merged_vec, window_evals, 0.50);
    snap.eval_p99_ns = HistogramPercentile(merged_vec, window_evals, 0.99);
    snap.windows.assign(windows_.begin(), windows_.end());
    snap.inflight = std::move(inf);
    if (Profiler* prof = Profiler::Active()) {
      for (ProfileTagTotal& t : prof->TopTags(8)) {
        snap.hot_tags.emplace_back(std::move(t.tag), t.self);
      }
    }
    if (options_.alerts != nullptr) {
      snap.has_alerts = true;
      snap.alerts = options_.alerts->Snapshot();
    }
    BuildInfo build = CurrentBuildInfo();
    snap.build_sha = build.sha;
    snap.build_type = build.build;
    latest_ = snap;
    published = std::move(snap);
  }
  WriteSnapshotFile(published);
}

void TelemetrySampler::WriteSnapshotFile(const TelemetrySnapshot& snap) {
  if (options_.snapshot_path.empty()) return;
  std::string tmp = options_.snapshot_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  std::string json = snap.ToJson();
  json.push_back('\n');
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    std::remove(tmp.c_str());
    return;
  }
  // Atomic hand-off: readers (rdfql_top) always see a complete snapshot.
  std::rename(tmp.c_str(), options_.snapshot_path.c_str());
}

}  // namespace rdfql
