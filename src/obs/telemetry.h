#ifndef RDFQL_OBS_TELEMETRY_H_
#define RDFQL_OBS_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/alerts.h"
#include "obs/history.h"
#include "obs/inflight.h"
#include "obs/metrics.h"

namespace rdfql {

/// One fragment's (or the default) watchdog budget. 0 means unlimited,
/// matching the ResourceLimits convention.
struct WatchdogLimits {
  uint64_t max_wall_ms = 0;
  uint64_t max_live_bytes = 0;

  bool Enforced() const { return (max_wall_ms | max_live_bytes) != 0; }
};

/// The slow-query watchdog policy: default budgets plus optional overrides
/// keyed by the query's fragment string (DescribeFragment(), e.g.
/// "NS-SPARQL") — the paper's fragments are exactly the risk classes (an
/// NS or OPT-heavy query can blow up where a SPARQL[AUF] one cannot), so
/// per-fragment budgets put tighter leashes on the dangerous shapes.
struct WatchdogPolicy {
  WatchdogLimits defaults;
  std::map<std::string, WatchdogLimits> per_fragment;

  bool Enabled() const;
  /// The limits applying to `fragment`: the override when present, else
  /// the defaults.
  const WatchdogLimits& For(const std::string& fragment) const;
};

/// One sampling window: the delta of the engine's cumulative counters (and
/// the eval-latency histogram) across one sampler tick.
struct TelemetryWindow {
  uint64_t end_unix_ms = 0;
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t rejections = 0;  // rejected + deadline_exceeded + cancelled
  uint64_t watchdog_cancels = 0;
  uint64_t eval_count = 0;
  /// (exclusive upper bound, observations) deltas of engine.eval_ns for
  /// the window's non-empty buckets — windowed percentiles come from
  /// merging these, not from the cumulative histogram.
  std::vector<std::pair<uint64_t, uint64_t>> eval_buckets;
};

/// What the sampler publishes each tick: cumulative totals, rates and
/// percentiles over the retained windows, the windows themselves (oldest
/// first), and the embedded in-flight registry snapshot. Serializable to a
/// single JSON object so rdfql_top (or anything else) can follow a file.
struct TelemetrySnapshot {
  uint64_t unix_ms = 0;
  uint64_t interval_ms = 0;
  uint64_t ticks = 0;
  uint64_t queries_total = 0;
  uint64_t rejected_total = 0;
  uint64_t watchdog_cancelled_total = 0;
  int64_t queries_active = 0;
  double qps = 0;
  double rejections_per_s = 0;
  double eval_p50_ns = 0;
  double eval_p99_ns = 0;
  std::vector<TelemetryWindow> windows;
  InflightSnapshot inflight;
  /// The profiler's hottest tags by self samples, (tag, self) pairs hottest
  /// first — present only while an engine profiler is running (rdfql_top
  /// renders these as its hot-tag panel). Absent entirely otherwise, and
  /// the parser accepts both forms.
  std::vector<std::pair<std::string, uint64_t>> hot_tags;
  /// Alert-engine view at the tick — present only when the sampler drives
  /// an AlertEngine (has_alerts distinguishes "no engine" from "no rules");
  /// the parser accepts both forms.
  bool has_alerts = false;
  AlertSnapshot alerts;
  /// Build provenance (same values as the OpenMetrics rdfql_build_info and
  /// the bench JSON v3 stamp). Absent from snapshots written by older
  /// builds; the parser accepts both forms.
  std::string build_sha;
  std::string build_type;

  std::string ToJson() const;
};

/// Parses a snapshot produced by TelemetrySnapshot::ToJson (strict field
/// order, same discipline as the query-log reader). Returns false with a
/// diagnostic in `*error` on malformed input.
bool ParseTelemetrySnapshot(std::string_view json, TelemetrySnapshot* out,
                            std::string* error);

struct TelemetryOptions {
  /// Tick period. 0 disables the background thread: the owner drives the
  /// sampler with TickNow() (tests, single-shot tools).
  uint64_t interval_ms = 1000;
  /// Sliding windows retained for the rate/percentile aggregates.
  size_t window_count = 60;
  WatchdogPolicy watchdog;
  /// When non-empty, every tick atomically rewrites this file (temp +
  /// rename) with the current TelemetrySnapshot JSON — the hand-off point
  /// to rdfql_top.
  std::string snapshot_path;
  /// When set, every tick records the registry snapshot into this history
  /// ring (and Stop() persists it, if the ring has a jsonl_path). Must
  /// outlive the sampler. Note the ring sees the raw registry — the series
  /// Engine::MetricsSnapshot injects on top (pool.*, lock.*) are not in it.
  MetricsHistory* history = nullptr;
  /// When set (requires `history`), every tick evaluates the alert rules
  /// against the ring, embeds the AlertSnapshot into the telemetry
  /// snapshot, and folds watchdog escalations from firing rules into the
  /// effective watchdog policy. Must outlive the sampler.
  AlertEngine* alerts = nullptr;
};

/// The windowed telemetry sampler + slow-query watchdog. A background
/// thread ticks every interval: it diffs the metrics registry's cumulative
/// counters into a sliding-window view (QPS, rejections/s, windowed
/// p50/p99 of engine.eval_ns), sweeps the in-flight registry against the
/// watchdog policy — cancelling offenders through their own tokens — and
/// publishes the combined snapshot in memory and optionally to a file.
///
/// The sampler only reads the registries it is given; it never blocks a
/// query (per-slot locks are held for field copies only).
class TelemetrySampler {
 public:
  /// `metrics` and `inflight` must outlive the sampler. Starts the
  /// background thread unless options.interval_ms == 0.
  TelemetrySampler(MetricsRegistry* metrics, InflightRegistry* inflight,
                   TelemetryOptions options);
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Stops the background thread (idempotent). Runs one final tick so the
  /// snapshot file reflects the end state.
  void Stop();

  /// Runs one tick synchronously on the calling thread.
  void TickNow();

  /// The most recently published snapshot (empty before the first tick).
  TelemetrySnapshot Snapshot() const;

  uint64_t ticks() const;

  /// The watchdog policy the next sweep will enforce: the configured policy
  /// plus per-fragment overrides escalated from firing alert rules.
  WatchdogPolicy EffectiveWatchdog() const;

 private:
  void Loop();
  void Tick();
  void WriteSnapshotFile(const TelemetrySnapshot& snap);

  MetricsRegistry* metrics_;
  InflightRegistry* inflight_;
  TelemetryOptions options_;

  mutable std::mutex state_mu_;
  // Previous tick's cumulative readings (all guarded by state_mu_).
  bool have_prev_ = false;
  uint64_t prev_steady_ns_ = 0;
  uint64_t prev_queries_ = 0;
  uint64_t prev_rejections_ = 0;
  uint64_t prev_watchdog_ = 0;
  uint64_t prev_eval_count_ = 0;
  std::map<uint64_t, uint64_t> prev_eval_buckets_;
  std::deque<TelemetryWindow> windows_;
  TelemetrySnapshot latest_;
  uint64_t ticks_ = 0;
  /// Watchdog overrides escalated from firing alert rules (guarded by
  /// state_mu_); recomputed after each alert evaluation, enforced by the
  /// next tick's sweep.
  std::map<std::string, WatchdogLimits> escalations_;

  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_TELEMETRY_H_
