#ifndef RDFQL_OBS_METRICS_H_
#define RDFQL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rdfql {

/// A monotonically increasing counter (e.g. `eval.join_probes`). Increments
/// are relaxed atomics, so counters are safe to bump from any thread and
/// cheap enough for per-operator accounting.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-write-wins signed gauge (e.g. `engine.graphs`).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over power-of-two boundaries: bucket i
/// counts observations in [2^(i-1), 2^i) (bucket 0 is [0, 1)). With 40
/// buckets the range covers 1 ns .. ~9 minutes, which is ample for both a
/// single operator and a whole query. Observation is two relaxed atomic
/// adds plus a bit scan — no allocation, no locks.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (exclusive) of bucket i.
  static uint64_t BucketBound(int i);

  /// The q-quantile (q in [0,1]) estimated by log-linear interpolation:
  /// the rank q*Count() is located in the cumulative bucket counts and
  /// interpolated linearly within the power-of-two bucket holding it (the
  /// buckets are log-spaced, so the interpolation is linear in log space
  /// of the value range). Exact when all mass sits at bucket edges; always
  /// within one bucket width of the true quantile. Returns 0 on an empty
  /// histogram. See also HistogramPercentile / HistogramData::Percentile
  /// for the snapshot-side equivalents.
  double Percentile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A point-in-time copy of a registry's contents, with text and JSON
/// renderings. Histograms carry (upper_bound, count) pairs for the
/// non-empty buckets plus count/sum, so mean and coarse percentiles can be
/// recovered downstream.
struct RegistrySnapshot {
  struct HistogramData {
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (exclusive upper bound, observations) for each non-empty bucket.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    double Mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
    /// Upper bound of the bucket containing the q-quantile (q in [0,1]).
    uint64_t ApproxQuantile(double q) const;
    /// Interpolated quantile — same estimator as Histogram::Percentile,
    /// computed from the snapshot's (bound, count) pairs. The pairs carry
    /// the exact bucket boundaries, so scrapers (OpenMetrics exposition,
    /// rdfql_stats) reproduce the engine's percentiles losslessly.
    double Percentile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// One metric per line, e.g. `eval.join_probes 1234`.
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  ///  "sum":..,"mean":..,"p50":..,"p99":..,"buckets":[[le,n],...]}}}
  std::string ToJson() const;
};

/// A registry of named metrics. Creation takes a mutex; the returned
/// pointers are stable for the registry's lifetime, so hot paths look a
/// metric up once and hold the pointer. Snapshot and Reset may race with
/// concurrent increments (relaxed reads), which is the usual contract for
/// scrape-style metrics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; never returns null.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric (names stay registered; pointers stay valid).
  void Reset();

  /// Process-wide registry for callers without a better home.
  static MetricsRegistry* Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Appends a JSON-escaped copy of `s` (quotes not included) to `out`.
/// Shared by the metrics, tracer and bench JSON emitters.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// The shared percentile estimator behind Histogram::Percentile and
/// HistogramData::Percentile: `buckets` is the (exclusive upper bound,
/// observations) list of the non-empty power-of-two buckets in increasing
/// bound order, `count` the total observation count. Locates the rank
/// q*count in the cumulative counts and interpolates linearly within the
/// bucket's [bound/2, bound) range (bucket [0,1) for bound 1).
double HistogramPercentile(
    const std::vector<std::pair<uint64_t, uint64_t>>& buckets,
    uint64_t count, double q);

}  // namespace rdfql

#endif  // RDFQL_OBS_METRICS_H_
