#include "obs/alerts.h"

#include <cctype>
#include <cstdio>
#include <utility>

#include "obs/json_util.h"

namespace rdfql {

namespace {

using jsonutil::AppendDouble;
using jsonutil::AppendString;
using jsonutil::AppendUint;
using jsonutil::JsonParser;

bool AggFromName(std::string_view name, AlertCondition::Agg* out) {
  if (name == "value") *out = AlertCondition::Agg::kValue;
  else if (name == "rate") *out = AlertCondition::Agg::kRate;
  else if (name == "delta") *out = AlertCondition::Agg::kDelta;
  else if (name == "p50") *out = AlertCondition::Agg::kP50;
  else if (name == "p90") *out = AlertCondition::Agg::kP90;
  else if (name == "p99") *out = AlertCondition::Agg::kP99;
  else if (name == "burn_rate") *out = AlertCondition::Agg::kBurnRate;
  else return false;
  return true;
}

/// Parses one rule object at the cursor. Keys may appear in any order —
/// this is the one obs format humans write by hand.
bool ParseRuleObject(JsonParser* p, AlertRule* rule, std::string* error) {
  if (!p->Eat('{')) return p->Fail(error, "expected rule object");
  bool saw_agg = false;
  if (!p->Eat('}')) {
    do {
      std::string key;
      if (!p->NextKey(&key)) return p->Fail(error, "expected rule key");
      if (key == "name") {
        if (!p->ParseString(&rule->name)) {
          return p->Fail(error, "name wants a string");
        }
      } else if (key == "severity") {
        if (!p->ParseString(&rule->severity)) {
          return p->Fail(error, "severity wants a string");
        }
      } else if (key == "agg") {
        std::string agg;
        if (!p->ParseString(&agg) || !AggFromName(agg, &rule->condition.agg)) {
          return p->Fail(error,
                         "agg wants one of value|rate|delta|p50|p90|p99|"
                         "burn_rate");
        }
        saw_agg = true;
      } else if (key == "metric") {
        if (!p->ParseString(&rule->condition.metric)) {
          return p->Fail(error, "metric wants a string");
        }
      } else if (key == "denominator") {
        if (!p->ParseString(&rule->condition.denominator)) {
          return p->Fail(error, "denominator wants a string");
        }
      } else if (key == "fragment") {
        if (!p->ParseString(&rule->condition.fragment)) {
          return p->Fail(error, "fragment wants a string");
        }
      } else if (key == "objective") {
        if (!p->ParseDouble(&rule->condition.objective)) {
          return p->Fail(error, "objective wants a number");
        }
      } else if (key == "op") {
        std::string op;
        if (!p->ParseString(&op) || (op != ">" && op != "<")) {
          return p->Fail(error, "op wants \">\" or \"<\"");
        }
        rule->condition.op = op[0];
      } else if (key == "threshold") {
        // A bare number is raw metric units; a duration string converts to
        // nanoseconds (the unit of every *_ns histogram).
        if (p->Peek('"')) {
          std::string text;
          uint64_t ms = 0;
          if (!p->ParseString(&text) || !ParseDurationMs(text, &ms)) {
            return p->Fail(error, "threshold duration wants e.g. \"50ms\"");
          }
          rule->condition.threshold = static_cast<double>(ms) * 1e6;
        } else if (!p->ParseDouble(&rule->condition.threshold)) {
          return p->Fail(error, "threshold wants a number or duration");
        }
      } else if (key == "windows") {
        if (!p->Eat('[')) return p->Fail(error, "windows wants an array");
        if (!p->Eat(']')) {
          do {
            uint64_t ms = 0;
            if (p->Peek('"')) {
              std::string text;
              if (!p->ParseString(&text) || !ParseDurationMs(text, &ms)) {
                return p->Fail(error, "window wants e.g. \"5m\"");
              }
            } else if (!p->ParseUint(&ms)) {
              return p->Fail(error, "window wants a duration");
            }
            rule->condition.windows_ms.push_back(ms);
          } while (p->Eat(','));
          if (!p->Eat(']')) return p->Fail(error, "unterminated windows");
        }
      } else if (key == "for" || key == "keep") {
        uint64_t ms = 0;
        if (p->Peek('"')) {
          std::string text;
          if (!p->ParseString(&text) || !ParseDurationMs(text, &ms)) {
            return p->Fail(error, key + " wants a duration");
          }
        } else if (!p->ParseUint(&ms)) {
          return p->Fail(error, key + " wants a duration");
        }
        (key == "for" ? rule->for_ms : rule->keep_ms) = ms;
      } else if (key == "escalate_watchdog_wall_ms") {
        if (!p->ParseUint(&rule->escalate_watchdog_wall_ms)) {
          return p->Fail(error, "escalate_watchdog_wall_ms wants an integer");
        }
      } else {
        return p->Fail(error, "unknown rule key '" + key + "'");
      }
    } while (p->Eat(','));
    if (!p->Eat('}')) return p->Fail(error, "unterminated rule object");
  }
  if (rule->name.empty()) return p->Fail(error, "rule is missing a name");
  if (rule->condition.metric.empty()) {
    return p->Fail(error, "rule '" + rule->name + "' is missing a metric");
  }
  if (!saw_agg) {
    return p->Fail(error, "rule '" + rule->name + "' is missing agg");
  }
  if (rule->condition.agg == AlertCondition::Agg::kBurnRate) {
    if (rule->condition.denominator.empty()) {
      return p->Fail(error,
                     "burn_rate rule '" + rule->name +
                         "' wants a denominator counter");
    }
    if (rule->condition.objective <= 0) {
      return p->Fail(error, "burn_rate rule '" + rule->name +
                                "' wants an objective > 0");
    }
  }
  if (rule->condition.windows_ms.empty()) {
    if (rule->condition.agg == AlertCondition::Agg::kValue) {
      rule->condition.windows_ms.push_back(0);  // gauges ignore the window
    } else {
      return p->Fail(error,
                     "rule '" + rule->name + "' wants at least one window");
    }
  }
  return true;
}

double EvalWindow(const AlertCondition& c, const MetricsHistory& history,
                  uint64_t window_ms, uint64_t now_ms) {
  const std::string metric =
      c.fragment.empty() ? c.metric : FragmentMetricName(c.metric, c.fragment);
  switch (c.agg) {
    case AlertCondition::Agg::kValue: {
      int64_t v = 0;
      return history.LatestGauge(metric, &v) ? static_cast<double>(v) : 0.0;
    }
    case AlertCondition::Agg::kRate:
      return history.RateOver(metric, window_ms, now_ms);
    case AlertCondition::Agg::kDelta:
      return static_cast<double>(history.DeltaOver(metric, window_ms, now_ms));
    case AlertCondition::Agg::kP50:
      return history.PercentileOver(metric, 0.50, window_ms, now_ms);
    case AlertCondition::Agg::kP90:
      return history.PercentileOver(metric, 0.90, window_ms, now_ms);
    case AlertCondition::Agg::kP99:
      return history.PercentileOver(metric, 0.99, window_ms, now_ms);
    case AlertCondition::Agg::kBurnRate: {
      double bad = history.RateOver(metric, window_ms, now_ms);
      double total = history.RateOver(c.denominator, window_ms, now_ms);
      if (total <= 0 || c.objective <= 0) return 0.0;
      return (bad / total) / c.objective;
    }
  }
  return 0.0;
}

bool Breaches(const AlertCondition& c, double value) {
  return c.op == '>' ? value > c.threshold : value < c.threshold;
}

std::set<std::string, std::less<>> CollectFragments(
    const std::vector<AlertRule>& rules) {
  std::set<std::string, std::less<>> out;
  for (const AlertRule& rule : rules) {
    if (!rule.condition.fragment.empty()) out.insert(rule.condition.fragment);
  }
  return out;
}

}  // namespace

std::string FragmentMetricName(std::string_view metric,
                               std::string_view fragment) {
  std::string out(metric);
  out += ".fragment.";
  out += fragment;
  return out;
}

bool ParseDurationMs(std::string_view text, uint64_t* out_ms) {
  size_t i = 0;
  uint64_t v = 0;
  bool digits = false;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    v = v * 10 + static_cast<uint64_t>(text[i++] - '0');
    digits = true;
  }
  if (!digits) return false;
  std::string_view unit = text.substr(i);
  if (unit.empty() || unit == "ms") *out_ms = v;
  else if (unit == "s") *out_ms = v * 1000;
  else if (unit == "m") *out_ms = v * 60 * 1000;
  else if (unit == "h") *out_ms = v * 60 * 60 * 1000;
  else return false;
  return true;
}

bool ParseAlertRules(std::string_view json, std::vector<AlertRule>* out,
                     std::string* error) {
  out->clear();
  JsonParser p(json);
  // 0 until seen: a rule file must say which grammar it speaks.
  uint64_t version = 0;
  bool saw_rules = false;
  if (!p.Eat('{')) return p.Fail(error, "expected a rule-file object");
  if (!p.Eat('}')) {
    do {
      std::string key;
      if (!p.NextKey(&key)) return p.Fail(error, "expected key");
      if (key == "version") {
        if (!p.ParseUint(&version)) {
          return p.Fail(error, "version wants an integer");
        }
      } else if (key == "rules") {
        saw_rules = true;
        if (!p.Eat('[')) return p.Fail(error, "rules wants an array");
        if (!p.Eat(']')) {
          do {
            AlertRule rule;
            if (!ParseRuleObject(&p, &rule, error)) return false;
            out->push_back(std::move(rule));
          } while (p.Eat(','));
          if (!p.Eat(']')) return p.Fail(error, "unterminated rules array");
        }
      } else {
        return p.Fail(error, "unknown key '" + key + "'");
      }
    } while (p.Eat(','));
    if (!p.Eat('}')) return p.Fail(error, "unterminated rule-file object");
  }
  if (!p.AtEnd()) return p.Fail(error, "trailing content");
  if (version != 1) return p.Fail(error, "unsupported rules version");
  if (!saw_rules) return p.Fail(error, "missing \"rules\"");
  std::set<std::string> names;
  for (const AlertRule& rule : *out) {
    if (!names.insert(rule.name).second) {
      return p.Fail(error, "duplicate rule name '" + rule.name + "'");
    }
  }
  return true;
}

std::string AlertTransition::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendUint("v", 1, &first, &out);
  AppendUint("unix_ms", unix_ms, &first, &out);
  AppendString("rule", rule, &first, &out);
  AppendString("state", state, &first, &out);
  AppendString("severity", severity, &first, &out);
  AppendString("fragment", fragment, &first, &out);
  AppendDouble("value", value, &first, &out);
  AppendDouble("threshold", threshold, &first, &out);
  out += ",\"windows_ms\":[";
  bool inner = true;
  char buf[32];
  for (uint64_t w : windows_ms) {
    if (!inner) out.push_back(',');
    inner = false;
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(w));
    out += buf;
  }
  out += "]}";
  return out;
}

bool ParseAlertLogLine(std::string_view line, AlertTransition* out,
                       std::string* error) {
  *out = AlertTransition();
  JsonParser p(line);
  uint64_t version = 0;
  if (!p.Eat('{') || !p.Key("v") || !p.ParseUint(&version)) {
    return p.Fail(error, "expected {\"v\":..");
  }
  if (version != 1) return p.Fail(error, "unsupported alert-log version");
  if (!p.Eat(',') || !p.Key("unix_ms") || !p.ParseUint(&out->unix_ms) ||
      !p.Eat(',') || !p.Key("rule") || !p.ParseString(&out->rule) ||
      !p.Eat(',') || !p.Key("state") || !p.ParseString(&out->state) ||
      !p.Eat(',') || !p.Key("severity") || !p.ParseString(&out->severity) ||
      !p.Eat(',') || !p.Key("fragment") || !p.ParseString(&out->fragment) ||
      !p.Eat(',') || !p.Key("value") || !p.ParseDouble(&out->value) ||
      !p.Eat(',') || !p.Key("threshold") ||
      !p.ParseDouble(&out->threshold)) {
    return p.Fail(error, "bad alert record");
  }
  if (!p.Eat(',') || !p.Key("windows_ms") || !p.Eat('[')) {
    return p.Fail(error, "expected windows_ms");
  }
  if (!p.Eat(']')) {
    do {
      uint64_t w = 0;
      if (!p.ParseUint(&w)) return p.Fail(error, "bad window");
      out->windows_ms.push_back(w);
    } while (p.Eat(','));
    if (!p.Eat(']')) return p.Fail(error, "unterminated windows_ms");
  }
  if (out->state != "pending" && out->state != "firing" &&
      out->state != "resolved") {
    return p.Fail(error, "unknown state '" + out->state + "'");
  }
  if (!p.Eat('}') || !p.AtEnd()) return p.Fail(error, "trailing content");
  return true;
}

AlertLog::AlertLog(AlertLogOptions options) : options_([&options] {
      if (options.ring_capacity == 0) options.ring_capacity = 1;
      return std::move(options);
    }()) {
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), options_.append ? "a" : "w");
    if (file_ == nullptr) {
      error_ = "cannot open alert log '" + options_.path + "'";
    }
  }
}

AlertLog::~AlertLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void AlertLog::Record(const AlertTransition& transition) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  // Serialize outside the lock — same discipline as QueryLog::Record.
  std::string line = transition.ToJson();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(transition);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
}

std::vector<AlertTransition> AlertLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AlertTransition>(ring_.begin(), ring_.end());
}

void AlertLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

size_t AlertSnapshot::FiringNow() const {
  size_t n = 0;
  for (const AlertRuleStatus& r : rules) {
    if (r.state == "firing") ++n;
  }
  return n;
}

std::string AlertSnapshot::ToText() const {
  size_t pending = 0, firing = 0;
  for (const AlertRuleStatus& r : rules) {
    if (r.state == "pending") ++pending;
    if (r.state == "firing") ++firing;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "alerts (%zu rule%s): %zu firing, %zu pending | fired %llu, "
                "resolved %llu all-time\n",
                rules.size(), rules.size() == 1 ? "" : "s", firing, pending,
                static_cast<unsigned long long>(firing_total),
                static_cast<unsigned long long>(resolved_total));
  std::string out = buf;
  // Firing rules first — they are why anyone is looking at this panel —
  // then the rest in rule-file order.
  std::vector<const AlertRuleStatus*> ordered;
  ordered.reserve(rules.size());
  for (const AlertRuleStatus& r : rules) {
    if (r.state == "firing") ordered.push_back(&r);
  }
  for (const AlertRuleStatus& r : rules) {
    if (r.state != "firing") ordered.push_back(&r);
  }
  for (const AlertRuleStatus* r : ordered) {
    std::snprintf(buf, sizeof(buf),
                  "  %-8s %-24s value %.4g threshold %.4g severity %s",
                  r->state.c_str(), r->name.c_str(), r->value, r->threshold,
                  r->severity.c_str());
    out += buf;
    if (!r->fragment.empty()) {
      out += " fragment ";
      out += r->fragment;
    }
    if (r->fires > 0) {
      std::snprintf(buf, sizeof(buf), " fires %llu",
                    static_cast<unsigned long long>(r->fires));
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

std::string AlertSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendUint("unix_ms", unix_ms, &first, &out);
  AppendUint("pending_total", pending_total, &first, &out);
  AppendUint("firing_total", firing_total, &first, &out);
  AppendUint("resolved_total", resolved_total, &first, &out);
  out += ",\"rules\":[";
  bool inner = true;
  for (const AlertRuleStatus& r : rules) {
    if (!inner) out.push_back(',');
    inner = false;
    out.push_back('{');
    bool f = true;
    AppendString("name", r.name, &f, &out);
    AppendString("severity", r.severity, &f, &out);
    AppendString("state", r.state, &f, &out);
    AppendString("fragment", r.fragment, &f, &out);
    AppendDouble("value", r.value, &f, &out);
    AppendDouble("threshold", r.threshold, &f, &out);
    AppendUint("since_unix_ms", r.since_unix_ms, &f, &out);
    AppendUint("fires", r.fires, &f, &out);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules,
                         AlertLogOptions log_options)
    : rules_(std::move(rules)),
      fragments_(CollectFragments(rules_)),
      log_(std::move(log_options)),
      states_(rules_.size()) {}

bool AlertEngine::WantsFragment(std::string_view fragment) const {
  return fragments_.count(fragment) != 0;
}

const char* AlertEngine::StateName(State s) {
  switch (s) {
    case State::kOk: return "ok";
    case State::kPending: return "pending";
    case State::kFiring: return "firing";
    case State::kResolved: return "resolved";
  }
  return "ok";
}

void AlertEngine::TransitionLocked(size_t i, State to, uint64_t now_ms,
                                   std::vector<AlertTransition>* out) {
  RuleState& st = states_[i];
  if (st.state == State::kFiring && to != State::kFiring) {
    firing_now_.fetch_sub(1, std::memory_order_relaxed);
  }
  switch (to) {
    case State::kPending:
      pending_total_.fetch_add(1, std::memory_order_relaxed);
      break;
    case State::kFiring:
      firing_total_.fetch_add(1, std::memory_order_relaxed);
      firing_now_.fetch_add(1, std::memory_order_relaxed);
      ++st.fires;
      break;
    case State::kResolved:
      resolved_total_.fetch_add(1, std::memory_order_relaxed);
      break;
    case State::kOk:
      break;
  }
  st.state = to;
  st.since_unix_ms = now_ms;
  if (to != State::kOk) {
    const AlertRule& rule = rules_[i];
    AlertTransition t;
    t.unix_ms = now_ms;
    t.rule = rule.name;
    t.state = StateName(to);
    t.severity = rule.severity;
    t.fragment = rule.condition.fragment;
    t.value = st.value;
    t.threshold = rule.condition.threshold;
    t.windows_ms = rule.condition.windows_ms;
    out->push_back(std::move(t));
  }
}

void AlertEngine::Evaluate(const MetricsHistory& history, uint64_t now_ms) {
  // Evaluate every condition before taking the state lock: history has its
  // own mutex and Snapshot() readers should never wait on window math.
  std::vector<bool> breach(rules_.size(), false);
  std::vector<double> value(rules_.size(), 0.0);
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertCondition& c = rules_[i].condition;
    bool all = true;
    for (size_t w = 0; w < c.windows_ms.size(); ++w) {
      double v = EvalWindow(c, history, c.windows_ms[w], now_ms);
      if (w == 0) value[i] = v;  // the shortest window is the reported value
      if (!Breaches(c, v)) {
        all = false;
        break;
      }
    }
    breach[i] = all;
  }

  std::vector<AlertTransition> transitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_eval_unix_ms_ = now_ms;
    for (size_t i = 0; i < rules_.size(); ++i) {
      const AlertRule& rule = rules_[i];
      RuleState& st = states_[i];
      st.value = value[i];
      if (breach[i]) {
        st.clear_since = 0;
        if (st.state == State::kOk || st.state == State::kResolved) {
          st.pending_since = now_ms;
          TransitionLocked(i, State::kPending, now_ms, &transitions);
        }
        if (st.state == State::kPending &&
            now_ms - st.pending_since >= rule.for_ms) {
          TransitionLocked(i, State::kFiring, now_ms, &transitions);
        }
      } else {
        switch (st.state) {
          case State::kPending:
            // The breach cleared before `for` elapsed — never fired, so
            // nothing to resolve; fall quietly back to ok.
            TransitionLocked(i, State::kOk, now_ms, &transitions);
            break;
          case State::kFiring:
            if (st.clear_since == 0) st.clear_since = now_ms;
            if (now_ms - st.clear_since >= rule.keep_ms) {
              TransitionLocked(i, State::kResolved, now_ms, &transitions);
            }
            break;
          case State::kOk:
          case State::kResolved:
            st.clear_since = 0;
            break;
        }
      }
    }
  }
  for (const AlertTransition& t : transitions) log_.Record(t);
}

AlertSnapshot AlertEngine::Snapshot() const {
  AlertSnapshot snap;
  snap.pending_total = pending_total();
  snap.firing_total = firing_total();
  snap.resolved_total = resolved_total();
  std::lock_guard<std::mutex> lock(mu_);
  snap.unix_ms = last_eval_unix_ms_;
  snap.rules.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    const RuleState& st = states_[i];
    AlertRuleStatus status;
    status.name = rule.name;
    status.severity = rule.severity;
    status.state = StateName(st.state);
    status.fragment = rule.condition.fragment;
    status.value = st.value;
    status.threshold = rule.condition.threshold;
    status.since_unix_ms = st.since_unix_ms;
    status.fires = st.fires;
    snap.rules.push_back(std::move(status));
  }
  return snap;
}

std::vector<std::pair<std::string, uint64_t>> AlertEngine::WatchdogEscalations()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (states_[i].state != State::kFiring) continue;
    if (rule.escalate_watchdog_wall_ms == 0) continue;
    if (rule.condition.fragment.empty()) continue;
    out.emplace_back(rule.condition.fragment, rule.escalate_watchdog_wall_ms);
  }
  return out;
}

}  // namespace rdfql
