#ifndef RDFQL_OBS_OPENMETRICS_H_
#define RDFQL_OBS_OPENMETRICS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace rdfql {

/// The build provenance rendered as the `<prefix>_build_info` metric:
/// compile-time git sha and CMake build type, the OpenMetrics `info`
/// convention for "which binary is this scrape from".
struct BuildInfo {
  std::string sha;
  std::string build;
};

/// The values baked into this binary (RDFQL_GIT_SHA / RDFQL_BUILD_TYPE
/// compile definitions; "unknown" when built without them).
BuildInfo CurrentBuildInfo();

/// Renders a registry snapshot in the OpenMetrics text exposition format
/// (the Prometheus scrape format). Metric names are prefixed with
/// `<prefix>_` and sanitized (dots become underscores); counters get the
/// mandatory `_total` suffix; histograms render as cumulative
/// `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
/// `_count`. When `with_build_info` is set (the default) the exposition
/// leads with a `<prefix>_build` info family carrying CurrentBuildInfo()
/// as labels. The output ends with the `# EOF` marker.
///
/// One approximation is documented rather than hidden: the engine's
/// power-of-two buckets use exclusive upper bounds [lo, hi), while
/// OpenMetrics `le` is inclusive. Rendering bound `hi` as `le="hi"` shifts
/// each observation by at most one integer, which for nanosecond latencies
/// is far below the bucket resolution.
std::string RenderOpenMetrics(const RegistrySnapshot& snapshot,
                              std::string_view prefix = "rdfql",
                              bool with_build_info = true);

/// Validates `text` against the exposition-format grammar understood by
/// RenderOpenMetrics — a self-contained linter (no network, no external
/// tools) for CI. Checks: every line is a comment (`# TYPE ...`, `# HELP
/// ...`, `# EOF`) or a `name{labels} value` sample; metric names are
/// valid; label sets parse as `name="value",...` with valid label names
/// and escaping; a family's `# TYPE` precedes its samples and families
/// are contiguous; counter samples carry the `_total` suffix and no
/// labels; histogram families expose `_bucket`/`_sum`/`_count` with
/// strictly increasing `le` values, non-decreasing cumulative counts, and
/// a final `le="+Inf"` bucket equal to `_count`; info samples carry the
/// `_info` suffix, value 1, and an arbitrary label set; the last line is
/// `# EOF`. Returns false with a message in *error on the first
/// violation.
bool LintOpenMetrics(std::string_view text, std::string* error);

}  // namespace rdfql

#endif  // RDFQL_OBS_OPENMETRICS_H_
