#ifndef RDFQL_OBS_OPENMETRICS_H_
#define RDFQL_OBS_OPENMETRICS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace rdfql {

/// Renders a registry snapshot in the OpenMetrics text exposition format
/// (the Prometheus scrape format). Metric names are prefixed with
/// `<prefix>_` and sanitized (dots become underscores); counters get the
/// mandatory `_total` suffix; histograms render as cumulative
/// `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
/// `_count`. The output ends with the `# EOF` marker.
///
/// One approximation is documented rather than hidden: the engine's
/// power-of-two buckets use exclusive upper bounds [lo, hi), while
/// OpenMetrics `le` is inclusive. Rendering bound `hi` as `le="hi"` shifts
/// each observation by at most one integer, which for nanosecond latencies
/// is far below the bucket resolution.
std::string RenderOpenMetrics(const RegistrySnapshot& snapshot,
                              std::string_view prefix = "rdfql");

/// Validates `text` against the exposition-format grammar understood by
/// RenderOpenMetrics — a self-contained linter (no network, no external
/// tools) for CI. Checks: every line is a comment (`# TYPE ...`, `# HELP
/// ...`, `# EOF`) or a `name{labels} value` sample; metric names are
/// valid; a family's `# TYPE` precedes its samples and families are
/// contiguous; counter samples carry the `_total` suffix; histogram
/// families expose `_bucket`/`_sum`/`_count` with strictly increasing
/// `le` values, non-decreasing cumulative counts, and a final
/// `le="+Inf"` bucket equal to `_count`; the last line is `# EOF`.
/// Returns false with a message in *error on the first violation.
bool LintOpenMetrics(std::string_view text, std::string* error);

}  // namespace rdfql

#endif  // RDFQL_OBS_OPENMETRICS_H_
