#include "obs/metrics.h"

#include <bit>

namespace rdfql {
namespace {

void AppendNumber(double v, std::string* out) {
  // Integral values print without a fraction so counter JSON stays exact.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    out->append(std::to_string(static_cast<int64_t>(v)));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void Histogram::Observe(uint64_t value) {
  int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::BucketBound(int i) { return uint64_t{1} << i; }

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double HistogramPercentile(
    const std::vector<std::pair<uint64_t, uint64_t>>& buckets,
    uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const auto& [bound, n] : buckets) {
    if (n == 0) continue;
    cumulative += n;
    if (static_cast<double>(cumulative) >= rank) {
      // Bucket range: [bound/2, bound), except bucket 0 which is [0, 1).
      double lo = bound == 1 ? 0.0 : static_cast<double>(bound) / 2.0;
      double hi = static_cast<double>(bound);
      double before = static_cast<double>(cumulative - n);
      double within = (rank - before) / static_cast<double>(n);
      if (within < 0.0) within = 0.0;
      return lo + (hi - lo) * within;
    }
  }
  return static_cast<double>(buckets.back().first);
}

double Histogram::Percentile(double q) const {
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  uint64_t count = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = BucketCount(i);
    if (n > 0) {
      buckets.emplace_back(BucketBound(i), n);
      count += n;
    }
  }
  // Count from the buckets themselves: Count() may race ahead of the
  // bucket adds under concurrent Observe (relaxed atomics).
  return HistogramPercentile(buckets, count, q);
}

double RegistrySnapshot::HistogramData::Percentile(double q) const {
  return HistogramPercentile(buckets, count, q);
}

uint64_t RegistrySnapshot::HistogramData::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (const auto& [bound, n] : buckets) {
    seen += n;
    if (seen > rank) return bound;
  }
  return buckets.empty() ? 0 : buckets.back().first;
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name + " count=" + std::to_string(h.count) +
           " sum=" + std::to_string(h.sum);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " mean=%.1f p50=%.1f p90=%.1f p99=%.1f\n", h.Mean(),
                  h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99));
    out += buf;
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"mean\":";
    AppendNumber(h.Mean(), &out);
    out += ",\"p50\":" + std::to_string(h.ApproxQuantile(0.5)) +
           ",\"p99\":" + std::to_string(h.ApproxQuantile(0.99)) +
           ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [bound, n] : h.buckets) {
      if (!bfirst) out += ",";
      bfirst = false;
      out += "[" + std::to_string(bound) + "," + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    RegistrySnapshot::HistogramData data;
    data.count = h->Count();
    data.sum = h->Sum();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = h->BucketCount(i);
      if (n > 0) data.buckets.emplace_back(Histogram::BucketBound(i), n);
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace rdfql
