#include "obs/inflight.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace rdfql {
namespace {

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local InflightSlot* tls_current_slot = nullptr;

/// "1.2s" / "345ms" — compact wall-time for the .ps table.
std::string FormatWall(uint64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(ns) / 1e9);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ms",
                  static_cast<uint64_t>(ns / 1'000'000));
  }
  return buf;
}

std::string FormatMb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

/// Replaces control characters so a multi-line query stays on one row.
std::string Flatten(std::string_view text, size_t max_bytes) {
  std::string out;
  out.reserve(std::min(text.size(), max_bytes));
  for (char c : text) {
    if (out.size() >= max_bytes) break;
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kStarting:
      return "start";
    case QueryPhase::kParsing:
      return "parse";
    case QueryPhase::kEvaluating:
      return "eval";
    case QueryPhase::kFinishing:
      return "finish";
  }
  return "?";
}

void InflightSlot::SetFragment(std::string_view fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  fragment_.assign(fragment);
}

InflightSlot* InflightRegistry::Register(std::string_view graph,
                                         std::string_view query,
                                         uint64_t query_hash) {
  size_t start = next_hint_.fetch_add(1, std::memory_order_relaxed);
  for (size_t probe = 0; probe < kMaxSlots; ++probe) {
    InflightSlot& slot = slots_[(start + probe) % kMaxSlots];
    bool expected = false;
    if (!slot.claimed_.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(slot.mu_);
      slot.active_ = true;
      ++slot.generation_;
      slot.graph_.assign(graph);
      slot.query_ = query.size() > kMaxStoredQueryBytes
                        ? std::string(query.substr(0, kMaxStoredQueryBytes))
                        : std::string(query);
      slot.fragment_.clear();
      slot.start_unix_ms_ = UnixNowMs();
      slot.start_steady_ns_ = SteadyNowNs();
      slot.correlation_id_.store(0, std::memory_order_relaxed);
      slot.query_hash_.store(query_hash, std::memory_order_relaxed);
      slot.phase_.store(static_cast<int>(QueryPhase::kStarting),
                        std::memory_order_relaxed);
      slot.threads_.store(1, std::memory_order_relaxed);
      slot.watchdog_cancelled_.store(false, std::memory_order_relaxed);
      slot.accountant_.Reset();
      // The previous registration's token dies here — provably unreachable:
      // its query unregistered, and the watchdog revalidates generations
      // under this same mutex before touching a token.
      slot.token_ = std::make_unique<CancellationToken>();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    registered_total_.fetch_add(1, std::memory_order_relaxed);
    return &slot;
  }
  return nullptr;  // registry full: run unmonitored
}

void InflightRegistry::Unregister(InflightSlot* slot) {
  if (slot == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(slot->mu_);
    slot->active_ = false;
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  slot->claimed_.store(false, std::memory_order_release);
}

InflightSnapshot InflightRegistry::Snapshot() const {
  InflightSnapshot snap;
  snap.unix_ms = UnixNowMs();
  snap.registered_total = registered_total();
  snap.watchdog_cancelled_total = watchdog_cancelled_total();
  uint64_t now_ns = SteadyNowNs();
  for (size_t i = 0; i < kMaxSlots; ++i) {
    const InflightSlot& slot = slots_[i];
    if (!slot.claimed_.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(slot.mu_);
    if (!slot.active_) continue;
    InflightQueryInfo info;
    info.slot = i;
    info.generation = slot.generation_;
    info.correlation_id = slot.correlation_id_.load(std::memory_order_relaxed);
    info.query_hash = slot.query_hash_.load(std::memory_order_relaxed);
    info.graph = slot.graph_;
    info.query = slot.query_;
    info.fragment = slot.fragment_;
    info.phase =
        static_cast<QueryPhase>(slot.phase_.load(std::memory_order_relaxed));
    info.start_unix_ms = slot.start_unix_ms_;
    info.wall_ns = now_ns > slot.start_steady_ns_
                       ? now_ns - slot.start_steady_ns_
                       : 0;
    info.live_mappings = slot.accountant_.live_mappings();
    info.live_bytes = slot.accountant_.live_bytes();
    info.peak_bytes = slot.accountant_.peak_bytes();
    info.threads = slot.threads_.load(std::memory_order_relaxed);
    info.watchdog_cancelled =
        slot.watchdog_cancelled_.load(std::memory_order_relaxed);
    snap.queries.push_back(std::move(info));
  }
  return snap;
}

bool InflightRegistry::WatchdogCancel(size_t slot_index, uint64_t generation,
                                      Status reason) {
  if (slot_index >= kMaxSlots) return false;
  InflightSlot& slot = slots_[slot_index];
  std::lock_guard<std::mutex> lock(slot.mu_);
  if (!slot.active_ || slot.generation_ != generation) return false;
  if (slot.watchdog_cancelled_.load(std::memory_order_relaxed)) return false;
  slot.watchdog_cancelled_.store(true, std::memory_order_relaxed);
  slot.token_->Cancel(std::move(reason));
  watchdog_cancelled_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string InflightSnapshot::ToText() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "in-flight: %zu  registered: %" PRIu64
                "  watchdog-cancelled: %" PRIu64 "\n",
                queries.size(), registered_total, watchdog_cancelled_total);
  out += line;
  if (queries.empty()) return out;
  std::snprintf(line, sizeof(line), "%-4s %-6s %-6s %-8s %10s %9s %9s %-14s %-10s %s\n",
                "SLOT", "ID", "PHASE", "WALL", "LIVE-MAP", "LIVE-MB",
                "PEAK-MB", "FRAGMENT", "GRAPH", "QUERY");
  out += line;
  for (const InflightQueryInfo& q : queries) {
    std::snprintf(
        line, sizeof(line),
        "%-4zu %-6" PRIu64 " %-6s%s %-8s %10" PRIu64 " %9s %9s %-14s %-10s %s\n",
        q.slot, q.correlation_id, QueryPhaseName(q.phase),
        q.watchdog_cancelled ? "*" : " ", FormatWall(q.wall_ns).c_str(),
        q.live_mappings, FormatMb(q.live_bytes).c_str(),
        FormatMb(q.peak_bytes).c_str(),
        q.fragment.empty() ? "-" : q.fragment.c_str(),
        q.graph.empty() ? "-" : q.graph.c_str(),
        Flatten(q.query, 120).c_str());
    out += line;
  }
  return out;
}

InflightScope::InflightScope(InflightRegistry* registry, std::string_view graph,
                             std::string_view query, uint64_t query_hash) {
  if (registry == nullptr) return;
  if (tls_current_slot != nullptr) {
    // Nested engine entry point (e.g. Query -> Eval): borrow the slot the
    // outer scope registered instead of showing the query twice.
    slot_ = tls_current_slot;
    return;
  }
  slot_ = registry->Register(graph, query, query_hash);
  if (slot_ != nullptr) {
    registry_ = registry;
    owned_ = true;
    tls_current_slot = slot_;
  }
}

InflightScope::~InflightScope() {
  if (!owned_) return;
  tls_current_slot = nullptr;
  registry_->Unregister(slot_);
}

InflightSlot* InflightScope::CurrentSlot() { return tls_current_slot; }

}  // namespace rdfql
