#include "obs/accounting.h"

namespace rdfql {

std::atomic<ResourceAccountant*> ResourceAccountant::current_{nullptr};

}  // namespace rdfql
