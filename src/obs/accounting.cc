#include "obs/accounting.h"

#include <string>

namespace rdfql {

void ResourceAccountant::MaybeTripCaps(uint64_t live_mappings,
                                       uint64_t live_bytes,
                                       CancellationToken* token) {
  uint64_t cap_m = cap_mappings_.load(std::memory_order_relaxed);
  uint64_t cap_b = cap_bytes_.load(std::memory_order_relaxed);
  if (cap_m != 0 && live_mappings > cap_m) {
    token->Cancel(Status::ResourceExhausted(
        "query exceeded its live-mapping budget (" +
        std::to_string(live_mappings) + " live > cap " +
        std::to_string(cap_m) + ")"));
    return;
  }
  if (cap_b != 0 && live_bytes > cap_b) {
    token->Cancel(Status::ResourceExhausted(
        "query exceeded its memory budget (~" + std::to_string(live_bytes) +
        " bytes live > cap " + std::to_string(cap_b) + ")"));
  }
}

}  // namespace rdfql
