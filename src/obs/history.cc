#include "obs/history.h"

#include <cstdio>
#include <utility>

#include "obs/json_util.h"

namespace rdfql {

namespace {

using jsonutil::AppendBool;
using jsonutil::AppendDouble;
using jsonutil::AppendUint;
using jsonutil::JsonParser;

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// Diffs two (bound, count) bucket lists into the per-interval growth.
/// Bounds present only in `before` contribute nothing (a Reset shrank the
/// histogram — clamp, like every other delta here).
std::vector<std::pair<uint64_t, uint64_t>> DiffBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>>& before,
    const std::vector<std::pair<uint64_t, uint64_t>>& after) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  size_t bi = 0;
  for (const auto& [bound, n] : after) {
    while (bi < before.size() && before[bi].first < bound) ++bi;
    uint64_t prev =
        (bi < before.size() && before[bi].first == bound) ? before[bi].second
                                                          : 0;
    uint64_t delta = SaturatingSub(n, prev);
    if (delta != 0) out.emplace_back(bound, delta);
  }
  return out;
}

void MergeBuckets(const std::vector<std::pair<uint64_t, uint64_t>>& from,
                  std::vector<std::pair<uint64_t, uint64_t>>* into) {
  // Merge two increasing-bound lists, summing counts on equal bounds.
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  size_t a = 0, b = 0;
  while (a < into->size() || b < from.size()) {
    if (b >= from.size() ||
        (a < into->size() && (*into)[a].first < from[b].first)) {
      merged.push_back((*into)[a++]);
    } else if (a >= into->size() || from[b].first < (*into)[a].first) {
      merged.push_back(from[b++]);
    } else {
      merged.emplace_back((*into)[a].first, (*into)[a].second + from[b].second);
      ++a;
      ++b;
    }
  }
  *into = std::move(merged);
}

bool WriteFileAtomic(const std::string& path, const std::string& text) {
  // Same discipline as the telemetry sampler's snapshot writer: a reader
  // following the path sees either the previous complete file or this one.
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool ok = written == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

std::string HistorySample::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendUint("v", 1, &first, &out);
  AppendUint("unix_ms", unix_ms, &first, &out);
  AppendDouble("seconds", seconds, &first, &out);
  AppendBool("coarse", coarse, &first, &out);
  out += ",\"counters\":{";
  bool inner = true;
  for (const auto& [name, delta] : counters) {
    AppendUint(name.c_str(), delta, &inner, &out);
  }
  out += "},\"gauges\":{";
  inner = true;
  for (const auto& [name, value] : gauges) {
    jsonutil::AppendInt(name.c_str(), value, &inner, &out);
  }
  out += "},\"histograms\":{";
  inner = true;
  for (const auto& [name, buckets] : histograms) {
    jsonutil::AppendBuckets(name.c_str(), buckets, &inner, &out);
  }
  out += "}}";
  return out;
}

bool ParseHistorySample(std::string_view line, HistorySample* out,
                        std::string* error) {
  *out = HistorySample();
  JsonParser p(line);
  uint64_t version = 0;
  if (!p.Eat('{') || !p.Key("v") || !p.ParseUint(&version)) {
    return p.Fail(error, "expected {\"v\":..");
  }
  if (version != 1) return p.Fail(error, "unsupported history version");
  if (!p.Eat(',') || !p.Key("unix_ms") || !p.ParseUint(&out->unix_ms) ||
      !p.Eat(',') || !p.Key("seconds") || !p.ParseDouble(&out->seconds) ||
      !p.Eat(',') || !p.Key("coarse") || !p.ParseBool(&out->coarse)) {
    return p.Fail(error, "bad sample header");
  }
  if (!p.Eat(',') || !p.Key("counters") || !p.Eat('{')) {
    return p.Fail(error, "expected counters object");
  }
  if (!p.Eat('}')) {
    do {
      std::string name;
      uint64_t delta = 0;
      if (!p.NextKey(&name) || !p.ParseUint(&delta)) {
        return p.Fail(error, "bad counter entry");
      }
      out->counters[name] = delta;
    } while (p.Eat(','));
    if (!p.Eat('}')) return p.Fail(error, "unterminated counters");
  }
  if (!p.Eat(',') || !p.Key("gauges") || !p.Eat('{')) {
    return p.Fail(error, "expected gauges object");
  }
  if (!p.Eat('}')) {
    do {
      std::string name;
      int64_t value = 0;
      if (!p.NextKey(&name) || !p.ParseInt(&value)) {
        return p.Fail(error, "bad gauge entry");
      }
      out->gauges[name] = value;
    } while (p.Eat(','));
    if (!p.Eat('}')) return p.Fail(error, "unterminated gauges");
  }
  if (!p.Eat(',') || !p.Key("histograms") || !p.Eat('{')) {
    return p.Fail(error, "expected histograms object");
  }
  if (!p.Eat('}')) {
    do {
      std::string name;
      std::vector<std::pair<uint64_t, uint64_t>> buckets;
      if (!p.NextKey(&name) || !p.ParseBuckets(&buckets)) {
        return p.Fail(error, "bad histogram entry");
      }
      out->histograms[name] = std::move(buckets);
    } while (p.Eat(','));
    if (!p.Eat('}')) return p.Fail(error, "unterminated histograms");
  }
  if (!p.Eat('}') || !p.AtEnd()) return p.Fail(error, "trailing content");
  return true;
}

MetricsHistory::MetricsHistory(HistoryOptions options)
    : options_(std::move(options)) {}

void MetricsHistory::Record(const RegistrySnapshot& current,
                            uint64_t unix_ms) {
  std::string persist_text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HistorySample s;
    s.unix_ms = unix_ms;
    if (have_prev_) {
      s.seconds = unix_ms > prev_unix_ms_
                      ? static_cast<double>(unix_ms - prev_unix_ms_) / 1000.0
                      : 0.0;
      for (const auto& [name, value] : current.counters) {
        auto it = prev_.counters.find(name);
        uint64_t before = it == prev_.counters.end() ? 0 : it->second;
        uint64_t delta = SaturatingSub(value, before);
        if (delta != 0) s.counters[name] = delta;
      }
      for (const auto& [name, data] : current.histograms) {
        auto it = prev_.histograms.find(name);
        static const std::vector<std::pair<uint64_t, uint64_t>> kEmpty;
        const auto& before =
            it == prev_.histograms.end() ? kEmpty : it->second.buckets;
        std::vector<std::pair<uint64_t, uint64_t>> deltas =
            DiffBuckets(before, data.buckets);
        if (!deltas.empty()) s.histograms[name] = std::move(deltas);
      }
    }
    s.gauges = current.gauges;
    prev_ = current;
    prev_unix_ms_ = unix_ms;
    have_prev_ = true;
    ++records_;
    fine_.push_back(std::move(s));
    TrimLocked(unix_ms);
    if (!options_.jsonl_path.empty() && options_.persist_every != 0 &&
        records_ % options_.persist_every == 0) {
      for (const HistorySample& c : coarse_) {
        persist_text += c.ToJson();
        persist_text.push_back('\n');
      }
      for (const HistorySample& f : fine_) {
        persist_text += f.ToJson();
        persist_text.push_back('\n');
      }
    }
  }
  if (!persist_text.empty()) {
    WriteFileAtomic(options_.jsonl_path, persist_text);
  }
}

void MetricsHistory::TrimLocked(uint64_t now_ms) {
  while (!fine_.empty() &&
         fine_.front().unix_ms + options_.fine_retention_ms < now_ms) {
    HistorySample s = std::move(fine_.front());
    fine_.pop_front();
    FoldIntoCoarseLocked(std::move(s));
  }
  while (!coarse_.empty() &&
         coarse_.front().unix_ms + options_.coarse_retention_ms < now_ms) {
    coarse_.pop_front();
  }
}

void MetricsHistory::FoldIntoCoarseLocked(HistorySample&& s) {
  if (!pending_active_) {
    uint64_t span_ms = static_cast<uint64_t>(s.seconds * 1000.0);
    pending_start_ms_ = s.unix_ms > span_ms ? s.unix_ms - span_ms : 0;
    pending_coarse_ = std::move(s);
    pending_coarse_.coarse = true;
    pending_active_ = true;
  } else {
    for (const auto& [name, delta] : s.counters) {
      pending_coarse_.counters[name] += delta;
    }
    pending_coarse_.gauges = std::move(s.gauges);
    for (auto& [name, buckets] : s.histograms) {
      MergeBuckets(buckets, &pending_coarse_.histograms[name]);
    }
    pending_coarse_.seconds += s.seconds;
    pending_coarse_.unix_ms = s.unix_ms;
  }
  if (pending_coarse_.unix_ms >= pending_start_ms_ + options_.coarse_bucket_ms) {
    coarse_.push_back(std::move(pending_coarse_));
    pending_coarse_ = HistorySample();
    pending_active_ = false;
  }
}

double MetricsHistory::RateOver(const std::string& counter,
                                uint64_t window_ms, uint64_t now_ms) const {
  uint64_t cutoff = now_ms > window_ms ? now_ms - window_ms : 0;
  uint64_t total = 0;
  double seconds = 0;
  std::lock_guard<std::mutex> lock(mu_);
  VisitLocked([&](const HistorySample& s) {
    if (s.unix_ms <= cutoff) return;
    seconds += s.seconds;
    auto it = s.counters.find(counter);
    if (it != s.counters.end()) total += it->second;
  });
  return seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
}

uint64_t MetricsHistory::DeltaOver(const std::string& counter,
                                   uint64_t window_ms, uint64_t now_ms) const {
  uint64_t cutoff = now_ms > window_ms ? now_ms - window_ms : 0;
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  VisitLocked([&](const HistorySample& s) {
    if (s.unix_ms <= cutoff) return;
    auto it = s.counters.find(counter);
    if (it != s.counters.end()) total += it->second;
  });
  return total;
}

bool MetricsHistory::LatestGauge(const std::string& gauge,
                                 int64_t* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: fine samples, then the pending coarse bucket, then
  // flushed coarse buckets.
  for (auto it = fine_.rbegin(); it != fine_.rend(); ++it) {
    auto g = it->gauges.find(gauge);
    if (g != it->gauges.end()) {
      *out = g->second;
      return true;
    }
  }
  if (pending_active_) {
    auto g = pending_coarse_.gauges.find(gauge);
    if (g != pending_coarse_.gauges.end()) {
      *out = g->second;
      return true;
    }
  }
  for (auto it = coarse_.rbegin(); it != coarse_.rend(); ++it) {
    auto g = it->gauges.find(gauge);
    if (g != it->gauges.end()) {
      *out = g->second;
      return true;
    }
  }
  return false;
}

double MetricsHistory::PercentileOver(const std::string& histogram, double q,
                                      uint64_t window_ms,
                                      uint64_t now_ms) const {
  uint64_t cutoff = now_ms > window_ms ? now_ms - window_ms : 0;
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  uint64_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    VisitLocked([&](const HistorySample& s) {
      if (s.unix_ms <= cutoff) return;
      auto it = s.histograms.find(histogram);
      if (it == s.histograms.end()) return;
      MergeBuckets(it->second, &merged);
    });
  }
  for (const auto& [bound, n] : merged) count += n;
  return count == 0 ? 0.0 : HistogramPercentile(merged, count, q);
}

uint64_t MetricsHistory::ObservationsOver(const std::string& histogram,
                                          uint64_t window_ms,
                                          uint64_t now_ms) const {
  uint64_t cutoff = now_ms > window_ms ? now_ms - window_ms : 0;
  uint64_t count = 0;
  std::lock_guard<std::mutex> lock(mu_);
  VisitLocked([&](const HistorySample& s) {
    if (s.unix_ms <= cutoff) return;
    auto it = s.histograms.find(histogram);
    if (it == s.histograms.end()) return;
    for (const auto& [bound, n] : it->second) count += n;
  });
  return count;
}

std::vector<HistorySample> MetricsHistory::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistorySample> out;
  out.reserve(coarse_.size() + fine_.size() + 1);
  VisitLocked([&](const HistorySample& s) { out.push_back(s); });
  return out;
}

size_t MetricsHistory::fine_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fine_.size();
}

size_t MetricsHistory::coarse_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coarse_.size();
}

uint64_t MetricsHistory::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

bool MetricsHistory::WriteFile(const std::string& path) const {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    VisitLocked([&](const HistorySample& s) {
      text += s.ToJson();
      text.push_back('\n');
    });
  }
  return WriteFileAtomic(path, text);
}

bool MetricsHistory::WriteFile() const {
  if (options_.jsonl_path.empty()) return false;
  return WriteFile(options_.jsonl_path);
}

}  // namespace rdfql
