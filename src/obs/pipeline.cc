#include "obs/pipeline.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace rdfql {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  }
  return buf;
}

void AppendShapeJson(const PatternShape& s, std::string* out) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"nodes\":%llu,\"vars\":%llu,\"union_width\":%llu}",
                static_cast<unsigned long long>(s.nodes),
                static_cast<unsigned long long>(s.vars),
                static_cast<unsigned long long>(s.union_width));
  *out += buf;
}

}  // namespace

void PipelineReport::AddStage(PipelineStage stage) {
  stages_.push_back(std::move(stage));
}

const PipelineStage* PipelineReport::Find(std::string_view name) const {
  for (const PipelineStage& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

uint64_t PipelineReport::TotalNs() const {
  uint64_t total = 0;
  for (const PipelineStage& s : stages_) total += s.wall_ns;
  return total;
}

bool PipelineReport::AllOk() const {
  for (const PipelineStage& s : stages_) {
    if (!s.ok) return false;
  }
  return true;
}

std::string PipelineReport::ToText() const {
  std::string out;
  char buf[160];
  for (const PipelineStage& s : stages_) {
    out += s.name;
    out += "  ";
    out += FormatNs(s.wall_ns);
    if (!s.ok) {
      out += "  FAILED: " + s.error;
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  nodes %llu -> %llu (x%.2f)  vars %llu -> %llu"
                    "  width %llu -> %llu",
                    static_cast<unsigned long long>(s.in.nodes),
                    static_cast<unsigned long long>(s.out.nodes),
                    s.NodeBlowup(),
                    static_cast<unsigned long long>(s.in.vars),
                    static_cast<unsigned long long>(s.out.vars),
                    static_cast<unsigned long long>(s.in.union_width),
                    static_cast<unsigned long long>(s.out.union_width));
      out += buf;
    }
    if (!s.detail.empty()) {
      out += "  [";
      out += s.detail;
      out += "]";
    }
    out += "\n";
  }
  return out;
}

std::string PipelineReport::ToJson() const {
  std::string out = "{\"total_ns\":";
  out += std::to_string(TotalNs());
  out += ",\"stages\":[";
  bool first = true;
  char buf[64];
  for (const PipelineStage& s : stages_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"wall_ns\":";
    out += std::to_string(s.wall_ns);
    out += ",\"ok\":";
    out += s.ok ? "true" : "false";
    if (!s.detail.empty()) {
      out += ",\"detail\":\"";
      AppendJsonEscaped(s.detail, &out);
      out += "\"";
    }
    if (!s.ok) {
      out += ",\"error\":\"";
      AppendJsonEscaped(s.error, &out);
      out += "\"";
    }
    out += ",\"in\":";
    AppendShapeJson(s.in, &out);
    out += ",\"out\":";
    AppendShapeJson(s.out, &out);
    std::snprintf(buf, sizeof(buf), ",\"node_blowup\":%.6g}", s.NodeBlowup());
    out += buf;
  }
  out += "]}";
  return out;
}

ScopedStage::ScopedStage(PipelineReport* report, std::string name,
                         PatternShape in)
    : report_(report),
      profile_frame_(report != nullptr && ProfilingEnabled()
                         ? InternProfileTag(name)
                         : nullptr) {
  if (report_ == nullptr) return;
  stage_.name = std::move(name);
  stage_.in = in;
  start_ns_ = NowNs();
  if (Tracer* tracer = report_->tracer()) {
    // The span nests naturally: an instrumented transform that calls
    // another instrumented transform opens the inner span inside this one.
    span_ = tracer->StartSpan("STAGE", stage_.name);
  }
}

ScopedStage::~ScopedStage() {
  if (report_ == nullptr) return;
  stage_.wall_ns = NowNs() - start_ns_;
  if (span_ != nullptr) {
    span_->AddCounter("nodes_in", stage_.in.nodes);
    span_->AddCounter("nodes_out", stage_.out.nodes);
    span_->AddCounter("union_width_out", stage_.out.union_width);
    report_->tracer()->EndSpan(span_);
  }
  report_->AddStage(std::move(stage_));
}

}  // namespace rdfql
