#ifndef RDFQL_OBS_HISTORY_H_
#define RDFQL_OBS_HISTORY_H_

// MetricsHistory — a bounded in-process time series over a MetricsRegistry.
//
// Every observability surface before this one (rdfql_top, telemetry
// snapshots, OpenMetrics scrapes) shows the current instant only. The
// history ring keeps a window of the recent past as *deltas* between
// consecutive registry snapshots: each Record() call diffs the new snapshot
// against the previous one and stores only what changed — counter
// increments, histogram bucket increments, and the gauge values at the
// sample's end. Deltas make window queries trivial (rate over 5 m = sum of
// deltas in the window / seconds) and survive a MetricsRegistry::Reset()
// mid-stream: a counter that goes backwards clamps to a zero delta instead
// of underflowing, exactly like the TelemetrySampler's own window diffing.
//
// Retention is two-tier. A fine ring holds every sample (one per telemetry
// tick, typically 1 s) for `fine_retention_ms`; samples aging out of the
// fine ring are folded into coarse buckets of `coarse_bucket_ms` (deltas
// sum; gauges last-write-wins) retained for `coarse_retention_ms`. The
// defaults — 15 min at tick resolution downsampled to 1 h at 10 s — bound
// memory regardless of how long the engine runs, while still answering
// both "what happened in the last 30 s" and "is this hour worse than the
// last" style questions. The alert engine (obs/alerts.h) evaluates its
// burn-rate windows against exactly these queries.
//
// Persistence is JSONL, one sample per line, written atomically with the
// telemetry sampler's temp+rename discipline so a reader never sees a torn
// file.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rdfql {

/// One interval of history: what the registry's metrics did between two
/// consecutive samples. `counters` and `histograms` are deltas over the
/// interval (zero deltas are dropped); `gauges` are the values at the
/// interval's end.
struct HistorySample {
  uint64_t unix_ms = 0;  // end of the covered interval
  double seconds = 0;    // wall time the interval covers
  bool coarse = false;   // true once downsampled into a coarse bucket
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  /// Per histogram: (exclusive upper bound, new observations) for each
  /// bucket that grew during the interval, in increasing bound order.
  std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>>
      histograms;

  /// One JSONL line (no trailing newline):
  ///   {"v":1,"unix_ms":..,"seconds":..,"coarse":..,"counters":{..},
  ///    "gauges":{..},"histograms":{"name":[[le,n],..],..}}
  std::string ToJson() const;
};

/// Parses one line of a history JSONL file (the inverse of
/// HistorySample::ToJson). Returns false and fills *error on malformed
/// input.
bool ParseHistorySample(std::string_view line, HistorySample* out,
                        std::string* error);

struct HistoryOptions {
  /// How long samples stay at full (per-tick) resolution.
  uint64_t fine_retention_ms = 15 * 60 * 1000;
  /// Width of one downsampled bucket.
  uint64_t coarse_bucket_ms = 10 * 1000;
  /// How long downsampled buckets are retained.
  uint64_t coarse_retention_ms = 60 * 60 * 1000;
  /// JSONL persistence target; empty disables persistence.
  std::string jsonl_path;
  /// Rewrite the JSONL file every N Record() calls (0 = only on explicit
  /// WriteFile). The whole bounded ring is rewritten atomically each time.
  uint64_t persist_every = 30;
};

/// Thread-safe bounded time series of metric deltas. Record() is called
/// from the telemetry sampler's tick; window queries may be issued from any
/// thread (tools, alert evaluation, tests).
class MetricsHistory {
 public:
  explicit MetricsHistory(HistoryOptions options = HistoryOptions());

  /// Diffs `current` against the previously recorded snapshot and appends
  /// one delta sample ending at `unix_ms`. The first call establishes the
  /// baseline and records a zero-delta sample of `seconds` 0.
  void Record(const RegistrySnapshot& current, uint64_t unix_ms);

  /// Per-second rate of `counter` over the trailing window: the sum of its
  /// deltas in samples newer than now_ms - window_ms, divided by the wall
  /// time those samples cover. Returns 0 when the window holds no samples.
  double RateOver(const std::string& counter, uint64_t window_ms,
                  uint64_t now_ms) const;

  /// Total increase of `counter` over the trailing window.
  uint64_t DeltaOver(const std::string& counter, uint64_t window_ms,
                     uint64_t now_ms) const;

  /// Latest recorded value of `gauge`. Returns false if never recorded.
  bool LatestGauge(const std::string& gauge, int64_t* out) const;

  /// Interpolated q-quantile of `histogram`'s observations *within* the
  /// trailing window (bucket deltas merged across the window's samples,
  /// then fed to the shared HistogramPercentile estimator). Returns 0 when
  /// the window saw no observations.
  double PercentileOver(const std::string& histogram, double q,
                        uint64_t window_ms, uint64_t now_ms) const;

  /// Observations `histogram` gained within the trailing window.
  uint64_t ObservationsOver(const std::string& histogram, uint64_t window_ms,
                            uint64_t now_ms) const;

  /// Copy of the retained samples, oldest first (coarse, then fine).
  std::vector<HistorySample> Samples() const;

  size_t fine_size() const;
  size_t coarse_size() const;
  uint64_t records() const;

  const HistoryOptions& options() const { return options_; }

  /// Writes the whole ring as JSONL to `path` (temp file + rename, so
  /// readers never observe a partial file). Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;
  /// WriteFile(options().jsonl_path); false when persistence is disabled.
  bool WriteFile() const;

 private:
  /// Folds `s` into the pending coarse bucket; flushes the bucket into
  /// coarse_ once it spans coarse_bucket_ms. Caller holds mu_.
  void FoldIntoCoarseLocked(HistorySample&& s);
  void TrimLocked(uint64_t now_ms);

  /// Visits every retained sample oldest first: coarse buckets, then the
  /// pending (not yet flushed) coarse bucket, then fine samples. Window
  /// queries and persistence must include the pending bucket or up to one
  /// coarse_bucket_ms of folded history would go missing. Caller holds mu_.
  template <typename Fn>
  void VisitLocked(Fn&& fn) const {
    for (const HistorySample& s : coarse_) fn(s);
    if (pending_active_) fn(pending_coarse_);
    for (const HistorySample& s : fine_) fn(s);
  }

  const HistoryOptions options_;

  mutable std::mutex mu_;
  std::deque<HistorySample> fine_;
  std::deque<HistorySample> coarse_;
  HistorySample pending_coarse_;
  bool pending_active_ = false;
  uint64_t pending_start_ms_ = 0;
  bool have_prev_ = false;
  uint64_t prev_unix_ms_ = 0;
  RegistrySnapshot prev_;
  uint64_t records_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_HISTORY_H_
