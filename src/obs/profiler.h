#ifndef RDFQL_OBS_PROFILER_H_
#define RDFQL_OBS_PROFILER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/profile_state.h"

namespace rdfql {

struct ProfilerOptions {
  /// Sampling frequency. 0 disables the background thread: the owner
  /// drives the profiler with TickNow() (tests, single-shot tools) — the
  /// same convention as TelemetryOptions::interval_ms.
  uint64_t hz = 97;
};

/// One tag's aggregate across the whole profile: `self` samples landed
/// exactly on the tag (it was the innermost frame), `total` samples had it
/// anywhere on the stack. Sorted by self descending in TopTags.
struct ProfileTagTotal {
  std::string tag;
  uint64_t self = 0;
  uint64_t total = 0;
};

/// Wall-clock sampling profiler. A background thread wakes `hz` times a
/// second and, for every thread in the ProfileThreadRegistry, folds one
/// sample into an aggregation trie keyed by the thread's tag stack:
///
///   - `lock_wait` / `pool_queue_wait` threads fold their stack plus the
///     state as a synthetic trailing frame (the wait is *attributed* to
///     whatever the thread was doing when it blocked);
///   - `running` threads fold their stack as-is;
///   - threads with an empty stack (and `idle` workers parked in the pool)
///     fold the single frame "idle".
///
/// Because every registered thread contributes one sample per tick whether
/// running or blocked, sample counts are proportional to *wall time*, not
/// CPU time — lock convoys and pool barriers show up with their true
/// weight. Exports: Brendan Gregg folded-stack text (ToFolded → feed to
/// flamegraph.pl / speedscope), a JSON profile with per-tag self/total
/// counts (ToJson), and top-N hot tags (TopTags, surfaced by `.prof`,
/// rdfql_top and telemetry snapshots).
///
/// Exactly one profiler can be sampling at a time (it owns the global
/// ProfilingEnabled flag); Start reports failure on a second concurrent
/// profiler. The trie survives Stop, so dumps stay available after
/// sampling ends.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Starts sampling: claims the process-global active-profiler slot,
  /// enables tag collection, and (hz > 0) spawns the sampler thread.
  /// Returns false if another profiler is already active.
  bool Start();

  /// Stops sampling and releases the active slot (idempotent). Collected
  /// samples are retained for dumping.
  void Stop();

  bool running() const;

  /// Takes one sample of every registered thread on the calling thread —
  /// the manual-drive path for tests and single-shot dumps.
  void TickNow();

  uint64_t ticks() const;
  uint64_t samples() const;
  uint64_t hz() const { return options_.hz; }

  /// Folded-stack text, one line per distinct stack, lexicographically
  /// sorted: `Engine::Query;Eval;AND;JoinHash 123`.
  std::string ToFolded() const;

  /// {"hz":..,"ticks":..,"samples":..,"tags":[{"tag":..,"self":..,
  ///  "total":..},...]} with tags sorted by self descending.
  std::string ToJson() const;

  /// The `n` hottest tags by self samples.
  std::vector<ProfileTagTotal> TopTags(size_t n) const;

  /// The profiler currently sampling, or null. Lets loosely coupled
  /// consumers (TelemetrySampler's hot-tag panel) find the active profile
  /// without threading a pointer through every layer.
  static Profiler* Active();

 private:
  /// Aggregation trie node. Children are keyed by interned tag pointer —
  /// identity compare, no string hashing on the sample path.
  struct Node {
    std::map<const char*, std::unique_ptr<Node>> children;
    uint64_t self = 0;
  };

  void Loop();
  void Sample();

  ProfilerOptions options_;

  mutable std::mutex trie_mu_;
  Node root_;
  uint64_t ticks_ = 0;
  uint64_t samples_ = 0;

  mutable std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_PROFILER_H_
