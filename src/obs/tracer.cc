#include "obs/tracer.h"

#include <cstdio>

#include "obs/metrics.h"

namespace rdfql {
namespace {

void AppendDuration(uint64_t ns, std::string* out) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(ns) / 1e9);
  }
  out->append(buf);
}

void RenderTree(const TraceSpan& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.op;
  if (!span.detail.empty()) *out += " " + span.detail;
  *out += " t=";
  AppendDuration(span.duration_ns, out);
  for (const auto& [name, value] : span.counters) {
    *out += " " + name + "=" + std::to_string(value);
  }
  *out += "\n";
  for (const auto& child : span.children) {
    RenderTree(*child, depth + 1, out);
  }
}

void RenderChromeEvent(const TraceSpan& span, bool* first, std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  // A complete event ("ph":"X"); ts/dur are in microseconds per the format.
  *out += "{\"name\":\"";
  AppendJsonEscaped(span.op, out);
  if (!span.detail.empty()) {
    *out += " ";
    AppendJsonEscaped(span.detail, out);
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\",\"cat\":\"eval\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"pid\":1,\"tid\":1",
                static_cast<double>(span.start_ns) / 1e3,
                static_cast<double>(span.duration_ns) / 1e3);
  *out += buf;
  if (!span.counters.empty()) {
    *out += ",\"args\":{";
    bool cfirst = true;
    for (const auto& [name, value] : span.counters) {
      if (!cfirst) *out += ",";
      cfirst = false;
      *out += "\"";
      AppendJsonEscaped(name, out);
      *out += "\":" + std::to_string(value);
    }
    *out += "}";
  }
  *out += "}";
  for (const auto& child : span.children) {
    RenderChromeEvent(*child, first, out);
  }
}

}  // namespace

thread_local OpCounters* ScopedOpCounters::current_ = nullptr;

void TraceSpan::AddCounter(std::string_view name, uint64_t delta) {
  for (auto& [n, v] : counters) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  counters.emplace_back(std::string(name), delta);
}

uint64_t TraceSpan::GetCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void OpCounters::MergeFrom(const OpCounters& other) {
  join_probes += other.join_probes;
  index_probes += other.index_probes;
  ns_pairs_compared += other.ns_pairs_compared;
  filter_evals += other.filter_evals;
  mappings_out += other.mappings_out;
}

void OpCounters::AttachTo(ScopedSpan* span) const {
  span->AddCounter("join_probes", join_probes);
  span->AddCounter("index_probes", index_probes);
  span->AddCounter("ns_pairs_compared", ns_pairs_compared);
  span->AddCounter("filter_evals", filter_evals);
  span->AddCounter("mappings_out", mappings_out);
}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceSpan* Tracer::StartSpan(std::string op, std::string detail) {
  auto span = std::make_unique<TraceSpan>();
  span->op = std::move(op);
  span->detail = std::move(detail);
  span->start_ns = NowNs();
  TraceSpan* raw = span.get();
  if (open_.empty()) {
    roots_.push_back(std::move(span));
  } else {
    open_.back()->children.push_back(std::move(span));
  }
  open_.push_back(raw);
  return raw;
}

void Tracer::EndSpan(TraceSpan* span) {
  // Tolerate out-of-order ends (e.g. a moved-from guard) by unwinding to
  // the given span; in correct RAII usage the loop body runs once.
  while (!open_.empty()) {
    TraceSpan* top = open_.back();
    open_.pop_back();
    top->duration_ns = NowNs() - top->start_ns;
    if (top == span) break;
  }
}

std::string Tracer::ToTreeString() const {
  std::string out;
  for (const auto& root : roots_) RenderTree(*root, 0, &out);
  return out;
}

std::string Tracer::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& root : roots_) RenderChromeEvent(*root, &first, &out);
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace rdfql
