#ifndef RDFQL_OBS_PIPELINE_H_
#define RDFQL_OBS_PIPELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/tracer.h"
#include "util/profile_state.h"

namespace rdfql {

class Pattern;

/// The size of a pattern as the blow-up analysis sees it: AST nodes,
/// distinct variables, and UNION width (the largest number of disjuncts of
/// any maximal UNION spine in the tree). These are the quantities the
/// paper's constructive translations — NS-elimination (Thm 5.1/Lemma D.3),
/// UNF (Prop D.1/Lemma D.2), WD→simple (Prop 5.6), SELECT-elimination
/// (Prop 6.7) — bound, so a stage's in/out shapes make the (up to
/// double-exponential) growth empirically visible.
struct PatternShape {
  uint64_t nodes = 0;
  uint64_t vars = 0;
  uint64_t union_width = 0;
};

/// Measures a pattern. Implemented in algebra/pattern.cc so the obs
/// library itself stays dependency-free.
PatternShape ShapeOfPattern(const Pattern& p);

class PipelineReport;

/// Shape of `p` when a report is attached, zeros otherwise — so the
/// unobserved transform path never pays the measuring walk.
inline PatternShape ShapeIfReporting(const PipelineReport* report,
                                     const Pattern& p) {
  return report != nullptr ? ShapeOfPattern(p) : PatternShape{};
}

/// One instrumented stage of the translation pipeline: name, wall time,
/// input/output shapes. Failed stages (limit hit, non-well-designed input,
/// ...) carry ok=false and the error text; their `out` is meaningless.
struct PipelineStage {
  std::string name;    // e.g. "parse", "optimize", "ns_elimination"
  std::string detail;  // optional human note (fragment, disjunct count, ...)
  uint64_t wall_ns = 0;
  PatternShape in;
  PatternShape out;
  bool ok = true;
  std::string error;

  /// Output/input AST-node ratio — the stage's measured blowup. 0 when the
  /// stage failed or the input was empty.
  double NodeBlowup() const {
    return (!ok || in.nodes == 0) ? 0.0
                                  : static_cast<double>(out.nodes) / in.nodes;
  }
};

/// An EXPLAIN-style report of the whole translation pipeline, one entry per
/// stage in completion order. A report may mirror its stages onto a Tracer
/// (set_tracer) so translation and evaluation share one Chrome trace.
class PipelineReport {
 public:
  PipelineReport() = default;

  void AddStage(PipelineStage stage);

  const std::vector<PipelineStage>& stages() const { return stages_; }
  /// First stage with the given name, null if absent.
  const PipelineStage* Find(std::string_view name) const;
  uint64_t TotalNs() const;
  /// True iff every recorded stage succeeded.
  bool AllOk() const;

  /// When set, each recorded stage also becomes a closed "STAGE" span on
  /// the tracer (with nodes_in/nodes_out/... counters), composing with the
  /// evaluator's span tree.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// One stage per line:
  ///   ns_elimination  212.4us  nodes 13 -> 257 (x19.77)  vars 5 -> 5  width 1 -> 16
  std::string ToText() const;
  /// {"total_ns":...,"stages":[{"name":..,"wall_ns":..,"ok":..,
  ///   "in":{"nodes":..,"vars":..,"union_width":..},"out":{...},
  ///   "node_blowup":..}, ...]}
  std::string ToJson() const;

 private:
  std::vector<PipelineStage> stages_;
  Tracer* tracer_ = nullptr;
};

/// RAII recorder for one stage. A null report makes everything a no-op, so
/// instrumented transforms read the same with reporting on or off:
///
///   ScopedStage stage(report, "ns_elimination", ShapeOfPattern(*pattern));
///   ... work ...
///   stage.SetOut(ShapeOfPattern(*result));   // or SetError(status text)
///
/// The stage is appended to the report on destruction; wall time runs from
/// construction to destruction. Stages therefore land in completion order:
/// a transform that invokes another reported transform internally records
/// the inner stage first.
class ScopedStage {
 public:
  ScopedStage(PipelineReport* report, std::string name, PatternShape in);
  ~ScopedStage();
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  void SetOut(PatternShape out) {
    if (report_ != nullptr) {
      stage_.out = out;
      stage_.ok = true;
    }
  }
  void SetDetail(std::string detail) {
    if (report_ != nullptr) stage_.detail = std::move(detail);
  }
  void SetError(std::string error) {
    if (report_ != nullptr) {
      stage_.ok = false;
      stage_.error = std::move(error);
    }
  }
  bool active() const { return report_ != nullptr; }

 private:
  PipelineReport* report_;
  /// Mirrors the stage name onto the profiler tag stack (no-op when no
  /// profiler is running), so translation stages appear in folded output.
  ProfileFrame profile_frame_;
  PipelineStage stage_;
  uint64_t start_ns_ = 0;
  TraceSpan* span_ = nullptr;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_PIPELINE_H_
