#ifndef RDFQL_OBS_ACCOUNTING_H_
#define RDFQL_OBS_ACCOUNTING_H_

#include <atomic>
#include <cstdint>

#include "util/limits.h"

namespace rdfql {

/// Tracks the mapping-set memory of one query: live and peak mapping counts
/// and approximate bytes, plus cumulative totals. MappingSet (and the NS
/// kernel's transient scratch) report allocations to whichever accountant
/// is installed via ScopedAccounting; with none installed — the common,
/// unobserved path — each report is one relaxed atomic load and a branch.
///
/// The install point lives in the thread-local ExecContext (util/limits.h):
/// each coordinating thread installs its own accountant, so concurrent
/// queries are counted independently, and ThreadPool::ParallelFor installs
/// the coordinator's context on every worker that claims the batch's tasks,
/// so parallel kernels still report to the right accountant.
///
/// Epochs: a MappingSet that outlives the accountant's Reset must not
/// decrement counts it never incremented against the new epoch. Sets latch
/// (accountant, epoch) on first insert and silently stop reporting when
/// either changed.
class ResourceAccountant {
 public:
  ResourceAccountant() = default;
  ResourceAccountant(const ResourceAccountant&) = delete;
  ResourceAccountant& operator=(const ResourceAccountant&) = delete;

  void OnAdd(uint64_t mappings, uint64_t bytes) {
    uint64_t live_m =
        live_mappings_.fetch_add(mappings, std::memory_order_relaxed) +
        mappings;
    uint64_t live_b =
        live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    total_mappings_.fetch_add(mappings, std::memory_order_relaxed);
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    RaiseMax(&peak_mappings_, live_m);
    RaiseMax(&peak_bytes_, live_b);
    CancellationToken* token = cap_token_.load(std::memory_order_relaxed);
    if (token != nullptr) [[unlikely]] {
      MaybeTripCaps(live_m, live_b, token);
    }
  }

  void OnRemove(uint64_t mappings, uint64_t bytes) {
    live_mappings_.fetch_sub(mappings, std::memory_order_relaxed);
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t live_mappings() const {
    return live_mappings_.load(std::memory_order_relaxed);
  }
  uint64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_mappings() const {
    return peak_mappings_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_mappings() const {
    return total_mappings_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Zeroes all counts and advances the epoch, so sets surviving from
  /// before the reset stop reporting against the fresh numbers.
  void Reset() {
    live_mappings_.store(0, std::memory_order_relaxed);
    live_bytes_.store(0, std::memory_order_relaxed);
    peak_mappings_.store(0, std::memory_order_relaxed);
    peak_bytes_.store(0, std::memory_order_relaxed);
    total_mappings_.store(0, std::memory_order_relaxed);
    total_bytes_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Turns the passive accountant into an enforcer: once armed, any OnAdd
  /// that pushes the live figures past a non-zero cap cancels `token` with
  /// kResourceExhausted. Arm before evaluation starts (the fields are read
  /// concurrently by pool workers but only written here); disarm after.
  void ArmCaps(uint64_t max_live_mappings, uint64_t max_live_bytes,
               CancellationToken* token) {
    cap_mappings_.store(max_live_mappings, std::memory_order_relaxed);
    cap_bytes_.store(max_live_bytes, std::memory_order_relaxed);
    cap_token_.store(token, std::memory_order_relaxed);
  }
  void DisarmCaps() { cap_token_.store(nullptr, std::memory_order_relaxed); }

  /// The accountant installed on this thread, or null (the uncounted case).
  static ResourceAccountant* Current() {
    return CurrentExecContext().accountant;
  }

 private:
  static void RaiseMax(std::atomic<uint64_t>* target, uint64_t candidate) {
    uint64_t seen = target->load(std::memory_order_relaxed);
    while (candidate > seen &&
           !target->compare_exchange_weak(seen, candidate,
                                          std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> live_mappings_{0};
  std::atomic<uint64_t> live_bytes_{0};
  std::atomic<uint64_t> peak_mappings_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> total_mappings_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> epoch_{0};

  /// Cold path of the cap check (out of line to keep OnAdd tiny).
  void MaybeTripCaps(uint64_t live_mappings, uint64_t live_bytes,
                     CancellationToken* token);

  std::atomic<uint64_t> cap_mappings_{0};
  std::atomic<uint64_t> cap_bytes_{0};
  std::atomic<CancellationToken*> cap_token_{nullptr};
};

/// Installs an accountant for the enclosing scope on this thread, restoring
/// the previous one on destruction. Null is a valid argument (uninstalls
/// for the scope).
class ScopedAccounting {
 public:
  explicit ScopedAccounting(ResourceAccountant* acct)
      : prev_(CurrentExecContext().accountant) {
    CurrentExecContext().accountant = acct;
  }
  ~ScopedAccounting() { CurrentExecContext().accountant = prev_; }
  ScopedAccounting(const ScopedAccounting&) = delete;
  ScopedAccounting& operator=(const ScopedAccounting&) = delete;

 private:
  ResourceAccountant* prev_;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_ACCOUNTING_H_
