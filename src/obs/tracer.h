#ifndef RDFQL_OBS_TRACER_H_
#define RDFQL_OBS_TRACER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/profile_state.h"

namespace rdfql {

/// One timed region of work: an operator kind (`op`, e.g. "AND"), an
/// optional human label (`detail`, e.g. "(?x p ?y)"), wall-clock interval,
/// attached work counters (`join_probes`, `ns_pairs_compared`,
/// `mappings_out`, ...) and child spans. Spans form the dynamic call tree
/// of an evaluation, so for the bottom-up evaluator the span tree has the
/// same shape as the pattern tree.
struct TraceSpan {
  std::string op;
  std::string detail;
  uint64_t start_ns = 0;     // relative to the tracer's epoch
  uint64_t duration_ns = 0;  // 0 while the span is open
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::unique_ptr<TraceSpan>> children;

  /// Adds to the named counter (creating it at 0 first).
  void AddCounter(std::string_view name, uint64_t delta);
  /// Value of the named counter, 0 if never set.
  uint64_t GetCounter(std::string_view name) const;
};

/// Collects a tree of spans for one evaluation. Not thread-safe — a tracer
/// belongs to one evaluation on one thread (the engine hands out one per
/// query); cross-thread aggregation goes through MetricsRegistry instead.
///
/// Exports:
///  - ToTreeString(): indented one-line-per-span tree for terminals;
///  - ToChromeTraceJson(): the Chrome `trace_event` array format, loadable
///    in about:tracing and https://ui.perfetto.dev.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span as a child of the innermost open span (or a new root).
  /// The returned pointer stays valid for the tracer's lifetime.
  TraceSpan* StartSpan(std::string op, std::string detail = "");

  /// Closes `span`, which must be the innermost open span.
  void EndSpan(TraceSpan* span);

  /// First root span (null before any span is recorded).
  const TraceSpan* root() const {
    return roots_.empty() ? nullptr : roots_.front().get();
  }
  const std::vector<std::unique_ptr<TraceSpan>>& roots() const {
    return roots_;
  }

  /// Nanoseconds since this tracer was constructed.
  uint64_t NowNs() const;

  std::string ToTreeString() const;
  std::string ToChromeTraceJson() const;

 private:
  std::vector<std::unique_ptr<TraceSpan>> roots_;
  std::vector<TraceSpan*> open_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII guard for a span. A null tracer makes every operation a no-op, so
/// instrumented code reads the same with tracing on or off:
///
///   ScopedSpan span(options.tracer, "AND");
///   ... work ...
///   span.AddCounter("join_probes", n);
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string op, std::string detail = "")
      : tracer_(tracer),
        // Mirror the span label onto the sampling profiler's tag stack so
        // traced operators show up in folded profiles under the same name.
        // Interning happens only while a profiler is running.
        profile_frame_(tracer != nullptr && ProfilingEnabled()
                           ? InternProfileTag(op)
                           : nullptr),
        span_(tracer == nullptr
                  ? nullptr
                  : tracer->StartSpan(std::move(op), std::move(detail))) {}
  ~ScopedSpan() {
    if (span_ != nullptr) tracer_->EndSpan(span_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceSpan* span() const { return span_; }
  void AddCounter(std::string_view name, uint64_t delta) {
    if (span_ != nullptr && delta != 0) span_->AddCounter(name, delta);
  }

 private:
  Tracer* tracer_;
  ProfileFrame profile_frame_;
  TraceSpan* span_;
};

/// Plain per-operator work counters, accumulated by the algebra kernels
/// (hash/nested-loop join, NS subsumption removal, graph-index probes)
/// into whatever sink the evaluator installed via ScopedOpCounters. When
/// no sink is installed — the uninstrumented hot path — the kernels pay
/// one thread-local pointer test per call, nothing per element.
struct OpCounters {
  uint64_t join_probes = 0;        // candidate pairs tested for ⋈ / ∖
  uint64_t index_probes = 0;       // graph-index Match calls with bindings
  uint64_t ns_pairs_compared = 0;  // subsumption tests / projection probes
  uint64_t filter_evals = 0;       // FILTER condition evaluations
  uint64_t mappings_out = 0;       // mappings produced by the operator

  /// Copies the non-zero counters onto a span.
  void AttachTo(ScopedSpan* span) const;

  /// Accumulates another sink's counts into this one. Used by the parallel
  /// evaluator: each worker-side subtree gets its own thread-local sink,
  /// merged into the calling thread's sink after the fork joins — so the
  /// hot path never shares a counter between threads.
  void MergeFrom(const OpCounters& other);
};

/// Installs `sink` as the thread's current counter sink for the enclosing
/// scope, restoring the previous sink on destruction (sinks nest: the
/// evaluator installs a fresh sink per operator node, so each node sees
/// only its own work, not its children's).
class ScopedOpCounters {
 public:
  explicit ScopedOpCounters(OpCounters* sink) : prev_(current_) {
    current_ = sink;
  }
  ~ScopedOpCounters() { current_ = prev_; }
  ScopedOpCounters(const ScopedOpCounters&) = delete;
  ScopedOpCounters& operator=(const ScopedOpCounters&) = delete;

  /// The innermost installed sink, or null (the common, uncounted case).
  static OpCounters* Current() { return current_; }

 private:
  OpCounters* prev_;
  static thread_local OpCounters* current_;
};

}  // namespace rdfql

#endif  // RDFQL_OBS_TRACER_H_
