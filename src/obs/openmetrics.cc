#include "obs/openmetrics.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#ifndef RDFQL_GIT_SHA
#define RDFQL_GIT_SHA "unknown"
#endif
#ifndef RDFQL_BUILD_TYPE
#define RDFQL_BUILD_TYPE "unknown"
#endif

namespace rdfql {
namespace {

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
void AppendLabelEscaped(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

// Registry names use dots ("engine.eval_ns"); the exposition format allows
// [a-zA-Z0-9_:] with a non-digit first character.
std::string SanitizedName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!out.empty()) out.push_back('_');
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

bool ValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

/// Parses `name="value",...` (the exposition label-set grammar with \\, \"
/// and \n escapes). Returns false on the first malformed pair.
bool ParseLabelSet(std::string_view labels,
                   std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos < labels.size()) {
    size_t eq = labels.find('=', pos);
    if (eq == std::string_view::npos) return false;
    std::string name(labels.substr(pos, eq - pos));
    if (!ValidLabelName(name)) return false;
    if (eq + 1 >= labels.size() || labels[eq + 1] != '"') return false;
    std::string value;
    size_t i = eq + 2;
    bool closed = false;
    while (i < labels.size()) {
      char c = labels[i++];
      if (c == '"') {
        closed = true;
        break;
      }
      if (c == '\\') {
        if (i >= labels.size()) return false;
        char esc = labels[i++];
        if (esc == '\\') {
          value.push_back('\\');
        } else if (esc == '"') {
          value.push_back('"');
        } else if (esc == 'n') {
          value.push_back('\n');
        } else {
          return false;
        }
      } else {
        value.push_back(c);
      }
    }
    if (!closed) return false;
    out->emplace_back(std::move(name), std::move(value));
    if (i == labels.size()) return true;
    if (labels[i] != ',') return false;
    pos = i + 1;
    if (pos == labels.size()) return false;  // trailing comma
  }
  return labels.empty();
}

bool ParseValue(std::string_view s, double* out) {
  if (s == "+Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  std::string copy(s);
  char* end = nullptr;
  double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

// State for the family currently being linted.
struct FamilyState {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram" | "info"
  bool saw_sample = false;
  // Histogram bookkeeping.
  bool saw_inf_bucket = false;
  bool saw_count = false;
  bool saw_sum = false;
  double last_le = -std::numeric_limits<double>::infinity();
  double last_bucket_value = 0.0;
  double inf_bucket_value = 0.0;
  double count_value = 0.0;
};

bool Fail(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
  return false;
}

bool FinishFamily(const FamilyState& fam, size_t line_no, std::string* error) {
  if (fam.name.empty()) return true;
  if (!fam.saw_sample) {
    return Fail(error, line_no, "family '" + fam.name + "' has no samples");
  }
  if (fam.type == "histogram") {
    if (!fam.saw_inf_bucket) {
      return Fail(error, line_no,
                  "histogram '" + fam.name + "' missing le=\"+Inf\" bucket");
    }
    if (!fam.saw_count || !fam.saw_sum) {
      return Fail(error, line_no,
                  "histogram '" + fam.name + "' missing _sum or _count");
    }
    if (fam.inf_bucket_value != fam.count_value) {
      return Fail(error, line_no,
                  "histogram '" + fam.name +
                      "' +Inf bucket disagrees with _count");
    }
  }
  return true;
}

}  // namespace

BuildInfo CurrentBuildInfo() {
  BuildInfo info;
  info.sha = RDFQL_GIT_SHA;
  info.build = RDFQL_BUILD_TYPE;
  return info;
}

std::string RenderOpenMetrics(const RegistrySnapshot& snapshot,
                              std::string_view prefix,
                              bool with_build_info) {
  std::string out;
  if (with_build_info) {
    BuildInfo info = CurrentBuildInfo();
    std::string metric = SanitizedName(prefix, "build");
    out += "# TYPE " + metric + " info\n";
    out += metric + "_info{sha=\"";
    AppendLabelEscaped(info.sha, &out);
    out += "\",build=\"";
    AppendLabelEscaped(info.build, &out);
    out += "\"} 1\n";
  }
  for (const auto& [name, v] : snapshot.counters) {
    std::string metric = SanitizedName(prefix, name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    std::string metric = SanitizedName(prefix, name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string metric = SanitizedName(prefix, name);
    out += "# TYPE " + metric + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [bound, n] : h.buckets) {
      cumulative += n;
      out += metric + "_bucket{le=\"" + std::to_string(bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += metric + "_sum " + std::to_string(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

bool LintOpenMetrics(std::string_view text, std::string* error) {
  if (text.empty()) {
    return Fail(error, 0, "empty exposition");
  }
  // Every family a # TYPE line ever declared: a second declaration of the
  // same family is rejected by name, whether or not samples sit between
  // the two (Prometheus and the OpenMetrics spec both treat a duplicate
  // TYPE as a hard error, not a continuation). This also covers reopened
  // families — reopening one necessarily re-declares its TYPE.
  std::set<std::string> declared_families;
  FamilyState fam;
  bool saw_eof = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      // The exposition must end with a newline; a trailing fragment is a
      // violation, an empty remainder means we are done.
      if (pos < text.size()) {
        return Fail(error, line_no + 1, "missing trailing newline");
      }
      break;
    }
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (saw_eof) {
      return Fail(error, line_no, "content after # EOF");
    }
    if (line.empty()) {
      return Fail(error, line_no, "blank line");
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      size_t sp1 = line.find(' ', 2);
      std::string_view keyword =
          line.size() > 2 ? line.substr(2, sp1 == std::string_view::npos
                                               ? std::string_view::npos
                                               : sp1 - 2)
                          : std::string_view();
      if (keyword == "HELP") continue;
      if (keyword != "TYPE") {
        return Fail(error, line_no, "unknown comment (expected TYPE/HELP/EOF)");
      }
      size_t sp2 = line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return Fail(error, line_no, "malformed # TYPE line");
      }
      std::string name(line.substr(sp1 + 1, sp2 - sp1 - 1));
      std::string type(line.substr(sp2 + 1));
      if (!ValidMetricName(name)) {
        return Fail(error, line_no, "invalid metric name '" + name + "'");
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "info") {
        return Fail(error, line_no, "unknown metric type '" + type + "'");
      }
      if (declared_families.count(name) != 0) {
        return Fail(error, line_no,
                    "duplicate # TYPE for family '" + name + "'");
      }
      declared_families.insert(name);
      if (!FinishFamily(fam, line_no, error)) return false;
      fam = FamilyState{};
      fam.name = name;
      fam.type = type;
      continue;
    }
    // Sample line: name[{labels}] value
    size_t brace = line.find('{');
    size_t name_end = brace != std::string_view::npos ? brace : line.find(' ');
    if (name_end == std::string_view::npos) {
      return Fail(error, line_no, "malformed sample line");
    }
    std::string name(line.substr(0, name_end));
    if (!ValidMetricName(name)) {
      return Fail(error, line_no, "invalid sample name '" + name + "'");
    }
    std::vector<std::pair<std::string, std::string>> sample_labels;
    size_t value_start = name_end;
    if (brace != std::string_view::npos) {
      size_t close = line.find('}', brace);
      if (close == std::string_view::npos) {
        return Fail(error, line_no, "unterminated label set");
      }
      std::string_view labels = line.substr(brace + 1, close - brace - 1);
      if (!ParseLabelSet(labels, &sample_labels)) {
        return Fail(error, line_no,
                    "malformed label set '" + std::string(labels) + "'");
      }
      value_start = close + 1;
    }
    std::string le;
    bool has_le = false;
    for (const auto& [lname, lvalue] : sample_labels) {
      if (lname == "le") {
        le = lvalue;
        has_le = true;
      }
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return Fail(error, line_no, "sample missing value");
    }
    double value = 0.0;
    if (!ParseValue(line.substr(value_start + 1), &value)) {
      return Fail(error, line_no, "unparseable sample value");
    }
    if (fam.name.empty()) {
      return Fail(error, line_no, "sample before any # TYPE line");
    }
    if (fam.type == "counter") {
      if (name != fam.name + "_total") {
        return Fail(error, line_no,
                    "counter sample must be '" + fam.name + "_total'");
      }
      if (value < 0) {
        return Fail(error, line_no, "negative counter value");
      }
      if (!sample_labels.empty()) {
        return Fail(error, line_no, "unexpected labels on counter");
      }
    } else if (fam.type == "gauge") {
      if (name != fam.name) {
        return Fail(error, line_no,
                    "gauge sample must be '" + fam.name + "'");
      }
      if (!sample_labels.empty()) {
        return Fail(error, line_no, "unexpected labels on gauge");
      }
    } else if (fam.type == "info") {
      if (name != fam.name + "_info") {
        return Fail(error, line_no,
                    "info sample must be '" + fam.name + "_info'");
      }
      if (value != 1.0) {
        return Fail(error, line_no, "info sample value must be 1");
      }
    } else {  // histogram
      if (name == fam.name + "_bucket") {
        if (!has_le || sample_labels.size() != 1) {
          return Fail(error, line_no,
                      "histogram bucket must carry exactly the le label");
        }
        double le_value = 0.0;
        if (!ParseValue(le, &le_value)) {
          return Fail(error, line_no, "unparseable le value '" + le + "'");
        }
        if (le_value <= fam.last_le) {
          return Fail(error, line_no, "le values must be increasing");
        }
        if (fam.saw_sample && value < fam.last_bucket_value) {
          return Fail(error, line_no,
                      "cumulative bucket counts must be non-decreasing");
        }
        fam.last_le = le_value;
        fam.last_bucket_value = value;
        if (le == "+Inf") {
          fam.saw_inf_bucket = true;
          fam.inf_bucket_value = value;
        }
      } else if (name == fam.name + "_sum") {
        if (!sample_labels.empty()) {
          return Fail(error, line_no, "unexpected labels on _sum");
        }
        fam.saw_sum = true;
      } else if (name == fam.name + "_count") {
        if (!sample_labels.empty()) {
          return Fail(error, line_no, "unexpected labels on _count");
        }
        fam.saw_count = true;
        fam.count_value = value;
      } else {
        return Fail(error, line_no,
                    "histogram sample must be '" + fam.name +
                        "_bucket/_sum/_count'");
      }
    }
    fam.saw_sample = true;
  }
  if (!saw_eof) {
    return Fail(error, line_no, "missing # EOF terminator");
  }
  return FinishFamily(fam, line_no, error);
}

}  // namespace rdfql
