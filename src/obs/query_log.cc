#include "obs/query_log.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace rdfql {
namespace {

void AppendStringField(const char* key, std::string_view value, bool* first,
                       std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  AppendJsonEscaped(value, out);
  out->push_back('"');
}

void AppendUintField(const char* key, uint64_t value, bool* first,
                     std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

/// Pretty duration for the text report (mirrors the EXPLAIN phase style).
std::string NsString(double ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 10'000'000'000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

std::string BytesString(uint64_t bytes) {
  char buf[32];
  if (bytes < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / 1e6);
  }
  return buf;
}

std::string Truncated(const std::string& s, size_t max) {
  if (s.size() <= max) return s;
  return s.substr(0, max) + "...";
}

// --- A strict parser for the flat JSON objects QueryLogRecordToJson
// emits: string, unsigned-integer and boolean values only, one object per
// line. Kept private to the log: bench JSON has its own reader and the two
// grammars should be free to drift apart.

class LineParser {
 public:
  explicit LineParser(std::string_view text) : text_(text) {}

  bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) {
      *error = message + " near offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // Our emitter only \u-escapes control characters.
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseUint(uint64_t* out) {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool Literal(std::string_view lit) {
    SkipWs();
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Streams the canonical form of `query` (comments dropped, whitespace
// runs collapsed, `<...>`/`"..."` spans preserved verbatim) into `emit`,
// one byte at a time — shared by the hasher (no allocation) and the
// string builder so the two can never disagree.
template <typename Emit>
void CanonicalScan(std::string_view query, Emit&& emit) {
  bool pending_space = false;  // whitespace seen since the last emitted byte
  bool emitted = false;
  char quote = 0;  // closing delimiter while inside an IRI / string literal
  for (size_t i = 0; i < query.size(); ++i) {
    char c = query[i];
    if (quote != 0) {
      emit(c);
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '#') {
      // Comment to end of line. It must not survive collapsing (folding
      // the next line into the comment would change what the lexer sees),
      // so it vanishes entirely; the newline is handled as whitespace.
      while (i + 1 < query.size() && query[i + 1] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (emitted) pending_space = true;  // leading whitespace drops
      continue;
    }
    if (pending_space) {
      emit(' ');
      pending_space = false;
    }
    emitted = true;
    emit(c);
    if (c == '<') {
      quote = '>';
    } else if (c == '"') {
      quote = '"';
    }
  }
}

}  // namespace

std::string CanonicalizeQueryText(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  CanonicalScan(query, [&out](char c) { out.push_back(c); });
  return out;
}

uint64_t StableQueryHash(std::string_view query) {
  // FNV-1a, 64-bit, over the canonicalized byte stream.
  uint64_t h = 14695981039346656037ull;
  CanonicalScan(query, [&h](char c) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  });
  return h;
}

std::string QueryLogRecordToJson(const QueryLogRecord& r) {
  std::string out = "{";
  bool first = true;
  AppendUintField("v", 1, &first, &out);
  AppendUintField("id", r.correlation_id, &first, &out);
  AppendUintField("hash", r.query_hash, &first, &out);
  AppendUintField("unix_ms", r.unix_ms, &first, &out);
  AppendStringField("graph", r.graph, &first, &out);
  AppendStringField("query", r.query, &first, &out);
  AppendStringField("fragment", r.fragment, &first, &out);
  AppendStringField("outcome", r.outcome, &first, &out);
  if (!r.error.empty()) AppendStringField("error", r.error, &first, &out);
  AppendUintField("parse_ns", r.parse_ns, &first, &out);
  if (r.optimize_ns != 0) {
    AppendUintField("optimize_ns", r.optimize_ns, &first, &out);
  }
  AppendUintField("eval_ns", r.eval_ns, &first, &out);
  AppendUintField("rows_out", r.rows_out, &first, &out);
  AppendUintField("total_mappings", r.total_mappings, &first, &out);
  AppendUintField("peak_mappings", r.peak_mappings, &first, &out);
  AppendUintField("peak_bytes", r.peak_bytes, &first, &out);
  AppendUintField("threads", static_cast<uint64_t>(r.threads), &first, &out);
  if (!r.cache.empty()) AppendStringField("cache", r.cache, &first, &out);
  if (r.slow) {
    out += ",\"slow\":true";
    if (!r.explain.empty()) {
      AppendStringField("explain", r.explain, &first, &out);
    }
  }
  out.push_back('}');
  return out;
}

bool ParseQueryLogLine(std::string_view line, QueryLogRecord* out,
                       std::string* error) {
  *out = QueryLogRecord{};
  bool saw_version = false;
  LineParser p(line);
  if (!p.Eat('{')) return p.Fail(error, "expected '{'");
  if (!p.Peek('}')) {
    while (true) {
      std::string key;
      if (!p.ParseString(&key)) return p.Fail(error, "expected key string");
      if (!p.Eat(':')) return p.Fail(error, "expected ':'");
      bool ok = true;
      uint64_t n = 0;
      if (key == "v") {
        ok = p.ParseUint(&n);
        saw_version = ok && n == 1;
        if (ok && n != 1) {
          return p.Fail(error, "unsupported record version " +
                                   std::to_string(n));
        }
      } else if (key == "id") {
        ok = p.ParseUint(&out->correlation_id);
      } else if (key == "hash") {
        ok = p.ParseUint(&out->query_hash);
      } else if (key == "unix_ms") {
        ok = p.ParseUint(&out->unix_ms);
      } else if (key == "graph") {
        ok = p.ParseString(&out->graph);
      } else if (key == "query") {
        ok = p.ParseString(&out->query);
      } else if (key == "fragment") {
        ok = p.ParseString(&out->fragment);
      } else if (key == "outcome") {
        out->outcome.clear();
        ok = p.ParseString(&out->outcome);
      } else if (key == "error") {
        ok = p.ParseString(&out->error);
      } else if (key == "parse_ns") {
        ok = p.ParseUint(&out->parse_ns);
      } else if (key == "optimize_ns") {
        ok = p.ParseUint(&out->optimize_ns);
      } else if (key == "eval_ns") {
        ok = p.ParseUint(&out->eval_ns);
      } else if (key == "rows_out") {
        ok = p.ParseUint(&out->rows_out);
      } else if (key == "total_mappings") {
        ok = p.ParseUint(&out->total_mappings);
      } else if (key == "peak_mappings") {
        ok = p.ParseUint(&out->peak_mappings);
      } else if (key == "peak_bytes") {
        ok = p.ParseUint(&out->peak_bytes);
      } else if (key == "threads") {
        ok = p.ParseUint(&n);
        out->threads = static_cast<int>(n);
      } else if (key == "cache") {
        ok = p.ParseString(&out->cache);
      } else if (key == "slow") {
        if (p.Literal("true")) {
          out->slow = true;
        } else if (p.Literal("false")) {
          out->slow = false;
        } else {
          ok = false;
        }
      } else if (key == "explain") {
        ok = p.ParseString(&out->explain);
      } else {
        // Unknown key: skip a string or unsigned value (forward compat).
        std::string skip_s;
        ok = p.ParseString(&skip_s) || p.ParseUint(&n) ||
             p.Literal("true") || p.Literal("false");
      }
      if (!ok) return p.Fail(error, "bad value for key \"" + key + "\"");
      if (p.Eat(',')) continue;
      break;
    }
  }
  if (!p.Eat('}')) return p.Fail(error, "expected '}'");
  if (!p.AtEnd()) return p.Fail(error, "trailing bytes after record");
  if (!saw_version) return p.Fail(error, "missing \"v\":1 version tag");
  if (out->outcome.empty()) return p.Fail(error, "missing \"outcome\"");
  return true;
}

QueryLog::QueryLog(QueryLogOptions options) : options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.sample_every == 0) options_.sample_every = 1;
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), options_.append ? "a" : "w");
    if (file_ == nullptr) {
      error_ = "cannot open query log '" + options_.path + "'";
    }
  }
}

QueryLog::~QueryLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

void QueryLog::Record(QueryLogRecord record) {
  uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
  bool forced = record.slow || record.outcome != "ok";
  if (!forced && options_.sample_every > 1 &&
      n % options_.sample_every != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++sampled_out_;
    return;
  }
  if (options_.max_query_bytes != 0 &&
      record.query.size() > options_.max_query_bytes) {
    record.query.resize(options_.max_query_bytes);
  }
  // Serialize outside the lock; one fwrite per line under it, so records
  // from concurrent queries never interleave within a line.
  std::string line;
  if (file_ != nullptr) {
    line = QueryLogRecordToJson(record);
    line.push_back('\n');
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (record.slow) ++slow_;
  ++logged_;
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryLogRecord>(ring_.begin(), ring_.end());
}

uint64_t QueryLog::records_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logged_;
}

uint64_t QueryLog::records_sampled_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_out_;
}

uint64_t QueryLog::slow_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

void QueryLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

// --- Aggregation ---

void QueryLogAggregator::Add(const QueryLogRecord& record) {
  ++records_;
  if (record.slow) ++slow_;
  ++outcomes_[record.outcome];
  if (!record.cache.empty()) ++cache_outcomes_[record.cache];
  std::string fragment =
      record.fragment.empty() ? "(unparsed)" : record.fragment;
  for (const std::string& key : {fragment, std::string(kAllFragments)}) {
    FragmentAgg& agg = by_fragment_[key];
    if (agg.eval_ns == nullptr) agg.eval_ns = std::make_unique<Histogram>();
    ++agg.count;
    agg.eval_ns->Observe(record.eval_ns);
  }
  HashAgg& by_hash = by_hash_[record.query_hash];
  if (by_hash.eval_ns == nullptr) {
    by_hash.eval_ns = std::make_unique<Histogram>();
    by_hash.example = record.query;
  }
  ++by_hash.count;
  by_hash.eval_ns->Observe(record.eval_ns);
  kept_.push_back(record);
}

const QueryLogAggregator::FragmentAgg* QueryLogAggregator::FindFragment(
    const std::string& fragment) const {
  auto it = by_fragment_.find(fragment);
  return it == by_fragment_.end() ? nullptr : &it->second;
}

double QueryLogAggregator::FragmentPercentile(const std::string& fragment,
                                              double q) const {
  const FragmentAgg* agg = FindFragment(fragment);
  return agg == nullptr ? 0.0 : agg->eval_ns->Percentile(q);
}

uint64_t QueryLogAggregator::FragmentCount(
    const std::string& fragment) const {
  const FragmentAgg* agg = FindFragment(fragment);
  return agg == nullptr ? 0 : agg->count;
}

std::vector<std::string> QueryLogAggregator::Fragments() const {
  std::vector<std::string> out;
  if (by_fragment_.count(kAllFragments) != 0) out.push_back(kAllFragments);
  for (const auto& [name, agg] : by_fragment_) {
    if (name != kAllFragments) out.push_back(name);
  }
  return out;
}

std::string QueryLogAggregator::ToText(size_t top_n) const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu record(s), %llu slow\n",
                static_cast<unsigned long long>(records_),
                static_cast<unsigned long long>(slow_));
  out += buf;

  out += "\noutcomes:\n";
  for (const auto& [name, count] : outcomes_) {
    std::snprintf(buf, sizeof(buf), "  %-20s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    out += buf;
  }

  if (!cache_outcomes_.empty()) {
    out += "\ncache:\n";
    for (const auto& [name, count] : cache_outcomes_) {
      std::snprintf(buf, sizeof(buf), "  %-20s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  }

  out += "\nlatency by fragment (eval wall time):\n";
  std::snprintf(buf, sizeof(buf), "  %-24s %8s %10s %10s %10s\n", "fragment",
                "count", "p50", "p90", "p99");
  out += buf;
  for (const std::string& name : Fragments()) {
    const FragmentAgg* agg = FindFragment(name);
    std::snprintf(buf, sizeof(buf), "  %-24s %8llu %10s %10s %10s\n",
                  name.c_str(), static_cast<unsigned long long>(agg->count),
                  NsString(agg->eval_ns->Percentile(0.5)).c_str(),
                  NsString(agg->eval_ns->Percentile(0.9)).c_str(),
                  NsString(agg->eval_ns->Percentile(0.99)).c_str());
    out += buf;
  }

  std::vector<const QueryLogRecord*> by_time;
  std::vector<const QueryLogRecord*> by_bytes;
  by_time.reserve(kept_.size());
  for (const QueryLogRecord& r : kept_) {
    by_time.push_back(&r);
    by_bytes.push_back(&r);
  }
  std::sort(by_time.begin(), by_time.end(),
            [](const QueryLogRecord* a, const QueryLogRecord* b) {
              return a->TotalNs() > b->TotalNs();
            });
  std::sort(by_bytes.begin(), by_bytes.end(),
            [](const QueryLogRecord* a, const QueryLogRecord* b) {
              return a->peak_bytes > b->peak_bytes;
            });
  if (by_time.size() > top_n) by_time.resize(top_n);
  if (by_bytes.size() > top_n) by_bytes.resize(top_n);

  std::snprintf(buf, sizeof(buf), "\ntop %zu slowest:\n", by_time.size());
  out += buf;
  for (const QueryLogRecord* r : by_time) {
    std::snprintf(buf, sizeof(buf), "  %10s  id=%-6llu %-18s %s\n",
                  NsString(static_cast<double>(r->TotalNs())).c_str(),
                  static_cast<unsigned long long>(r->correlation_id),
                  (r->fragment.empty() ? "(unparsed)" : r->fragment).c_str(),
                  Truncated(r->query, 60).c_str());
    out += buf;
  }

  std::snprintf(buf, sizeof(buf),
                "\ntop %zu peak-memory outliers:\n", by_bytes.size());
  out += buf;
  for (const QueryLogRecord* r : by_bytes) {
    std::snprintf(buf, sizeof(buf),
                  "  %10s  %8llu mappings  id=%-6llu %s\n",
                  BytesString(r->peak_bytes).c_str(),
                  static_cast<unsigned long long>(r->peak_mappings),
                  static_cast<unsigned long long>(r->correlation_id),
                  Truncated(r->query, 50).c_str());
    out += buf;
  }
  return out;
}

std::string QueryLogAggregator::ToJson(size_t top_n) const {
  std::string out = "{\"records\":" + std::to_string(records_) +
                    ",\"slow\":" + std::to_string(slow_) + ",\"outcomes\":{";
  bool first = true;
  for (const auto& [name, count] : outcomes_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(count);
  }
  out += "},\"cache\":{";
  first = true;
  for (const auto& [name, count] : cache_outcomes_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(count);
  }
  out += "},\"fragments\":[";
  first = true;
  for (const std::string& name : Fragments()) {
    const FragmentAgg* agg = FindFragment(name);
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"p50_ns\":%.1f,\"p90_ns\":%.1f,"
                  "\"p99_ns\":%.1f,\"fragment\":\"",
                  static_cast<unsigned long long>(agg->count),
                  agg->eval_ns->Percentile(0.5),
                  agg->eval_ns->Percentile(0.9),
                  agg->eval_ns->Percentile(0.99));
    out += buf;
    AppendJsonEscaped(name, &out);
    out += "\"}";
  }
  out += "],\"slowest\":[";
  std::vector<const QueryLogRecord*> by_time;
  by_time.reserve(kept_.size());
  for (const QueryLogRecord& r : kept_) by_time.push_back(&r);
  std::sort(by_time.begin(), by_time.end(),
            [](const QueryLogRecord* a, const QueryLogRecord* b) {
              return a->TotalNs() > b->TotalNs();
            });
  if (by_time.size() > top_n) by_time.resize(top_n);
  first = true;
  for (const QueryLogRecord* r : by_time) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(r->correlation_id) +
           ",\"total_ns\":" + std::to_string(r->TotalNs()) +
           ",\"peak_bytes\":" + std::to_string(r->peak_bytes) +
           ",\"query\":\"";
    AppendJsonEscaped(Truncated(r->query, 120), &out);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::vector<std::pair<uint64_t, const QueryLogAggregator::HashAgg*>>
QueryLogAggregator::TopHashes(size_t top_n) const {
  std::vector<std::pair<uint64_t, const HashAgg*>> hashes;
  hashes.reserve(by_hash_.size());
  for (const auto& [hash, agg] : by_hash_) hashes.emplace_back(hash, &agg);
  std::sort(hashes.begin(), hashes.end(),
            [](const std::pair<uint64_t, const HashAgg*>& a,
               const std::pair<uint64_t, const HashAgg*>& b) {
              if (a.second->count != b.second->count) {
                return a.second->count > b.second->count;
              }
              return a.first < b.first;
            });
  if (hashes.size() > top_n) hashes.resize(top_n);
  return hashes;
}

std::string QueryLogAggregator::TopHashesText(size_t top_n) const {
  auto hashes = TopHashes(top_n);
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "top %zu query hashes (%zu distinct over %llu records):\n",
                hashes.size(), by_hash_.size(),
                static_cast<unsigned long long>(records_));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %8s %10s %10s  %s\n", "hash",
                "count", "p50", "p99", "query");
  out += buf;
  for (const auto& [hash, agg] : hashes) {
    std::snprintf(buf, sizeof(buf), "  %016llx %8llu %10s %10s  %s\n",
                  static_cast<unsigned long long>(hash),
                  static_cast<unsigned long long>(agg->count),
                  NsString(agg->eval_ns->Percentile(0.5)).c_str(),
                  NsString(agg->eval_ns->Percentile(0.99)).c_str(),
                  Truncated(agg->example, 60).c_str());
    out += buf;
  }
  return out;
}

std::string QueryLogAggregator::TopHashesJson(size_t top_n) const {
  std::string out = "{\"records\":" + std::to_string(records_) +
                    ",\"distinct_hashes\":" + std::to_string(by_hash_.size()) +
                    ",\"top_hashes\":[";
  bool first = true;
  for (const auto& [hash, agg] : TopHashes(top_n)) {
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"hash\":%llu,\"count\":%llu,\"p50_ns\":%.1f,"
                  "\"p99_ns\":%.1f,\"query\":\"",
                  static_cast<unsigned long long>(hash),
                  static_cast<unsigned long long>(agg->count),
                  agg->eval_ns->Percentile(0.5),
                  agg->eval_ns->Percentile(0.99));
    out += buf;
    AppendJsonEscaped(Truncated(agg->example, 120), &out);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace rdfql
