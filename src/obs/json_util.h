#ifndef RDFQL_OBS_JSON_UTIL_H_
#define RDFQL_OBS_JSON_UTIL_H_

// Internal hand-rolled JSON building blocks shared by the obs serializers
// (telemetry snapshots, history samples, alert rules/logs). The repo keeps
// its no-dependency discipline: emitters append exact field sequences, and
// parsers are strict cursors that accept what the emitters write — plus, in
// the one user-authored format (alert rules), arbitrary key order. Born as
// file-local helpers in telemetry.cc; factored out once three .cc files
// needed the same primitives.
//
// Emit helpers share the `bool* first` comma protocol: the caller seeds
// `first = true` after an opening brace and every Append* inserts the
// separating comma itself.

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rdfql {
namespace jsonutil {

inline void AppendUint(const char* key, uint64_t v, bool* first,
                       std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  *out += buf;
}

inline void AppendInt(const char* key, int64_t v, bool* first,
                      std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  *out += buf;
}

inline void AppendDouble(const char* key, double v, bool* first,
                         std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, v);
  *out += buf;
}

inline void AppendString(const char* key, std::string_view v, bool* first,
                         std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  *out += key;
  *out += "\":\"";
  AppendJsonEscaped(v, out);
  out->push_back('"');
}

inline void AppendBool(const char* key, bool v, bool* first,
                       std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  *out += key;
  *out += v ? "\":true" : "\":false";
}

inline void AppendBuckets(
    const char* key, const std::vector<std::pair<uint64_t, uint64_t>>& buckets,
    bool* first, std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  *out += key;
  *out += "\":[";
  bool inner_first = true;
  char buf[64];
  for (const auto& [bound, n] : buckets) {
    if (!inner_first) out->push_back(',');
    inner_first = false;
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ",%" PRIu64 "]", bound, n);
    *out += buf;
  }
  out->push_back(']');
}

/// Strict cursor over a JSON document. Emitter-side formats consume fields
/// in the exact order they were written (Key + Parse*); the rule parser
/// additionally uses NextKey to accept user-authored objects in any key
/// order. Errors carry the byte offset of the first violation.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) {
      *error = message + " near offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Key(const char* key) {
    SkipWs();
    size_t len = std::strlen(key);
    if (pos_ + len + 3 > text_.size() || text_[pos_] != '"') return false;
    if (text_.compare(pos_ + 1, len, key) != 0) return false;
    if (text_[pos_ + 1 + len] != '"' || text_[pos_ + 2 + len] != ':') {
      return false;
    }
    pos_ += len + 3;
    return true;
  }

  /// Parses the next `"name":` and returns the name — for objects whose key
  /// order the producer does not control (user-authored rule files).
  bool NextKey(std::string* out) {
    if (!ParseString(out)) return false;
    return Eat(':');
  }

  bool ParseUint(uint64_t* out) {
    SkipWs();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(text_[pos_++] - '0');
    }
    *out = v;
    return true;
  }

  bool ParseInt(int64_t* out) {
    SkipWs();
    bool negative = pos_ < text_.size() && text_[pos_] == '-';
    if (negative) ++pos_;
    uint64_t v = 0;
    if (!ParseUint(&v)) return false;
    *out = negative ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
    return true;
  }

  bool ParseDouble(double* out) {
    SkipWs();
    char buf[64];
    size_t n = 0;
    while (pos_ + n < text_.size() && n + 1 < sizeof(buf)) {
      char c = text_[pos_ + n];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        buf[n++] = c;
      } else {
        break;
      }
    }
    if (n == 0) return false;
    buf[n] = '\0';
    char* end = nullptr;
    *out = std::strtod(buf, &end);
    if (end != buf + n) return false;
    pos_ += n;
    return true;
  }

  bool ParseBool(bool* out) {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      *out = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      *out = false;
      pos_ += 5;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    // Overwrite, don't append: callers pass fields that may hold defaults.
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseBuckets(std::vector<std::pair<uint64_t, uint64_t>>* out) {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    do {
      uint64_t bound = 0, n = 0;
      if (!Eat('[') || !ParseUint(&bound) || !Eat(',') || !ParseUint(&n) ||
          !Eat(']')) {
        return false;
      }
      out->emplace_back(bound, n);
    } while (Eat(','));
    return Eat(']');
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace jsonutil
}  // namespace rdfql

#endif  // RDFQL_OBS_JSON_UTIL_H_
