#include "construct/construct_query.h"

#include <algorithm>
#include <map>

#include "fo/interpolant_search.h"
#include "transform/select_free.h"
#include "util/check.h"

namespace rdfql {
namespace {

bool TemplateSatisfiable(const TriplePattern& t, const PatternPtr& pattern) {
  for (VarId v : TriplePatternVars(t)) {
    if (!std::binary_search(pattern->Vars().begin(), pattern->Vars().end(),
                            v)) {
      return false;
    }
  }
  return true;
}

// Adom(?x): the pattern binding ?x to every IRI of the active domain,
//   SELECT {?x} WHERE ((?x ?a ?b) UNION (?c ?x ?d) UNION (?e ?f ?x))
// with fresh ?a..?f (Appendix E).
PatternPtr AdomPattern(VarId x, Dictionary* dict) {
  Term vx = Term::Var(x);
  auto fresh = [dict] { return Term::Var(dict->FreshVar("ad")); };
  PatternPtr as_subject = Pattern::MakeTriple(vx, fresh(), fresh());
  PatternPtr as_predicate = Pattern::MakeTriple(fresh(), vx, fresh());
  PatternPtr as_object = Pattern::MakeTriple(fresh(), fresh(), vx);
  return Pattern::Select(
      {x}, Pattern::Union(as_subject,
                          Pattern::Union(as_predicate, as_object)));
}

// R_{t,s}: position-wise equality between t's components and the
// σs-renaming of s's components.
BuiltinPtr PositionEquality(Term a, Term b) {
  if (a.is_iri() && b.is_iri()) {
    return a.iri() == b.iri() ? Builtin::True() : Builtin::False();
  }
  if (a.is_var() && b.is_iri()) return Builtin::EqConst(a.var(), b.iri());
  if (a.is_iri() && b.is_var()) return Builtin::EqConst(b.var(), a.iri());
  return Builtin::EqVars(a.var(), b.var());
}

Term ApplyRenaming(Term t, const std::map<VarId, VarId>& renaming) {
  if (!t.is_var()) return t;
  auto it = renaming.find(t.var());
  return it == renaming.end() ? t : Term::Var(it->second);
}

TriplePattern RenameTriple(const TriplePattern& t,
                           const std::map<VarId, VarId>& renaming) {
  return TriplePattern(ApplyRenaming(t.s, renaming),
                       ApplyRenaming(t.p, renaming),
                       ApplyRenaming(t.o, renaming));
}

}  // namespace

Graph ConstructQuery::Answer(const Graph& graph, EvalOptions options) const {
  MappingSet solutions = EvalPattern(graph, pattern_, options);
  Graph out;
  for (const Mapping& m : solutions) {
    for (const TriplePattern& t : templ_) {
      bool all_bound = true;
      for (VarId v : TriplePatternVars(t)) {
        if (!m.Binds(v)) {
          all_bound = false;
          break;
        }
      }
      if (all_bound) out.Insert(Instantiate(t, m));
    }
  }
  return out;
}

ConstructQuery ConstructQuery::DropUnsatisfiableTemplates() const {
  std::vector<TriplePattern> kept;
  for (const TriplePattern& t : templ_) {
    if (TemplateSatisfiable(t, pattern_)) kept.push_back(t);
  }
  return ConstructQuery(std::move(kept), pattern_);
}

ConstructQuery WrapPatternInNs(const ConstructQuery& query) {
  return ConstructQuery(query.templ(), Pattern::Ns(query.pattern()));
}

ConstructQuery MonotoneNormalForm(const ConstructQuery& query,
                                  Dictionary* dict) {
  ConstructQuery q = query.DropUnsatisfiableTemplates();
  const std::vector<TriplePattern>& h = q.templ();
  const PatternPtr& p = q.pattern();
  if (h.empty()) {
    // The answer is always the empty graph; any monotone pattern works.
    return q;
  }

  // σs: one fresh renaming of var(P) per template triple s.
  std::vector<std::map<VarId, VarId>> sigma(h.size());
  for (size_t s = 0; s < h.size(); ++s) {
    for (VarId v : p->Vars()) {
      sigma[s][v] = dict->FreshVar("sg" + std::to_string(s));
    }
  }

  std::vector<PatternPtr> final_disjuncts;
  std::vector<TriplePattern> final_templates;
  for (size_t ti = 0; ti < h.size(); ++ti) {
    const TriplePattern& t = h[ti];
    std::vector<VarId> t_vars = TriplePatternVars(t);

    // Adom(t): conjunction of Adom(?x) over var(t) (tautology if ground).
    std::vector<PatternPtr> adoms;
    for (VarId v : t_vars) adoms.push_back(AdomPattern(v, dict));

    std::vector<PatternPtr> disjuncts = {p};
    for (size_t si = 0; si < h.size(); ++si) {
      if (si == ti) continue;
      const TriplePattern& s = h[si];
      PatternPtr ps = Pattern::RenameVars(p, sigma[si]);
      TriplePattern s_renamed = RenameTriple(s, sigma[si]);
      BuiltinPtr rts = Builtin::And(
          Builtin::And(PositionEquality(t.s, s_renamed.s),
                       PositionEquality(t.p, s_renamed.p)),
          PositionEquality(t.o, s_renamed.o));
      PatternPtr branch = ps;
      for (const PatternPtr& adom : adoms) {
        branch = Pattern::And(branch, adom);
      }
      disjuncts.push_back(Pattern::Filter(branch, rts));
    }

    std::vector<BuiltinPtr> bounds;
    for (VarId v : t_vars) bounds.push_back(Builtin::Bound(v));
    PatternPtr pt = Pattern::Select(
        t_vars,
        Pattern::Filter(Pattern::UnionAll(disjuncts),
                        Builtin::AndAll(bounds)));

    // Final per-t renaming so the P_t have pairwise disjoint variables.
    std::map<VarId, VarId> global;
    for (VarId v : pt->Vars()) {
      global[v] = dict->FreshVar("q" + std::to_string(ti));
    }
    final_disjuncts.push_back(Pattern::RenameVars(pt, global));
    final_templates.push_back(RenameTriple(t, global));
  }

  return ConstructQuery(std::move(final_templates),
                        Pattern::UnionAll(final_disjuncts));
}

ConstructQuery EliminateSelect(const ConstructQuery& query,
                               Dictionary* dict) {
  ConstructQuery q = query.DropUnsatisfiableTemplates();
  return ConstructQuery(q.templ(), SelectFreeVersion(q.pattern(), dict));
}

Result<AufConstructTranslation> MonotoneConstructToAuf(
    const ConstructQuery& query, Dictionary* dict) {
  // (1) Lemma 6.5: an equivalent query whose pattern is weakly monotone
  // whenever the input query is monotone.
  ConstructQuery normal = MonotoneNormalForm(query, dict);

  // (2) Theorem 4.1 on the pattern; by Lemma 6.3 a subsumption-equivalent
  // pattern yields the same CONSTRUCT answers.
  RDFQL_ASSIGN_OR_RETURN(
      AufsTranslation pattern_translation,
      FindAufsTranslation(normal.pattern(), dict));
  AufConstructTranslation out{
      ConstructQuery(normal.templ(), pattern_translation.q),
      pattern_translation.verified};
  if (!out.verified) return out;

  // (3) Proposition 6.7: strip SELECT to land in CONSTRUCT[AUF].
  out.query = EliminateSelect(out.query, dict);
  return out;
}

}  // namespace rdfql
