#ifndef RDFQL_CONSTRUCT_CONSTRUCT_QUERY_H_
#define RDFQL_CONSTRUCT_CONSTRUCT_QUERY_H_

#include <vector>

#include "algebra/pattern.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfql {

/// A CONSTRUCT query Q = (CONSTRUCT H WHERE P) (Section 6.1): `templ` is
/// the template H (a finite set of triple patterns) and `pattern` is the
/// graph pattern P.
class ConstructQuery {
 public:
  ConstructQuery(std::vector<TriplePattern> templ, PatternPtr pattern)
      : templ_(std::move(templ)), pattern_(std::move(pattern)) {}

  const std::vector<TriplePattern>& templ() const { return templ_; }
  const PatternPtr& pattern() const { return pattern_; }

  /// ans(Q,G) = { µ(t) | µ ∈ ⟦P⟧G, t ∈ H, var(t) ⊆ dom(µ) }.
  Graph Answer(const Graph& graph, EvalOptions options = {}) const;

  /// Drops template triples mentioning variables absent from the pattern
  /// (they can never instantiate — the normalization assumed w.l.o.g. at
  /// the start of Lemma 6.5's proof).
  ConstructQuery DropUnsatisfiableTemplates() const;

 private:
  std::vector<TriplePattern> templ_;
  PatternPtr pattern_;
};

/// Lemma 6.3: (CONSTRUCT H WHERE P) ≡ (CONSTRUCT H WHERE NS(P)) — returns
/// the NS-wrapped twin (tests verify the equivalence empirically).
ConstructQuery WrapPatternInNs(const ConstructQuery& query);

/// Lemma 6.5 (constructive): builds a CONSTRUCT query
/// (CONSTRUCT H' WHERE P') with P' weakly monotone such that Q ≡ Q'
/// whenever Q is monotone. Follows the appendix construction: per template
/// triple t a renamed copy P_s of P for every other template triple s, glued
/// with Adom(·) patterns and the filter R_{t,s}, projected to var(t).
ConstructQuery MonotoneNormalForm(const ConstructQuery& query,
                                  Dictionary* dict);

/// Proposition 6.7: strips SELECT from the pattern of a CONSTRUCT[AUFS]
/// query via the SELECT-free version (Definition F.1), giving an
/// equivalent CONSTRUCT[AUF] query.
ConstructQuery EliminateSelect(const ConstructQuery& query, Dictionary* dict);

/// Outcome of the Theorem 6.6 / Corollary 6.8 pipeline.
struct AufConstructTranslation {
  ConstructQuery query;  // equivalent CONSTRUCT[AUF] query (if verified)
  /// Verified means: every stage's equivalence held on randomized graphs;
  /// false indicates the input was refuted as monotone.
  bool verified = false;
};

/// Theorem 6.6 + Corollary 6.8, made effective: rewrites a monotone
/// CONSTRUCT query into an equivalent CONSTRUCT[AUF] query by chaining
/// (1) Lemma 6.5's normal form (weakly-monotone pattern), (2) the
/// Theorem 4.1 translation of the pattern into SPARQL[AUFS] (subsumption
/// equivalence suffices by Lemma 6.3), and (3) Prop 6.7's SELECT
/// elimination. Each randomized-verification stage reports through
/// `verified`.
Result<AufConstructTranslation> MonotoneConstructToAuf(
    const ConstructQuery& query, Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_CONSTRUCT_CONSTRUCT_QUERY_H_
