#ifndef RDFQL_RDF_TRIPLE_H_
#define RDFQL_RDF_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <tuple>

#include "rdf/term.h"

namespace rdfql {

/// A ground RDF triple (s, p, o) ∈ I × I × I.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId subject, TermId predicate, TermId object)
      : s(subject), p(predicate), o(object) {}

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator!=(const Triple& a, const Triple& b) {
    return !(a == b);
  }
  /// SPO lexicographic order (the graph's canonical order).
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};

/// A triple pattern in (I ∪ V) × (I ∪ V) × (I ∪ V).
struct TriplePattern {
  Term s;
  Term p;
  Term o;

  TriplePattern() = default;
  TriplePattern(Term subject, Term predicate, Term object)
      : s(subject), p(predicate), o(object) {}

  friend bool operator==(const TriplePattern& a, const TriplePattern& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const TriplePattern& a, const TriplePattern& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};

}  // namespace rdfql

template <>
struct std::hash<rdfql::Triple> {
  size_t operator()(const rdfql::Triple& t) const noexcept {
    uint64_t h = t.s;
    h = h * 0x9e3779b97f4a7c15ULL + t.p;
    h = h * 0x9e3779b97f4a7c15ULL + t.o;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

#endif  // RDFQL_RDF_TRIPLE_H_
