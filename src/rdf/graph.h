#ifndef RDFQL_RDF_GRAPH_H_
#define RDFQL_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"
#include "util/profile_state.h"

namespace rdfql {

/// A finite RDF graph: a set of ground triples (Section 2 of the paper).
///
/// Storage is a deduplicated triple vector plus three lazily built sorted
/// permutation indexes (SPO, POS, OSP). Lookups with any combination of
/// bound positions pick the index whose sort order makes the bound
/// positions a prefix and binary-search the matching range, so triple
/// pattern evaluation is O(log n + #matches).
///
/// Inserts do not invalidate the indexes: new triples accumulate in a
/// small sorted side array per index, and scans merge the main index with
/// the side array in key order (callback order is identical to a fully
/// rebuilt index, since keys are unique permutations of unique triples).
/// Only when the side array outgrows a threshold does the index re-sort
/// from scratch — so interleaved insert/match workloads (updates, graph
/// generators) pay O(side · log side) per touched index instead of a full
/// O(n log n) re-sort after every insert.
///
/// Concurrent *reads* (Match, CountMatches, ApproxBytes, copies) are
/// thread-safe: the lazy index build is guarded by a shared mutex, and
/// once an index covers the full triple set readers scan it without
/// taking the lock (nothing mutates it again until a write). Writes
/// (Insert/Erase) are not synchronized against readers — same contract
/// as the rest of the engine: load, then query from as many threads as
/// you like.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Inserts a triple; returns true if it was new.
  bool Insert(const Triple& t);
  bool Insert(TermId s, TermId p, TermId o) { return Insert(Triple(s, p, o)); }

  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const { return set_.count(t) > 0; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// All triples, in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  /// Invokes `fn` for every triple matching the partially bound pattern;
  /// `kInvalidTermId` in a position means "any". Returns the match count.
  size_t Match(TermId s, TermId p, TermId o,
               const std::function<void(const Triple&)>& fn) const;

  /// Number of triples matching the partially bound pattern.
  size_t CountMatches(TermId s, TermId p, TermId o) const;

  /// G1 ⊆ G2.
  bool IsSubsetOf(const Graph& other) const;

  /// Set union (used throughout the monotonicity machinery).
  static Graph Union(const Graph& a, const Graph& b);

  /// The set of IRIs mentioned in the graph, I(G), sorted ascending.
  std::vector<TermId> Iris() const;

  /// Approximate resident bytes: triple store, dedup set and whatever
  /// permutation indexes have been materialized so far. Feeds the
  /// `engine.graph_bytes` gauge.
  size_t ApproxBytes() const;

  /// A stamp of this graph's current state, drawn from one process-global
  /// monotone counter. Every successful Insert/Erase re-stamps it with a
  /// fresh value; copies inherit the source's stamp (identical content),
  /// and no two *distinct* states ever share one — values are only ever
  /// minted fresh, so equal epochs imply an identical triple set. The
  /// query cache keys result entries by (graph name, epoch): any mutation
  /// moves the epoch and stale entries can never hit again, with no lock
  /// or flag on the read path.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Contention on index_mu_ (lazy index builds racing concurrent
  /// queries). Waits are per-graph; Engine::MetricsSnapshot sums them
  /// across graphs into lock.graph_index_*. Copies start with fresh stats
  /// — contention history describes a mutex, not the triples.
  const WaitStats& index_lock_wait_stats() const { return index_lock_wait_; }

  friend bool operator==(const Graph& a, const Graph& b);

 private:
  enum IndexKind { kSpo = 0, kPos = 1, kOsp = 2 };

  /// One lazily maintained permutation index: `base` is a sorted copy of
  /// the first `covered` inserted triples minus those in `side`; `side` is
  /// the (sorted) overflow of recent inserts, merged into scans on demand
  /// and folded into `base` by a full re-sort once it crosses the rebuild
  /// threshold.
  struct Index {
    std::vector<Triple> base;
    std::vector<Triple> side;
    size_t covered = 0;  // prefix of triples_ reflected in base + side
  };

  void EnsureIndex(IndexKind kind) const;
  void InvalidateIndexes();

  /// Mints a fresh, never-before-used epoch value.
  static uint64_t NextEpoch();

  std::vector<Triple> triples_;
  std::unordered_set<Triple> set_;

  // Atomic so a metrics scrape or cache lookup racing a graph swap reads a
  // whole value; writes happen only under the engine's no-writes-during-
  // queries contract.
  std::atomic<uint64_t> epoch_{NextEpoch()};

  // Guards the lazy builds of index_ (EnsureIndex) against concurrent
  // readers; scans themselves run lock-free once covered == size().
  mutable std::shared_mutex index_mu_;
  mutable WaitStats index_lock_wait_;
  mutable Index index_[3];
};

}  // namespace rdfql

#endif  // RDFQL_RDF_GRAPH_H_
