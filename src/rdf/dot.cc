#include "rdf/dot.h"

#include <set>

namespace rdfql {
namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteDot(const Graph& graph, const Dictionary& dict,
                     const std::string& name) {
  std::string out = "digraph " + name + " {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse, fontsize=11];\n";

  std::set<TermId> nodes;
  for (const Triple& t : graph.triples()) {
    nodes.insert(t.s);
    nodes.insert(t.o);
  }
  for (TermId n : nodes) {
    out += "  n" + std::to_string(n) + " [label=" +
           Quote(dict.IriName(n)) + "];\n";
  }
  for (const Triple& t : graph.triples()) {
    out += "  n" + std::to_string(t.s) + " -> n" + std::to_string(t.o) +
           " [label=" + Quote(dict.IriName(t.p)) + "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rdfql
