#ifndef RDFQL_RDF_DICTIONARY_H_
#define RDFQL_RDF_DICTIONARY_H_

#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/profile_state.h"

namespace rdfql {

/// Bidirectional interning table for IRIs and variable names.
///
/// All graphs, patterns and mappings in one workload share a `Dictionary`
/// (typically owned by `Engine`); ids are dense and stable, which lets the
/// algebra work on 32-bit integers instead of strings. Following the paper
/// we allow any string to be used as an IRI.
///
/// Thread-safe: lookups take a shared lock, interning upgrades to an
/// exclusive one only on a miss, and the evaluation kernels never touch
/// the dictionary at all (they work on ids) — so concurrent queries (the
/// shell's `spawn`, anything behind the in-flight registry) only contend
/// here during parse and result rendering. Names are stored in deques, so
/// the references `IriName`/`VarName` return stay valid while other
/// threads intern.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the id for `iri`, interning it if new. Returns kInvalidTermId
  /// once the 31-bit id space is exhausted (callers fed by user input must
  /// check; the parsers turn it into a typed error).
  TermId InternIri(std::string_view iri);

  /// Returns the id for variable `name` (without the leading '?'),
  /// interning it if new. Returns kInvalidVarId on id-space exhaustion.
  VarId InternVar(std::string_view name);

  /// Looks up an existing IRI; returns kInvalidTermId if absent.
  TermId FindIri(std::string_view iri) const;

  /// Looks up an existing variable; returns kInvalidVarId if absent.
  VarId FindVar(std::string_view name) const;

  const std::string& IriName(TermId id) const;
  const std::string& VarName(VarId id) const;

  /// Renders a term: IRIs verbatim, variables with a leading '?'.
  std::string TermName(Term t) const;

  size_t iri_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return iris_.size();
  }
  size_t var_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return vars_.size();
  }

  /// Interns a fresh variable name guaranteed not to collide with any
  /// existing variable (used by renaming transformations, Appendix E/F).
  VarId FreshVar(std::string_view stem);

  /// Interns a fresh IRI guaranteed not to collide with any existing IRI
  /// (used by reductions that need IRIs outside I(G) ∪ I(P)).
  TermId FreshIri(std::string_view stem);

  /// Contention on mu_: every acquisition that did not get the lock on
  /// the first try is counted and its wait timed (Engine::MetricsSnapshot
  /// surfaces this as lock.dictionary_wait_ns / _contended_total).
  const WaitStats& lock_wait_stats() const { return lock_wait_; }

 private:
  /// Intern bodies for callers already holding mu_ exclusively.
  TermId InternIriLocked(std::string_view iri);
  VarId InternVarLocked(std::string_view name);

  mutable std::shared_mutex mu_;
  mutable WaitStats lock_wait_;
  // Deques, not vectors: growth never moves existing names, so the
  // references handed out by IriName/VarName survive concurrent interning.
  std::deque<std::string> iris_;
  std::deque<std::string> vars_;
  std::unordered_map<std::string, TermId> iri_index_;
  std::unordered_map<std::string, VarId> var_index_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_RDF_DICTIONARY_H_
