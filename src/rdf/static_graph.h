#ifndef RDFQL_RDF_STATIC_GRAPH_H_
#define RDFQL_RDF_STATIC_GRAPH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"

namespace rdfql {

/// An immutable, read-optimized triple store with a per-predicate CSR
/// (compressed sparse row) layout:
///
///   predicate → [ (s, o) sorted by (s, o) ]  +  subject offset index
///   predicate → [ (o, s) sorted by (o, s) ]  +  object  offset index
///
/// Point and prefix lookups bound on the predicate — the shape of almost
/// every triple pattern in practice — are O(log) + output; predicate-free
/// probes fall back to scanning the predicate directory. Build once from
/// a `Graph`, then share freely (cheap to copy by const reference).
class StaticGraph {
 public:
  /// Builds the CSR layout from a mutable graph (O(n log n)).
  static StaticGraph Build(const Graph& graph);

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  bool Contains(const Triple& t) const;

  /// Same contract as `Graph::Match`: kInvalidTermId is a wildcard;
  /// returns the number of matches.
  size_t Match(TermId s, TermId p, TermId o,
               const std::function<void(const Triple&)>& fn) const;

  size_t CountMatches(TermId s, TermId p, TermId o) const;

  /// Exports back to a mutable graph (for round-trip tests).
  Graph ToGraph() const;

 private:
  struct PredicateBlock {
    // (s, o) pairs sorted by (s, o); `by_object` holds the same pairs as
    // (o, s) sorted by (o, s).
    std::vector<std::pair<TermId, TermId>> by_subject;
    std::vector<std::pair<TermId, TermId>> by_object;
  };

  const PredicateBlock* FindBlock(TermId p) const;

  std::unordered_map<TermId, PredicateBlock> blocks_;
  std::vector<TermId> predicates_;  // directory, sorted
  size_t total_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_RDF_STATIC_GRAPH_H_
