#include "rdf/dictionary.h"

#include <mutex>

#include "util/check.h"
#include "util/timed_lock.h"

// Every mu_ acquisition below goes through the timed-lock guards with the
// same tag: the profiler and the lock.dictionary_* metrics see one
// contention site, which is how callers experience it.
#define DICT_SHARED_LOCK() \
  TimedSharedLock<std::shared_mutex> lock(mu_, &lock_wait_, "Dictionary::lock")
#define DICT_EXCLUSIVE_LOCK()                          \
  TimedExclusiveLock<std::shared_mutex> lock(mu_, &lock_wait_, \
                                             "Dictionary::lock")

namespace rdfql {

TermId Dictionary::InternIriLocked(std::string_view iri) {
  auto it = iri_index_.find(std::string(iri));
  if (it != iri_index_.end()) return it->second;
  TermId id = static_cast<TermId>(iris_.size());
  // Id-space exhaustion is driven by input volume, not a bug: report it to
  // the caller (the parsers turn it into a typed error) instead of aborting.
  if (id >= 0x7fffffffu) return kInvalidTermId;
  iris_.emplace_back(iri);
  iri_index_.emplace(iris_.back(), id);
  return id;
}

VarId Dictionary::InternVarLocked(std::string_view name) {
  auto it = var_index_.find(std::string(name));
  if (it != var_index_.end()) return it->second;
  VarId id = static_cast<VarId>(vars_.size());
  if (id >= 0x7fffffffu) return kInvalidVarId;
  vars_.emplace_back(name);
  var_index_.emplace(vars_.back(), id);
  return id;
}

TermId Dictionary::InternIri(std::string_view iri) {
  // Fast path: most interns are repeat lookups — resolve them under the
  // shared lock and take the exclusive one only for genuinely new names.
  {
    DICT_SHARED_LOCK();
    auto it = iri_index_.find(std::string(iri));
    if (it != iri_index_.end()) return it->second;
  }
  DICT_EXCLUSIVE_LOCK();
  return InternIriLocked(iri);
}

VarId Dictionary::InternVar(std::string_view name) {
  {
    DICT_SHARED_LOCK();
    auto it = var_index_.find(std::string(name));
    if (it != var_index_.end()) return it->second;
  }
  DICT_EXCLUSIVE_LOCK();
  return InternVarLocked(name);
}

TermId Dictionary::FindIri(std::string_view iri) const {
  DICT_SHARED_LOCK();
  auto it = iri_index_.find(std::string(iri));
  return it == iri_index_.end() ? kInvalidTermId : it->second;
}

VarId Dictionary::FindVar(std::string_view name) const {
  DICT_SHARED_LOCK();
  auto it = var_index_.find(std::string(name));
  return it == var_index_.end() ? kInvalidVarId : it->second;
}

const std::string& Dictionary::IriName(TermId id) const {
  DICT_SHARED_LOCK();
  RDFQL_CHECK(id < iris_.size());
  return iris_[id];
}

const std::string& Dictionary::VarName(VarId id) const {
  DICT_SHARED_LOCK();
  RDFQL_CHECK(id < vars_.size());
  return vars_[id];
}

std::string Dictionary::TermName(Term t) const {
  if (t.is_var()) return "?" + VarName(t.var());
  return IriName(t.iri());
}

VarId Dictionary::FreshVar(std::string_view stem) {
  DICT_EXCLUSIVE_LOCK();
  for (;;) {
    std::string candidate =
        std::string(stem) + "_f" + std::to_string(fresh_counter_++);
    if (var_index_.find(candidate) == var_index_.end()) {
      return InternVarLocked(candidate);
    }
  }
}

TermId Dictionary::FreshIri(std::string_view stem) {
  DICT_EXCLUSIVE_LOCK();
  for (;;) {
    std::string candidate =
        std::string(stem) + "_i" + std::to_string(fresh_counter_++);
    if (iri_index_.find(candidate) == iri_index_.end()) {
      return InternIriLocked(candidate);
    }
  }
}

}  // namespace rdfql
