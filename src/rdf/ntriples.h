#ifndef RDFQL_RDF_NTRIPLES_H_
#define RDFQL_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfql {

/// Parses a simplified N-Triples document into `graph`, interning IRIs in
/// `dict`. Each non-empty, non-comment (#) line must be
/// `<subject> <predicate> <object> .` — angle brackets and the trailing dot
/// are optional, so `Juan was_born_in Chile .` also works (the paper treats
/// every string as an IRI).
Status ParseNTriples(std::string_view text, Dictionary* dict, Graph* graph);

/// Serializes `graph` one triple per line in the same format (angle
/// brackets omitted; terms separated by single spaces, line terminated by
/// " .").
std::string WriteNTriples(const Graph& graph, const Dictionary& dict);

}  // namespace rdfql

#endif  // RDFQL_RDF_NTRIPLES_H_
