#include "rdf/static_graph.h"

#include <algorithm>

namespace rdfql {
namespace {

using Pair = std::pair<TermId, TermId>;

// Emits all pairs in [lo, hi) of `pairs` whose first component equals
// `first` (or all pairs if `first` is the wildcard), filtered on the
// second component if `second` is bound. `emit` receives (first, second)
// in the pair's own order.
size_t ScanPairs(const std::vector<Pair>& pairs, TermId first,
                 TermId second,
                 const std::function<void(TermId, TermId)>& emit) {
  size_t count = 0;
  if (first == kInvalidTermId) {
    for (const Pair& pr : pairs) {
      if (second != kInvalidTermId && pr.second != second) continue;
      emit(pr.first, pr.second);
      ++count;
    }
    return count;
  }
  auto lo = std::lower_bound(pairs.begin(), pairs.end(),
                             Pair{first, 0});
  if (second != kInvalidTermId) {
    auto it = std::lower_bound(lo, pairs.end(), Pair{first, second});
    if (it != pairs.end() && it->first == first && it->second == second) {
      emit(first, second);
      return 1;
    }
    return 0;
  }
  for (auto it = lo; it != pairs.end() && it->first == first; ++it) {
    emit(it->first, it->second);
    ++count;
  }
  return count;
}

}  // namespace

StaticGraph StaticGraph::Build(const Graph& graph) {
  StaticGraph out;
  out.total_ = graph.size();
  for (const Triple& t : graph.triples()) {
    PredicateBlock& block = out.blocks_[t.p];
    block.by_subject.emplace_back(t.s, t.o);
    block.by_object.emplace_back(t.o, t.s);
  }
  for (auto& [p, block] : out.blocks_) {
    std::sort(block.by_subject.begin(), block.by_subject.end());
    std::sort(block.by_object.begin(), block.by_object.end());
    out.predicates_.push_back(p);
  }
  std::sort(out.predicates_.begin(), out.predicates_.end());
  return out;
}

const StaticGraph::PredicateBlock* StaticGraph::FindBlock(TermId p) const {
  auto it = blocks_.find(p);
  return it == blocks_.end() ? nullptr : &it->second;
}

bool StaticGraph::Contains(const Triple& t) const {
  const PredicateBlock* block = FindBlock(t.p);
  if (block == nullptr) return false;
  return std::binary_search(block->by_subject.begin(),
                            block->by_subject.end(), Pair{t.s, t.o});
}

size_t StaticGraph::Match(
    TermId s, TermId p, TermId o,
    const std::function<void(const Triple&)>& fn) const {
  size_t count = 0;
  auto match_block = [&](TermId predicate, const PredicateBlock& block) {
    // Choose the orientation whose bound component comes first.
    if (s != kInvalidTermId || o == kInvalidTermId) {
      return ScanPairs(block.by_subject, s, o,
                       [&](TermId subject, TermId object) {
                         fn(Triple(subject, predicate, object));
                       });
    }
    return ScanPairs(block.by_object, o, s,
                     [&](TermId object, TermId subject) {
                       fn(Triple(subject, predicate, object));
                     });
  };
  if (p != kInvalidTermId) {
    const PredicateBlock* block = FindBlock(p);
    if (block == nullptr) return 0;
    return match_block(p, *block);
  }
  for (TermId predicate : predicates_) {
    count += match_block(predicate, *FindBlock(predicate));
  }
  return count;
}

size_t StaticGraph::CountMatches(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

Graph StaticGraph::ToGraph() const {
  Graph out;
  Match(kInvalidTermId, kInvalidTermId, kInvalidTermId,
        [&out](const Triple& t) { out.Insert(t); });
  return out;
}

}  // namespace rdfql
