#ifndef RDFQL_RDF_TERM_H_
#define RDFQL_RDF_TERM_H_

#include <cstdint>
#include <functional>

namespace rdfql {

/// Interned identifier of an IRI. The paper (Section 2) works with triples
/// over an infinite set I of IRIs only (constants and existential values are
/// disallowed without loss of generality); we follow that model.
using TermId = uint32_t;

/// Interned identifier of a query variable (elements of V, written `?x`).
using VarId = uint32_t;

constexpr TermId kInvalidTermId = 0xffffffffu;
constexpr VarId kInvalidVarId = 0xffffffffu;

/// One position of a triple pattern: either an IRI or a variable
/// (elements of I ∪ V). Packed into 32 bits with the top bit as the tag so
/// triple patterns stay trivially copyable and hashable.
class Term {
 public:
  Term() : bits_(kInvalidTermId) {}

  static Term Iri(TermId id) { return Term(id & kIdMask); }
  static Term Var(VarId id) { return Term((id & kIdMask) | kVarBit); }

  bool is_var() const {
    return (bits_ & kVarBit) != 0 && bits_ != kInvalidTermId;
  }
  bool is_iri() const { return (bits_ & kVarBit) == 0 && bits_ != kInvalidTermId; }
  bool is_valid() const { return bits_ != kInvalidTermId; }

  /// The IRI id; only meaningful when `is_iri()`.
  TermId iri() const { return bits_ & kIdMask; }
  /// The variable id; only meaningful when `is_var()`.
  VarId var() const { return bits_ & kIdMask; }

  uint32_t raw() const { return bits_; }

  friend bool operator==(Term a, Term b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Term a, Term b) { return a.bits_ != b.bits_; }
  friend bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

 private:
  explicit Term(uint32_t bits) : bits_(bits) {}

  static constexpr uint32_t kVarBit = 0x80000000u;
  static constexpr uint32_t kIdMask = 0x7fffffffu;

  uint32_t bits_;
};

}  // namespace rdfql

template <>
struct std::hash<rdfql::Term> {
  size_t operator()(rdfql::Term t) const noexcept {
    return std::hash<uint32_t>()(t.raw());
  }
};

#endif  // RDFQL_RDF_TERM_H_
