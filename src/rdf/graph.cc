#include "rdf/graph.h"

#include <algorithm>
#include <tuple>

namespace rdfql {
namespace {

// Key extractors giving the component order of each index.
struct SpoKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.s, t.p, t.o};
  }
};
struct PosKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.p, t.o, t.s};
  }
};
struct OspKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.o, t.s, t.p};
  }
};

template <typename Key>
void SortBy(std::vector<Triple>* v) {
  std::sort(v->begin(), v->end(), [](const Triple& a, const Triple& b) {
    return Key()(a) < Key()(b);
  });
}

// Scans the sorted index for triples whose first `bound` key components
// equal `k1[,k2]`, invoking fn on each.
template <typename Key>
size_t ScanPrefix(const std::vector<Triple>& index, TermId k1, TermId k2,
                  int bound, const std::function<void(const Triple&)>& fn) {
  auto lower = std::lower_bound(
      index.begin(), index.end(), std::make_pair(k1, k2),
      [bound](const Triple& t, const std::pair<TermId, TermId>& key) {
        auto tk = Key()(t);
        if (std::get<0>(tk) != key.first) return std::get<0>(tk) < key.first;
        if (bound < 2) return false;
        return std::get<1>(tk) < key.second;
      });
  size_t count = 0;
  for (auto it = lower; it != index.end(); ++it) {
    auto tk = Key()(*it);
    if (std::get<0>(tk) != k1) break;
    if (bound >= 2 && std::get<1>(tk) != k2) break;
    fn(*it);
    ++count;
  }
  return count;
}

}  // namespace

bool Graph::Insert(const Triple& t) {
  if (!set_.insert(t).second) return false;
  triples_.push_back(t);
  for (auto& idx : index_) idx.clear();
  return true;
}

bool Graph::Erase(const Triple& t) {
  if (set_.erase(t) == 0) return false;
  triples_.erase(std::find(triples_.begin(), triples_.end(), t));
  for (auto& idx : index_) idx.clear();
  return true;
}

void Graph::EnsureIndex(IndexKind kind) const {
  std::vector<Triple>& idx = index_[kind];
  if (idx.size() == triples_.size()) return;
  idx = triples_;
  switch (kind) {
    case kSpo:
      SortBy<SpoKey>(&idx);
      break;
    case kPos:
      SortBy<PosKey>(&idx);
      break;
    case kOsp:
      SortBy<OspKey>(&idx);
      break;
  }
}

size_t Graph::Match(TermId s, TermId p, TermId o,
                    const std::function<void(const Triple&)>& fn) const {
  const bool bs = s != kInvalidTermId;
  const bool bp = p != kInvalidTermId;
  const bool bo = o != kInvalidTermId;

  if (bs && bp && bo) {
    Triple t(s, p, o);
    if (Contains(t)) {
      fn(t);
      return 1;
    }
    return 0;
  }
  if (!bs && !bp && !bo) {
    for (const Triple& t : triples_) fn(t);
    return triples_.size();
  }

  // Pick the index whose order makes the bound positions a prefix. The one
  // combination with no contiguous prefix (s and o bound, p free) uses OSP
  // with a post-filter on s handled by the two-component scan (o, s bound).
  if (bs && bp) {
    EnsureIndex(kSpo);
    return ScanPrefix<SpoKey>(index_[kSpo], s, p, 2, fn);
  }
  if (bp && bo) {
    EnsureIndex(kPos);
    return ScanPrefix<PosKey>(index_[kPos], p, o, 2, fn);
  }
  if (bo && bs) {
    EnsureIndex(kOsp);
    return ScanPrefix<OspKey>(index_[kOsp], o, s, 2, fn);
  }
  if (bs) {
    EnsureIndex(kSpo);
    return ScanPrefix<SpoKey>(index_[kSpo], s, 0, 1, fn);
  }
  if (bp) {
    EnsureIndex(kPos);
    return ScanPrefix<PosKey>(index_[kPos], p, 0, 1, fn);
  }
  EnsureIndex(kOsp);
  return ScanPrefix<OspKey>(index_[kOsp], o, 0, 1, fn);
}

size_t Graph::CountMatches(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

bool Graph::IsSubsetOf(const Graph& other) const {
  if (size() > other.size()) return false;
  for (const Triple& t : triples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& a, const Graph& b) {
  Graph out = a;
  for (const Triple& t : b.triples_) out.Insert(t);
  return out;
}

std::vector<TermId> Graph::Iris() const {
  std::vector<TermId> ids;
  ids.reserve(triples_.size() * 3);
  for (const Triple& t : triples_) {
    ids.push_back(t.s);
    ids.push_back(t.p);
    ids.push_back(t.o);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.size() == b.size() && a.IsSubsetOf(b);
}

}  // namespace rdfql
