#include "rdf/graph.h"

#include <algorithm>
#include <mutex>
#include <tuple>
#include <utility>

#include "util/timed_lock.h"

namespace rdfql {
namespace {

// Key extractors giving the component order of each index.
struct SpoKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.s, t.p, t.o};
  }
};
struct PosKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.p, t.o, t.s};
  }
};
struct OspKey {
  std::tuple<TermId, TermId, TermId> operator()(const Triple& t) const {
    return {t.o, t.s, t.p};
  }
};

template <typename Key>
void SortBy(std::vector<Triple>* v) {
  std::sort(v->begin(), v->end(), [](const Triple& a, const Triple& b) {
    return Key()(a) < Key()(b);
  });
}

// Past this size (relative to the base index) the side array is folded
// into the base by a full re-sort; below it, inserts stay cheap and scans
// pay one extra binary search plus a two-way merge.
size_t SideRebuildThreshold(size_t base_size) { return 64 + base_size / 8; }

// Finds the [lower, end-of-prefix) range of `index` whose first `bound`
// key components equal `k1[,k2]`.
template <typename Key>
std::pair<const Triple*, const Triple*> PrefixRange(
    const std::vector<Triple>& index, TermId k1, TermId k2, int bound) {
  auto lower = std::lower_bound(
      index.begin(), index.end(), std::make_pair(k1, k2),
      [bound](const Triple& t, const std::pair<TermId, TermId>& key) {
        auto tk = Key()(t);
        if (std::get<0>(tk) != key.first) return std::get<0>(tk) < key.first;
        if (bound < 2) return false;
        return std::get<1>(tk) < key.second;
      });
  auto it = lower;
  for (; it != index.end(); ++it) {
    auto tk = Key()(*it);
    if (std::get<0>(tk) != k1) break;
    if (bound >= 2 && std::get<1>(tk) != k2) break;
  }
  return {index.data() + (lower - index.begin()),
          index.data() + (it - index.begin())};
}

// Scans base and side for the bound prefix, merging the two sorted ranges
// in key order so callbacks fire exactly as they would from one fully
// sorted index (keys are unique: distinct triples, permutation keys).
template <typename Key>
size_t ScanPrefix(const std::vector<Triple>& base,
                  const std::vector<Triple>& side, TermId k1, TermId k2,
                  int bound, const std::function<void(const Triple&)>& fn) {
  auto [b, b_end] = PrefixRange<Key>(base, k1, k2, bound);
  auto [s, s_end] = PrefixRange<Key>(side, k1, k2, bound);
  size_t count = 0;
  while (b != b_end && s != s_end) {
    if (Key()(*b) < Key()(*s)) {
      fn(*b++);
    } else {
      fn(*s++);
    }
    ++count;
  }
  for (; b != b_end; ++b, ++count) fn(*b);
  for (; s != s_end; ++s, ++count) fn(*s);
  return count;
}

}  // namespace

uint64_t Graph::NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Hand-written because the index mutex is neither copyable nor movable.
// Copies are reads of `other` and may run concurrently with its lookups,
// so they take its shared lock while the indexes are duplicated; moves
// require exclusive ownership of both sides (like any other write).
Graph::Graph(const Graph& other) { *this = other; }

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  std::shared_lock<std::shared_mutex> lock(other.index_mu_);
  triples_ = other.triples_;
  set_ = other.set_;
  for (int i = 0; i < 3; ++i) index_[i] = other.index_[i];
  // Copies share the source's epoch: identical content, so result-cache
  // entries stamped with it stay valid. The first mutation of either side
  // mints a fresh value and they diverge.
  epoch_.store(other.Epoch(), std::memory_order_relaxed);
  return *this;
}

Graph::Graph(Graph&& other) noexcept { *this = std::move(other); }

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  triples_ = std::move(other.triples_);
  set_ = std::move(other.set_);
  for (int i = 0; i < 3; ++i) index_[i] = std::move(other.index_[i]);
  epoch_.store(other.Epoch(), std::memory_order_relaxed);
  return *this;
}

bool Graph::Insert(const Triple& t) {
  if (!set_.insert(t).second) return false;
  triples_.push_back(t);
  epoch_.store(NextEpoch(), std::memory_order_relaxed);
  // Indexes stay valid for their covered prefix; EnsureIndex absorbs the
  // new tail into each side array on the next lookup.
  return true;
}

void Graph::InvalidateIndexes() {
  for (Index& idx : index_) {
    idx.base.clear();
    idx.side.clear();
    idx.covered = 0;
  }
}

bool Graph::Erase(const Triple& t) {
  if (set_.erase(t) == 0) return false;
  triples_.erase(std::find(triples_.begin(), triples_.end(), t));
  epoch_.store(NextEpoch(), std::memory_order_relaxed);
  // Removal from the middle breaks the covered-prefix bookkeeping; erases
  // are rare (updates), so a full invalidation keeps them simple.
  InvalidateIndexes();
  return true;
}

void Graph::EnsureIndex(IndexKind kind) const {
  // Concurrent queries can hit the first lookup on a freshly loaded graph
  // together, so the lazy build is double-checked: the common "already
  // covered" case costs one shared lock, and exactly one thread performs
  // the build. A reader that observes covered == size() here may then
  // scan without the lock — covered only ever advances to size(), and
  // nothing mutates a covering index until the next (externally
  // serialized) write.
  {
    TimedSharedLock<std::shared_mutex> lock(index_mu_, &index_lock_wait_,
                                            "Graph::EnsureIndex");
    if (index_[kind].covered == triples_.size()) return;
  }
  TimedExclusiveLock<std::shared_mutex> lock(index_mu_, &index_lock_wait_,
                                             "Graph::EnsureIndex");
  Index& idx = index_[kind];
  if (idx.covered == triples_.size()) return;
  size_t added = triples_.size() - idx.covered;
  if (idx.side.size() + added > SideRebuildThreshold(idx.base.size())) {
    idx.base = triples_;
    idx.side.clear();
  } else {
    idx.side.insert(idx.side.end(), triples_.begin() + idx.covered,
                    triples_.end());
  }
  std::vector<Triple>* to_sort =
      idx.side.empty() ? &idx.base : &idx.side;
  switch (kind) {
    case kSpo:
      SortBy<SpoKey>(to_sort);
      break;
    case kPos:
      SortBy<PosKey>(to_sort);
      break;
    case kOsp:
      SortBy<OspKey>(to_sort);
      break;
  }
  idx.covered = triples_.size();
}

size_t Graph::Match(TermId s, TermId p, TermId o,
                    const std::function<void(const Triple&)>& fn) const {
  const bool bs = s != kInvalidTermId;
  const bool bp = p != kInvalidTermId;
  const bool bo = o != kInvalidTermId;

  if (bs && bp && bo) {
    Triple t(s, p, o);
    if (Contains(t)) {
      fn(t);
      return 1;
    }
    return 0;
  }
  if (!bs && !bp && !bo) {
    for (const Triple& t : triples_) fn(t);
    return triples_.size();
  }

  // Pick the index whose order makes the bound positions a prefix. The one
  // combination with no contiguous prefix (s and o bound, p free) uses OSP
  // with a post-filter on s handled by the two-component scan (o, s bound).
  if (bs && bp) {
    EnsureIndex(kSpo);
    const Index& idx = index_[kSpo];
    return ScanPrefix<SpoKey>(idx.base, idx.side, s, p, 2, fn);
  }
  if (bp && bo) {
    EnsureIndex(kPos);
    const Index& idx = index_[kPos];
    return ScanPrefix<PosKey>(idx.base, idx.side, p, o, 2, fn);
  }
  if (bo && bs) {
    EnsureIndex(kOsp);
    const Index& idx = index_[kOsp];
    return ScanPrefix<OspKey>(idx.base, idx.side, o, s, 2, fn);
  }
  if (bs) {
    EnsureIndex(kSpo);
    const Index& idx = index_[kSpo];
    return ScanPrefix<SpoKey>(idx.base, idx.side, s, 0, 1, fn);
  }
  if (bp) {
    EnsureIndex(kPos);
    const Index& idx = index_[kPos];
    return ScanPrefix<PosKey>(idx.base, idx.side, p, 0, 1, fn);
  }
  EnsureIndex(kOsp);
  const Index& idx = index_[kOsp];
  return ScanPrefix<OspKey>(idx.base, idx.side, o, 0, 1, fn);
}

size_t Graph::CountMatches(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

bool Graph::IsSubsetOf(const Graph& other) const {
  if (size() > other.size()) return false;
  for (const Triple& t : triples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& a, const Graph& b) {
  Graph out = a;
  for (const Triple& t : b.triples_) out.Insert(t);
  return out;
}

std::vector<TermId> Graph::Iris() const {
  std::vector<TermId> ids;
  ids.reserve(triples_.size() * 3);
  for (const Triple& t : triples_) {
    ids.push_back(t.s);
    ids.push_back(t.p);
    ids.push_back(t.o);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

size_t Graph::ApproxBytes() const {
  // ~2 pointers of hash-set bucket/node overhead per deduped triple; only
  // materialized indexes (base + side capacity) count.
  size_t bytes = triples_.capacity() * sizeof(Triple) +
                 set_.size() * (sizeof(Triple) + 2 * sizeof(void*));
  // The metrics gauge refresh may run while queries are building indexes.
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  for (const Index& idx : index_) {
    bytes += (idx.base.capacity() + idx.side.capacity()) * sizeof(Triple);
  }
  return bytes;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.size() == b.size() && a.IsSubsetOf(b);
}

}  // namespace rdfql
