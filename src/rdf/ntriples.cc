#include "rdf/ntriples.h"

#include <vector>

#include "util/string_util.h"

namespace rdfql {
namespace {

// Strips optional angle brackets from an IRI token.
std::string_view StripBrackets(std::string_view token) {
  if (token.size() >= 2 && token.front() == '<' && token.back() == '>') {
    return token.substr(1, token.size() - 2);
  }
  return token;
}

}  // namespace

Status ParseNTriples(std::string_view text, Dictionary* dict, Graph* graph) {
  size_t line_no = 0;
  for (const std::string& raw_line : SplitNonEmpty(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string> tokens = SplitNonEmpty(line, ' ');
    // Drop a trailing standalone dot.
    if (!tokens.empty() && tokens.back() == ".") tokens.pop_back();
    if (tokens.size() != 3) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected `s p o .`, got `" +
                                std::string(line) + "`");
    }
    TermId s = dict->InternIri(StripBrackets(tokens[0]));
    TermId p = dict->InternIri(StripBrackets(tokens[1]));
    TermId o = dict->InternIri(StripBrackets(tokens[2]));
    if (s == kInvalidTermId || p == kInvalidTermId || o == kInvalidTermId) {
      return Status::ResourceExhausted("line " + std::to_string(line_no) +
                                       ": IRI id space exhausted");
    }
    graph->Insert(s, p, o);
  }
  return Status::Ok();
}

std::string WriteNTriples(const Graph& graph, const Dictionary& dict) {
  std::string out;
  for (const Triple& t : graph.triples()) {
    out += dict.IriName(t.s);
    out += ' ';
    out += dict.IriName(t.p);
    out += ' ';
    out += dict.IriName(t.o);
    out += " .\n";
  }
  return out;
}

}  // namespace rdfql
