#ifndef RDFQL_RDF_DOT_H_
#define RDFQL_RDF_DOT_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfql {

/// Renders the graph in Graphviz DOT as a directed edge-labeled graph —
/// the visual form the paper uses for its figures (e.g. Figure 1):
/// subjects/objects are nodes, predicates are edge labels.
///
///   dot -Tpng out.dot -o out.png
std::string WriteDot(const Graph& graph, const Dictionary& dict,
                     const std::string& name = "rdf");

}  // namespace rdfql

#endif  // RDFQL_RDF_DOT_H_
