#include "workload/university_generator.h"

#include "util/random.h"

namespace rdfql {

Graph GenerateUniversityGraph(const UniversitySpec& spec, Dictionary* dict) {
  Rng rng(spec.seed);
  Graph g;

  TermId sub_org = dict->InternIri("sub_organization_of");
  TermId works_for = dict->InternIri("works_for");
  TermId studies_at = dict->InternIri("studies_at");
  TermId rank = dict->InternIri("rank");
  TermId advisor = dict->InternIri("advisor");
  TermId teaches = dict->InternIri("teaches");
  TermId takes = dict->InternIri("takes");
  TermId author_of = dict->InternIri("author_of");
  TermId email = dict->InternIri("email");
  TermId webpage = dict->InternIri("webpage");
  TermId offered_by = dict->InternIri("offered_by");

  std::vector<TermId> ranks = {dict->InternIri("assistant"),
                               dict->InternIri("associate"),
                               dict->InternIri("full")};

  for (int u = 0; u < spec.num_universities; ++u) {
    std::string u_name = "u" + std::to_string(u);
    TermId university = dict->InternIri(u_name);
    for (int d = 0; d < spec.departments_per_university; ++d) {
      std::string d_name = u_name + "_d" + std::to_string(d);
      TermId department = dict->InternIri(d_name);
      g.Insert(department, sub_org, university);

      std::vector<TermId> professors;
      for (int k = 0; k < spec.professors_per_department; ++k) {
        TermId prof =
            dict->InternIri(d_name + "_prof" + std::to_string(k));
        professors.push_back(prof);
        g.Insert(prof, works_for, department);
        g.Insert(prof, rank, rng.Pick(ranks));
        if (rng.NextBool(spec.email_probability)) {
          g.Insert(prof, email,
                   dict->InternIri(d_name + "_prof" + std::to_string(k) +
                                   "@mail"));
        }
        for (int pub = 0; pub < spec.publications_per_professor; ++pub) {
          g.Insert(prof, author_of,
                   dict->InternIri(d_name + "_prof" + std::to_string(k) +
                                   "_pub" + std::to_string(pub)));
        }
      }

      std::vector<TermId> courses;
      for (int c = 0; c < spec.courses_per_department; ++c) {
        TermId course =
            dict->InternIri(d_name + "_course" + std::to_string(c));
        courses.push_back(course);
        g.Insert(course, offered_by, department);
        g.Insert(rng.Pick(professors), teaches, course);
        if (rng.NextBool(spec.webpage_probability)) {
          g.Insert(course, webpage,
                   dict->InternIri(d_name + "_course" + std::to_string(c) +
                                   "_www"));
        }
      }

      for (int s = 0; s < spec.students_per_department; ++s) {
        TermId student =
            dict->InternIri(d_name + "_stud" + std::to_string(s));
        g.Insert(student, studies_at, department);
        if (rng.NextBool(spec.advisor_probability)) {
          g.Insert(student, advisor, rng.Pick(professors));
        }
        if (rng.NextBool(spec.email_probability)) {
          g.Insert(student, email,
                   dict->InternIri(d_name + "_stud" + std::to_string(s) +
                                   "@mail"));
        }
        int enrolled = 1 + static_cast<int>(rng.NextBelow(4));
        for (int e = 0; e < enrolled; ++e) {
          g.Insert(student, takes, rng.Pick(courses));
        }
      }
    }
  }
  return g;
}

std::vector<NamedUniversityQuery> UniversityQueryMix() {
  return {
      // Conjunctive: students and the professors teaching their courses.
      {"cq_student_teacher",
       "((?s takes ?c) AND (?p teaches ?c)) AND (?s studies_at ?d)"},
      // Union: everyone attached to a department.
      {"union_members",
       "(?x works_for ?d) UNION (?x studies_at ?d)"},
      // Well-designed OPT: advisors with optional emails.
      {"wd_advisor_email",
       "((?s advisor ?p) AND (?p works_for ?d)) OPT (?p email ?e)"},
      // Nested well-designed OPT: course info with optional extras.
      {"wd_course_info",
       "((?p teaches ?c) OPT (?c webpage ?w)) OPT (?p email ?e)"},
      // Simple pattern (NS form of the advisor query).
      {"sp_advisor_email",
       "NS(((?s advisor ?p) AND (?p works_for ?d)) UNION "
       "(((?s advisor ?p) AND (?p works_for ?d)) AND (?p email ?e)))"},
      // Projection-heavy: which departments have full professors with
      // publications.
      {"select_full_prof_depts",
       "(SELECT {?d} WHERE (((?p rank full) AND (?p works_for ?d)) AND "
       "(?p author_of ?pub)))"},
  };
}

}  // namespace rdfql
