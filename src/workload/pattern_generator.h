#ifndef RDFQL_WORKLOAD_PATTERN_GENERATOR_H_
#define RDFQL_WORKLOAD_PATTERN_GENERATOR_H_

#include "algebra/pattern.h"
#include "rdf/dictionary.h"
#include "util/random.h"

namespace rdfql {

/// Shape of the random patterns used by the property tests and the
/// scaling benchmarks. Operators are opt-in so a generator instance can be
/// confined to any SPARQL[·] fragment (or NS–SPARQL).
struct PatternGenSpec {
  bool allow_and = true;
  bool allow_union = true;
  bool allow_opt = false;
  bool allow_filter = false;
  bool allow_select = false;
  bool allow_minus = false;
  bool allow_ns = false;
  int max_depth = 3;
  int num_vars = 4;
  int num_iris = 4;
  /// Variable/IRI name prefixes (so independent generators stay disjoint).
  std::string var_stem = "v";
  std::string iri_stem = "i";
};

/// Draws a random pattern; all variables are <var_stem><k> and IRIs
/// <iri_stem><k>, interned into `dict`.
PatternPtr GenerateRandomPattern(const PatternGenSpec& spec,
                                 Dictionary* dict, Rng* rng);

}  // namespace rdfql

#endif  // RDFQL_WORKLOAD_PATTERN_GENERATOR_H_
