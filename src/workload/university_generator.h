#ifndef RDFQL_WORKLOAD_UNIVERSITY_GENERATOR_H_
#define RDFQL_WORKLOAD_UNIVERSITY_GENERATOR_H_

#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfql {

/// A LUBM-flavoured synthetic university dataset — a second, structurally
/// richer workload than the social graph: departments within
/// universities, professors with ranks, students with advisors, courses
/// with teachers and takers, publications with authors. Optional
/// information (the paper's theme) appears as emails (per person, with
/// probability) and course webpages.
struct UniversitySpec {
  int num_universities = 2;
  int departments_per_university = 4;
  int professors_per_department = 6;
  int students_per_department = 40;
  int courses_per_department = 8;
  int publications_per_professor = 3;
  double email_probability = 0.6;
  double webpage_probability = 0.4;
  /// Fraction of students that have an advisor.
  double advisor_probability = 0.7;
  uint64_t seed = 7;
};

/// Generates the dataset; entity IRIs are `uN_dM_profK`-style stable
/// names. Predicates: sub_organization_of, works_for, studies_at, rank,
/// advisor, teaches, takes, author_of, email, webpage, offered_by.
Graph GenerateUniversityGraph(const UniversitySpec& spec, Dictionary* dict);

/// A canned query mix over the university vocabulary (name + paper-syntax
/// text), covering the paper's fragments: conjunctive lookups, unions,
/// well-designed OPT, simple patterns, and a CONSTRUCT-ready view query.
struct NamedUniversityQuery {
  std::string name;
  std::string text;
};
std::vector<NamedUniversityQuery> UniversityQueryMix();

}  // namespace rdfql

#endif  // RDFQL_WORKLOAD_UNIVERSITY_GENERATOR_H_
