#include "workload/graph_generator.h"

namespace rdfql {

Graph GenerateSocialGraph(const SocialGraphSpec& spec, Dictionary* dict) {
  Rng rng(spec.seed);
  Graph g;

  TermId founder = dict->InternIri("founder");
  TermId supporter = dict->InternIri("supporter");
  TermId stands_for = dict->InternIri("stands_for");
  TermId works_at = dict->InternIri("works_at");
  TermId name = dict->InternIri("name");
  TermId email = dict->InternIri("email");
  TermId was_born_in = dict->InternIri("was_born_in");

  std::vector<TermId> people, orgs, causes, countries;
  for (int i = 0; i < spec.num_people; ++i) {
    people.push_back(dict->InternIri("person_" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_orgs; ++i) {
    orgs.push_back(dict->InternIri("org_" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_causes; ++i) {
    causes.push_back(dict->InternIri("cause_" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_countries; ++i) {
    countries.push_back(dict->InternIri("country_" + std::to_string(i)));
  }

  for (int i = 0; i < spec.num_people; ++i) {
    TermId p = people[i];
    g.Insert(p, name, dict->InternIri("name_" + std::to_string(i)));
    g.Insert(p, was_born_in, rng.Pick(countries));
    if (rng.NextBool(spec.email_probability)) {
      g.Insert(p, email, dict->InternIri("mail_" + std::to_string(i)));
    }
    g.Insert(p, works_at, rng.Pick(orgs));
    for (TermId org : orgs) {
      if (rng.NextBool(spec.founder_probability)) g.Insert(p, founder, org);
      if (rng.NextBool(spec.supporter_probability)) {
        g.Insert(p, supporter, org);
      }
    }
  }
  for (TermId org : orgs) {
    g.Insert(org, stands_for, rng.Pick(causes));
  }
  return g;
}

Graph GenerateRandomGraph(int num_triples, int pool_size, Dictionary* dict,
                          Rng* rng, const std::string& stem) {
  std::vector<TermId> pool;
  pool.reserve(pool_size);
  for (int i = 0; i < pool_size; ++i) {
    pool.push_back(dict->InternIri(stem + "_" + std::to_string(i)));
  }
  Graph g;
  for (int i = 0; i < num_triples; ++i) {
    g.Insert(rng->Pick(pool), rng->Pick(pool), rng->Pick(pool));
  }
  return g;
}

Graph RandomSubgraph(const Graph& graph, double keep, Rng* rng) {
  Graph out;
  for (const Triple& t : graph.triples()) {
    if (rng->NextBool(keep)) out.Insert(t);
  }
  return out;
}

}  // namespace rdfql
