#include "workload/scenarios.h"

#include "rdf/ntriples.h"
#include "util/check.h"

namespace rdfql {
namespace scenarios {
namespace {

Graph MustParse(const char* text, Dictionary* dict) {
  Graph g;
  Status st = ParseNTriples(text, dict, &g);
  RDFQL_CHECK_MSG(st.ok(), st.ToString().c_str());
  return g;
}

}  // namespace

Graph PirateBayGraph(Dictionary* dict) {
  return MustParse(R"(
    Gottfrid_Svartholm founder The_Pirate_Bay .
    Fredrik_Neij founder The_Pirate_Bay .
    Peter_Sunde founder The_Pirate_Bay .
    founder sub_property supporter .
    The_Pirate_Bay stands_for sharing_rights .
    Carl_Lundstrom supporter The_Pirate_Bay .
  )",
                   dict);
}

Graph ChileGraphG1(Dictionary* dict) {
  return MustParse(R"(
    prof_01 name Cristian .
    prof_01 email cris@puc.cl .
    prof_01 works_at PUC_Chile .
    prof_01 works_at U_Oxford .
    prof_02 name Denis .
    prof_02 works_at PUC_Chile .
    Juan was_born_in Chile .
  )",
                   dict);
}

Graph ChileGraphG2(Dictionary* dict) {
  Graph g = ChileGraphG1(dict);
  g.Insert(dict->InternIri("Juan"), dict->InternIri("email"),
           dict->InternIri("juan@puc.cl"));
  return g;
}

Graph ProfessorsGraph(Dictionary* dict) {
  return MustParse(R"(
    prof_01 name Cristian .
    prof_01 email cris@puc.cl .
    prof_01 works_at U_Oxford .
    prof_01 works_at PUC_Chile .
    prof_02 name Denis .
    prof_02 works_at PUC_Chile .
  )",
                   dict);
}

std::string Example22Query() {
  return "(SELECT {?p} WHERE ((?o stands_for sharing_rights) AND "
         "((?p founder ?o) UNION (?p supporter ?o))))";
}

std::string Example31Query() {
  return "((?X was_born_in Chile) OPT (?X email ?Y))";
}

std::string Example33Query() {
  return "((?X was_born_in Chile) AND "
         "((?Y was_born_in Chile) OPT (?Y email ?X)))";
}

std::string Theorem35Witness() {
  return "((((a b c) OPT (?X d e)) OPT (?Y f g)) "
         "FILTER (bound(?X) | bound(?Y)))";
}

std::string Theorem36Witness() {
  return "((?X a b) OPT ((?X c ?Y) UNION (?X d ?Z)))";
}

std::string Example61ConstructQuery() {
  return "CONSTRUCT { (?n affiliated_to ?u) (?n email ?e) } WHERE "
         "(((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e))";
}

}  // namespace scenarios
}  // namespace rdfql
