#include "workload/pattern_generator.h"

#include <vector>

namespace rdfql {
namespace {

Term RandomTerm(const PatternGenSpec& spec, Dictionary* dict, Rng* rng) {
  if (rng->NextBool(0.55)) {
    int v = static_cast<int>(rng->NextBelow(spec.num_vars));
    return Term::Var(dict->InternVar(spec.var_stem + std::to_string(v)));
  }
  int i = static_cast<int>(rng->NextBelow(spec.num_iris));
  return Term::Iri(dict->InternIri(spec.iri_stem + std::to_string(i)));
}

PatternPtr RandomTriple(const PatternGenSpec& spec, Dictionary* dict,
                        Rng* rng) {
  return Pattern::MakeTriple(RandomTerm(spec, dict, rng),
                             RandomTerm(spec, dict, rng),
                             RandomTerm(spec, dict, rng));
}

BuiltinPtr RandomCondition(const PatternGenSpec& spec,
                           const std::vector<VarId>& vars, Dictionary* dict,
                           Rng* rng, int depth) {
  if (vars.empty()) return Builtin::True();
  if (depth > 0 && rng->NextBool(0.4)) {
    BuiltinPtr a = RandomCondition(spec, vars, dict, rng, depth - 1);
    BuiltinPtr b = RandomCondition(spec, vars, dict, rng, depth - 1);
    switch (rng->NextBelow(3)) {
      case 0:
        return Builtin::And(a, b);
      case 1:
        return Builtin::Or(a, b);
      default:
        return Builtin::Not(a);
    }
  }
  VarId v = rng->Pick(vars);
  switch (rng->NextBelow(3)) {
    case 0:
      return Builtin::Bound(v);
    case 1: {
      int i = static_cast<int>(rng->NextBelow(spec.num_iris));
      return Builtin::EqConst(
          v, dict->InternIri(spec.iri_stem + std::to_string(i)));
    }
    default:
      return Builtin::EqVars(v, rng->Pick(vars));
  }
}

PatternPtr Generate(const PatternGenSpec& spec, Dictionary* dict, Rng* rng,
                    int depth) {
  if (depth <= 0) return RandomTriple(spec, dict, rng);

  // Collect the operators enabled by the spec and pick one (triples get a
  // fixed share so patterns stay small).
  std::vector<int> ops = {0};  // 0 = triple
  if (spec.allow_and) ops.push_back(1);
  if (spec.allow_union) ops.push_back(2);
  if (spec.allow_opt) ops.push_back(3);
  if (spec.allow_filter) ops.push_back(4);
  if (spec.allow_select) ops.push_back(5);
  if (spec.allow_minus) ops.push_back(6);
  if (spec.allow_ns) ops.push_back(7);

  switch (rng->Pick(ops)) {
    case 1:
      return Pattern::And(Generate(spec, dict, rng, depth - 1),
                          Generate(spec, dict, rng, depth - 1));
    case 2:
      return Pattern::Union(Generate(spec, dict, rng, depth - 1),
                            Generate(spec, dict, rng, depth - 1));
    case 3:
      return Pattern::Opt(Generate(spec, dict, rng, depth - 1),
                          Generate(spec, dict, rng, depth - 1));
    case 4: {
      PatternPtr child = Generate(spec, dict, rng, depth - 1);
      return Pattern::Filter(
          child, RandomCondition(spec, child->Vars(), dict, rng, 1));
    }
    case 5: {
      PatternPtr child = Generate(spec, dict, rng, depth - 1);
      const std::vector<VarId>& vars = child->ScopeVars();
      std::vector<VarId> projection;
      for (VarId v : vars) {
        if (rng->NextBool(0.6)) projection.push_back(v);
      }
      return Pattern::Select(std::move(projection), child);
    }
    case 6:
      return Pattern::Minus(Generate(spec, dict, rng, depth - 1),
                            Generate(spec, dict, rng, depth - 1));
    case 7:
      return Pattern::Ns(Generate(spec, dict, rng, depth - 1));
    default:
      return RandomTriple(spec, dict, rng);
  }
}

}  // namespace

PatternPtr GenerateRandomPattern(const PatternGenSpec& spec,
                                 Dictionary* dict, Rng* rng) {
  return Generate(spec, dict, rng, spec.max_depth);
}

}  // namespace rdfql
