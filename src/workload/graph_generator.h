#ifndef RDFQL_WORKLOAD_GRAPH_GENERATOR_H_
#define RDFQL_WORKLOAD_GRAPH_GENERATOR_H_

#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "util/random.h"

namespace rdfql {

/// Parameters of the scalable synthetic "people and organizations" graph
/// modeled on the paper's running examples (founders/supporters,
/// professors/universities, emails, birthplaces). Predicates:
/// founder, supporter, stands_for, works_at, name, email, was_born_in.
struct SocialGraphSpec {
  int num_people = 100;
  int num_orgs = 10;
  int num_causes = 5;
  int num_countries = 8;
  /// Probability that a person has an email triple (the optional
  /// information that OPT / NS queries reach for).
  double email_probability = 0.5;
  double founder_probability = 0.05;
  double supporter_probability = 0.10;
  uint64_t seed = 42;
};

/// Generates the synthetic social graph; predicate and entity IRIs are
/// interned into `dict` with stable names (person_i, org_j, ...).
Graph GenerateSocialGraph(const SocialGraphSpec& spec, Dictionary* dict);

/// A uniform random graph over `pool_size` IRIs named <stem>_i.
Graph GenerateRandomGraph(int num_triples, int pool_size, Dictionary* dict,
                          Rng* rng, const std::string& stem = "node");

/// Random subgraph keeping each triple with probability `keep`; used to
/// build G1 ⊆ G2 pairs for the monotonicity experiments.
Graph RandomSubgraph(const Graph& graph, double keep, Rng* rng);

}  // namespace rdfql

#endif  // RDFQL_WORKLOAD_GRAPH_GENERATOR_H_
