#ifndef RDFQL_WORKLOAD_SCENARIOS_H_
#define RDFQL_WORKLOAD_SCENARIOS_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfql {

/// Canned data from the paper, used by the examples, the integration tests
/// and bench_examples:
///  - Figure 1: founders and supporters of The Pirate Bay.
///  - Figure 2: the G1 ⊆ G2 pair about professors and Juan's email
///    (Examples 3.1 / 3.3).
///  - Figure 3: professors, names, affiliations (Example 6.1).
namespace scenarios {

/// Figure 1.
Graph PirateBayGraph(Dictionary* dict);

/// Figure 2, left (G1) — without Juan's email.
Graph ChileGraphG1(Dictionary* dict);

/// Figure 2, right (G2 ⊇ G1) — with (Juan, email, juan@puc.cl).
Graph ChileGraphG2(Dictionary* dict);

/// Figure 3.
Graph ProfessorsGraph(Dictionary* dict);

/// Example 2.2: founders/supporters of organizations standing for
/// sharing_rights (a SELECT over AND/UNION).
std::string Example22Query();

/// Example 3.1: the weakly-monotone OPT pattern.
std::string Example31Query();

/// Example 3.3: the non-weakly-monotone AND/OPT pattern.
std::string Example33Query();

/// Theorem 3.5 witness (Appendix A): weakly monotone in SPARQL[AOF] but
/// not expressible as a well-designed pattern.
std::string Theorem35Witness();

/// Theorem 3.6 witness (Appendix B): weakly monotone in SPARQL[AUOF] but
/// not expressible as a union of well-designed patterns.
std::string Theorem36Witness();

/// Example 6.1: the CONSTRUCT query building affiliations and emails.
std::string Example61ConstructQuery();

}  // namespace scenarios
}  // namespace rdfql

#endif  // RDFQL_WORKLOAD_SCENARIOS_H_
