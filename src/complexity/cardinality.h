#ifndef RDFQL_COMPLEXITY_CARDINALITY_H_
#define RDFQL_COMPLEXITY_CARDINALITY_H_

#include <vector>

#include "complexity/cnf.h"

namespace rdfql {

/// Appends a sequential-counter encoding of "at most k of `lits` are true"
/// to `cnf` (Sinz 2005). Auxiliary variables are allocated from `cnf`.
void AddAtMostK(Cnf* cnf, const std::vector<Lit>& lits, int k);

/// "At least k of `lits` are true", encoded as at-most-(n-k) of the
/// negated literals. Used to build the ϕ_k formulas of Theorem 7.3
/// (MAX-ODD-SAT): ϕ_k = ϕ ∧ (≥ k variables true).
void AddAtLeastK(Cnf* cnf, const std::vector<Lit>& lits, int k);

/// The formula ϕ_k of the Theorem 7.3 proof: satisfiable iff some
/// assignment satisfies `phi` and sets at least `k` of its variables true.
Cnf PhiAtLeastK(const Cnf& phi, int k);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_CARDINALITY_H_
