#include "complexity/combiner.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace rdfql {

EvalInstance CombineDisjunction(const std::vector<EvalInstance>& instances,
                                Dictionary* dict) {
  RDFQL_CHECK(!instances.empty());

  EvalInstance out;

  // µ = µ1 ∪ ... ∪ µn (domains are disjoint by construction).
  Mapping mu;
  for (const EvalInstance& inst : instances) {
    RDFQL_CHECK(mu.CompatibleWith(inst.mapping));
    mu = mu.UnionWith(inst.mapping);
  }
  out.mapping = mu;

  // G = ∪Gi plus the marker triples (µ(?x), c_x, d_x).
  for (const EvalInstance& inst : instances) {
    out.graph = Graph::Union(out.graph, inst.graph);
  }
  std::map<VarId, std::pair<TermId, TermId>> markers;
  for (const auto& [x, value] : mu.bindings()) {
    TermId c = dict->FreshIri("c_" + dict->VarName(x));
    TermId d = dict->FreshIri("d_" + dict->VarName(x));
    markers[x] = {c, d};
    out.graph.Insert(value, c, d);
  }

  // Disjunct i: NS(Qi AND the markers of dom(µ) \ dom(µi)).
  std::vector<PatternPtr> disjuncts;
  for (const EvalInstance& inst : instances) {
    RDFQL_CHECK_MSG(inst.pattern->kind() == PatternKind::kNs,
                    "CombineDisjunction requires simple patterns");
    PatternPtr qi = inst.pattern->child();
    PatternPtr body = qi;
    for (const auto& [x, value] : mu.bindings()) {
      if (inst.mapping.Binds(x)) continue;
      const auto& [c, d] = markers[x];
      body = Pattern::And(
          body, Pattern::MakeTriple(Term::Var(x), Term::Iri(c),
                                    Term::Iri(d)));
    }
    disjuncts.push_back(Pattern::Ns(body));
  }
  out.pattern = Pattern::UnionAll(disjuncts);
  return out;
}

}  // namespace rdfql
