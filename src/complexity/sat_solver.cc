#include "complexity/sat_solver.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace rdfql {
namespace {

enum class Value : uint8_t { kUnset, kTrue, kFalse };

struct Solver {
  const Cnf* cnf;
  std::vector<Value> values;  // 1-indexed

  bool LitSatisfied(Lit l) const {
    Value v = values[std::abs(l)];
    if (v == Value::kUnset) return false;
    return (v == Value::kTrue) == (l > 0);
  }
  bool LitFalsified(Lit l) const {
    Value v = values[std::abs(l)];
    if (v == Value::kUnset) return false;
    return (v == Value::kTrue) != (l > 0);
  }

  // Unit propagation over all clauses until fixpoint. Returns false on
  // conflict; appends assigned variables to `trail`.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::vector<Lit>& clause : cnf->clauses) {
        Lit unit = 0;
        int unassigned = 0;
        bool satisfied = false;
        for (Lit l : clause) {
          if (LitSatisfied(l)) {
            satisfied = true;
            break;
          }
          if (!LitFalsified(l)) {
            ++unassigned;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return false;  // conflict
        if (unassigned == 1) {
          values[std::abs(unit)] = unit > 0 ? Value::kTrue : Value::kFalse;
          trail->push_back(std::abs(unit));
          changed = true;
        }
      }
    }
    return true;
  }

  // Picks the unassigned variable occurring most often; 0 if none.
  int PickBranchVar() const {
    std::vector<int> score(values.size(), 0);
    for (const std::vector<Lit>& clause : cnf->clauses) {
      bool satisfied = false;
      for (Lit l : clause) {
        if (LitSatisfied(l)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Lit l : clause) {
        if (values[std::abs(l)] == Value::kUnset) ++score[std::abs(l)];
      }
    }
    int best = 0;
    for (size_t v = 1; v < values.size(); ++v) {
      if (values[v] == Value::kUnset && score[v] > (best ? score[best] : -1)) {
        best = static_cast<int>(v);
      }
    }
    if (best == 0) {
      // All clause variables assigned; pick any unset variable.
      for (size_t v = 1; v < values.size(); ++v) {
        if (values[v] == Value::kUnset) return static_cast<int>(v);
      }
    }
    return best;
  }

  bool Dpll() {
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      for (int v : trail) values[v] = Value::kUnset;
      return false;
    }
    int var = PickBranchVar();
    if (var == 0) return true;  // fully assigned, no conflict
    for (Value choice : {Value::kTrue, Value::kFalse}) {
      values[var] = choice;
      if (Dpll()) return true;
      values[var] = Value::kUnset;
    }
    for (int v : trail) values[v] = Value::kUnset;
    return false;
  }
};

}  // namespace

SatResult SolveSat(const Cnf& cnf) {
  for (const std::vector<Lit>& clause : cnf.clauses) {
    if (clause.empty()) return SatResult{false, {}};
  }
  Solver solver;
  solver.cnf = &cnf;
  solver.values.assign(cnf.num_vars + 1, Value::kUnset);
  SatResult result;
  result.satisfiable = solver.Dpll();
  if (result.satisfiable) {
    result.assignment.assign(cnf.num_vars + 1, false);
    for (int v = 1; v <= cnf.num_vars; ++v) {
      result.assignment[v] = solver.values[v] == Value::kTrue;
    }
    RDFQL_CHECK(cnf.IsSatisfiedBy(result.assignment));
  }
  return result;
}

SatResult BruteForceSat(const Cnf& cnf) {
  RDFQL_CHECK(cnf.num_vars <= 24);
  std::vector<bool> assignment(cnf.num_vars + 1, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << cnf.num_vars); ++mask) {
    for (int v = 1; v <= cnf.num_vars; ++v) {
      assignment[v] = (mask >> (v - 1)) & 1;
    }
    if (cnf.IsSatisfiedBy(assignment)) {
      return SatResult{true, assignment};
    }
  }
  return SatResult{false, {}};
}

}  // namespace rdfql
