#ifndef RDFQL_COMPLEXITY_SAT_SOLVER_H_
#define RDFQL_COMPLEXITY_SAT_SOLVER_H_

#include <optional>
#include <vector>

#include "complexity/cnf.h"

namespace rdfql {

/// Result of a satisfiability check: the assignment is 1-indexed and only
/// present when satisfiable.
struct SatResult {
  bool satisfiable = false;
  std::vector<bool> assignment;
};

/// DPLL with unit propagation and a most-occurrences branching heuristic —
/// the reference oracle behind the Section 7 reduction tests and
/// benchmarks. Complete (no decision limit); intended for the small-to-
/// medium instances the reductions produce.
SatResult SolveSat(const Cnf& cnf);

/// Exhaustive 2^n check, used to cross-validate SolveSat in tests.
/// Requires num_vars ≤ 24.
SatResult BruteForceSat(const Cnf& cnf);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_SAT_SOLVER_H_
