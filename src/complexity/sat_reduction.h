#ifndef RDFQL_COMPLEXITY_SAT_REDUCTION_H_
#define RDFQL_COMPLEXITY_SAT_REDUCTION_H_

#include <string>

#include "algebra/pattern.h"
#include "complexity/cnf.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"

namespace rdfql {

/// An evaluation-problem instance (G, P, µ): the question "µ ∈ ⟦P⟧G?"
/// (Section 7.2).
struct EvalInstance {
  Graph graph;
  PatternPtr pattern;
  Mapping mapping;
};

/// Decides the instance by full evaluation with the reference engine.
bool DecideByEvaluation(const EvalInstance& instance, EvalOptions options = {});

/// The SAT gadget behind Theorem 7.1 (our analogue of Lemma G.1, see
/// DESIGN.md §4.3): builds (Gϕ, Pϕ, µϕ) with Pϕ ∈ SPARQL[AUFS] such that
///     ⟦Pϕ⟧Gϕ = {µϕ}  if ϕ is satisfiable,
///     ⟦Pϕ⟧Gϕ = ∅     otherwise,
/// and dom(µϕ) = {?z_tag} (a single answer variable). Clause j becomes a
/// UNION over its literals of triple patterns (?X_i tv 1)/(?X_i tv 0)
/// joined by shared variables; a SELECT projects the choice variables
/// away. All IRIs and variables are namespaced by `tag` so instances can
/// be combined disjointly (Lemma G.2 / Lemma H.1).
EvalInstance SatToPattern(const Cnf& phi, Dictionary* dict,
                          const std::string& tag);

/// Theorem 7.1: the SAT-UNSAT → Eval(SP–SPARQL) reduction. The returned
/// instance has a simple pattern NS(Pϕ UNION (Pϕ AND Pψ)) over Gϕ ∪ Gψ and
/// satisfies:  µϕ ∈ ⟦P⟧G  ⇔  ϕ satisfiable and ψ unsatisfiable.
EvalInstance SatUnsatToSimplePattern(const Cnf& phi, const Cnf& psi,
                                     Dictionary* dict,
                                     const std::string& tag);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_SAT_REDUCTION_H_
