#ifndef RDFQL_COMPLEXITY_COLORING_H_
#define RDFQL_COMPLEXITY_COLORING_H_

#include <utility>
#include <vector>

#include "complexity/cnf.h"

namespace rdfql {

/// An undirected simple graph on vertices 0..n-1 (the input of
/// Exact-M_k-Colorability, Theorem 7.2).
struct SimpleGraph {
  int n = 0;
  std::vector<std::pair<int, int>> edges;
};

/// The standard propositional encoding of k-colorability: variables
/// x_{v,c} (vertex v has color c), one-color-per-vertex clauses, and
/// conflict clauses per edge. Satisfiable iff `graph` is k-colorable.
Cnf ColorabilityToCnf(const SimpleGraph& graph, int k);

/// Exact chromatic number via a satisfiability sweep (reference oracle for
/// the Theorem 7.2 reduction tests). Returns 0 for the empty graph.
int ChromaticNumber(const SimpleGraph& graph);

/// Erdős–Rényi G(n, p).
SimpleGraph RandomSimpleGraph(int n, double p, Rng* rng);

/// A complete graph K_n (chromatic number n, handy for exact tests).
SimpleGraph CompleteGraph(int n);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_COLORING_H_
