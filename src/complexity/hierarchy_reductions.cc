#include "complexity/hierarchy_reductions.h"

#include "complexity/cardinality.h"
#include "complexity/sat_solver.h"
#include "util/check.h"

namespace rdfql {

std::vector<int> MkSet(int k) {
  RDFQL_CHECK(k >= 1);
  std::vector<int> out;
  for (int m = 6 * k + 1; m <= 8 * k - 1; m += 2) out.push_back(m);
  RDFQL_CHECK(static_cast<int>(out.size()) == k);
  return out;
}

bool IsExactMkColorable(const SimpleGraph& graph, int k) {
  int chi = ChromaticNumber(graph);
  for (int m : MkSet(k)) {
    if (chi == m) return true;
  }
  return false;
}

EvalInstance ExactColorSetToUsp(const SimpleGraph& graph,
                                const std::vector<int>& colors,
                                Dictionary* dict) {
  std::vector<EvalInstance> pieces;
  int index = 0;
  for (int m : colors) {
    RDFQL_CHECK(m >= 2);
    // χ(H) = m  ⇔  (H m-colorable, H not (m-1)-colorable): a SAT-UNSAT
    // pair, hence one simple-pattern instance (Theorem 7.1).
    Cnf colorable_m = ColorabilityToCnf(graph, m);
    Cnf colorable_m1 = ColorabilityToCnf(graph, m - 1);
    pieces.push_back(SatUnsatToSimplePattern(
        colorable_m, colorable_m1, dict, "col" + std::to_string(index)));
    ++index;
  }
  return CombineDisjunction(pieces, dict);
}

EvalInstance ExactMkColorabilityToUsp(const SimpleGraph& graph, int k,
                                      Dictionary* dict) {
  return ExactColorSetToUsp(graph, MkSet(k), dict);
}

bool IsExactColorSetColorable(const SimpleGraph& graph,
                              const std::vector<int>& colors) {
  int chi = ChromaticNumber(graph);
  for (int m : colors) {
    if (chi == m) return true;
  }
  return false;
}

bool IsMaxOddSat(const Cnf& phi) {
  if (!SolveSat(phi).satisfiable) return false;
  int best = 0;
  for (int k = phi.num_vars; k >= 1; --k) {
    if (SolveSat(PhiAtLeastK(phi, k)).satisfiable) {
      best = k;
      break;
    }
  }
  return best % 2 == 1;
}

EvalInstance MaxOddSatToUsp(const Cnf& phi, Dictionary* dict) {
  // Pad to an even variable count with a variable forced to false (the
  // paper's ϕ ∧ ¬r), so the odd candidates k range over 1, 3, ..., m-1.
  Cnf padded = phi;
  if (padded.num_vars % 2 == 1) {
    int r = padded.NewVar();
    padded.AddClause({-r});
  }
  const int m = padded.num_vars;
  RDFQL_CHECK(m >= 2);

  std::vector<EvalInstance> pieces;
  for (int k = 1; k <= m - 1; k += 2) {
    // (ϕ_k satisfiable, ϕ_{k+1} unsatisfiable) ⇔ the maximum number of
    // true variables in a model of ϕ is exactly k (odd).
    Cnf phi_k = PhiAtLeastK(padded, k);
    Cnf phi_k1 = PhiAtLeastK(padded, k + 1);
    pieces.push_back(SatUnsatToSimplePattern(phi_k, phi_k1, dict,
                                             "odd" + std::to_string(k)));
  }
  return CombineDisjunction(pieces, dict);
}

}  // namespace rdfql
