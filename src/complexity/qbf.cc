#include "complexity/qbf.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace rdfql {
namespace {

bool Expand(const Qbf& qbf, size_t level, std::vector<bool>* assignment) {
  if (level == qbf.prefix.size()) {
    return qbf.matrix.IsSatisfiedBy(*assignment);
  }
  const auto& [quant, var] = qbf.prefix[level];
  if (quant == Qbf::Quant::kExists) {
    for (bool value : {false, true}) {
      (*assignment)[var] = value;
      if (Expand(qbf, level + 1, assignment)) return true;
    }
    return false;
  }
  for (bool value : {false, true}) {
    (*assignment)[var] = value;
    if (!Expand(qbf, level + 1, assignment)) return false;
  }
  return true;
}

}  // namespace

bool SolveQbf(const Qbf& qbf) {
  // Every matrix variable must be quantified.
  std::vector<bool> quantified(qbf.matrix.num_vars + 1, false);
  for (const auto& [quant, var] : qbf.prefix) {
    RDFQL_CHECK(var >= 1 && var <= qbf.matrix.num_vars);
    RDFQL_CHECK_MSG(!quantified[var], "variable quantified twice");
    quantified[var] = true;
  }
  for (const std::vector<Lit>& clause : qbf.matrix.clauses) {
    for (Lit l : clause) RDFQL_CHECK(quantified[std::abs(l)]);
  }
  std::vector<bool> assignment(qbf.matrix.num_vars + 1, false);
  return Expand(qbf, 0, &assignment);
}

Qbf RandomQbf(int num_vars, int num_clauses, int clause_width, Rng* rng,
              bool start_with_forall) {
  Qbf qbf;
  qbf.matrix = RandomCnf(num_vars, num_clauses, clause_width, rng);
  std::vector<int> order;
  for (int v = 1; v <= num_vars; ++v) order.push_back(v);
  rng->Shuffle(&order);
  for (int i = 0; i < num_vars; ++i) {
    bool forall = (i % 2 == 0) == start_with_forall;
    qbf.prefix.emplace_back(
        forall ? Qbf::Quant::kForall : Qbf::Quant::kExists, order[i]);
  }
  return qbf;
}

EvalInstance QbfToPattern(const Qbf& qbf, Dictionary* dict,
                          const std::string& tag) {
  RDFQL_CHECK_MSG(
      qbf.prefix.size() == static_cast<size_t>(qbf.matrix.num_vars),
      "QbfToPattern requires a closed formula");
  EvalInstance out;

  TermId zero = dict->InternIri("zero_" + tag);
  TermId one = dict->InternIri("one_" + tag);
  TermId val = dict->InternIri("val_" + tag);
  TermId res = dict->InternIri("res_" + tag);
  TermId ans = dict->InternIri("ans_" + tag);
  TermId yes = dict->InternIri("yes_" + tag);
  out.graph.Insert(zero, val, zero);
  out.graph.Insert(one, val, one);
  out.graph.Insert(yes, res, ans);

  std::vector<VarId> var_of(qbf.matrix.num_vars + 1, kInvalidVarId);
  for (int v = 1; v <= qbf.matrix.num_vars; ++v) {
    var_of[v] = dict->InternVar("Q" + std::to_string(v) + "_" + tag);
  }

  // All(V): the assignment pattern over a variable set; All(∅) is a ground
  // triple guaranteed to be in G (answer {µ∅}).
  auto all_pattern = [&](const std::vector<int>& vars) -> PatternPtr {
    if (vars.empty()) {
      return Pattern::MakeTriple(Term::Iri(zero), Term::Iri(val),
                                 Term::Iri(zero));
    }
    std::vector<PatternPtr> gadgets;
    for (int v : vars) {
      gadgets.push_back(Pattern::MakeTriple(
          Term::Var(var_of[v]), Term::Iri(val), Term::Var(var_of[v])));
    }
    return Pattern::AndAll(gadgets);
  };

  // The matrix: All(vars) FILTER R_ψ, with ψ encoded through the FILTER's
  // full propositional structure (v ⇝ ?Qv = one).
  std::vector<int> live;
  for (int v = 1; v <= qbf.matrix.num_vars; ++v) live.push_back(v);
  std::vector<BuiltinPtr> clause_conditions;
  for (const std::vector<Lit>& clause : qbf.matrix.clauses) {
    std::vector<BuiltinPtr> literals;
    for (Lit l : clause) {
      BuiltinPtr atom = Builtin::EqConst(var_of[std::abs(l)], one);
      literals.push_back(l > 0 ? atom : Builtin::Not(atom));
    }
    clause_conditions.push_back(Builtin::OrAll(literals));
  }
  PatternPtr p = Pattern::Filter(all_pattern(live),
                                 Builtin::AndAll(clause_conditions));

  // Eliminate the prefix inside-out. Invariant: ⟦p⟧G is exactly the set of
  // assignments over `live` under which the remaining formula is true.
  for (auto it = qbf.prefix.rbegin(); it != qbf.prefix.rend(); ++it) {
    const auto& [quant, v] = *it;
    std::vector<int> remaining;
    for (int u : live) {
      if (u != v) remaining.push_back(u);
    }
    std::vector<VarId> projection;
    for (int u : remaining) projection.push_back(var_of[u]);

    if (quant == Qbf::Quant::kExists) {
      p = Pattern::Select(projection, p);
    } else {
      // Assignments over `remaining` all of whose extensions satisfy p:
      // complement of the projection of the complement. MINUS between
      // equal-domain assignment sets is exact set complement.
      PatternPtr bad = Pattern::Minus(all_pattern(live), p);
      PatternPtr bad_proj = Pattern::Select(projection, bad);
      p = Pattern::Minus(all_pattern(remaining), bad_proj);
    }
    live.swap(remaining);
  }

  // Join with the answer triple so the queried mapping has a variable.
  VarId z = dict->InternVar("Z_" + tag);
  out.pattern = Pattern::And(
      Pattern::MakeTriple(Term::Var(z), Term::Iri(res), Term::Iri(ans)), p);
  out.mapping = Mapping::FromBindings({{z, yes}});
  return out;
}

}  // namespace rdfql
