#ifndef RDFQL_COMPLEXITY_HIERARCHY_REDUCTIONS_H_
#define RDFQL_COMPLEXITY_HIERARCHY_REDUCTIONS_H_

#include <vector>

#include "complexity/coloring.h"
#include "complexity/combiner.h"
#include "complexity/sat_reduction.h"

namespace rdfql {

/// The set M_k = {6k+1, 6k+3, ..., 8k-1} of Theorem 7.2 (k values, all
/// odd, each ≥ 7 for k ≥ 1).
std::vector<int> MkSet(int k);

/// Reference decider: does `graph` have chromatic number in M_k?
bool IsExactMkColorable(const SimpleGraph& graph, int k);

/// The generic form of the Theorem 7.2 reduction: builds an ns-pattern
/// with |colors| disjuncts (one SAT-UNSAT pair per m ∈ colors —
/// "m-colorable and not (m-1)-colorable") combined via Lemma H.1, such
/// that µ ∈ ⟦P⟧G iff χ(graph) ∈ colors. Every m must be ≥ 2.
EvalInstance ExactColorSetToUsp(const SimpleGraph& graph,
                                const std::vector<int>& colors,
                                Dictionary* dict);

/// Theorem 7.2 proper: Exact-M_k-Colorability → Eval(USP–SPARQL_k),
/// i.e. ExactColorSetToUsp with colors = M_k. Note that already for k = 1
/// the produced instance encodes 7-colorability, whose evaluation is
/// genuinely exponential — which is the point of the theorem; tests
/// exercise ExactColorSetToUsp on small color sets instead.
EvalInstance ExactMkColorabilityToUsp(const SimpleGraph& graph, int k,
                                      Dictionary* dict);

/// Reference decider matching ExactColorSetToUsp.
bool IsExactColorSetColorable(const SimpleGraph& graph,
                              const std::vector<int>& colors);

/// Reference decider for MAX-ODD-SAT (Theorem 7.3): does the satisfying
/// assignment of `phi` with the maximum number of true variables set an
/// odd number of them? (False when `phi` is unsatisfiable.)
bool IsMaxOddSat(const Cnf& phi);

/// Theorem 7.3: MAX-ODD-SAT → Eval(USP–SPARQL). Pads `phi` to an even
/// variable count, builds the cardinality formulas ϕ_k (ϕ ∧ ≥k true) and
/// one SAT-UNSAT pair (ϕ_k, ϕ_{k+1}) per odd k, and combines them with
/// Lemma H.1: µ ∈ ⟦P⟧G iff phi ∈ MAX-ODD-SAT.
EvalInstance MaxOddSatToUsp(const Cnf& phi, Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_HIERARCHY_REDUCTIONS_H_
