#ifndef RDFQL_COMPLEXITY_QBF_H_
#define RDFQL_COMPLEXITY_QBF_H_

#include <vector>

#include "complexity/cnf.h"
#include "complexity/sat_reduction.h"

namespace rdfql {

/// A quantified boolean formula in prenex CNF:
/// Q1 v1 Q2 v2 ... Qn vn . matrix. Every variable of the matrix must be
/// quantified exactly once.
struct Qbf {
  enum class Quant { kExists, kForall };

  std::vector<std::pair<Quant, int>> prefix;  // outermost first
  Cnf matrix;
};

/// Reference decider: recursive expansion with unit-style shortcuts —
/// exponential, for the small instances the tests and benches use.
bool SolveQbf(const Qbf& qbf);

/// Random prenex QBF with alternating quantifiers (∀∃∀... or ∃∀∃...).
Qbf RandomQbf(int num_vars, int num_clauses, int clause_width, Rng* rng,
              bool start_with_forall);

/// The PSPACE backdrop of Section 7: evaluation of full SPARQL (with OPT)
/// is PSPACE-complete [29/30]. This builds an evaluation-problem instance
/// from a QBF:
///     µ∅-style mapping µ, graph G, pattern P in SPARQL[AOFS] (MINUS and
///     SELECT over a FILTER-encoded matrix) with
///         µ ∈ ⟦P⟧G  ⇔  the QBF is true.
///
/// Construction (inside-out over the prefix): the matrix becomes
/// (AND of value gadgets (?vi val ?vi)) FILTER R_ψ whose answers are the
/// satisfying total assignments; ∃v projects v away with SELECT; ∀v is a
/// double complement  All(V∖{v}) MINUS (SELECT (V∖{v}) WHERE (All(V)
/// MINUS P))  — MINUS against equal-domain assignment sets is exact set
/// complement. After the whole prefix the answer set is {µ} or ∅.
EvalInstance QbfToPattern(const Qbf& qbf, Dictionary* dict,
                          const std::string& tag);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_QBF_H_
