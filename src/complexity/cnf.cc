#include "complexity/cnf.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace rdfql {

void Cnf::AddClause(std::vector<Lit> clause) {
  for (Lit l : clause) {
    RDFQL_CHECK(l != 0 && std::abs(l) <= num_vars);
  }
  clauses.push_back(std::move(clause));
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  RDFQL_CHECK(assignment.size() >= static_cast<size_t>(num_vars) + 1);
  for (const std::vector<Lit>& clause : clauses) {
    bool satisfied = false;
    for (Lit l : clause) {
      bool value = assignment[std::abs(l)];
      if ((l > 0) == value) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::string out = "p cnf " + std::to_string(num_vars) + " " +
                    std::to_string(clauses.size()) + "\n";
  for (const std::vector<Lit>& clause : clauses) {
    for (Lit l : clause) out += std::to_string(l) + " ";
    out += "0\n";
  }
  return out;
}

Cnf RandomCnf(int num_vars, int num_clauses, int k, Rng* rng) {
  RDFQL_CHECK(num_vars >= k && k >= 1);
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < k) {
      int v = static_cast<int>(rng->NextBelow(num_vars)) + 1;
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    std::vector<Lit> clause;
    for (int v : vars) clause.push_back(rng->NextBool() ? v : -v);
    cnf.AddClause(std::move(clause));
  }
  return cnf;
}

}  // namespace rdfql
