#ifndef RDFQL_COMPLEXITY_CNF_H_
#define RDFQL_COMPLEXITY_CNF_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace rdfql {

/// A propositional literal in DIMACS convention: +v is variable v, -v its
/// negation; variables are numbered from 1.
using Lit = int;

/// A propositional formula in conjunctive normal form. The substrate for
/// every reduction of Section 7 (SAT-UNSAT, Exact-M_k-Colorability via
/// coloring encodings, MAX-ODD-SAT via cardinality encodings).
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// Allocates a fresh variable and returns its index.
  int NewVar() { return ++num_vars; }

  /// Adds a clause; literals must reference variables ≤ num_vars.
  void AddClause(std::vector<Lit> clause);

  /// True if `assignment[v]` (1-indexed) satisfies every clause.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// DIMACS-ish rendering for debugging.
  std::string ToString() const;
};

/// Uniform random k-CNF with `num_vars` variables and `num_clauses`
/// clauses (distinct variables within a clause).
Cnf RandomCnf(int num_vars, int num_clauses, int k, Rng* rng);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_CNF_H_
