#ifndef RDFQL_COMPLEXITY_COMBINER_H_
#define RDFQL_COMPLEXITY_COMBINER_H_

#include <vector>

#include "complexity/sat_reduction.h"

namespace rdfql {

/// Lemma H.1: combines n evaluation instances (µi, Pi, Gi) with pairwise
/// disjoint variables and IRIs, where each Pi is a simple pattern NS(Qi),
/// into a single instance (µ, P, G) with P an ns-pattern of n disjuncts
/// such that
///     µ ∈ ⟦P⟧G  ⇔  µi ∈ ⟦Pi⟧Gi for some i.
///
/// Construction: µ = µ1 ∪ ... ∪ µn; G = ∪Gi plus one marker triple
/// (µ(?x), c_x, d_x) per ?x ∈ dom(µ) with fresh IRIs c_x, d_x; the i-th
/// disjunct is NS(Qi AND ⋀_{?x ∈ dom(µ)∖dom(µi)} (?x c_x d_x)).
EvalInstance CombineDisjunction(const std::vector<EvalInstance>& instances,
                                Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_COMPLEXITY_COMBINER_H_
