#include "complexity/sat_reduction.h"

#include <cstdlib>

#include "util/check.h"

namespace rdfql {

bool DecideByEvaluation(const EvalInstance& instance, EvalOptions options) {
  MappingSet result =
      EvalPattern(instance.graph, instance.pattern, options);
  return result.Contains(instance.mapping);
}

EvalInstance SatToPattern(const Cnf& phi, Dictionary* dict,
                          const std::string& tag) {
  EvalInstance out;

  TermId tv = dict->InternIri("tv_" + tag);
  TermId one = dict->InternIri("one_" + tag);
  TermId zero = dict->InternIri("zero_" + tag);
  TermId res = dict->InternIri("res_" + tag);
  TermId yes = dict->InternIri("yes_" + tag);
  TermId ans = dict->InternIri("ans_" + tag);

  out.graph.Insert(one, tv, one);
  out.graph.Insert(zero, tv, zero);
  out.graph.Insert(yes, res, ans);

  // One pattern variable per propositional variable; shared across clause
  // gadgets, so the join enforces a consistent assignment.
  std::vector<VarId> x(phi.num_vars + 1, kInvalidVarId);
  for (int v = 1; v <= phi.num_vars; ++v) {
    x[v] = dict->InternVar("X" + std::to_string(v) + "_" + tag);
  }

  // Clause gadget: UNION over the literals. The literal +v matches only
  // ?Xv -> one, the literal -v only ?Xv -> zero.
  std::vector<PatternPtr> clause_gadgets;
  for (const std::vector<Lit>& clause : phi.clauses) {
    std::vector<PatternPtr> choices;
    for (Lit l : clause) {
      VarId v = x[std::abs(l)];
      TermId value = l > 0 ? one : zero;
      choices.push_back(Pattern::MakeTriple(Term::Var(v), Term::Iri(tv),
                                            Term::Iri(value)));
    }
    if (choices.empty()) {
      // Empty clause: unsatisfiable — a triple pattern that never matches.
      choices.push_back(Pattern::MakeTriple(Term::Iri(one), Term::Iri(tv),
                                            Term::Iri(zero)));
    }
    clause_gadgets.push_back(Pattern::UnionAll(choices));
  }

  VarId z = dict->InternVar("Z_" + tag);
  PatternPtr answer = Pattern::MakeTriple(Term::Var(z), Term::Iri(res),
                                          Term::Iri(ans));
  PatternPtr body = answer;
  for (const PatternPtr& gadget : clause_gadgets) {
    body = Pattern::And(body, gadget);
  }
  out.pattern = Pattern::Select({z}, body);
  out.mapping = Mapping::FromBindings({{z, yes}});
  return out;
}

EvalInstance SatUnsatToSimplePattern(const Cnf& phi, const Cnf& psi,
                                     Dictionary* dict,
                                     const std::string& tag) {
  EvalInstance a = SatToPattern(phi, dict, tag + "_sat");
  EvalInstance b = SatToPattern(psi, dict, tag + "_unsat");

  EvalInstance out;
  out.graph = Graph::Union(a.graph, b.graph);
  out.pattern = Pattern::Ns(Pattern::Union(
      a.pattern, Pattern::And(a.pattern, b.pattern)));
  out.mapping = a.mapping;
  return out;
}

}  // namespace rdfql
