#include "complexity/cardinality.h"

#include "util/check.h"

namespace rdfql {

void AddAtMostK(Cnf* cnf, const std::vector<Lit>& lits, int k) {
  const int n = static_cast<int>(lits.size());
  RDFQL_CHECK(k >= 0);
  if (k >= n) return;  // vacuous
  if (k == 0) {
    for (Lit l : lits) cnf->AddClause({-l});
    return;
  }
  // Sequential counter: s[i][j] ⇔ "at least j of the first i+1 literals".
  // Allocate registers s[i][j] for i in [0, n-1), j in [0, k).
  std::vector<std::vector<int>> s(n - 1, std::vector<int>(k));
  for (auto& row : s) {
    for (int& v : row) v = cnf->NewVar();
  }
  // x1 -> s[0][0]
  cnf->AddClause({-lits[0], s[0][0]});
  // !s[0][j] for j >= 1
  for (int j = 1; j < k; ++j) cnf->AddClause({-s[0][j]});
  for (int i = 1; i < n - 1; ++i) {
    // xi -> s[i][0];  s[i-1][0] -> s[i][0]
    cnf->AddClause({-lits[i], s[i][0]});
    cnf->AddClause({-s[i - 1][0], s[i][0]});
    for (int j = 1; j < k; ++j) {
      // xi & s[i-1][j-1] -> s[i][j];  s[i-1][j] -> s[i][j]
      cnf->AddClause({-lits[i], -s[i - 1][j - 1], s[i][j]});
      cnf->AddClause({-s[i - 1][j], s[i][j]});
    }
    // xi & s[i-1][k-1] -> conflict
    cnf->AddClause({-lits[i], -s[i - 1][k - 1]});
  }
  // xn & s[n-2][k-1] -> conflict
  cnf->AddClause({-lits[n - 1], -s[n - 2][k - 1]});
}

void AddAtLeastK(Cnf* cnf, const std::vector<Lit>& lits, int k) {
  if (k <= 0) return;
  const int n = static_cast<int>(lits.size());
  if (k > n) {
    cnf->AddClause({});  // unsatisfiable — but empty clauses need a stand-in
    return;
  }
  if (k == 1) {
    cnf->AddClause(lits);
    return;
  }
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (Lit l : lits) negated.push_back(-l);
  AddAtMostK(cnf, negated, n - k);
}

Cnf PhiAtLeastK(const Cnf& phi, int k) {
  Cnf out = phi;
  std::vector<Lit> vars;
  for (int v = 1; v <= phi.num_vars; ++v) vars.push_back(v);
  AddAtLeastK(&out, vars, k);
  return out;
}

}  // namespace rdfql
