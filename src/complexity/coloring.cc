#include "complexity/coloring.h"

#include "complexity/sat_solver.h"
#include "util/check.h"

namespace rdfql {

Cnf ColorabilityToCnf(const SimpleGraph& graph, int k) {
  RDFQL_CHECK(k >= 1);
  Cnf cnf;
  // x_{v,c} = variable v * k + c + 1.
  cnf.num_vars = graph.n * k;
  auto var = [k](int v, int c) { return v * k + c + 1; };
  for (int v = 0; v < graph.n; ++v) {
    std::vector<Lit> some_color;
    for (int c = 0; c < k; ++c) some_color.push_back(var(v, c));
    cnf.AddClause(std::move(some_color));
  }
  for (const auto& [u, v] : graph.edges) {
    if (u == v) continue;
    for (int c = 0; c < k; ++c) {
      cnf.AddClause({-var(u, c), -var(v, c)});
    }
  }
  return cnf;
}

int ChromaticNumber(const SimpleGraph& graph) {
  if (graph.n == 0) return 0;
  for (int k = 1; k <= graph.n; ++k) {
    if (SolveSat(ColorabilityToCnf(graph, k)).satisfiable) return k;
  }
  RDFQL_CHECK_MSG(false, "n colors always suffice");
  return graph.n;
}

SimpleGraph RandomSimpleGraph(int n, double p, Rng* rng) {
  SimpleGraph g;
  g.n = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->NextBool(p)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

SimpleGraph CompleteGraph(int n) {
  SimpleGraph g;
  g.n = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  }
  return g;
}

}  // namespace rdfql
