#ifndef RDFQL_FO_FO_EVAL_H_
#define RDFQL_FO_FO_EVAL_H_

#include <unordered_map>

#include "fo/formula.h"
#include "fo/structure.h"

namespace rdfql {

/// A variable assignment into the structure's universe; values may be
/// kNElement (the interpretation of n).
using FoAssignment = std::unordered_map<VarId, TermId>;

/// Model checking: A ⊨ ϕ[assignment]. Quantifiers range over the whole
/// finite universe (Dom-relativization is explicit in the formulas built by
/// SparqlToFo). Every free variable of ϕ must be assigned.
bool FoEval(const FoFormulaPtr& formula, const FoStructure& structure,
            const FoAssignment& assignment);

}  // namespace rdfql

#endif  // RDFQL_FO_FO_EVAL_H_
