#include "fo/fo_eval.h"

#include "util/check.h"

namespace rdfql {
namespace {

TermId Value(const FoTerm& t, const FoAssignment& assignment) {
  switch (t.kind) {
    case FoTerm::Kind::kConst:
      return t.constant;
    case FoTerm::Kind::kN:
      return kNElement;
    case FoTerm::Kind::kVar: {
      auto it = assignment.find(t.var);
      RDFQL_CHECK_MSG(it != assignment.end(), "unassigned FO variable");
      return it->second;
    }
  }
  return kNElement;
}

bool Eval(const FoFormula& f, const FoStructure& structure,
          FoAssignment* assignment) {
  switch (f.kind()) {
    case FoFormula::Kind::kTrue:
      return true;
    case FoFormula::Kind::kFalse:
      return false;
    case FoFormula::Kind::kT:
      return structure.HoldsT(Value(f.terms()[0], *assignment),
                              Value(f.terms()[1], *assignment),
                              Value(f.terms()[2], *assignment));
    case FoFormula::Kind::kDom:
      return structure.HoldsDom(Value(f.terms()[0], *assignment));
    case FoFormula::Kind::kEq:
      return Value(f.terms()[0], *assignment) ==
             Value(f.terms()[1], *assignment);
    case FoFormula::Kind::kNot:
      return !Eval(*f.children()[0], structure, assignment);
    case FoFormula::Kind::kAnd:
      for (const FoFormulaPtr& c : f.children()) {
        if (!Eval(*c, structure, assignment)) return false;
      }
      return true;
    case FoFormula::Kind::kOr:
      for (const FoFormulaPtr& c : f.children()) {
        if (Eval(*c, structure, assignment)) return true;
      }
      return false;
    case FoFormula::Kind::kExists: {
      // Backtracking enumeration over the universe, with proper shadowing
      // of any outer binding of the quantified variables.
      const std::vector<VarId>& vars = f.quantified();
      std::vector<std::pair<bool, TermId>> saved;
      saved.reserve(vars.size());
      for (VarId v : vars) {
        auto it = assignment->find(v);
        saved.emplace_back(it != assignment->end(),
                           it != assignment->end() ? it->second : 0);
      }
      const std::vector<TermId>& universe = structure.Universe();
      std::vector<size_t> idx(vars.size(), 0);
      bool found = false;
      // Odometer over universe^|vars|.
      for (;;) {
        for (size_t i = 0; i < vars.size(); ++i) {
          (*assignment)[vars[i]] = universe[idx[i]];
        }
        if (Eval(*f.children()[0], structure, assignment)) {
          found = true;
          break;
        }
        size_t i = 0;
        while (i < idx.size()) {
          if (++idx[i] < universe.size()) break;
          idx[i] = 0;
          ++i;
        }
        if (i == idx.size()) break;
      }
      for (size_t i = 0; i < vars.size(); ++i) {
        if (saved[i].first) {
          (*assignment)[vars[i]] = saved[i].second;
        } else {
          assignment->erase(vars[i]);
        }
      }
      return found;
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return false;
}

}  // namespace

bool FoEval(const FoFormulaPtr& formula, const FoStructure& structure,
            const FoAssignment& assignment) {
  RDFQL_CHECK(formula != nullptr);
  FoAssignment mutable_assignment = assignment;
  return Eval(*formula, structure, &mutable_assignment);
}

}  // namespace rdfql
