#ifndef RDFQL_FO_SPARQL_TO_FO_H_
#define RDFQL_FO_SPARQL_TO_FO_H_

#include <vector>

#include "algebra/pattern.h"
#include "fo/fo_eval.h"
#include "fo/formula.h"
#include "util/status.h"

namespace rdfql {

/// Lemma C.1: the formula φ^P_X whose satisfying tuples are exactly the
/// answers of P binding precisely the variables X (free variables = X).
Result<FoFormulaPtr> BuildPhiX(const PatternPtr& pattern,
                               const std::vector<VarId>& x);

/// Lemma C.2: the formula ϕ_P with free variables var(P) such that for
/// every mapping µ, RDF graph G and structure A = G^P_FO:
///     µ ∈ ⟦P⟧G  ⇔  A ⊨ ϕ_P(t^P_µ),
/// where t^P_µ assigns µ's values and N to the unbound variables.
///
/// The construction is exponential in |var(P)| (the union over subsets in
/// Lemma C.2 plus the 3^|X| expansion of AND in Lemma C.1); patterns with
/// more than `max_vars` variables are rejected with ResourceExhausted.
Result<FoFormulaPtr> SparqlToFo(const PatternPtr& pattern,
                                size_t max_vars = 10);

/// t^P_µ as an FO assignment: µ's bindings over `vars`, N elsewhere.
FoAssignment TupleAssignment(const Mapping& mu,
                             const std::vector<VarId>& vars);

}  // namespace rdfql

#endif  // RDFQL_FO_SPARQL_TO_FO_H_
