#include "fo/ucq.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace rdfql {
namespace {

Status TooBig() {
  return Status::ResourceExhausted("UCQ normalization exceeded the limit");
}

// A disjunct under construction; Dom atoms are kept symbolic until the
// Adom expansion step.
struct Partial {
  std::vector<VarId> exist_vars;
  std::vector<UcqTripleAtom> triples;
  std::vector<UcqEquality> equalities;
  std::vector<FoTerm> doms;
};

FoTerm RenameTerm(const FoTerm& t, const std::map<VarId, VarId>& renaming) {
  if (!t.is_var()) return t;
  auto it = renaming.find(t.var);
  return it == renaming.end() ? t : FoTerm::Var(it->second);
}

void RenameInPlace(Partial* d, const std::map<VarId, VarId>& renaming) {
  for (VarId& v : d->exist_vars) {
    auto it = renaming.find(v);
    if (it != renaming.end()) v = it->second;
  }
  for (UcqTripleAtom& t : d->triples) {
    t.s = RenameTerm(t.s, renaming);
    t.p = RenameTerm(t.p, renaming);
    t.o = RenameTerm(t.o, renaming);
  }
  for (UcqEquality& e : d->equalities) {
    e.a = RenameTerm(e.a, renaming);
    e.b = RenameTerm(e.b, renaming);
  }
  for (FoTerm& t : d->doms) t = RenameTerm(t, renaming);
}

void Merge(Partial* dst, const Partial& src) {
  dst->exist_vars.insert(dst->exist_vars.end(), src.exist_vars.begin(),
                         src.exist_vars.end());
  dst->triples.insert(dst->triples.end(), src.triples.begin(),
                      src.triples.end());
  dst->equalities.insert(dst->equalities.end(), src.equalities.begin(),
                         src.equalities.end());
  dst->doms.insert(dst->doms.end(), src.doms.begin(), src.doms.end());
}

// NNF + DNF in one pass: `negated` tracks the polarity. Returns the list
// of disjuncts of the (possibly negated) formula.
Result<std::vector<Partial>> Normalize(const FoFormula& f, bool negated,
                                       Dictionary* dict,
                                       size_t max_disjuncts) {
  switch (f.kind()) {
    case FoFormula::Kind::kTrue:
    case FoFormula::Kind::kFalse: {
      bool truthy = (f.kind() == FoFormula::Kind::kTrue) != negated;
      std::vector<Partial> out;
      if (truthy) out.push_back(Partial{});
      return out;
    }
    case FoFormula::Kind::kEq: {
      Partial d;
      d.equalities.push_back(UcqEquality{f.terms()[0], f.terms()[1], negated});
      return std::vector<Partial>{std::move(d)};
    }
    case FoFormula::Kind::kT: {
      if (negated) {
        return Status::Unsupported(
            "negated T atom: formula is not positive-existential");
      }
      Partial d;
      d.triples.push_back(UcqTripleAtom{f.terms()[0], f.terms()[1],
                                        f.terms()[2]});
      return std::vector<Partial>{std::move(d)};
    }
    case FoFormula::Kind::kDom: {
      if (negated) {
        return Status::Unsupported(
            "negated Dom atom: formula is not positive-existential");
      }
      Partial d;
      d.doms.push_back(f.terms()[0]);
      return std::vector<Partial>{std::move(d)};
    }
    case FoFormula::Kind::kNot:
      return Normalize(*f.children()[0], !negated, dict, max_disjuncts);
    case FoFormula::Kind::kAnd:
    case FoFormula::Kind::kOr: {
      bool conjunctive = (f.kind() == FoFormula::Kind::kAnd) != negated;
      if (!conjunctive) {
        // Disjunction: concatenate the children's disjuncts.
        std::vector<Partial> out;
        for (const FoFormulaPtr& c : f.children()) {
          RDFQL_ASSIGN_OR_RETURN(
              std::vector<Partial> sub,
              Normalize(*c, negated, dict, max_disjuncts));
          if (out.size() + sub.size() > max_disjuncts) return TooBig();
          for (Partial& d : sub) out.push_back(std::move(d));
        }
        return out;
      }
      // Conjunction: cartesian product of the children's disjunct lists.
      std::vector<Partial> acc = {Partial{}};
      for (const FoFormulaPtr& c : f.children()) {
        RDFQL_ASSIGN_OR_RETURN(std::vector<Partial> sub,
                               Normalize(*c, negated, dict, max_disjuncts));
        if (acc.size() * sub.size() > max_disjuncts) return TooBig();
        std::vector<Partial> next;
        next.reserve(acc.size() * sub.size());
        for (const Partial& a : acc) {
          for (const Partial& b : sub) {
            Partial merged = a;
            Merge(&merged, b);
            next.push_back(std::move(merged));
          }
        }
        acc.swap(next);
      }
      return acc;
    }
    case FoFormula::Kind::kExists: {
      if (negated) {
        return Status::Unsupported(
            "negated quantifier: formula is not positive-existential");
      }
      RDFQL_ASSIGN_OR_RETURN(
          std::vector<Partial> sub,
          Normalize(*f.children()[0], false, dict, max_disjuncts));
      // Pull the existential out, renaming apart per disjunct so merging
      // disjuncts from sibling conjuncts cannot capture variables.
      for (Partial& d : sub) {
        std::map<VarId, VarId> renaming;
        for (VarId v : f.quantified()) {
          renaming[v] = dict->FreshVar("e" + dict->VarName(v));
        }
        RenameInPlace(&d, renaming);
        for (VarId v : f.quantified()) d.exist_vars.push_back(renaming[v]);
      }
      return sub;
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return Status::Internal("unreachable");
}

// Replaces Dom atoms by Adom (x occurs in some triple position), tripling
// the disjunct per Dom atom.
Result<std::vector<Partial>> ExpandDoms(std::vector<Partial> input,
                                        Dictionary* dict,
                                        size_t max_disjuncts) {
  std::vector<Partial> out;
  for (Partial& d : input) {
    std::vector<Partial> acc = {d};
    acc[0].doms.clear();
    for (const FoTerm& t : d.doms) {
      if (acc.size() * 3 > max_disjuncts) return TooBig();
      std::vector<Partial> next;
      for (const Partial& base : acc) {
        for (int position = 0; position < 3; ++position) {
          Partial expanded = base;
          VarId f1 = dict->FreshVar("ad");
          VarId f2 = dict->FreshVar("ad");
          expanded.exist_vars.push_back(f1);
          expanded.exist_vars.push_back(f2);
          FoTerm v1 = FoTerm::Var(f1);
          FoTerm v2 = FoTerm::Var(f2);
          if (position == 0) {
            expanded.triples.push_back(UcqTripleAtom{t, v1, v2});
          } else if (position == 1) {
            expanded.triples.push_back(UcqTripleAtom{v1, t, v2});
          } else {
            expanded.triples.push_back(UcqTripleAtom{v1, v2, t});
          }
          next.push_back(std::move(expanded));
        }
      }
      acc.swap(next);
    }
    if (out.size() + acc.size() > max_disjuncts) return TooBig();
    for (Partial& a : acc) out.push_back(std::move(a));
  }
  return out;
}

bool MentionsN(const UcqTripleAtom& t) {
  return t.s.is_n() || t.p.is_n() || t.o.is_n();
}

// Appendix C cleanup: drop disjuncts whose T atoms mention n or whose
// equalities are trivially contradictory; fold trivially true equalities.
void Cleanup(std::vector<Partial>* disjuncts) {
  std::vector<Partial> kept;
  for (Partial& d : *disjuncts) {
    bool dead = false;
    for (const UcqTripleAtom& t : d.triples) {
      if (MentionsN(t)) {
        dead = true;
        break;
      }
    }
    if (dead) continue;
    std::vector<UcqEquality> eqs;
    for (const UcqEquality& e : d.equalities) {
      if (!e.a.is_var() && !e.b.is_var()) {
        bool holds = (e.a == e.b) != e.negated;
        if (!holds) {
          dead = true;
          break;
        }
        continue;  // trivially true, drop
      }
      if (e.a == e.b) {
        // x = x / x ≠ x.
        if (e.negated) {
          dead = true;
          break;
        }
        continue;
      }
      eqs.push_back(e);
    }
    if (dead) continue;
    d.equalities = std::move(eqs);
    kept.push_back(std::move(d));
  }
  disjuncts->swap(kept);
}

void CollectMentionedVars(const Partial& d, std::vector<VarId>* out) {
  auto add = [out](const FoTerm& t) {
    if (t.is_var()) out->push_back(t.var);
  };
  for (const UcqTripleAtom& t : d.triples) {
    add(t.s);
    add(t.p);
    add(t.o);
  }
  for (const UcqEquality& e : d.equalities) {
    add(e.a);
    add(e.b);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// The γ_i padding of Lemma C.7: disjuncts that do not mention some free
// variable x get expanded over the choices {x = n} ∪ Adom(x).
Result<std::vector<Partial>> PadFreeVars(std::vector<Partial> input,
                                         const std::vector<VarId>& free_vars,
                                         Dictionary* dict,
                                         size_t max_disjuncts) {
  std::vector<Partial> out;
  for (Partial& d : input) {
    std::vector<VarId> mentioned;
    CollectMentionedVars(d, &mentioned);
    std::vector<VarId> missing;
    std::set_difference(free_vars.begin(), free_vars.end(),
                        mentioned.begin(), mentioned.end(),
                        std::back_inserter(missing));
    std::vector<Partial> acc = {std::move(d)};
    for (VarId x : missing) {
      if (acc.size() * 4 > max_disjuncts) return TooBig();
      std::vector<Partial> next;
      for (const Partial& base : acc) {
        // Choice 1: x = n.
        Partial with_n = base;
        with_n.equalities.push_back(
            UcqEquality{FoTerm::Var(x), FoTerm::N(), false});
        next.push_back(std::move(with_n));
        // Choices 2-4: Adom(x) in each position.
        for (int position = 0; position < 3; ++position) {
          Partial with_adom = base;
          VarId f1 = dict->FreshVar("ad");
          VarId f2 = dict->FreshVar("ad");
          with_adom.exist_vars.push_back(f1);
          with_adom.exist_vars.push_back(f2);
          FoTerm vx = FoTerm::Var(x);
          FoTerm v1 = FoTerm::Var(f1);
          FoTerm v2 = FoTerm::Var(f2);
          if (position == 0) {
            with_adom.triples.push_back(UcqTripleAtom{vx, v1, v2});
          } else if (position == 1) {
            with_adom.triples.push_back(UcqTripleAtom{v1, vx, v2});
          } else {
            with_adom.triples.push_back(UcqTripleAtom{v1, v2, vx});
          }
          next.push_back(std::move(with_adom));
        }
      }
      acc.swap(next);
    }
    if (out.size() + acc.size() > max_disjuncts) return TooBig();
    for (Partial& a : acc) out.push_back(std::move(a));
  }
  return out;
}

}  // namespace

size_t Ucq::TotalAtoms() const {
  size_t n = 0;
  for (const UcqDisjunct& d : disjuncts) {
    n += d.triples.size() + d.equalities.size();
  }
  return n;
}

FoFormulaPtr UcqToFormula(const Ucq& ucq) {
  std::vector<FoFormulaPtr> disjuncts;
  for (const UcqDisjunct& d : ucq.disjuncts) {
    std::vector<FoFormulaPtr> conj;
    for (const UcqTripleAtom& t : d.triples) {
      conj.push_back(FoFormula::T(t.s, t.p, t.o));
    }
    for (const UcqEquality& e : d.equalities) {
      FoFormulaPtr eq = FoFormula::Eq(e.a, e.b);
      conj.push_back(e.negated ? FoFormula::Not(eq) : eq);
    }
    disjuncts.push_back(
        FoFormula::Exists(d.exist_vars, FoFormula::And(std::move(conj))));
  }
  return FoFormula::Or(std::move(disjuncts));
}

Result<Ucq> PositiveExistentialToUcq(const FoFormulaPtr& formula,
                                     std::vector<VarId> free_vars,
                                     Dictionary* dict,
                                     size_t max_disjuncts) {
  RDFQL_CHECK(formula != nullptr);
  std::sort(free_vars.begin(), free_vars.end());
  RDFQL_ASSIGN_OR_RETURN(
      std::vector<Partial> disjuncts,
      Normalize(*formula, /*negated=*/false, dict, max_disjuncts));
  RDFQL_ASSIGN_OR_RETURN(
      disjuncts, ExpandDoms(std::move(disjuncts), dict, max_disjuncts));
  Cleanup(&disjuncts);
  RDFQL_ASSIGN_OR_RETURN(
      disjuncts,
      PadFreeVars(std::move(disjuncts), free_vars, dict, max_disjuncts));

  Ucq out;
  out.free_vars = std::move(free_vars);
  out.disjuncts.reserve(disjuncts.size());
  for (Partial& d : disjuncts) {
    RDFQL_CHECK(d.doms.empty());
    UcqDisjunct u;
    u.exist_vars = std::move(d.exist_vars);
    u.triples = std::move(d.triples);
    u.equalities = std::move(d.equalities);
    out.disjuncts.push_back(std::move(u));
  }
  return out;
}

}  // namespace rdfql
