#ifndef RDFQL_FO_UCQ_TO_SPARQL_H_
#define RDFQL_FO_UCQ_TO_SPARQL_H_

#include "algebra/pattern.h"
#include "fo/ucq.h"
#include "util/status.h"

namespace rdfql {

/// Theorem C.8: translates a UCQ with inequalities into a SPARQL[AUFS]
/// graph pattern P with ϕ ≡RDF P — for every RDF graph G and every mapping
/// µ, µ ∈ ⟦P⟧G iff G^P_FO ⊨ ϕ(t^P_µ).
///
/// Each disjunct becomes (AND of its T-atoms) FILTER (its equalities, with
/// x = n rendered as !bound(?x) and x ≠ n as bound(?x)), wrapped in a
/// SELECT onto the free variables. A disjunct without T-atoms (all free
/// variables equal to n) is rendered as SELECT {} over a universal triple
/// pattern; it coincides with the FO semantics on every non-empty graph
/// (on the empty graph the FO side can still make the all-n tuple true —
/// the weaker ≡RDF equivalence of Appendix C tolerates exactly this).
Result<PatternPtr> UcqToSparql(const Ucq& ucq, Dictionary* dict);

}  // namespace rdfql

#endif  // RDFQL_FO_UCQ_TO_SPARQL_H_
