#ifndef RDFQL_FO_STRUCTURE_H_
#define RDFQL_FO_STRUCTURE_H_

#include <unordered_set>
#include <vector>

#include "fo/formula.h"
#include "rdf/graph.h"

namespace rdfql {

/// The first-order structure G^P_FO that represents an RDF graph
/// (Definition C.5): domain I(G) ∪ {N}, T interpreted as the triples of G,
/// Dom as I(G), every IRI constant as itself, and n as N.
class FoStructure {
 public:
  explicit FoStructure(const Graph* graph);

  /// The universe, as TermIds plus the sentinel kNElement.
  const std::vector<TermId>& Universe() const { return universe_; }

  bool HoldsT(TermId a, TermId b, TermId c) const {
    if (a == kNElement || b == kNElement || c == kNElement) return false;
    return graph_->Contains(Triple(a, b, c));
  }

  bool HoldsDom(TermId a) const {
    return a != kNElement && iris_.count(a) > 0;
  }

 private:
  const Graph* graph_;
  std::vector<TermId> universe_;
  std::unordered_set<TermId> iris_;
};

}  // namespace rdfql

#endif  // RDFQL_FO_STRUCTURE_H_
