#include "fo/formula.h"

#include <algorithm>

#include "util/check.h"

namespace rdfql {
namespace {

std::string TermString(const FoTerm& t, const Dictionary& dict) {
  switch (t.kind) {
    case FoTerm::Kind::kVar:
      return "?" + dict.VarName(t.var);
    case FoTerm::Kind::kConst:
      return dict.IriName(t.constant);
    case FoTerm::Kind::kN:
      return "n";
  }
  return "?";
}

}  // namespace

FoFormulaPtr FoFormula::True() {
  static const FoFormulaPtr& instance =
      *new FoFormulaPtr(new FoFormula(Kind::kTrue));
  return instance;
}

FoFormulaPtr FoFormula::False() {
  static const FoFormulaPtr& instance =
      *new FoFormulaPtr(new FoFormula(Kind::kFalse));
  return instance;
}

FoFormulaPtr FoFormula::T(FoTerm s, FoTerm p, FoTerm o) {
  auto* f = new FoFormula(Kind::kT);
  f->terms_ = {s, p, o};
  return FoFormulaPtr(f);
}

FoFormulaPtr FoFormula::Dom(FoTerm x) {
  auto* f = new FoFormula(Kind::kDom);
  f->terms_ = {x};
  return FoFormulaPtr(f);
}

FoFormulaPtr FoFormula::Eq(FoTerm a, FoTerm b) {
  if (a == b) return True();
  // Distinct constants (and constant-vs-n) can never be equal in a
  // structure corresponding to an RDF graph (ΦRDF, Appendix C).
  if (!a.is_var() && !b.is_var()) return False();
  auto* f = new FoFormula(Kind::kEq);
  f->terms_ = {a, b};
  return FoFormulaPtr(f);
}

FoFormulaPtr FoFormula::Not(FoFormulaPtr f) {
  RDFQL_CHECK(f != nullptr);
  if (f->kind_ == Kind::kTrue) return False();
  if (f->kind_ == Kind::kFalse) return True();
  auto* out = new FoFormula(Kind::kNot);
  out->children_ = {std::move(f)};
  return FoFormulaPtr(out);
}

FoFormulaPtr FoFormula::And(std::vector<FoFormulaPtr> children) {
  std::vector<FoFormulaPtr> kept;
  for (FoFormulaPtr& c : children) {
    RDFQL_CHECK(c != nullptr);
    if (c->kind_ == Kind::kFalse) return False();
    if (c->kind_ == Kind::kTrue) continue;
    if (c->kind_ == Kind::kAnd) {
      kept.insert(kept.end(), c->children_.begin(), c->children_.end());
    } else {
      kept.push_back(std::move(c));
    }
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept[0];
  auto* f = new FoFormula(Kind::kAnd);
  f->children_ = std::move(kept);
  return FoFormulaPtr(f);
}

FoFormulaPtr FoFormula::Or(std::vector<FoFormulaPtr> children) {
  std::vector<FoFormulaPtr> kept;
  for (FoFormulaPtr& c : children) {
    RDFQL_CHECK(c != nullptr);
    if (c->kind_ == Kind::kTrue) return True();
    if (c->kind_ == Kind::kFalse) continue;
    if (c->kind_ == Kind::kOr) {
      kept.insert(kept.end(), c->children_.begin(), c->children_.end());
    } else {
      kept.push_back(std::move(c));
    }
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept[0];
  auto* f = new FoFormula(Kind::kOr);
  f->children_ = std::move(kept);
  return FoFormulaPtr(f);
}

FoFormulaPtr FoFormula::Exists(std::vector<VarId> vars, FoFormulaPtr body) {
  RDFQL_CHECK(body != nullptr);
  if (vars.empty()) return body;
  if (body->kind_ == Kind::kTrue || body->kind_ == Kind::kFalse) return body;
  auto* f = new FoFormula(Kind::kExists);
  f->quantified_ = std::move(vars);
  f->children_ = {std::move(body)};
  return FoFormulaPtr(f);
}

void FoFormula::CollectFreeVars(std::set<VarId>* out) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kT:
    case Kind::kDom:
    case Kind::kEq:
      for (const FoTerm& t : terms_) {
        if (t.is_var()) out->insert(t.var);
      }
      return;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
      for (const FoFormulaPtr& c : children_) c->CollectFreeVars(out);
      return;
    case Kind::kExists: {
      std::set<VarId> inner;
      children_[0]->CollectFreeVars(&inner);
      for (VarId v : quantified_) inner.erase(v);
      out->insert(inner.begin(), inner.end());
      return;
    }
  }
}

std::set<VarId> FoFormula::FreeVars() const {
  std::set<VarId> out;
  CollectFreeVars(&out);
  return out;
}

size_t FoFormula::SizeInNodes() const {
  size_t n = 1;
  for (const FoFormulaPtr& c : children_) n += c->SizeInNodes();
  return n;
}

std::string FoFormula::ToString(const Dictionary& dict) const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kT:
      return "T(" + TermString(terms_[0], dict) + "," +
             TermString(terms_[1], dict) + "," + TermString(terms_[2], dict) +
             ")";
    case Kind::kDom:
      return "Dom(" + TermString(terms_[0], dict) + ")";
    case Kind::kEq:
      return TermString(terms_[0], dict) + " = " + TermString(terms_[1], dict);
    case Kind::kNot:
      return "~(" + children_[0]->ToString(dict) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString(dict);
      }
      return out + ")";
    }
    case Kind::kExists: {
      std::string out = "exists";
      for (VarId v : quantified_) out += " ?" + dict.VarName(v);
      return out + " . (" + children_[0]->ToString(dict) + ")";
    }
  }
  return "?";
}

}  // namespace rdfql
