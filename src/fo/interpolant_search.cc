#include "fo/interpolant_search.h"

#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "eval/evaluator.h"
#include "transform/opt_rewriter.h"
#include "transform/wd_to_simple.h"
#include "util/random.h"

namespace rdfql {
namespace {

void CollectShapes(const Pattern& p, std::vector<TriplePattern>* out) {
  switch (p.kind()) {
    case PatternKind::kTriple:
      out->push_back(p.triple());
      return;
    case PatternKind::kFilter:
    case PatternKind::kSelect:
    case PatternKind::kNs:
      CollectShapes(*p.child(), out);
      return;
    default:
      CollectShapes(*p.left(), out);
      CollectShapes(*p.right(), out);
      return;
  }
}

// Random graphs biased towards instantiations of the patterns' own triple
// shapes (see analysis/monotonicity.cc for the rationale).
Graph RandomGraphFromPool(const std::vector<TermId>& pool,
                          const std::vector<TriplePattern>& shapes,
                          int max_triples, Rng* rng) {
  Graph g;
  int n = static_cast<int>(rng->NextBelow(max_triples + 1));
  for (int i = 0; i < n; ++i) {
    if (!shapes.empty() && rng->NextBool(0.7)) {
      const TriplePattern& t = shapes[rng->NextBelow(shapes.size())];
      auto instantiate = [&pool, rng](Term term) {
        return term.is_iri() ? term.iri() : rng->Pick(pool);
      };
      g.Insert(instantiate(t.s), instantiate(t.p), instantiate(t.o));
    } else {
      g.Insert(rng->Pick(pool), rng->Pick(pool), rng->Pick(pool));
    }
  }
  return g;
}

}  // namespace

std::optional<PropertyCounterexample> FindSubsumptionEquivalenceGap(
    const PatternPtr& p, const PatternPtr& q, Dictionary* dict,
    const MonotonicityOptions& options) {
  std::vector<TermId> pool = p->Iris();
  for (TermId iri : q->Iris()) pool.push_back(iri);
  for (int i = 0; i < options.fresh_iris; ++i) {
    pool.push_back(dict->InternIri("seq_pool_" + std::to_string(i)));
  }
  std::vector<TriplePattern> shapes;
  CollectShapes(*p, &shapes);
  CollectShapes(*q, &shapes);
  Rng rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Graph g = RandomGraphFromPool(
        pool, shapes, options.max_base_triples + options.max_extra_triples,
        &rng);
    MappingSet rp = EvalPattern(g, p);
    MappingSet rq = EvalPattern(g, q);
    for (const Mapping& m : rp) {
      bool covered = false;
      for (const Mapping& other : rq) {
        if (m.SubsumedBy(other)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return PropertyCounterexample{g, g, m,
                                      "⟦P⟧G not subsumed by ⟦Q⟧G"};
      }
    }
    for (const Mapping& m : rq) {
      bool covered = false;
      for (const Mapping& other : rp) {
        if (m.SubsumedBy(other)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return PropertyCounterexample{g, g, m,
                                      "⟦Q⟧G not subsumed by ⟦P⟧G"};
      }
    }
  }
  return std::nullopt;
}

Result<AufsTranslation> FindSimplePatternTranslation(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options) {
  AufsTranslation out;
  if (IsWellDesigned(pattern)) {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr inner,
                           WellDesignedToAufUnion(pattern));
    out.q = Pattern::Ns(inner);
    out.method = TranslationMethod::kWellDesignedTree;
  } else {
    out.q = Pattern::Ns(MonotoneEnvelope(pattern));
    out.method = TranslationMethod::kMonotoneEnvelope;
  }
  // Plain equivalence check (NS output is subsumption-free, so ≡ and ≡s
  // coincide exactly when P is subsumption-free too).
  std::vector<TermId> pool = pattern->Iris();
  for (int i = 0; i < options.fresh_iris; ++i) {
    pool.push_back(dict->InternIri("sp_pool_" + std::to_string(i)));
  }
  std::vector<TriplePattern> shapes;
  CollectShapes(*pattern, &shapes);
  Rng rng(options.seed);
  out.verified = true;
  for (int trial = 0; trial < options.trials; ++trial) {
    Graph g = RandomGraphFromPool(
        pool, shapes, options.max_base_triples + options.max_extra_triples,
        &rng);
    MappingSet rp = EvalPattern(g, pattern);
    MappingSet rq = EvalPattern(g, out.q);
    if (!(rp == rq)) {
      Mapping witness;
      for (const Mapping& m : rp) {
        if (!rq.Contains(m)) {
          witness = m;
          break;
        }
      }
      for (const Mapping& m : rq) {
        if (!rp.Contains(m)) {
          witness = m;
          break;
        }
      }
      out.counterexample = PropertyCounterexample{
          g, g, witness,
          "⟦P⟧G differs from ⟦NS(envelope)⟧G — P is not both "
          "subsumption-free and weakly monotone"};
      out.verified = false;
      break;
    }
  }
  return out;
}

Result<AufsTranslation> FindAufsTranslation(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options) {
  AufsTranslation out;

  if (IsWellDesigned(pattern)) {
    RDFQL_ASSIGN_OR_RETURN(out.q, WellDesignedToAufUnion(pattern));
    out.method = TranslationMethod::kWellDesignedTree;
  } else if (IsNsPattern(pattern)) {
    std::vector<PatternPtr> inner;
    for (const PatternPtr& d : TopLevelDisjuncts(pattern)) {
      inner.push_back(d->child());  // each d is NS(Q) with Q ∈ AUFS
    }
    out.q = Pattern::UnionAll(inner);
    out.method = TranslationMethod::kNsPatternUnion;
  } else {
    out.q = MonotoneEnvelope(pattern);
    out.method = TranslationMethod::kMonotoneEnvelope;
  }

  out.counterexample =
      FindSubsumptionEquivalenceGap(pattern, out.q, dict, options);
  out.verified = !out.counterexample.has_value();
  return out;
}

}  // namespace rdfql
