#include "fo/ucq_to_sparql.h"

#include "util/check.h"

namespace rdfql {
namespace {

Result<Term> ToSparqlTerm(const FoTerm& t) {
  if (t.is_var()) return Term::Var(t.var);
  if (t.is_const()) return Term::Iri(t.constant);
  return Status::InvalidArgument("n cannot occur in a T atom");
}

// Renders one (in)equality as a built-in condition. Equalities with n
// become (un)boundedness tests on the variable side.
Result<BuiltinPtr> ToCondition(const UcqEquality& e) {
  const FoTerm& a = e.a;
  const FoTerm& b = e.b;
  BuiltinPtr base;
  if (a.is_var() && b.is_var()) {
    base = Builtin::EqVars(a.var, b.var);
  } else if (a.is_var() && b.is_const()) {
    base = Builtin::EqConst(a.var, b.constant);
  } else if (a.is_const() && b.is_var()) {
    base = Builtin::EqConst(b.var, a.constant);
  } else if (a.is_var() && b.is_n()) {
    base = Builtin::Not(Builtin::Bound(a.var));
  } else if (a.is_n() && b.is_var()) {
    base = Builtin::Not(Builtin::Bound(b.var));
  } else {
    return Status::InvalidArgument(
        "constant-only equality should have been folded");
  }
  return e.negated ? Builtin::Not(base) : base;
}

}  // namespace

Result<PatternPtr> UcqToSparql(const Ucq& ucq, Dictionary* dict) {
  if (ucq.disjuncts.empty()) {
    // The empty UCQ is unsatisfiable: encode as a triple filtered by false.
    VarId v1 = dict->FreshVar("u");
    VarId v2 = dict->FreshVar("u");
    VarId v3 = dict->FreshVar("u");
    return Pattern::Filter(
        Pattern::MakeTriple(Term::Var(v1), Term::Var(v2), Term::Var(v3)),
        Builtin::False());
  }

  std::vector<PatternPtr> disjunct_patterns;
  for (const UcqDisjunct& d : ucq.disjuncts) {
    std::vector<PatternPtr> triples;
    for (const UcqTripleAtom& atom : d.triples) {
      RDFQL_ASSIGN_OR_RETURN(Term s, ToSparqlTerm(atom.s));
      RDFQL_ASSIGN_OR_RETURN(Term p, ToSparqlTerm(atom.p));
      RDFQL_ASSIGN_OR_RETURN(Term o, ToSparqlTerm(atom.o));
      triples.push_back(Pattern::MakeTriple(s, p, o));
    }
    if (triples.empty()) {
      // All-n disjunct: yields the empty mapping on non-empty graphs.
      VarId v1 = dict->FreshVar("u");
      VarId v2 = dict->FreshVar("u");
      VarId v3 = dict->FreshVar("u");
      triples.push_back(
          Pattern::MakeTriple(Term::Var(v1), Term::Var(v2), Term::Var(v3)));
    }
    PatternPtr body = Pattern::AndAll(triples);

    std::vector<BuiltinPtr> conditions;
    for (const UcqEquality& e : d.equalities) {
      RDFQL_ASSIGN_OR_RETURN(BuiltinPtr cond, ToCondition(e));
      conditions.push_back(cond);
    }
    if (!conditions.empty()) {
      body = Pattern::Filter(body, Builtin::AndAll(conditions));
    }
    // Project onto the free variables (drops the existential variables).
    disjunct_patterns.push_back(Pattern::Select(ucq.free_vars, body));
  }
  return Pattern::UnionAll(disjunct_patterns);
}

}  // namespace rdfql
