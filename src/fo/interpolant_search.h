#ifndef RDFQL_FO_INTERPOLANT_SEARCH_H_
#define RDFQL_FO_INTERPOLANT_SEARCH_H_

#include <optional>
#include <string>

#include "algebra/pattern.h"
#include "analysis/monotonicity.h"
#include "util/status.h"

namespace rdfql {

/// How an AUFS translation (the Q of Theorem 4.1) was obtained.
enum class TranslationMethod {
  kWellDesignedTree,   // pattern-tree construction (exact, Prop 5.6)
  kNsPatternUnion,     // union of the NS children (exact, ns-patterns)
  kMonotoneEnvelope,   // general candidate, verified empirically
};

/// Result of searching for Q ∈ SPARQL[AUFS] with P ≡s Q (Theorem 4.1).
struct AufsTranslation {
  PatternPtr q;
  TranslationMethod method;
  /// True when the subsumption-equivalence was either guaranteed by
  /// construction or survived the randomized verification.
  bool verified = false;
  /// A counterexample graph, when verification failed.
  std::optional<PropertyCounterexample> counterexample;
};

/// Randomized check of P ≡s Q — for sampled graphs G, ⟦P⟧G ⊑ ⟦Q⟧G and
/// ⟦Q⟧G ⊑ ⟦P⟧G. Returns the first counterexample found, if any.
std::optional<PropertyCounterexample> FindSubsumptionEquivalenceGap(
    const PatternPtr& p, const PatternPtr& q, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Theorem 4.1, made effective on the decidable classes: produces a
/// SPARQL[AUFS] pattern Q with P ≡s Q.
///
/// Lyndon/Otto interpolation (the paper's proof device) is
/// non-constructive, so this routine substitutes, in order:
///   1. well-designed patterns → the pattern-tree union (Prop 5.6);
///   2. ns-patterns → the union of the NS children;
///   3. anything else → the monotone envelope (OPT stripped to
///      (AND) UNION left), verified by randomized ≡s testing.
/// For genuinely weakly-monotone inputs the envelope is the interpolant
/// the theorem promises; for non-weakly-monotone inputs verification fails
/// and the returned translation carries the counterexample.
Result<AufsTranslation> FindAufsTranslation(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options = {});

/// Corollary 5.2, made effective: for a subsumption-free unrestricted
/// weakly-monotone pattern P there is Q ∈ SPARQL[AUFS] with P ≡ NS(Q).
/// This builds the candidate NS(monotone envelope of P) — when P is
/// subsumption-free and ≡s to its envelope (the weak-monotonicity case),
/// ⟦P⟧ = ⟦P⟧max = ⟦envelope⟧max = ⟦NS(envelope)⟧ exactly — and verifies
/// plain equivalence on randomized graphs. `verified == false` means P
/// was refuted as subsumption-free or weakly monotone.
Result<AufsTranslation> FindSimplePatternTranslation(
    const PatternPtr& pattern, Dictionary* dict,
    const MonotonicityOptions& options = {});

}  // namespace rdfql

#endif  // RDFQL_FO_INTERPOLANT_SEARCH_H_
