#ifndef RDFQL_FO_FORMULA_H_
#define RDFQL_FO_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfql {

/// The distinguished element N interpreted by the constant n (Appendix C).
/// It stands for "unbound" and never occurs in Dom or T of a structure that
/// corresponds to an RDF graph.
constexpr TermId kNElement = 0xfffffffeu;

/// A first-order term of the vocabulary L^P_RDF: a variable, a constant
/// c_i (an IRI), or the constant n.
struct FoTerm {
  enum class Kind { kVar, kConst, kN };

  static FoTerm Var(VarId v) { return FoTerm{Kind::kVar, v, kInvalidTermId}; }
  static FoTerm Const(TermId c) {
    return FoTerm{Kind::kConst, kInvalidVarId, c};
  }
  static FoTerm N() { return FoTerm{Kind::kN, kInvalidVarId, kInvalidTermId}; }

  bool is_var() const { return kind == Kind::kVar; }
  bool is_const() const { return kind == Kind::kConst; }
  bool is_n() const { return kind == Kind::kN; }

  friend bool operator==(const FoTerm& a, const FoTerm& b) {
    return a.kind == b.kind && a.var == b.var && a.constant == b.constant;
  }
  friend bool operator<(const FoTerm& a, const FoTerm& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.var != b.var) return a.var < b.var;
    return a.constant < b.constant;
  }

  Kind kind;
  VarId var;
  TermId constant;
};

class FoFormula;
using FoFormulaPtr = std::shared_ptr<const FoFormula>;

/// First-order formulas over L^P_RDF = { T/3, Dom/1, constants, n } with
/// equality. Quantification is plain ∃ — the Dom-relativization of
/// Appendix C is expressed by explicit Dom(x) conjuncts, which keeps the
/// AST small and the evaluator simple. ∀ is not needed (the library only
/// builds positive-existential formulas and negations thereof).
class FoFormula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kT,       // T(s, p, o)
    kDom,     // Dom(x)
    kEq,      // a = b
    kNot,
    kAnd,     // n-ary
    kOr,      // n-ary
    kExists,  // ∃ vars . body
  };

  static FoFormulaPtr True();
  static FoFormulaPtr False();
  static FoFormulaPtr T(FoTerm s, FoTerm p, FoTerm o);
  static FoFormulaPtr Dom(FoTerm x);
  static FoFormulaPtr Eq(FoTerm a, FoTerm b);
  static FoFormulaPtr Not(FoFormulaPtr f);
  static FoFormulaPtr And(std::vector<FoFormulaPtr> children);
  static FoFormulaPtr Or(std::vector<FoFormulaPtr> children);
  static FoFormulaPtr Exists(std::vector<VarId> vars, FoFormulaPtr body);

  Kind kind() const { return kind_; }
  const std::vector<FoTerm>& terms() const { return terms_; }
  const std::vector<FoFormulaPtr>& children() const { return children_; }
  const std::vector<VarId>& quantified() const { return quantified_; }

  /// Free variables of the formula.
  std::set<VarId> FreeVars() const;

  /// Syntax-tree size (for the blow-up measurements).
  size_t SizeInNodes() const;

  /// Renders with the usual logical notation.
  std::string ToString(const Dictionary& dict) const;

 private:
  explicit FoFormula(Kind kind) : kind_(kind) {}

  void CollectFreeVars(std::set<VarId>* out) const;

  Kind kind_;
  std::vector<FoTerm> terms_;
  std::vector<FoFormulaPtr> children_;
  std::vector<VarId> quantified_;
};

}  // namespace rdfql

#endif  // RDFQL_FO_FORMULA_H_
