#ifndef RDFQL_FO_UCQ_H_
#define RDFQL_FO_UCQ_H_

#include <vector>

#include "fo/formula.h"
#include "util/status.h"

namespace rdfql {

/// A relational atom T(s, p, o) of a conjunctive query.
struct UcqTripleAtom {
  FoTerm s;
  FoTerm p;
  FoTerm o;
};

/// An (in)equality atom a = b / a ≠ b.
struct UcqEquality {
  FoTerm a;
  FoTerm b;
  bool negated = false;
};

/// One disjunct of a UCQ with inequalities: ∃ exist_vars . (⋀ triples ∧
/// ⋀ equalities). Free variables are those of the enclosing Ucq.
struct UcqDisjunct {
  std::vector<VarId> exist_vars;
  std::vector<UcqTripleAtom> triples;
  std::vector<UcqEquality> equalities;
};

/// A union of conjunctive queries with inequalities over L^P_RDF without
/// Dom (Lemma C.7's target class): every disjunct has the same free
/// variables.
struct Ucq {
  std::vector<VarId> free_vars;  // sorted
  std::vector<UcqDisjunct> disjuncts;

  size_t TotalAtoms() const;
};

/// Renders the UCQ back as an FO formula (for round-trip testing against
/// FoEval).
FoFormulaPtr UcqToFormula(const Ucq& ucq);

/// Lemma C.7: normalizes a positive-existential formula (negation allowed
/// only over equality combinations, the shape produced by SparqlToFo on
/// SPARQL[AUFS] patterns) into an equivalent-over-RDF-structures UCQ with
/// inequalities in which Dom does not occur:
///   - NNF, with ¬(a=b) becoming inequalities,
///   - distribution to DNF with existential variables renamed apart,
///   - Dom(x) replaced by the active-domain shorthand Adom(x) (three
///     T-atom disjuncts),
///   - the Appendix-C cleanup (triples mentioning n dropped, trivial
///     equalities folded) and the free-variable padding of the γ_i
///     construction.
/// `max_disjuncts` bounds the (intentionally) exponential blow-up.
Result<Ucq> PositiveExistentialToUcq(const FoFormulaPtr& formula,
                                     std::vector<VarId> free_vars,
                                     Dictionary* dict,
                                     size_t max_disjuncts = 1u << 18);

}  // namespace rdfql

#endif  // RDFQL_FO_UCQ_H_
