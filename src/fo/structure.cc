#include "fo/structure.h"

namespace rdfql {

FoStructure::FoStructure(const Graph* graph) : graph_(graph) {
  std::vector<TermId> iris = graph->Iris();
  iris_.insert(iris.begin(), iris.end());
  universe_ = std::move(iris);
  universe_.push_back(kNElement);
}

}  // namespace rdfql
