#include "fo/sparql_to_fo.h"

#include <algorithm>

#include "util/check.h"

namespace rdfql {
namespace {

using VarSet = std::vector<VarId>;  // always sorted

bool Subset(const VarSet& a, const VarSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

VarSet SetUnion(const VarSet& a, const VarSet& b) {
  VarSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

VarSet SetDifference(const VarSet& a, const VarSet& b) {
  VarSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// All subsets of `base` (2^|base| of them, each sorted).
std::vector<VarSet> AllSubsets(const VarSet& base) {
  RDFQL_CHECK(base.size() < 24);
  std::vector<VarSet> out;
  out.reserve(size_t{1} << base.size());
  for (uint64_t mask = 0; mask < (uint64_t{1} << base.size()); ++mask) {
    VarSet s;
    for (size_t i = 0; i < base.size(); ++i) {
      if (mask & (uint64_t{1} << i)) s.push_back(base[i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

FoTerm ToFoTerm(Term t) {
  return t.is_var() ? FoTerm::Var(t.var()) : FoTerm::Const(t.iri());
}

// ⋀_{x ∈ vars} Dom(x).
FoFormulaPtr DomAll(const VarSet& vars) {
  std::vector<FoFormulaPtr> conj;
  for (VarId v : vars) conj.push_back(FoFormula::Dom(FoTerm::Var(v)));
  return FoFormula::And(std::move(conj));
}

Result<FoFormulaPtr> Phi(const PatternPtr& p, const VarSet& x);

// φ^{P1 AND P2}_X = ⋁_{X1 ∪ X2 = X, Xi ⊆ var(Pi)} φ^{P1}_{X1} ∧ φ^{P2}_{X2}.
Result<FoFormulaPtr> PhiAnd(const PatternPtr& p1, const PatternPtr& p2,
                            const VarSet& x) {
  std::vector<FoFormulaPtr> disjuncts;
  std::vector<VarSet> subsets = AllSubsets(x);
  for (const VarSet& x1 : subsets) {
    if (!Subset(x1, p1->Vars())) continue;
    for (const VarSet& x2 : subsets) {
      if (!Subset(x2, p2->Vars())) continue;
      if (SetUnion(x1, x2) != x) continue;
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr f1, Phi(p1, x1));
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr f2, Phi(p2, x2));
      disjuncts.push_back(FoFormula::And({f1, f2}));
    }
  }
  return FoFormula::Or(std::move(disjuncts));
}

// The negated "compatible-answer-of-P2 exists" part of the OPT/MINUS case:
// ¬ ⋁_{X' ⊆ var(P2)} ∃(X' \ X) (⋀_{x' ∈ X'} Dom(x') ∧ φ^{P2}_{X'}).
Result<FoFormulaPtr> NoCompatible(const PatternPtr& p2, const VarSet& x) {
  std::vector<FoFormulaPtr> disjuncts;
  for (const VarSet& xp : AllSubsets(p2->Vars())) {
    RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr body, Phi(p2, xp));
    FoFormulaPtr guarded = FoFormula::And({DomAll(xp), body});
    disjuncts.push_back(
        FoFormula::Exists(SetDifference(xp, x), std::move(guarded)));
  }
  return FoFormula::Not(FoFormula::Or(std::move(disjuncts)));
}

// φ_R of the FILTER case, relative to the bound-variable set X.
FoFormulaPtr PhiCondition(const Builtin& r, const VarSet& x) {
  auto in_x = [&x](VarId v) {
    return std::binary_search(x.begin(), x.end(), v);
  };
  switch (r.kind()) {
    case Builtin::Kind::kTrue:
      return FoFormula::True();
    case Builtin::Kind::kFalse:
      return FoFormula::False();
    case Builtin::Kind::kBound:
      return in_x(r.var()) ? FoFormula::True() : FoFormula::False();
    case Builtin::Kind::kEqConst:
      return in_x(r.var()) ? FoFormula::Eq(FoTerm::Var(r.var()),
                                           FoTerm::Const(r.constant()))
                           : FoFormula::False();
    case Builtin::Kind::kEqVars:
      return (in_x(r.var()) && in_x(r.var2()))
                 ? FoFormula::Eq(FoTerm::Var(r.var()), FoTerm::Var(r.var2()))
                 : FoFormula::False();
    case Builtin::Kind::kNot:
      return FoFormula::Not(PhiCondition(*r.left(), x));
    case Builtin::Kind::kAnd:
      return FoFormula::And(
          {PhiCondition(*r.left(), x), PhiCondition(*r.right(), x)});
    case Builtin::Kind::kOr:
      return FoFormula::Or(
          {PhiCondition(*r.left(), x), PhiCondition(*r.right(), x)});
  }
  return FoFormula::False();
}

Result<FoFormulaPtr> Phi(const PatternPtr& p, const VarSet& x) {
  switch (p->kind()) {
    case PatternKind::kTriple: {
      if (x != p->Vars()) return FoFormula::False();
      FoTerm s = ToFoTerm(p->triple().s);
      FoTerm pr = ToFoTerm(p->triple().p);
      FoTerm o = ToFoTerm(p->triple().o);
      return FoFormula::And({FoFormula::T(s, pr, o), FoFormula::Dom(s),
                             FoFormula::Dom(pr), FoFormula::Dom(o)});
    }
    case PatternKind::kUnion: {
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr l, Phi(p->left(), x));
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr r, Phi(p->right(), x));
      return FoFormula::Or({l, r});
    }
    case PatternKind::kAnd:
      return PhiAnd(p->left(), p->right(), x);
    case PatternKind::kOpt: {
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr both,
                             PhiAnd(p->left(), p->right(), x));
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr left_only, Phi(p->left(), x));
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr no_compat,
                             NoCompatible(p->right(), x));
      return FoFormula::Or(
          {both, FoFormula::And({left_only, no_compat})});
    }
    case PatternKind::kMinus: {
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr left_only, Phi(p->left(), x));
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr no_compat,
                             NoCompatible(p->right(), x));
      return FoFormula::And({left_only, no_compat});
    }
    case PatternKind::kFilter: {
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr inner, Phi(p->child(), x));
      return FoFormula::And({inner, PhiCondition(*p->condition(), x)});
    }
    case PatternKind::kSelect: {
      if (!Subset(x, p->projection()) || !Subset(x, p->child()->Vars())) {
        return FoFormula::False();
      }
      std::vector<FoFormulaPtr> disjuncts;
      for (const VarSet& y : AllSubsets(p->child()->Vars())) {
        // The projection of a domain-Y answer onto V has domain Y ∩ V, so
        // exactly the Y with Y ∩ V = X contribute to φ^P_X.
        VarSet y_in_v;
        std::set_intersection(y.begin(), y.end(), p->projection().begin(),
                              p->projection().end(),
                              std::back_inserter(y_in_v));
        if (y_in_v != x) continue;
        RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr body, Phi(p->child(), y));
        disjuncts.push_back(FoFormula::Exists(
            SetDifference(y, x), FoFormula::And({DomAll(y), body})));
      }
      return FoFormula::Or(std::move(disjuncts));
    }
    case PatternKind::kNs: {
      // φ^Q_X ∧ ¬(some answer of Q binds a strict superset of X and agrees
      // on X) — the natural extension of Lemma C.1 to the NS operator.
      RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr base, Phi(p->child(), x));
      std::vector<FoFormulaPtr> bigger;
      for (const VarSet& xp : AllSubsets(p->child()->Vars())) {
        if (xp.size() <= x.size() || !Subset(x, xp)) continue;
        RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr body, Phi(p->child(), xp));
        bigger.push_back(FoFormula::Exists(
            SetDifference(xp, x), FoFormula::And({DomAll(xp), body})));
      }
      return FoFormula::And(
          {base, FoFormula::Not(FoFormula::Or(std::move(bigger)))});
    }
  }
  RDFQL_CHECK_MSG(false, "unreachable");
  return Status::Internal("unreachable");
}

}  // namespace

Result<FoFormulaPtr> BuildPhiX(const PatternPtr& pattern,
                               const std::vector<VarId>& x) {
  RDFQL_CHECK(pattern != nullptr);
  return Phi(pattern, x);
}

Result<FoFormulaPtr> SparqlToFo(const PatternPtr& pattern, size_t max_vars) {
  RDFQL_CHECK(pattern != nullptr);
  const VarSet& all = pattern->Vars();
  if (all.size() > max_vars) {
    return Status::ResourceExhausted(
        "SparqlToFo: pattern has too many variables (" +
        std::to_string(all.size()) + " > " + std::to_string(max_vars) + ")");
  }
  std::vector<FoFormulaPtr> disjuncts;
  for (const VarSet& x : AllSubsets(all)) {
    RDFQL_ASSIGN_OR_RETURN(FoFormulaPtr phi_x, Phi(pattern, x));
    std::vector<FoFormulaPtr> conj = {phi_x};
    for (VarId z : SetDifference(all, x)) {
      conj.push_back(FoFormula::Eq(FoTerm::Var(z), FoTerm::N()));
    }
    disjuncts.push_back(FoFormula::And(std::move(conj)));
  }
  return FoFormula::Or(std::move(disjuncts));
}

FoAssignment TupleAssignment(const Mapping& mu,
                             const std::vector<VarId>& vars) {
  FoAssignment out;
  for (VarId v : vars) {
    std::optional<TermId> value = mu.Get(v);
    out[v] = value.has_value() ? *value : kNElement;
  }
  return out;
}

}  // namespace rdfql
