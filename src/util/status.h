#ifndef RDFQL_UTIL_STATUS_H_
#define RDFQL_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace rdfql {

/// Error categories used across the library. Mirrors the usual
/// database-library convention (RocksDB/Arrow-style status codes) so callers
/// can branch on the kind of failure without parsing messages.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kUnsupported,
  kResourceExhausted,
  kInternal,
  /// A query ran past its wall-clock budget (ResourceLimits::max_wall_ms or
  /// an explicit Deadline) and was cooperatively cancelled.
  kDeadlineExceeded,
  /// The caller cancelled the operation through a CancellationToken.
  kCancelled,
};

/// Lightweight status object: the library does not use exceptions (per the
/// style guide); every fallible public API returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Minimal `StatusOr`-style result type: either a value or a non-OK status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites readable (`return pattern;` / `return Status::ParseError(...)`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const { return std::get<Status>(data_); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace rdfql

/// Propagates a non-OK status from an expression that yields `Status`.
#define RDFQL_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::rdfql::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating errors, else binds the value.
#define RDFQL_ASSIGN_OR_RETURN(lhs, rexpr)     \
  RDFQL_ASSIGN_OR_RETURN_IMPL_(                \
      RDFQL_STATUS_CONCAT_(_res, __LINE__), lhs, rexpr)

#define RDFQL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define RDFQL_STATUS_CONCAT_INNER_(a, b) a##b
#define RDFQL_STATUS_CONCAT_(a, b) RDFQL_STATUS_CONCAT_INNER_(a, b)

#endif  // RDFQL_UTIL_STATUS_H_
