#include "util/string_util.h"

namespace rdfql {

std::vector<std::string> SplitNonEmpty(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace rdfql
