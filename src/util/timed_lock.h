#ifndef RDFQL_UTIL_TIMED_LOCK_H_
#define RDFQL_UTIL_TIMED_LOCK_H_

#include "util/profile_state.h"

namespace rdfql {

/// RAII mutex guards that attribute contention instead of hiding it. The
/// uncontended path is a bare try_lock — no clock read, no atomic bumps —
/// so wrapping a rarely contended mutex costs nothing measurable. On
/// contention the guard:
///
///   1. counts the acquisition in `stats` (lock.*_contended_total),
///   2. pushes `tag` onto the profiler tag stack and flips the thread to
///      `lock_wait` (both no-ops when profiling is off / tag is null),
///   3. blocks, then records the measured wait into the `stats` histogram
///      (lock.*_wait_ns).
///
/// `stats` may be null (pure profiling), `tag` may be null (pure metrics).
/// Works with std::mutex and the exclusive side of std::shared_mutex;
/// TimedSharedLock covers the shared side.
template <typename Mutex>
class TimedExclusiveLock {
 public:
  TimedExclusiveLock(Mutex& mu, WaitStats* stats, const char* tag) : mu_(mu) {
    if (mu_.try_lock()) return;  // spurious failure just takes the slow path
    uint64_t start = ProfileClockNs();
    {
      ProfileFrame frame(tag);
      ProfileStateScope state(ProfileThreadState::kLockWait);
      mu_.lock();
    }
    if (stats != nullptr) stats->RecordWait(ProfileClockNs() - start);
  }
  ~TimedExclusiveLock() { mu_.unlock(); }
  TimedExclusiveLock(const TimedExclusiveLock&) = delete;
  TimedExclusiveLock& operator=(const TimedExclusiveLock&) = delete;

 private:
  Mutex& mu_;
};

template <typename Mutex>
class TimedSharedLock {
 public:
  TimedSharedLock(Mutex& mu, WaitStats* stats, const char* tag) : mu_(mu) {
    if (mu_.try_lock_shared()) return;
    uint64_t start = ProfileClockNs();
    {
      ProfileFrame frame(tag);
      ProfileStateScope state(ProfileThreadState::kLockWait);
      mu_.lock_shared();
    }
    if (stats != nullptr) stats->RecordWait(ProfileClockNs() - start);
  }
  ~TimedSharedLock() { mu_.unlock_shared(); }
  TimedSharedLock(const TimedSharedLock&) = delete;
  TimedSharedLock& operator=(const TimedSharedLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace rdfql

#endif  // RDFQL_UTIL_TIMED_LOCK_H_
