#ifndef RDFQL_UTIL_STRING_UTIL_H_
#define RDFQL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rdfql {

/// Splits on a single character, omitting empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view text, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace rdfql

#endif  // RDFQL_UTIL_STRING_UTIL_H_
