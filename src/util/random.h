#ifndef RDFQL_UTIL_RANDOM_H_
#define RDFQL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rdfql {

/// Deterministic xoshiro256**-based PRNG. Tests and benchmarks need
/// reproducible randomness independent of the standard library's
/// implementation-defined distributions, so we ship our own.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Picks a uniform element; vector must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

 private:
  uint64_t state_[4];
};

}  // namespace rdfql

#endif  // RDFQL_UTIL_RANDOM_H_
