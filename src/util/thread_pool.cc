#include "util/thread_pool.h"

namespace rdfql {

ThreadPool::ThreadPool(int num_threads) {
  int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainBatch(Batch* batch) {
  // Adopt the batch owner's governance context for the drain: workers pick
  // up the coordinating thread's token/accountant, the coordinator itself
  // re-installs its own (a no-op), and a worker hopping between batches of
  // different queries switches context with each batch.
  ExecContext saved = CurrentExecContext();
  CurrentExecContext() = batch->context;
  size_t i;
  while ((i = batch->next.fetch_add(1, std::memory_order_relaxed)) <
         batch->num_tasks) {
    (*batch->task)(i);
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->num_tasks) {
      // Last task: wake the ParallelFor caller (and any idle worker).
      // Locking mu_ orders this notify against the caller's predicate
      // check, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }
  CurrentExecContext() = saved;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Find a batch with unclaimed tasks.
    std::shared_ptr<Batch> batch;
    for (const std::shared_ptr<Batch>& b : active_) {
      if (b->next.load(std::memory_order_relaxed) < b->num_tasks) {
        batch = b;
        break;
      }
    }
    if (batch != nullptr) {
      lock.unlock();
      DrainBatch(batch.get());
      lock.lock();
      continue;
    }
    if (stopping_) return;
    cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->num_tasks = num_tasks;
  batch->context = CurrentExecContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(batch);
  }
  cv_.notify_all();
  // Participate: claim tasks until none are left, then wait for the ones
  // other threads claimed.
  DrainBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) == batch->num_tasks;
    });
    for (size_t i = 0; i < active_.size(); ++i) {
      if (active_[i] == batch) {
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
}

}  // namespace rdfql
