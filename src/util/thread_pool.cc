#include "util/thread_pool.h"

namespace rdfql {

ThreadPool::ThreadPool(int num_threads) {
  int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainBatch(Batch* batch) {
  // Adopt the batch owner's governance context for the drain: workers pick
  // up the coordinating thread's token/accountant, the coordinator itself
  // re-installs its own (a no-op), and a worker hopping between batches of
  // different queries switches context with each batch.
  ExecContext saved = CurrentExecContext();
  CurrentExecContext() = batch->context;
  size_t i;
  while ((i = batch->next.fetch_add(1, std::memory_order_relaxed)) <
         batch->num_tasks) {
    // Queue delay (publish -> this claim) and run time are always
    // recorded: tasks are coarse chunks (a partitioned join's partition,
    // an NS pruning slice), so two clock reads per task are noise next to
    // the task itself.
    uint64_t claim_ns = ProfileClockNs();
    queue_delay_.RecordWait(claim_ns - batch->publish_ns);
    {
      ProfileFrame frame("pool_task");
      (*batch->task)(i);
    }
    run_time_.RecordWait(ProfileClockNs() - claim_ns);
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->num_tasks) {
      // Last task: wake the ParallelFor caller (and any idle worker).
      // Locking mu_ orders this notify against the caller's predicate
      // check, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }
  CurrentExecContext() = saved;
}

void ThreadPool::WorkerLoop() {
  // Register this worker with the profile-thread registry up front, so a
  // profiler started mid-run sees parked workers as "idle" samples.
  CurrentProfileSlot();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Find a batch with unclaimed tasks.
    std::shared_ptr<Batch> batch;
    for (const std::shared_ptr<Batch>& b : active_) {
      if (b->next.load(std::memory_order_relaxed) < b->num_tasks) {
        batch = b;
        break;
      }
    }
    if (batch != nullptr) {
      lock.unlock();
      DrainBatch(batch.get());
      lock.lock();
      continue;
    }
    if (stopping_) return;
    cv_.wait(lock);
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t depth = 0;
  for (const std::shared_ptr<Batch>& b : active_) {
    size_t next = b->next.load(std::memory_order_relaxed);
    if (next < b->num_tasks) depth += b->num_tasks - next;
  }
  return depth;
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  tasks_total_.fetch_add(num_tasks, std::memory_order_relaxed);
  if (workers_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->num_tasks = num_tasks;
  batch->context = CurrentExecContext();
  batch->publish_ns = ProfileClockNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(batch);
  }
  cv_.notify_all();
  // Participate: claim tasks until none are left, then wait for the ones
  // other threads claimed.
  DrainBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    // The caller has no task of its own while it waits for the chunks
    // other threads claimed — that is the pool barrier the profiler
    // attributes as pool_queue_wait.
    ProfileStateScope wait_state(ProfileThreadState::kPoolQueueWait);
    cv_.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) == batch->num_tasks;
    });
    for (size_t i = 0; i < active_.size(); ++i) {
      if (active_[i] == batch) {
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
}

}  // namespace rdfql
