#ifndef RDFQL_UTIL_PROFILE_STATE_H_
#define RDFQL_UTIL_PROFILE_STATE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

namespace rdfql {

/// What a registered thread is doing right now, as the sampling profiler
/// sees it. `kRunning` with a non-empty tag stack attributes the sample to
/// the stack; the wait states are set around blocking boundaries (pool
/// completion barriers, contended lock acquisitions, worker idle waits) so
/// a wall-clock sample lands on *why* the thread is not making progress —
/// the attribution the paper's blowup results make valuable (a Thm 5.1
/// query can be slow in eval or merely stuck behind a dictionary lock, and
/// on-CPU profiles cannot tell these apart).
enum class ProfileThreadState : uint8_t {
  kIdle = 0,
  kRunning = 1,
  kPoolQueueWait = 2,
  kLockWait = 3,
};

/// Folded-frame name of a state ("running", "lock_wait", ...).
const char* ProfileThreadStateName(ProfileThreadState s);

/// Process-wide master switch. Tag pushes on hot paths are gated on this
/// single relaxed load (the CooperativeCheckpoint discipline: one
/// predictable branch when profiling is off). Owned by the Profiler —
/// everything else only reads it.
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

/// Per-thread profile slot: a fixed-depth, lock-free tag stack plus the
/// thread's current state. The owning thread is the only writer; the
/// sampler reads concurrently with acquire/relaxed atomics. A torn read
/// (sampler racing a push/pop) can attribute one sample to a stale frame —
/// tags are interned, never-freed strings, so the race costs one sample of
/// attribution noise, never a dangling pointer.
class ProfileThreadSlot {
 public:
  static constexpr size_t kMaxDepth = 48;

  /// Writer side (owning thread only). Pushes past kMaxDepth still count
  /// depth (so pops stay balanced); the sampler clamps and marks the
  /// sample truncated.
  void Push(const char* tag) {
    uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d < kMaxDepth) frames_[d].store(tag, std::memory_order_relaxed);
    depth_.store(d + 1, std::memory_order_release);
  }
  void Pop() {
    uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d > 0) depth_.store(d - 1, std::memory_order_release);
  }
  void SetState(ProfileThreadState s) {
    state_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }

  /// Sampler side: copies up to `cap` frames into `out`, returns the
  /// clamped frame count and the unclamped depth (for truncation marking).
  size_t SnapshotStack(const char** out, size_t cap, uint32_t* raw_depth) const {
    uint32_t d = depth_.load(std::memory_order_acquire);
    *raw_depth = d;
    size_t n = d < kMaxDepth ? d : kMaxDepth;
    if (n > cap) n = cap;
    for (size_t i = 0; i < n; ++i) {
      out[i] = frames_[i].load(std::memory_order_relaxed);
    }
    return n;
  }
  ProfileThreadState state() const {
    return static_cast<ProfileThreadState>(
        state_.load(std::memory_order_relaxed));
  }

 private:
  std::array<std::atomic<const char*>, kMaxDepth> frames_ = {};
  std::atomic<uint32_t> depth_{0};
  std::atomic<uint8_t> state_{static_cast<uint8_t>(ProfileThreadState::kIdle)};
};

/// Process-global registry of live thread slots. Threads register lazily
/// on first profiling touch (CurrentProfileSlot) and unregister at thread
/// exit; the sampler iterates under the registry mutex, so a slot can
/// never be destroyed mid-sample. Leaky singleton — survives static
/// destruction order, matching the MetricsRegistry::Global discipline.
class ProfileThreadRegistry {
 public:
  static ProfileThreadRegistry& Instance();

  void Register(ProfileThreadSlot* slot);
  void Unregister(ProfileThreadSlot* slot);

  /// Calls `fn` for every registered slot under the registry mutex.
  void ForEach(const std::function<void(const ProfileThreadSlot&)>& fn) const;

  size_t size() const;

 private:
  ProfileThreadRegistry() = default;
  mutable std::mutex mu_;
  std::vector<ProfileThreadSlot*> slots_;
};

/// The calling thread's slot, registering it on first use. Never null; the
/// slot stays registered until the thread exits.
ProfileThreadSlot* CurrentProfileSlot();

/// Interns `tag` into a process-global, never-freed table and returns the
/// canonical pointer. Spaces and semicolons (the folded format's two
/// metacharacters) are rewritten to '_'; empty input interns as "?". Use
/// for dynamic tags (stage names, pattern ops); string literals passed to
/// ProfileFrame directly need no interning.
const char* InternProfileTag(std::string_view tag);

/// RAII tag-stack frame. A null tag or disabled profiling makes it a
/// complete no-op; the push/pop decision is latched at construction, so a
/// profiler toggled mid-scope still pops exactly what it pushed.
class ProfileFrame {
 public:
  explicit ProfileFrame(const char* tag) {
    if (tag != nullptr && ProfilingEnabled()) {
      slot_ = CurrentProfileSlot();
      slot_->Push(tag);
    }
  }
  ~ProfileFrame() {
    if (slot_ != nullptr) slot_->Pop();
  }
  ProfileFrame(const ProfileFrame&) = delete;
  ProfileFrame& operator=(const ProfileFrame&) = delete;

 private:
  ProfileThreadSlot* slot_ = nullptr;
};

/// RAII thread-state transition, restoring the previous state on exit.
/// Used only at blocking boundaries (cv waits, contended lock slow paths),
/// so the unconditional relaxed stores cost nothing measurable.
class ProfileStateScope {
 public:
  explicit ProfileStateScope(ProfileThreadState s)
      : slot_(CurrentProfileSlot()), saved_(slot_->state()) {
    slot_->SetState(s);
  }
  ~ProfileStateScope() { slot_->SetState(saved_); }
  ProfileStateScope(const ProfileStateScope&) = delete;
  ProfileStateScope& operator=(const ProfileStateScope&) = delete;

 private:
  ProfileThreadSlot* slot_;
  ProfileThreadState saved_;
};

/// Lock-contention statistics for one mutex site, kept in plain atomics so
/// the rdf layer (which must not depend on obs) can host them. Buckets use
/// the exact power-of-two boundaries of obs Histogram — bucket i counts
/// waits in [2^(i-1), 2^i) ns — so Engine::MetricsSnapshot can inject a
/// WaitStats verbatim as a registry histogram. `count`/`sum_ns` cover only
/// *contended* acquisitions (the uncontended fast path never reads a
/// clock), and `contended` == `count` by construction; it is kept separate
/// so the `lock.*_contended_total` counter reads naturally.
struct WaitStats {
  static constexpr int kNumBuckets = 40;

  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum_ns{0};
  std::atomic<uint64_t> contended{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets = {};

  void RecordWait(uint64_t ns);

  /// Accumulates this site's stats into plain totals (for summing several
  /// sites, e.g. all graphs' index locks, before snapshot injection).
  struct Totals {
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t contended = 0;
    std::array<uint64_t, kNumBuckets> buckets = {};
  };
  void AddTo(Totals* totals) const;
};

/// Monotonic nanoseconds — the single clock all profiling timestamps use.
uint64_t ProfileClockNs();

}  // namespace rdfql

#endif  // RDFQL_UTIL_PROFILE_STATE_H_
