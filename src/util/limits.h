#ifndef RDFQL_UTIL_LIMITS_H_
#define RDFQL_UTIL_LIMITS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace rdfql {

/// Resource budgets for one query (or one translation pipeline). Every
/// field uses 0 as "unlimited", so a default-constructed ResourceLimits
/// enforces nothing and costs nothing.
struct ResourceLimits {
  /// Wall-clock budget from the start of the governed evaluation. Enforced
  /// cooperatively: the evaluators and kernels check at operator and chunk
  /// boundaries, so a runaway query stops within one chunk of work.
  uint64_t max_wall_ms = 0;
  /// Cap on simultaneously live mappings across every intermediate set of
  /// the query (the ResourceAccountant's live_mappings figure).
  uint64_t max_live_mappings = 0;
  /// Cap on the approximate bytes of live mapping-set memory.
  uint64_t max_bytes = 0;
  /// Cap on the AST nodes a translation stage may materialize — the guard
  /// against the paper's double-exponential blowups (Thm 4.1, Thm 5.1).
  /// Stages pre-flight their output size and refuse before allocating.
  uint64_t max_ast_nodes = 0;

  bool Enforced() const {
    return (max_wall_ms | max_live_mappings | max_bytes | max_ast_nodes) != 0;
  }
};

/// A point on the steady clock after which work should stop. Default is
/// infinitely far away; copying is free (one integer).
class Deadline {
 public:
  Deadline() = default;

  /// `ms` from now. AfterMs(0) is already expired (useful in tests).
  static Deadline AfterMs(uint64_t ms);

  bool infinite() const { return ns_ == kInfiniteNs; }
  bool Expired() const;

  /// True when this deadline fires strictly before `other`.
  bool SoonerThan(const Deadline& other) const { return ns_ < other.ns_; }

 private:
  static constexpr uint64_t kInfiniteNs = ~0ull;

  uint64_t ns_ = kInfiniteNs;  // absolute steady-clock nanoseconds
};

/// A trip-once cancellation flag shared between the thread driving a query
/// and the pool workers doing its chunks. Anyone may Cancel() it (an
/// operator deciding the deadline passed, the accountant seeing a cap
/// crossed, or an external caller aborting the query); the first non-OK
/// status latches and becomes the query's error.
///
/// Like ResourceAccountant, the install point is a process-global atomic
/// (not thread-local) so pool workers observe the token installed by the
/// coordinating thread; one governed query runs at a time per process slot
/// (see docs/robustness.md).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token. The first caller's status wins; later calls no-op.
  void Cancel(Status reason);

  bool cancelled() const { return tripped_.load(std::memory_order_acquire); }

  /// The latched reason; OK while not cancelled.
  Status status() const;

  /// Arms (or replaces) the deadline that Check() enforces.
  void ArmDeadline(Deadline deadline) { deadline_ = deadline; }

  /// The cooperative checkpoint: false once cancelled, tripping the token
  /// with kDeadlineExceeded first if the armed deadline has passed. Cost
  /// when armed: one atomic load plus one clock read.
  bool Check();

  /// The token installed for the current scope, or null (ungoverned).
  static CancellationToken* Current() {
    return current_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedCancellation;

  std::atomic<bool> tripped_{false};
  Deadline deadline_;  // written before workers start, read-only after
  mutable std::mutex mu_;
  Status reason_;  // guarded by mu_ until tripped_ is published

  static std::atomic<CancellationToken*> current_;
};

/// Installs a token for the enclosing scope, restoring the previous one on
/// destruction — the same idiom as ScopedAccounting. Null uninstalls.
class ScopedCancellation {
 public:
  explicit ScopedCancellation(CancellationToken* token)
      : prev_(CancellationToken::current_.exchange(
            token, std::memory_order_relaxed)) {}
  ~ScopedCancellation() {
    CancellationToken::current_.store(prev_, std::memory_order_relaxed);
  }
  ScopedCancellation(const ScopedCancellation&) = delete;
  ScopedCancellation& operator=(const ScopedCancellation&) = delete;

 private:
  CancellationToken* prev_;
};

/// The one-liner the hot paths use: true when work may continue. With no
/// token installed — the ungoverned default — this is a relaxed load and a
/// null test.
inline bool CooperativeCheckpoint() {
  CancellationToken* token = CancellationToken::Current();
  return token == nullptr || token->Check();
}

}  // namespace rdfql

#endif  // RDFQL_UTIL_LIMITS_H_
