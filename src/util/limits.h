#ifndef RDFQL_UTIL_LIMITS_H_
#define RDFQL_UTIL_LIMITS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace rdfql {

class CancellationToken;
class ResourceAccountant;  // defined in obs/accounting.h

/// The per-thread governance context: which cancellation token the current
/// thread's cooperative checkpoints poll and which accountant its
/// mapping-set allocations report to. Thread-local, so concurrently running
/// queries on different threads are independently governed;
/// ThreadPool::ParallelFor snapshots the calling thread's context into the
/// batch and installs it on every thread that claims the batch's tasks, so
/// pool workers observe the coordinating thread's token and accountant for
/// exactly the duration of that batch.
struct ExecContext {
  CancellationToken* cancel = nullptr;
  ResourceAccountant* accountant = nullptr;
};

namespace internal {
/// Constant-initialized, so access is a plain TLS load with no init guard.
inline thread_local ExecContext tls_exec_context;
}  // namespace internal

/// The calling thread's governance context (mutable reference).
inline ExecContext& CurrentExecContext() {
  return internal::tls_exec_context;
}

/// Resource budgets for one query (or one translation pipeline). Every
/// field uses 0 as "unlimited", so a default-constructed ResourceLimits
/// enforces nothing and costs nothing.
struct ResourceLimits {
  /// Wall-clock budget from the start of the governed evaluation. Enforced
  /// cooperatively: the evaluators and kernels check at operator and chunk
  /// boundaries, so a runaway query stops within one chunk of work.
  uint64_t max_wall_ms = 0;
  /// Cap on simultaneously live mappings across every intermediate set of
  /// the query (the ResourceAccountant's live_mappings figure).
  uint64_t max_live_mappings = 0;
  /// Cap on the approximate bytes of live mapping-set memory.
  uint64_t max_bytes = 0;
  /// Cap on the AST nodes a translation stage may materialize — the guard
  /// against the paper's double-exponential blowups (Thm 4.1, Thm 5.1).
  /// Stages pre-flight their output size and refuse before allocating.
  uint64_t max_ast_nodes = 0;

  bool Enforced() const {
    return (max_wall_ms | max_live_mappings | max_bytes | max_ast_nodes) != 0;
  }
};

/// A point on the steady clock after which work should stop. Default is
/// infinitely far away; copying is free (one integer).
class Deadline {
 public:
  Deadline() = default;

  /// `ms` from now. AfterMs(0) is already expired (useful in tests).
  static Deadline AfterMs(uint64_t ms);

  bool infinite() const { return ns_ == kInfiniteNs; }
  bool Expired() const;

  /// True when this deadline fires strictly before `other`.
  bool SoonerThan(const Deadline& other) const { return ns_ < other.ns_; }

 private:
  static constexpr uint64_t kInfiniteNs = ~0ull;

  uint64_t ns_ = kInfiniteNs;  // absolute steady-clock nanoseconds
};

/// A trip-once cancellation flag shared between the thread driving a query
/// and the pool workers doing its chunks. Anyone may Cancel() it (an
/// operator deciding the deadline passed, the accountant seeing a cap
/// crossed, a watchdog acting on the in-flight registry, or an external
/// caller aborting the query); the first non-OK status latches and becomes
/// the query's error.
///
/// Like ResourceAccountant, the install point lives in the thread-local
/// ExecContext, so any number of governed queries may run concurrently —
/// one per coordinating thread — and ThreadPool::ParallelFor hands each
/// batch's workers the coordinator's context (see docs/robustness.md).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token. The first caller's status wins; later calls no-op.
  void Cancel(Status reason);

  bool cancelled() const { return tripped_.load(std::memory_order_acquire); }

  /// The latched reason; OK while not cancelled.
  Status status() const;

  /// Arms (or replaces) the deadline that Check() enforces.
  void ArmDeadline(Deadline deadline) { deadline_ = deadline; }

  /// The cooperative checkpoint: false once cancelled, tripping the token
  /// with kDeadlineExceeded first if the armed deadline has passed. Cost
  /// when armed: one atomic load plus one clock read.
  bool Check();

  /// The token installed for the current thread's scope, or null
  /// (ungoverned).
  static CancellationToken* Current() { return CurrentExecContext().cancel; }

 private:
  std::atomic<bool> tripped_{false};
  Deadline deadline_;  // written before workers start, read-only after
  mutable std::mutex mu_;
  Status reason_;  // guarded by mu_ until tripped_ is published
};

/// Installs a token for the enclosing scope on this thread, restoring the
/// previous one on destruction — the same idiom as ScopedAccounting. Null
/// uninstalls.
class ScopedCancellation {
 public:
  explicit ScopedCancellation(CancellationToken* token)
      : prev_(CurrentExecContext().cancel) {
    CurrentExecContext().cancel = token;
  }
  ~ScopedCancellation() { CurrentExecContext().cancel = prev_; }
  ScopedCancellation(const ScopedCancellation&) = delete;
  ScopedCancellation& operator=(const ScopedCancellation&) = delete;

 private:
  CancellationToken* prev_;
};

/// The one-liner the hot paths use: true when work may continue. With no
/// token installed — the ungoverned default — this is a thread-local load
/// and a null test.
inline bool CooperativeCheckpoint() {
  CancellationToken* token = CancellationToken::Current();
  return token == nullptr || token->Check();
}

}  // namespace rdfql

#endif  // RDFQL_UTIL_LIMITS_H_
