#ifndef RDFQL_UTIL_THREAD_POOL_H_
#define RDFQL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/limits.h"
#include "util/profile_state.h"

namespace rdfql {

/// A fixed-size thread pool built for deterministic data parallelism: the
/// only entry point is a blocking ParallelFor whose tasks are claimed from
/// a shared atomic cursor (no work stealing, no per-thread deques). The
/// calling thread participates, so a pool constructed with `num_threads`
/// runs at most `num_threads` tasks concurrently while spawning only
/// `num_threads - 1` workers — and a pool of size 1 degenerates to a plain
/// serial loop with no threads at all.
///
/// Determinism contract: the pool never decides *what* the result is, only
/// *who* computes which task. Callers that want scheduling-independent
/// output must write task `i`'s results into slot `i` (or an
/// index-addressed chunk) and combine slots in index order after
/// ParallelFor returns — which is exactly how the parallel algebra kernels
/// (MappingSet::Join / Minus, RemoveSubsumedBucketed) use it.
///
/// ParallelFor is reentrant: a task may itself call ParallelFor on the
/// same pool (the parallel evaluator does this when a UNION branch
/// contains a parallel join). The nested call's tasks are claimed by the
/// nested caller and by any idle worker; a thread blocked in ParallelFor
/// has no in-progress task of its own, so waits always target running
/// threads and the nesting cannot deadlock.
///
/// Governance propagation: ParallelFor snapshots the calling thread's
/// ExecContext (cancellation token + resource accountant, both
/// thread-local) into the batch, and every thread that claims the batch's
/// tasks runs them under that context. A pool shared by concurrently
/// governed queries therefore routes each chunk's checkpoints and
/// allocation reports to the query that forked it, not to whichever query
/// installed its context last.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (clamped to at least 0). The pool
  /// must outlive every ParallelFor call issued against it.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency, workers plus the calling thread.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(0), ..., task(num_tasks - 1), each exactly once, on the
  /// workers and the calling thread; returns when all have completed.
  /// Tasks must not throw (the engine's error discipline is Status/CHECK).
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task);

  /// Tasks ever submitted (fast-path serial loops included). Relaxed
  /// atomic — always on, independent of profiling.
  uint64_t tasks_total() const {
    return tasks_total_.load(std::memory_order_relaxed);
  }

  /// Unclaimed tasks across the in-flight batches right now (a scrape-time
  /// gauge; takes the pool mutex briefly).
  size_t QueueDepth() const;

  /// Publish→claim delay of every task run through a worker batch (the
  /// serial fast path has no queue and records nothing). Same power-of-two
  /// buckets as the metrics registry, so Engine::MetricsSnapshot injects
  /// these verbatim as pool.queue_delay_ns / pool.run_ns.
  const WaitStats& queue_delay_stats() const { return queue_delay_; }
  /// Per-task execution time of batch tasks.
  const WaitStats& run_time_stats() const { return run_time_; }

 private:
  /// One in-flight ParallelFor: a claim cursor, a completion count, and
  /// the caller's governance context (installed around each claimed task).
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t num_tasks = 0;
    ExecContext context;  // written before publication, read-only after
    uint64_t publish_ns = 0;  // submit timestamp for queue-delay accounting
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  /// Runs tasks from `batch` until none are left to claim.
  void DrainBatch(Batch* batch);

  mutable std::mutex mu_;
  std::condition_variable cv_;  // woken on new work and batch completion
  std::vector<std::shared_ptr<Batch>> active_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> tasks_total_{0};
  WaitStats queue_delay_;
  WaitStats run_time_;
};

}  // namespace rdfql

#endif  // RDFQL_UTIL_THREAD_POOL_H_
