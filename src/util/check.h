#ifndef RDFQL_UTIL_CHECK_H_
#define RDFQL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checking. `RDFQL_CHECK` is always on (the library is
/// not performance-bound by these), and failures abort with a location so
/// bugs surface loudly in tests and benchmarks alike.
#define RDFQL_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RDFQL_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define RDFQL_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RDFQL_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // RDFQL_UTIL_CHECK_H_
