#include "util/profile_state.h"

#include <bit>
#include <chrono>
#include <string>
#include <unordered_set>

namespace rdfql {
namespace {

std::atomic<bool> g_profiling_enabled{false};

/// Registers the thread's slot on construction and removes it at thread
/// exit. Destruction order within a thread is irrelevant: the slot lives
/// inside this holder, and Unregister runs under the registry mutex, so
/// the sampler can never observe a destroyed slot.
struct SlotHolder {
  ProfileThreadSlot slot;
  SlotHolder() { ProfileThreadRegistry::Instance().Register(&slot); }
  ~SlotHolder() { ProfileThreadRegistry::Instance().Unregister(&slot); }
};

}  // namespace

const char* ProfileThreadStateName(ProfileThreadState s) {
  switch (s) {
    case ProfileThreadState::kIdle:
      return "idle";
    case ProfileThreadState::kRunning:
      return "running";
    case ProfileThreadState::kPoolQueueWait:
      return "pool_queue_wait";
    case ProfileThreadState::kLockWait:
      return "lock_wait";
  }
  return "unknown";
}

bool ProfilingEnabled() {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

ProfileThreadRegistry& ProfileThreadRegistry::Instance() {
  // Leaky on purpose: worker threads may unregister during static
  // destruction, after a function-local static would have been destroyed.
  static ProfileThreadRegistry* instance = new ProfileThreadRegistry();
  return *instance;
}

void ProfileThreadRegistry::Register(ProfileThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(slot);
}

void ProfileThreadRegistry::Unregister(ProfileThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == slot) {
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void ProfileThreadRegistry::ForEach(
    const std::function<void(const ProfileThreadSlot&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ProfileThreadSlot* slot : slots_) fn(*slot);
}

size_t ProfileThreadRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

ProfileThreadSlot* CurrentProfileSlot() {
  static thread_local SlotHolder holder;
  return &holder.slot;
}

const char* InternProfileTag(std::string_view tag) {
  std::string clean;
  clean.reserve(tag.size());
  for (char c : tag) {
    clean.push_back((c == ' ' || c == ';' || c == '\n') ? '_' : c);
  }
  if (clean.empty()) clean = "?";
  // Never-freed intern table: returned pointers must stay valid for the
  // life of the process (samples may be folded long after the tag's
  // creator is gone).
  static std::mutex* mu = new std::mutex();
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  return table->insert(std::move(clean)).first->c_str();
}

void WaitStats::RecordWait(uint64_t ns) {
  int bucket = ns == 0 ? 0 : 64 - std::countl_zero(ns);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum_ns.fetch_add(ns, std::memory_order_relaxed);
  contended.fetch_add(1, std::memory_order_relaxed);
}

void WaitStats::AddTo(Totals* totals) const {
  totals->count += count.load(std::memory_order_relaxed);
  totals->sum_ns += sum_ns.load(std::memory_order_relaxed);
  totals->contended += contended.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    totals->buckets[static_cast<size_t>(i)] +=
        buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
}

uint64_t ProfileClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rdfql
