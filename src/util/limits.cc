#include "util/limits.h"

#include <chrono>

namespace rdfql {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Deadline Deadline::AfterMs(uint64_t ms) {
  Deadline d;
  d.ns_ = SteadyNowNs() + ms * 1'000'000ull;
  return d;
}

bool Deadline::Expired() const {
  return ns_ != kInfiniteNs && SteadyNowNs() >= ns_;
}

void CancellationToken::Cancel(Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tripped_.load(std::memory_order_relaxed)) return;
  reason_ = std::move(reason);
  // Release so a thread that observes tripped_ sees the latched reason.
  tripped_.store(true, std::memory_order_release);
}

Status CancellationToken::status() const {
  if (!cancelled()) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

bool CancellationToken::Check() {
  if (tripped_.load(std::memory_order_acquire)) return false;
  if (deadline_.Expired()) {
    Cancel(Status::DeadlineExceeded("query exceeded its wall-clock budget"));
    return false;
  }
  return true;
}

}  // namespace rdfql
