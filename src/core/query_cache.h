#ifndef RDFQL_CORE_QUERY_CACHE_H_
#define RDFQL_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "eval/evaluator.h"
#include "util/profile_state.h"

namespace rdfql {

/// Number of independently locked partitions in each cache. Lookups hash
/// to one shard and take only its mutex, so concurrent queries with
/// different hashes never contend.
inline constexpr size_t kQueryCacheShards = 16;

/// Sizing knobs for a QueryCache. Both caches are bounded and evict LRU
/// within the shard an insert lands in (budgets are split evenly across
/// the 16 shards, so a pathological distribution can evict a little early
/// — never late).
struct QueryCacheOptions {
  /// Total plan entries kept across all shards; 0 disables the plan cache.
  size_t plan_capacity = 4096;
  /// Total approximate bytes of materialized results kept across all
  /// shards; 0 disables the result cache.
  size_t result_max_bytes = 64ull << 20;
  /// Results whose MappingSet::ApproxBytes() exceeds this are never
  /// cached (one huge answer should not wipe a shard).
  size_t result_entry_max_bytes = 4ull << 20;
};

/// A cached parse: the immutable pattern shared via shared_ptr (concurrent
/// hits are zero-copy), the fragment classification that rides along for
/// free, and the canonical query text the entry was built from — lookups
/// verify it, so a 64-bit hash collision degrades to a miss, never to a
/// wrong plan.
struct CachedPlan {
  std::string canonical_query;
  PatternPtr pattern;
  std::string fragment;  // DescribeFragment(pattern)
};
using CachedPlanPtr = std::shared_ptr<const CachedPlan>;

/// Identity of a materialized result: the canonicalized query hash, the
/// graph it ran against by name *and* epoch (see Graph::Epoch — any
/// mutation moves the epoch, so stale entries can never hit again), and a
/// fingerprint of the evaluation options that key distinct entries.
struct ResultCacheKey {
  uint64_t query_hash = 0;
  std::string graph;
  uint64_t graph_epoch = 0;
  uint64_t options_fp = 0;

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.query_hash == b.query_hash && a.graph_epoch == b.graph_epoch &&
           a.options_fp == b.options_fp && a.graph == b.graph;
  }
};

/// The slice of EvalOptions a cached result may depend on. Join strategy
/// and NS algorithm are proven result-identical, but they are ablation
/// knobs whose EXPLAIN work counters differ, so they key separate entries
/// rather than sharing one; thread count does not participate (the
/// parallel evaluator's bit-for-bit contract).
uint64_t EvalOptionsFingerprint(const EvalOptions& options);

/// Point-in-time counters for a QueryCache. Hit/miss/eviction/bypass are
/// monotone over the cache's lifetime (Clear() drops entries, not
/// counters); entries/bytes are live sizes.
struct QueryCacheStats {
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t plan_evictions = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_evictions = 0;
  /// Results refused because they exceeded result_entry_max_bytes.
  uint64_t result_oversize = 0;
  /// Queries that ran with caching disabled per-query while a cache was
  /// attached (EvalOptions::use_*_cache == CacheMode::kOff).
  uint64_t bypasses = 0;
  uint64_t plan_entries = 0;
  uint64_t result_entries = 0;
  uint64_t result_bytes = 0;

  uint64_t hits() const { return plan_hits + result_hits; }
  uint64_t misses() const { return plan_misses + result_misses; }
  uint64_t evictions() const { return plan_evictions + result_evictions; }
};

/// A sharded, bounded LRU cache for the front half of query execution:
///
///  - a **plan cache** mapping canonicalized query text (by stable hash)
///    to the parsed immutable PatternPtr + fragment, and
///  - an optional **result cache** mapping (query hash, graph name, graph
///    epoch, options fingerprint) to a materialized MappingSet.
///
/// Keying is syntactic on purpose: subsumption of (weakly) well-designed
/// patterns is undecidable (Kaminski & Kostylev 2019) and even static
/// analysis of the PP-free fragment is PSPACE-hard (Pérez, Arenas &
/// Gutiérrez), so the canonicalized-text hash is the only sound cheap key.
/// Every entry stores the canonical text and lookups compare it, making
/// correctness independent of the 64-bit hash.
///
/// Fully thread-safe: 16 hash-partitioned mutexes (one per shard), atomic
/// stats, and immutable shared values — a hit hands back a shared_ptr
/// without copying under the lock. The cache never invalidates result
/// entries in place; graph mutations move Graph::Epoch so stale entries
/// simply stop matching and age out of the LRU.
class QueryCache {
 public:
  explicit QueryCache(QueryCacheOptions options = {});
  ~QueryCache();

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  const QueryCacheOptions& options() const { return options_; }
  bool plan_enabled() const { return options_.plan_capacity > 0; }
  bool result_enabled() const { return options_.result_max_bytes > 0; }

  /// Looks up a plan by canonicalized-text hash; `canonical` must be the
  /// canonical text itself and is verified against the entry. A hit
  /// refreshes the entry's LRU position.
  CachedPlanPtr GetPlan(uint64_t hash, std::string_view canonical);

  /// Like GetPlan but touches neither the stats nor the LRU order — for
  /// opportunistic reads (e.g. recovering the fragment on a result hit)
  /// that should not distort hit accounting.
  CachedPlanPtr PeekPlan(uint64_t hash, std::string_view canonical) const;

  /// Inserts/replaces the plan for `hash`, evicting the shard's LRU tail
  /// past capacity. No-op when the plan cache is disabled.
  void PutPlan(uint64_t hash, CachedPlanPtr plan);

  /// Looks up a materialized result. The canonical text is verified, so a
  /// hash collision is a miss. The returned set is shared and immutable —
  /// callers copy it (MappingSet's copy re-accounts to the accountant
  /// installed at copy time and preserves insertion order exactly).
  std::shared_ptr<const MappingSet> GetResult(const ResultCacheKey& key,
                                              std::string_view canonical);

  /// Copies `result` into the cache under `key` unless it exceeds the
  /// per-entry byte cap; evicts the shard's LRU tail until the shard is
  /// back under its byte budget. No-op when the result cache is disabled.
  void PutResult(const ResultCacheKey& key, std::string_view canonical,
                 const MappingSet& result);

  /// Counts a query that ran with caching switched off per-query.
  void NoteBypass() { bypasses_.fetch_add(1, std::memory_order_relaxed); }

  /// Contention across all 32 shard mutexes (plan + result), one combined
  /// site: per-shard breakdowns would be 32 near-zero histograms, and the
  /// question the metric answers — "are queries queueing on the cache?" —
  /// is per-cache. Surfaced as lock.query_cache_*.
  const WaitStats& lock_wait_stats() const { return lock_wait_; }

  /// Drops every entry from both caches. Stats counters keep running —
  /// they are lifetime totals, and the engine folds them into monotone
  /// metrics counters.
  void Clear();

  QueryCacheStats Stats() const;

 private:
  struct PlanShard;
  struct ResultShard;

  QueryCacheOptions options_;
  size_t plan_shard_capacity_ = 0;    // per-shard entry cap
  size_t result_shard_budget_ = 0;    // per-shard byte budget

  std::atomic<uint64_t> plan_hits_{0};
  std::atomic<uint64_t> plan_misses_{0};
  std::atomic<uint64_t> plan_evictions_{0};
  std::atomic<uint64_t> result_hits_{0};
  std::atomic<uint64_t> result_misses_{0};
  std::atomic<uint64_t> result_evictions_{0};
  std::atomic<uint64_t> result_oversize_{0};
  std::atomic<uint64_t> bypasses_{0};
  mutable WaitStats lock_wait_;

  std::unique_ptr<PlanShard[]> plan_shards_;
  std::unique_ptr<ResultShard[]> result_shards_;
};

}  // namespace rdfql

#endif  // RDFQL_CORE_QUERY_CACHE_H_
