#include "core/engine.h"

#include <chrono>
#include <cstdio>

#include "algebra/result_io.h"
#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "obs/tracer.h"
#include "rdf/ntriples.h"

namespace rdfql {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string PhaseString(uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  }
  return buf;
}

}  // namespace

std::string QueryExplanation::ToString() const {
  std::string out = "parse: " + PhaseString(parse_ns) +
                    "  eval: " + PhaseString(eval_ns) + "\n";
  out += explanation.ToString();
  return out;
}

Status Engine::LoadGraphText(const std::string& name,
                             std::string_view ntriples) {
  Graph& g = graphs_[name];
  return ParseNTriples(ntriples, &dict_, &g);
}

void Engine::PutGraph(const std::string& name, Graph graph) {
  graphs_[name] = std::move(graph);
}

Result<const Graph*> Engine::GetGraph(const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return &it->second;
}

Result<PatternPtr> Engine::Parse(std::string_view query) {
  return ParsePattern(query, &dict_);
}

Result<ConstructQuery> Engine::ParseConstructQuery(std::string_view query) {
  RDFQL_ASSIGN_OR_RETURN(ParsedConstruct parsed,
                         ParseConstruct(query, &dict_));
  return ConstructQuery(std::move(parsed.templ), std::move(parsed.where));
}

Result<MappingSet> Engine::Query(const std::string& graph_name,
                                 std::string_view query,
                                 EvalOptions options) {
  if (!collect_metrics_) {
    RDFQL_ASSIGN_OR_RETURN(PatternPtr pattern, Parse(query));
    return Eval(graph_name, pattern, options);
  }
  metrics_.GetCounter("engine.queries")->Inc();
  uint64_t t0 = NowNs();
  RDFQL_ASSIGN_OR_RETURN(PatternPtr pattern, Parse(query));
  metrics_.GetHistogram("engine.parse_ns")->Observe(NowNs() - t0);
  return Eval(graph_name, pattern, options);
}

void Engine::SetDefaultThreads(int threads) {
  default_threads_ = threads < 1 ? 1 : threads;
  // Resize (or drop) the shared pool; queries in flight are the caller's
  // responsibility — the engine is not itself thread-safe for writes.
  pool_.reset();
  if (default_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(default_threads_);
  }
}

EvalOptions Engine::WithEngineDefaults(EvalOptions options) const {
  if (options.threads <= 1 && default_threads_ > 1) {
    options.threads = default_threads_;
    options.pool = pool_.get();
  }
  return options;
}

Result<MappingSet> Engine::Eval(const std::string& graph_name,
                                const PatternPtr& pattern,
                                EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(const Graph* graph, GetGraph(graph_name));
  options = WithEngineDefaults(options);
  if (!collect_metrics_) {
    return EvalPattern(*graph, pattern, options);
  }
  if (options.metrics == nullptr) options.metrics = &metrics_;
  uint64_t t0 = NowNs();
  MappingSet result = EvalPattern(*graph, pattern, options);
  metrics_.GetHistogram("engine.eval_ns")->Observe(NowNs() - t0);
  return result;
}

Result<QueryExplanation> Engine::QueryExplained(const std::string& graph_name,
                                                std::string_view query,
                                                EvalOptions options) {
  QueryExplanation out;
  if (collect_metrics_) metrics_.GetCounter("engine.queries")->Inc();
  uint64_t t0 = NowNs();
  RDFQL_ASSIGN_OR_RETURN(PatternPtr pattern, Parse(query));
  out.parse_ns = NowNs() - t0;
  RDFQL_ASSIGN_OR_RETURN(const Graph* graph, GetGraph(graph_name));
  options = WithEngineDefaults(options);
  if (collect_metrics_ && options.metrics == nullptr) {
    options.metrics = &metrics_;
  }
  t0 = NowNs();
  out.explanation = ExplainEval(*graph, pattern, dict_, options);
  out.eval_ns = NowNs() - t0;
  if (collect_metrics_) {
    metrics_.GetHistogram("engine.parse_ns")->Observe(out.parse_ns);
    metrics_.GetHistogram("engine.eval_ns")->Observe(out.eval_ns);
  }
  return out;
}

Result<bool> Engine::Ask(const std::string& graph_name,
                         std::string_view query, EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return !result.empty();
}

Result<std::string> Engine::QueryCsv(const std::string& graph_name,
                                     std::string_view query,
                                     EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteCsv(result, dict_);
}

Result<std::string> Engine::QueryJson(const std::string& graph_name,
                                      std::string_view query,
                                      EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteResultsJson(result, dict_);
}

PatternReport Engine::Classify(const PatternPtr& pattern,
                               const MonotonicityOptions& options) {
  PatternReport report;
  report.fragment = DescribeFragment(pattern);
  report.well_designed = IsWellDesigned(pattern);
  report.union_well_designed = IsUnionOfWellDesigned(pattern);
  report.simple_pattern = IsSimplePattern(pattern);
  report.ns_pattern = IsNsPattern(pattern);
  report.syntactically_subsumption_free =
      IsSyntacticallySubsumptionFree(pattern);
  report.looks_weakly_monotone =
      LooksWeaklyMonotone(pattern, &dict_, options);
  report.looks_monotone = LooksMonotone(pattern, &dict_, options);
  report.looks_subsumption_free =
      LooksSubsumptionFree(pattern, &dict_, options);
  return report;
}

}  // namespace rdfql
