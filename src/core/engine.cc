#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <optional>

#include "algebra/pattern_printer.h"
#include "algebra/result_io.h"
#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "obs/accounting.h"
#include "obs/tracer.h"
#include "optimize/optimizer.h"
#include "rdf/ntriples.h"
#include "transform/ns_elimination.h"
#include "transform/opt_rewriter.h"
#include "transform/select_free.h"
#include "transform/wd_to_simple.h"
#include "util/profile_state.h"

namespace rdfql {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// The query log's typed-outcome vocabulary, one token per StatusCode.
const char* OutcomeString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool CrossedSlowThreshold(const QueryLogRecord& record, const QueryLog& log) {
  uint64_t slow_ms = log.options().slow_ms;
  return slow_ms != 0 && record.parse_ns + record.eval_ns >= slow_ms * 1'000'000;
}

std::string PhaseString(uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  }
  return buf;
}

std::string BytesString(uint64_t bytes) {
  char buf[32];
  if (bytes < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / 1e6);
  }
  return buf;
}

std::string LimitsString(const ResourceLimits& limits) {
  if (!limits.Enforced()) return "none";
  std::string out;
  auto append = [&out](const std::string& piece) {
    if (!out.empty()) out += " ";
    out += piece;
  };
  if (limits.max_wall_ms != 0) {
    append("wall=" + std::to_string(limits.max_wall_ms) + "ms");
  }
  if (limits.max_live_mappings != 0) {
    append("live_mappings=" + std::to_string(limits.max_live_mappings));
  }
  if (limits.max_bytes != 0) {
    append("bytes=" + BytesString(limits.max_bytes));
  }
  if (limits.max_ast_nodes != 0) {
    append("ast_nodes=" + std::to_string(limits.max_ast_nodes));
  }
  return out;
}

/// The log outcome for a failed query: "watchdog_cancelled" when this
/// registration's slot says the watchdog tripped the token (and the status
/// agrees it was a cancellation), the plain per-code token otherwise.
const char* OutcomeForFailure(const Status& status, InflightSlot* slot) {
  if (slot != nullptr && slot->watchdog_cancelled() &&
      status.code() == StatusCode::kCancelled) {
    return "watchdog_cancelled";
  }
  return OutcomeString(status.code());
}

bool WatchdogTripped(InflightSlot* slot) {
  return slot != nullptr && slot->watchdog_cancelled();
}

}  // namespace

Engine::~Engine() {
  StopTelemetry();
  DisableProfiling();
}

std::string QueryExplanation::ToString() const {
  std::string out = "parse: " + PhaseString(parse_ns) +
                    "  eval: " + PhaseString(eval_ns) + "  mem: peak " +
                    std::to_string(peak_mappings) + " mappings / " +
                    BytesString(peak_bytes) + "\n";
  out += "limits: " + LimitsString(limits) + "\n";
  if (!cache_note.empty()) out += "cache: " + cache_note + "\n";
  if (hist_queries > 0) {
    out += "time: eval p50=" +
           PhaseString(static_cast<uint64_t>(eval_p50_ns)) +
           " p90=" + PhaseString(static_cast<uint64_t>(eval_p90_ns)) +
           " p99=" + PhaseString(static_cast<uint64_t>(eval_p99_ns)) +
           " (n=" + std::to_string(hist_queries) + ")\n";
  }
  out += explanation.ToString();
  return out;
}

Status Engine::LoadGraphText(const std::string& name,
                             std::string_view ntriples) {
  Graph& g = graphs_[name];
  Status st = ParseNTriples(ntriples, &dict_, &g);
  UpdateGraphGauges();
  return st;
}

void Engine::PutGraph(const std::string& name, Graph graph) {
  graphs_[name] = std::move(graph);
  UpdateGraphGauges();
}

void Engine::UpdateGraphGauges() {
  size_t bytes = 0;
  size_t triples = 0;
  for (const auto& [name, g] : graphs_) {
    bytes += g.ApproxBytes();
    triples += g.size();
  }
  metrics_.GetGauge("engine.graph_bytes")->Set(static_cast<int64_t>(bytes));
  metrics_.GetGauge("engine.graph_triples")
      ->Set(static_cast<int64_t>(triples));
}

Result<const Graph*> Engine::GetGraph(const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return &it->second;
}

Result<PatternPtr> Engine::Parse(std::string_view query) {
  return ParsePattern(query, &dict_);
}

Result<ConstructQuery> Engine::ParseConstructQuery(std::string_view query) {
  RDFQL_ASSIGN_OR_RETURN(ParsedConstruct parsed,
                         ParseConstruct(query, &dict_));
  return ConstructQuery(std::move(parsed.templ), std::move(parsed.where));
}

void Engine::SetQueryCache(QueryCache* cache) {
  query_cache_ = cache;
  // Rebase the fold baselines on the new cache's lifetime totals so a
  // pre-used cache doesn't replay its history into this engine's counters.
  QueryCacheStats s = cache != nullptr ? cache->Stats() : QueryCacheStats{};
  folded_cache_hits_ = s.hits();
  folded_cache_misses_ = s.misses();
  folded_cache_evictions_ = s.evictions();
  folded_cache_bypasses_ = s.bypasses;
}

Engine::CacheContext Engine::ResolveCache(std::string_view query,
                                          const EvalOptions& options) const {
  CacheContext cc;
  if (query_cache_ == nullptr) return cc;
  cc.cache = query_cache_;
  cc.plan_on = query_cache_->plan_enabled() &&
               options.use_plan_cache != CacheMode::kOff;
  cc.result_on = query_cache_->result_enabled() &&
                 options.use_result_cache != CacheMode::kOff;
  if (!cc.plan_on && !cc.result_on) {
    cc.bypass = true;
    query_cache_->NoteBypass();
    return cc;
  }
  cc.canonical = CanonicalizeQueryText(query);
  cc.hash = StableQueryHash(cc.canonical);  // idempotent: hash of canonical
  return cc;
}

std::shared_ptr<const MappingSet> Engine::CacheResultLookup(
    CacheContext* cc, const std::string& graph_name,
    const EvalOptions& options) {
  auto it = graphs_.find(graph_name);
  if (it == graphs_.end()) {
    // Unknown graph: let the normal path surface NotFound (and don't
    // store under a meaningless epoch).
    cc->result_on = false;
    return nullptr;
  }
  cc->graph_epoch = it->second.Epoch();
  cc->epoch_known = true;
  ResultCacheKey key{cc->hash, graph_name, cc->graph_epoch,
                     EvalOptionsFingerprint(options)};
  std::shared_ptr<const MappingSet> hit =
      cc->cache->GetResult(key, cc->canonical);
  if (hit != nullptr) cc->result_hit = true;
  return hit;
}

Result<PatternPtr> Engine::ParseCached(CacheContext* cc,
                                       std::string_view query,
                                       std::string* fragment) {
  if (cc->plan_on) {
    if (CachedPlanPtr plan = cc->cache->GetPlan(cc->hash, cc->canonical)) {
      cc->plan_hit = true;
      if (fragment != nullptr) *fragment = plan->fragment;
      return plan->pattern;
    }
  }
  Result<PatternPtr> parsed = Parse(query);
  if (!parsed.ok()) return parsed;
  if (cc->plan_on || fragment != nullptr) {
    std::string frag = DescribeFragment(parsed.value());
    if (fragment != nullptr) *fragment = frag;
    if (cc->plan_on) {
      auto plan = std::make_shared<CachedPlan>();
      plan->canonical_query = cc->canonical;
      plan->pattern = parsed.value();
      plan->fragment = std::move(frag);
      cc->cache->PutPlan(cc->hash, std::move(plan));
    }
  }
  return parsed;
}

void Engine::CacheStoreResult(const CacheContext& cc,
                              const std::string& graph_name,
                              const EvalOptions& options,
                              const MappingSet& result) {
  if (!cc.result_on || !cc.epoch_known || cc.result_hit) return;
  ResultCacheKey key{cc.hash, graph_name, cc.graph_epoch,
                     EvalOptionsFingerprint(options)};
  cc.cache->PutResult(key, cc.canonical, result);
}

Result<MappingSet> Engine::Query(const std::string& graph_name,
                                 std::string_view query,
                                 EvalOptions options) {
  QueryLog* log =
      options.query_log != nullptr ? options.query_log : default_query_log_;
  if (log != nullptr) {
    // QueryLogged opens its own Engine::Query frame — pushing one here too
    // would double it in every sampled stack.
    return QueryLogged(graph_name, query, std::move(options), log);
  }
  ProfileFrame profile_frame("Engine::Query");
  // Register with the in-flight registry (monitoring opt-in); the nested
  // Eval below borrows this slot and fills in fragment, threads and the
  // eval phase.
  InflightScope monitor(live_monitoring_ ? &inflight_ : nullptr, graph_name,
                        query, live_monitoring_ ? StableQueryHash(query) : 0);
  if (monitor.slot() != nullptr) monitor.slot()->SetPhase(QueryPhase::kParsing);
  CacheContext cc = ResolveCache(query, options);
  if (cc.result_on) {
    uint64_t t0 = collect_metrics_ ? NowNs() : 0;
    if (std::shared_ptr<const MappingSet> hit =
            CacheResultLookup(&cc, graph_name, options)) {
      if (collect_metrics_) {
        metrics_.GetCounter("engine.queries")->Inc();
        // The lookup+copy *is* this query's evaluation; observing it keeps
        // the latency histogram honest about what callers experienced.
        uint64_t hit_ns = NowNs() - t0;
        metrics_.GetHistogram("engine.eval_ns")->Observe(hit_ns);
        if (alerts_ != nullptr && alerts_->wants_fragments()) {
          // The fragment rides on the plan entry; peek so the lookup stays
          // out of the plan cache's hit/miss accounting.
          if (CachedPlanPtr plan = cc.cache->PeekPlan(cc.hash, cc.canonical)) {
            ObserveFragmentLatency(plan->fragment, hit_ns);
          }
        }
      }
      return MappingSet(*hit);
    }
  }
  if (!collect_metrics_) {
    PatternPtr pattern;
    {
      ProfileFrame parse_frame("Parse");
      RDFQL_ASSIGN_OR_RETURN(pattern, ParseCached(&cc, query, nullptr));
    }
    Result<MappingSet> result = Eval(graph_name, pattern, options);
    if (result.ok()) CacheStoreResult(cc, graph_name, options, result.value());
    return result;
  }
  metrics_.GetCounter("engine.queries")->Inc();
  uint64_t t0 = NowNs();
  PatternPtr pattern;
  {
    ProfileFrame parse_frame("Parse");
    RDFQL_ASSIGN_OR_RETURN(pattern, ParseCached(&cc, query, nullptr));
  }
  metrics_.GetHistogram("engine.parse_ns")->Observe(NowNs() - t0);
  Result<MappingSet> result = Eval(graph_name, pattern, options);
  if (result.ok()) CacheStoreResult(cc, graph_name, options, result.value());
  return result;
}

Result<MappingSet> Engine::QueryLogged(const std::string& graph_name,
                                       std::string_view query,
                                       EvalOptions options, QueryLog* log) {
  ProfileFrame profile_frame("Engine::Query");
  QueryLogRecord rec;
  rec.correlation_id = log->NextCorrelationId();
  rec.query_hash = StableQueryHash(query);
  rec.graph = graph_name;
  rec.query = std::string(query);
  rec.unix_ms = UnixMs();

  InflightScope monitor(live_monitoring_ ? &inflight_ : nullptr, graph_name,
                        query, rec.query_hash);
  InflightSlot* slot = monitor.slot();
  if (slot != nullptr) {
    slot->SetCorrelationId(rec.correlation_id);
    slot->SetPhase(QueryPhase::kParsing);
  }

  CacheContext cc = ResolveCache(query, options);
  if (cc.result_on) {
    uint64_t t0c = NowNs();
    if (std::shared_ptr<const MappingSet> hit =
            CacheResultLookup(&cc, graph_name, options)) {
      rec.eval_ns = NowNs() - t0c;
      rec.cache = cc.LogOutcome();
      // The fragment rides along on the plan entry; recover it without
      // touching the plan cache's hit/miss accounting.
      if (CachedPlanPtr plan = cc.cache->PeekPlan(cc.hash, cc.canonical)) {
        rec.fragment = plan->fragment;
      }
      rec.rows_out = hit->size();
      if (collect_metrics_) {
        metrics_.GetCounter("engine.queries")->Inc();
        metrics_.GetHistogram("engine.eval_ns")->Observe(rec.eval_ns);
        ObserveFragmentLatency(rec.fragment, rec.eval_ns);
      }
      rec.slow = CrossedSlowThreshold(rec, *log);
      log->Record(std::move(rec));
      return MappingSet(*hit);
    }
  }

  if (collect_metrics_) metrics_.GetCounter("engine.queries")->Inc();
  uint64_t t0 = NowNs();
  Result<PatternPtr> parsed = [&] {
    ProfileFrame parse_frame("Parse");
    return ParseCached(&cc, query, &rec.fragment);
  }();
  rec.parse_ns = NowNs() - t0;
  if (collect_metrics_) {
    metrics_.GetHistogram("engine.parse_ns")->Observe(rec.parse_ns);
  }
  if (!parsed.ok()) {
    rec.cache = cc.LogOutcome();
    rec.outcome = OutcomeString(parsed.status().code());
    rec.error = parsed.status().message();
    rec.slow = CrossedSlowThreshold(rec, *log);
    log->Record(std::move(rec));
    return parsed.status();
  }
  PatternPtr pattern = *std::move(parsed);
  if (slot != nullptr) slot->SetFragment(rec.fragment);

  Result<const Graph*> graph = GetGraph(graph_name);
  if (!graph.ok()) {
    rec.cache = cc.LogOutcome();
    rec.outcome = OutcomeString(graph.status().code());
    rec.error = graph.status().message();
    log->Record(std::move(rec));
    return graph.status();
  }

  options = WithEngineDefaults(options);
  rec.threads = options.threads < 1 ? 1 : options.threads;
  if (slot != nullptr) slot->SetThreads(rec.threads);
  if (collect_metrics_ && options.metrics == nullptr) {
    options.metrics = &metrics_;
  }
  // The log always accounts memory (its records carry peak figures); a
  // caller-provided accountant wins, exactly as on the unlogged path. With
  // a registry slot, the slot-owned accountant is used instead of a local
  // one so snapshots see the query's live figures, and the slot's token is
  // wired in so the watchdog can cancel the query mid-flight.
  ResourceAccountant acct;
  if (options.accountant == nullptr) {
    options.accountant = slot != nullptr ? slot->accountant() : &acct;
  }
  if (slot != nullptr && options.cancel == nullptr) {
    options.cancel = slot->token();
  }

  if (slot != nullptr) slot->SetPhase(QueryPhase::kEvaluating);
  t0 = NowNs();
  Result<MappingSet> result = [&] {
    ProfileFrame eval_frame("Eval");
    return Evaluator(*graph, options).EvalChecked(pattern);
  }();
  rec.eval_ns = NowNs() - t0;
  if (slot != nullptr) slot->SetPhase(QueryPhase::kFinishing);
  // One measured value into both sinks: the engine histogram and the log
  // record see the same eval_ns, so rdfql_stats over the log reproduces
  // MetricsSnapshot's percentiles exactly.
  if (collect_metrics_) {
    metrics_.GetHistogram("engine.eval_ns")->Observe(rec.eval_ns);
    ObserveFragmentLatency(rec.fragment, rec.eval_ns);
    RecordAccounting(*options.accountant);
  }
  rec.peak_mappings = options.accountant->peak_mappings();
  rec.peak_bytes = options.accountant->peak_bytes();
  rec.total_mappings = options.accountant->total_mappings();
  if (result.ok()) {
    rec.rows_out = result.value().size();
    CacheStoreResult(cc, graph_name, options, result.value());
  } else {
    RecordRejection(result.status(), WatchdogTripped(slot));
    rec.outcome = OutcomeForFailure(result.status(), slot);
    rec.error = result.status().message();
  }
  rec.cache = cc.LogOutcome();
  rec.slow = CrossedSlowThreshold(rec, *log);
  if (rec.slow && log->options().explain_slow && result.ok()) {
    // Capture the full EXPLAIN ANALYZE for the offender: one bounded
    // re-run under a tracer, governance and accounting cleared so the
    // capture itself cannot be rejected or skew the figures.
    EvalOptions explain_options = options;
    explain_options.limits = ResourceLimits{};
    explain_options.deadline = Deadline{};
    explain_options.cancel = nullptr;
    explain_options.accountant = nullptr;
    explain_options.metrics = nullptr;
    rec.explain =
        ExplainEval(**graph, pattern, dict_, explain_options).ToString();
  }
  log->Record(std::move(rec));
  return result;
}

void Engine::SetDefaultThreads(int threads) {
  default_threads_ = threads < 1 ? 1 : threads;
  // Resize (or drop) the shared pool; queries in flight are the caller's
  // responsibility — the engine is not itself thread-safe for writes.
  pool_.reset();
  if (default_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(default_threads_);
  }
}

EvalOptions Engine::WithEngineDefaults(EvalOptions options) const {
  if (options.threads <= 1 && default_threads_ > 1) {
    options.threads = default_threads_;
    options.pool = pool_.get();
  }
  // Per-query limits win wholesale; otherwise the engine default applies.
  if (!options.limits.Enforced()) {
    options.limits = default_limits_;
  }
  // Same pattern for the query log sink.
  if (options.query_log == nullptr) {
    options.query_log = default_query_log_;
  }
  return options;
}

Result<MappingSet> Engine::Eval(const std::string& graph_name,
                                const PatternPtr& pattern,
                                EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(const Graph* graph, GetGraph(graph_name));
  // Direct Eval calls register with the in-flight registry too; nested
  // calls (Query -> Eval) borrow the slot their Query already registered.
  // The pattern is printed back to its concrete syntax only when this call
  // owns a fresh registration.
  InflightRegistry* registry = live_monitoring_ ? &inflight_ : nullptr;
  std::string pattern_text;
  if (registry != nullptr && InflightScope::CurrentSlot() == nullptr) {
    pattern_text = PatternToString(pattern, dict_);
  }
  InflightScope monitor(
      registry, graph_name, pattern_text,
      pattern_text.empty() ? 0 : StableQueryHash(pattern_text));
  InflightSlot* slot = monitor.slot();
  options = WithEngineDefaults(options);
  // The fragment is classified when someone consumes it: a registry slot,
  // or a fragment-scoped alert rule wanting its latency histogram.
  std::string fragment;
  if (slot != nullptr ||
      (collect_metrics_ && alerts_ != nullptr && alerts_->wants_fragments())) {
    fragment = DescribeFragment(pattern);
  }
  if (slot != nullptr) {
    slot->SetFragment(fragment);
    slot->SetThreads(options.threads < 1 ? 1 : options.threads);
    if (options.accountant == nullptr) options.accountant = slot->accountant();
    if (options.cancel == nullptr) options.cancel = slot->token();
  }
  bool governed = options.governed();
  ProfileFrame eval_frame("Eval");
  if (!collect_metrics_ && !governed) {
    return EvalPattern(*graph, pattern, options);
  }
  if (collect_metrics_ && options.metrics == nullptr) {
    options.metrics = &metrics_;
  }
  // Per-query memory accounting rides on the metrics opt-in: a fresh
  // accountant per query, folded into the registry afterwards. A
  // caller-provided accountant wins (and the caller reads it directly).
  // Governed-only queries without metrics skip it — EvalChecked creates
  // its own accountant when the limits need one.
  ResourceAccountant acct;
  if (collect_metrics_ && options.accountant == nullptr) {
    options.accountant = &acct;
  }
  if (slot != nullptr) slot->SetPhase(QueryPhase::kEvaluating);
  uint64_t t0 = NowNs();
  Result<MappingSet> result = Evaluator(graph, options).EvalChecked(pattern);
  if (slot != nullptr) slot->SetPhase(QueryPhase::kFinishing);
  if (collect_metrics_) {
    uint64_t eval_ns = NowNs() - t0;
    metrics_.GetHistogram("engine.eval_ns")->Observe(eval_ns);
    ObserveFragmentLatency(fragment, eval_ns);
    RecordAccounting(*options.accountant);
  }
  if (!result.ok()) RecordRejection(result.status(), WatchdogTripped(slot));
  return result;
}

void Engine::RecordRejection(const Status& status, bool watchdog_cancelled) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      metrics_.GetCounter("engine.queries_rejected")->Inc();
      break;
    case StatusCode::kDeadlineExceeded:
      metrics_.GetCounter("engine.queries_deadline_exceeded")->Inc();
      break;
    case StatusCode::kCancelled:
      metrics_.GetCounter("engine.queries_cancelled")->Inc();
      if (watchdog_cancelled) {
        metrics_.GetCounter("engine.queries_watchdog_cancelled")->Inc();
      }
      break;
    default:
      break;
  }
}

namespace {

// Converts one WaitStats site into snapshot entries under `base`:
// `<base>_contended_total` (counter) and `<base>_wait_ns` (histogram).
// Bucket bounds mirror obs Histogram exactly (power-of-two exclusive upper
// bounds), so the injected data is indistinguishable from a registry
// histogram to every consumer (OpenMetrics, rdfql_stats percentiles).
void InjectWaitHistogram(const WaitStats::Totals& t, const std::string& name,
                         RegistrySnapshot* snap) {
  RegistrySnapshot::HistogramData hist;
  hist.count = t.count;
  hist.sum = t.sum_ns;
  for (int i = 0; i < WaitStats::kNumBuckets; ++i) {
    if (t.buckets[i] != 0) {
      hist.buckets.emplace_back(uint64_t{1} << i, t.buckets[i]);
    }
  }
  snap->histograms[name] = std::move(hist);
}

void InjectWaitHistogram(const WaitStats& stats, const std::string& name,
                         RegistrySnapshot* snap) {
  WaitStats::Totals t;
  stats.AddTo(&t);
  InjectWaitHistogram(t, name, snap);
}

void InjectWaitStats(const WaitStats::Totals& t, const std::string& base,
                     RegistrySnapshot* snap) {
  snap->counters[base + "_contended_total"] = t.contended;
  InjectWaitHistogram(t, base + "_wait_ns", snap);
}

void InjectWaitStats(const WaitStats& stats, const std::string& base,
                     RegistrySnapshot* snap) {
  WaitStats::Totals t;
  stats.AddTo(&t);
  InjectWaitStats(t, base, snap);
}

}  // namespace

RegistrySnapshot Engine::MetricsSnapshot() {
  RefreshInflightGauges();
  RefreshCacheMetrics();
  RegistrySnapshot snap = metrics_.Snapshot();
  // Pool and lock-contention series live outside the registry (lock-free
  // WaitStats at the contended sites; the registry's own mutexes must not
  // appear on those paths), and are merged into every snapshot here —
  // present whether or not profiling is on.
  if (pool_ != nullptr) {
    snap.counters["pool.tasks_total"] =
        pool_->tasks_total();
    snap.gauges["pool.queue_depth"] =
        static_cast<int64_t>(pool_->QueueDepth());
    InjectWaitHistogram(pool_->queue_delay_stats(), "pool.queue_delay_ns",
                        &snap);
    InjectWaitHistogram(pool_->run_time_stats(), "pool.run_ns", &snap);
  }
  InjectWaitStats(dict_.lock_wait_stats(), "lock.dictionary", &snap);
  WaitStats::Totals graph_totals;
  for (const auto& [name, graph] : graphs_) {
    graph.index_lock_wait_stats().AddTo(&graph_totals);
  }
  InjectWaitStats(graph_totals, "lock.graph_index", &snap);
  if (query_cache_ != nullptr) {
    InjectWaitStats(query_cache_->lock_wait_stats(), "lock.query_cache",
                    &snap);
  }
  if (profiler_ != nullptr) {
    snap.counters["profiler.ticks_total"] = profiler_->ticks();
    snap.counters["profiler.samples_total"] = profiler_->samples();
  }
  if (alerts_ != nullptr) {
    // Counter/gauge families stay disjoint (OpenMetrics would reject
    // `engine.alerts_firing` as both): the cumulative transition counters
    // render as engine_alerts_{pending,fired,resolved}_total, the live
    // count as the engine_alerts_firing gauge.
    snap.counters["engine.alerts_pending"] = alerts_->pending_total();
    snap.counters["engine.alerts_fired"] = alerts_->firing_total();
    snap.counters["engine.alerts_resolved"] = alerts_->resolved_total();
    snap.gauges["engine.alerts_firing"] = alerts_->firing_now();
  }
  snap.gauges["engine.uptime_seconds"] = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  return snap;
}

void Engine::RefreshCacheMetrics() {
  if (query_cache_ == nullptr) return;
  QueryCacheStats s = query_cache_->Stats();
  auto fold = [this](const char* name, uint64_t total, uint64_t* seen) {
    if (total > *seen) {
      metrics_.GetCounter(name)->Inc(total - *seen);
      *seen = total;
    }
  };
  fold("engine.cache_hit", s.hits(), &folded_cache_hits_);
  fold("engine.cache_miss", s.misses(), &folded_cache_misses_);
  fold("engine.cache_eviction", s.evictions(), &folded_cache_evictions_);
  fold("engine.cache_bypass", s.bypasses, &folded_cache_bypasses_);
  metrics_.GetGauge("engine.cache_plan_entries")
      ->Set(static_cast<int64_t>(s.plan_entries));
  metrics_.GetGauge("engine.cache_result_entries")
      ->Set(static_cast<int64_t>(s.result_entries));
  metrics_.GetGauge("engine.cache_result_bytes")
      ->Set(static_cast<int64_t>(s.result_bytes));
}

void Engine::RefreshInflightGauges() {
  metrics_.GetGauge("engine.queries_active")
      ->Set(static_cast<int64_t>(inflight_.active()));
  uint64_t live_mappings = 0;
  uint64_t live_bytes = 0;
  if (inflight_.active() != 0) {
    for (const InflightQueryInfo& q : inflight_.Snapshot().queries) {
      live_mappings += q.live_mappings;
      live_bytes += q.live_bytes;
    }
  }
  metrics_.GetGauge("inflight.live_mappings")
      ->Set(static_cast<int64_t>(live_mappings));
  metrics_.GetGauge("inflight.live_bytes")
      ->Set(static_cast<int64_t>(live_bytes));
}

Status Engine::StartTelemetry(const TelemetryOptions& options) {
  if (telemetry_ != nullptr) {
    return Status::InvalidArgument("telemetry sampler already running");
  }
  EnableLiveMonitoring(true);
  TelemetryOptions effective = options;
  // Installed alert rules ride every sampler: the tick records the history
  // sample and evaluates the rules against it.
  if (history_ != nullptr) effective.history = history_.get();
  if (alerts_ != nullptr) effective.alerts = alerts_.get();
  telemetry_ =
      std::make_unique<TelemetrySampler>(&metrics_, &inflight_, effective);
  return Status::Ok();
}

void Engine::StopTelemetry() { telemetry_.reset(); }

Status Engine::SetAlertRules(const std::string& rules_json,
                             const AlertLogOptions& log_options,
                             const HistoryOptions& history_options) {
  if (telemetry_ != nullptr) {
    return Status::InvalidArgument(
        "stop telemetry before changing alert rules");
  }
  std::vector<AlertRule> rules;
  std::string error;
  if (!ParseAlertRules(rules_json, &rules, &error)) {
    return Status::InvalidArgument("alert rules: " + error);
  }
  auto history = std::make_unique<MetricsHistory>(history_options);
  auto alerts = std::make_unique<AlertEngine>(std::move(rules), log_options);
  if (!alerts->log_ok()) {
    return Status::InvalidArgument("alert log: " + alerts->log_error());
  }
  history_ = std::move(history);
  alerts_ = std::move(alerts);
  // Rules without metrics would evaluate an empty ring forever.
  EnableMetrics(true);
  return Status::Ok();
}

Status Engine::ClearAlertRules() {
  if (telemetry_ != nullptr) {
    return Status::InvalidArgument(
        "stop telemetry before clearing alert rules");
  }
  alerts_.reset();
  history_.reset();
  return Status::Ok();
}

void Engine::ObserveFragmentLatency(const std::string& fragment,
                                    uint64_t eval_ns) {
  if (alerts_ == nullptr || fragment.empty() ||
      !alerts_->WantsFragment(fragment)) {
    return;
  }
  metrics_.GetHistogram(FragmentMetricName("engine.eval_ns", fragment))
      ->Observe(eval_ns);
}

Status Engine::EnableProfiling(uint64_t hz) {
  if (profiling()) {
    return Status::InvalidArgument("profiler already running");
  }
  // A fresh Profiler per enable: each profiling window aggregates into its
  // own trie, so dumps describe exactly one window.
  auto profiler = std::make_unique<Profiler>(ProfilerOptions{hz});
  if (!profiler->Start()) {
    return Status::InvalidArgument(
        "another profiler is active in this process");
  }
  profiler_ = std::move(profiler);
  return Status::Ok();
}

void Engine::DisableProfiling() {
  if (profiler_ != nullptr) profiler_->Stop();
}


void Engine::RecordAccounting(const ResourceAccountant& acct) {
  metrics_.GetGauge("engine.peak_mappings")
      ->Set(static_cast<int64_t>(acct.peak_mappings()));
  metrics_.GetGauge("engine.peak_bytes")
      ->Set(static_cast<int64_t>(acct.peak_bytes()));
  metrics_.GetCounter("engine.total_mappings")->Inc(acct.total_mappings());
  metrics_.GetHistogram("engine.peak_mappings_per_query")
      ->Observe(acct.peak_mappings());
  metrics_.GetHistogram("engine.peak_bytes_per_query")
      ->Observe(acct.peak_bytes());
}

Result<QueryExplanation> Engine::QueryExplained(const std::string& graph_name,
                                                std::string_view query,
                                                EvalOptions options) {
  ProfileFrame profile_frame("Engine::QueryExplained");
  QueryLog* log =
      options.query_log != nullptr ? options.query_log : default_query_log_;
  QueryLogRecord rec;
  if (log != nullptr) {
    rec.correlation_id = log->NextCorrelationId();
    rec.query_hash = StableQueryHash(query);
    rec.graph = graph_name;
    rec.query = std::string(query);
    rec.unix_ms = UnixMs();
  }
  InflightScope monitor(live_monitoring_ ? &inflight_ : nullptr, graph_name,
                        query, live_monitoring_ ? StableQueryHash(query) : 0);
  InflightSlot* slot = monitor.slot();
  if (slot != nullptr) {
    slot->SetCorrelationId(rec.correlation_id);
    slot->SetPhase(QueryPhase::kParsing);
  }
  QueryExplanation out;
  out.correlation_id = rec.correlation_id;
  // EXPLAIN consults the plan cache only: it always evaluates (serving a
  // materialized result would leave nothing to instrument), so its plan
  // tree and counters are the uncached plan exactly. The instrumented
  // run's answer is still stored for later plain queries to hit.
  CacheContext cc = ResolveCache(query, options);
  if (collect_metrics_) metrics_.GetCounter("engine.queries")->Inc();
  uint64_t t0 = NowNs();
  Result<PatternPtr> parsed = [&] {
    ProfileFrame parse_frame("Parse");
    return ParseCached(&cc, query, &rec.fragment);
  }();
  out.parse_ns = NowNs() - t0;
  if (!parsed.ok()) {
    if (log != nullptr) {
      rec.parse_ns = out.parse_ns;
      rec.cache = cc.LogOutcome();
      rec.outcome = OutcomeString(parsed.status().code());
      rec.error = parsed.status().message();
      rec.slow = CrossedSlowThreshold(rec, *log);
      log->Record(std::move(rec));
    }
    return parsed.status();
  }
  PatternPtr pattern = *std::move(parsed);
  rec.parse_ns = out.parse_ns;
  if (slot != nullptr) slot->SetFragment(rec.fragment);
  if (cc.cache != nullptr) {
    out.cache_note =
        cc.bypass
            ? "bypass"
            : std::string("plan=") +
                  (!cc.plan_on ? "off"
                               : cc.plan_hit ? "hit" : "miss") +
                  " result=" + (!cc.result_on ? "off" : "live");
  }
  Result<const Graph*> graph_result = GetGraph(graph_name);
  if (!graph_result.ok()) {
    if (log != nullptr) {
      rec.cache = cc.LogOutcome();
      rec.outcome = OutcomeString(graph_result.status().code());
      rec.error = graph_result.status().message();
      log->Record(std::move(rec));
    }
    return graph_result.status();
  }
  const Graph* graph = *graph_result;
  if (cc.result_on) {
    // Epoch read before evaluation, mirroring CacheResultLookup: with no
    // concurrent writes during queries, this is the state the traced
    // evaluation sees.
    cc.graph_epoch = graph->Epoch();
    cc.epoch_known = true;
  }
  options = WithEngineDefaults(options);
  if (slot != nullptr) {
    slot->SetThreads(options.threads < 1 ? 1 : options.threads);
  }
  if (collect_metrics_ && options.metrics == nullptr) {
    options.metrics = &metrics_;
  }
  // EXPLAIN ANALYZE always accounts memory, metrics opt-in or not. With a
  // registry slot the slot-owned accountant is used, so snapshots see the
  // instrumented run's live figures.
  ResourceAccountant local_acct;
  ResourceAccountant* acct = slot != nullptr ? slot->accountant() : &local_acct;
  options.accountant = acct;
  // Arm governance around the traced evaluation: ExplainEval's inner
  // Evaluator polls the thread-local token, so installing it here puts
  // the instrumented run under the same limits as Engine::Eval. A slot's
  // token is installed even for ungoverned queries — that is the watchdog's
  // only way in.
  out.limits = options.limits;
  bool governed = options.governed();
  CancellationToken local_token;
  CancellationToken* token = options.cancel != nullptr ? options.cancel
                             : slot != nullptr         ? slot->token()
                                                       : &local_token;
  bool enforced = governed || slot != nullptr;
  if (governed) {
    Deadline deadline = options.deadline;
    if (options.limits.max_wall_ms != 0) {
      Deadline budget = Deadline::AfterMs(options.limits.max_wall_ms);
      if (budget.SoonerThan(deadline)) deadline = budget;
    }
    token->ArmDeadline(deadline);
    if (options.limits.max_live_mappings != 0 ||
        options.limits.max_bytes != 0) {
      acct->ArmCaps(options.limits.max_live_mappings, options.limits.max_bytes,
                    token);
    }
  }
  if (slot != nullptr) slot->SetPhase(QueryPhase::kEvaluating);
  t0 = NowNs();
  {
    std::optional<ScopedCancellation> install;
    if (enforced) install.emplace(token);
    ProfileFrame eval_frame("Eval");
    out.explanation = ExplainEval(*graph, pattern, dict_, options);
  }
  acct->DisarmCaps();
  out.eval_ns = NowNs() - t0;
  if (slot != nullptr) slot->SetPhase(QueryPhase::kFinishing);
  out.peak_mappings = acct->peak_mappings();
  out.peak_bytes = acct->peak_bytes();
  out.total_mappings = acct->total_mappings();
  if (collect_metrics_) {
    metrics_.GetHistogram("engine.parse_ns")->Observe(out.parse_ns);
    Histogram* eval_hist = metrics_.GetHistogram("engine.eval_ns");
    eval_hist->Observe(out.eval_ns);
    ObserveFragmentLatency(rec.fragment, out.eval_ns);
    out.hist_queries = eval_hist->Count();
    out.eval_p50_ns = eval_hist->Percentile(0.5);
    out.eval_p90_ns = eval_hist->Percentile(0.9);
    out.eval_p99_ns = eval_hist->Percentile(0.99);
    RecordAccounting(*acct);
  }
  if (out.correlation_id != 0 && out.explanation.plan != nullptr) {
    out.explanation.plan->counters.emplace_back("correlation_id",
                                                out.correlation_id);
  }
  if (!(enforced && token->cancelled())) {
    CacheStoreResult(cc, graph_name, options, out.explanation.result);
  }
  if (log != nullptr) {
    rec.cache = cc.LogOutcome();
    rec.eval_ns = out.eval_ns;
    rec.threads = options.threads < 1 ? 1 : options.threads;
    rec.rows_out = out.explanation.result.size();
    rec.peak_mappings = out.peak_mappings;
    rec.peak_bytes = out.peak_bytes;
    rec.total_mappings = out.total_mappings;
    if (enforced && token->cancelled()) {
      Status status = token->status();
      rec.outcome = OutcomeForFailure(status, slot);
      rec.error = status.message();
    }
    rec.slow = CrossedSlowThreshold(rec, *log);
    // The instrumented plan is already in hand — no re-run needed here.
    if (rec.slow && log->options().explain_slow) {
      rec.explain = out.explanation.ToString();
    }
    log->Record(std::move(rec));
  }
  if (enforced && token->cancelled()) {
    Status status = token->status();
    RecordRejection(status, WatchdogTripped(slot));
    return status;
  }
  return out;
}

Result<TranslationExplanation> Engine::TranslateExplained(
    std::string_view query, const TranslateOptions& options) {
  TranslationExplanation out;
  out.report.set_tracer(options.tracer);
  PipelineReport* report = &out.report;

  // Pipeline governance: the AST-node cap folds into the stage limits (the
  // exponential stages pre-flight against it), the wall budget arms a token
  // the stages poll, and each stage's output is checked before the next one
  // runs so the error names the offending stage.
  NormalFormLimits stage_limits = options.limits;
  if (options.resources.max_ast_nodes != 0 &&
      (stage_limits.max_output_nodes == 0 ||
       options.resources.max_ast_nodes < stage_limits.max_output_nodes)) {
    stage_limits.max_output_nodes = options.resources.max_ast_nodes;
  }
  CancellationToken local_token;
  CancellationToken* token =
      options.cancel != nullptr ? options.cancel : &local_token;
  bool governed =
      options.cancel != nullptr || options.resources.max_wall_ms != 0;
  std::optional<ScopedCancellation> install;
  if (governed) {
    if (options.resources.max_wall_ms != 0) {
      token->ArmDeadline(Deadline::AfterMs(options.resources.max_wall_ms));
    }
    install.emplace(token);
  }
  // Run after every stage: a tripped token wins (the stage may have handed
  // back a partial rewrite), then the stage's output size is checked.
  auto stage_guard = [&](const char* stage,
                         const PatternPtr& result) -> Status {
    if (governed && token->cancelled()) return token->status();
    if (options.resources.max_ast_nodes != 0) {
      uint64_t nodes = ShapeOfPattern(*result).nodes;
      if (nodes > options.resources.max_ast_nodes) {
        return Status::ResourceExhausted(
            std::string(stage) + " produced " + std::to_string(nodes) +
            " AST nodes (max_ast_nodes=" +
            std::to_string(options.resources.max_ast_nodes) +
            "); raise the limit or rewrite the query");
      }
    }
    return Status::Ok();
  };

  PatternPtr p;
  {
    ScopedStage stage(report, "parse", PatternShape{});
    Result<PatternPtr> parsed = Parse(query);
    if (!parsed.ok()) {
      stage.SetError(parsed.status().ToString());
      return parsed.status();
    }
    p = std::move(*parsed);
    stage.SetOut(ShapeOfPattern(*p));
    stage.SetDetail(DescribeFragment(p));
  }
  out.input = p;
  RDFQL_RETURN_IF_ERROR(stage_guard("parse", p));

  if (options.optimize) {
    ScopedStage stage(report, "optimize", ShapeOfPattern(*p));
    // Structure-only rewrites: no graph is bound at translation time, so
    // the optimizer runs against empty statistics.
    GraphStats stats;
    p = Optimizer(&stats).Optimize(p);
    stage.SetOut(ShapeOfPattern(*p));
    RDFQL_RETURN_IF_ERROR(stage_guard("optimize", p));
  }

  if (options.select_free && p->Uses(PatternKind::kSelect)) {
    p = SelectFreeVersion(p, &dict_, report);
    RDFQL_RETURN_IF_ERROR(stage_guard("select_free", p));
  }

  if (options.wd_to_simple) {
    RDFQL_ASSIGN_OR_RETURN(
        p, WellDesignedToSimple(p, options.max_subtrees, report));
    RDFQL_RETURN_IF_ERROR(stage_guard("wd_to_simple", p));
  }

  if (options.eliminate_ns && p->Uses(PatternKind::kNs)) {
    RDFQL_ASSIGN_OR_RETURN(p, EliminateNs(p, stage_limits, report));
    RDFQL_RETURN_IF_ERROR(stage_guard("ns_elimination", p));
  }

  if (options.desugar_minus && p->Uses(PatternKind::kMinus)) {
    p = DesugarMinus(p, &dict_, report);
    RDFQL_RETURN_IF_ERROR(stage_guard("desugar_minus", p));
  }

  if (options.union_normal_form && !p->Uses(PatternKind::kNs)) {
    RDFQL_ASSIGN_OR_RETURN(std::vector<PatternPtr> disjuncts,
                           UnionNormalForm(p, stage_limits, report));
    p = Pattern::UnionAll(disjuncts);
    RDFQL_RETURN_IF_ERROR(stage_guard("union_normal_form", p));
  }

  out.output = p;
  return out;
}

Result<bool> Engine::Ask(const std::string& graph_name,
                         std::string_view query, EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return !result.empty();
}

Result<std::string> Engine::QueryCsv(const std::string& graph_name,
                                     std::string_view query,
                                     EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteCsv(result, dict_);
}

Result<std::string> Engine::QueryJson(const std::string& graph_name,
                                      std::string_view query,
                                      EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteResultsJson(result, dict_);
}

PatternReport Engine::Classify(const PatternPtr& pattern,
                               const MonotonicityOptions& options) {
  PatternReport report;
  report.fragment = DescribeFragment(pattern);
  report.well_designed = IsWellDesigned(pattern);
  report.union_well_designed = IsUnionOfWellDesigned(pattern);
  report.simple_pattern = IsSimplePattern(pattern);
  report.ns_pattern = IsNsPattern(pattern);
  report.syntactically_subsumption_free =
      IsSyntacticallySubsumptionFree(pattern);
  report.looks_weakly_monotone =
      LooksWeaklyMonotone(pattern, &dict_, options);
  report.looks_monotone = LooksMonotone(pattern, &dict_, options);
  report.looks_subsumption_free =
      LooksSubsumptionFree(pattern, &dict_, options);
  return report;
}

}  // namespace rdfql
