#include "core/engine.h"

#include "algebra/result_io.h"
#include "analysis/fragments.h"
#include "analysis/well_designed.h"
#include "rdf/ntriples.h"

namespace rdfql {

Status Engine::LoadGraphText(const std::string& name,
                             std::string_view ntriples) {
  Graph& g = graphs_[name];
  return ParseNTriples(ntriples, &dict_, &g);
}

void Engine::PutGraph(const std::string& name, Graph graph) {
  graphs_[name] = std::move(graph);
}

Result<const Graph*> Engine::GetGraph(const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return &it->second;
}

Result<PatternPtr> Engine::Parse(std::string_view query) {
  return ParsePattern(query, &dict_);
}

Result<ConstructQuery> Engine::ParseConstructQuery(std::string_view query) {
  RDFQL_ASSIGN_OR_RETURN(ParsedConstruct parsed,
                         ParseConstruct(query, &dict_));
  return ConstructQuery(std::move(parsed.templ), std::move(parsed.where));
}

Result<MappingSet> Engine::Query(const std::string& graph_name,
                                 std::string_view query,
                                 EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(PatternPtr pattern, Parse(query));
  return Eval(graph_name, pattern, options);
}

Result<MappingSet> Engine::Eval(const std::string& graph_name,
                                const PatternPtr& pattern,
                                EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(const Graph* graph, GetGraph(graph_name));
  return EvalPattern(*graph, pattern, options);
}

Result<bool> Engine::Ask(const std::string& graph_name,
                         std::string_view query, EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return !result.empty();
}

Result<std::string> Engine::QueryCsv(const std::string& graph_name,
                                     std::string_view query,
                                     EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteCsv(result, dict_);
}

Result<std::string> Engine::QueryJson(const std::string& graph_name,
                                      std::string_view query,
                                      EvalOptions options) {
  RDFQL_ASSIGN_OR_RETURN(MappingSet result,
                         Query(graph_name, query, options));
  return WriteResultsJson(result, dict_);
}

PatternReport Engine::Classify(const PatternPtr& pattern,
                               const MonotonicityOptions& options) {
  PatternReport report;
  report.fragment = DescribeFragment(pattern);
  report.well_designed = IsWellDesigned(pattern);
  report.union_well_designed = IsUnionOfWellDesigned(pattern);
  report.simple_pattern = IsSimplePattern(pattern);
  report.ns_pattern = IsNsPattern(pattern);
  report.syntactically_subsumption_free =
      IsSyntacticallySubsumptionFree(pattern);
  report.looks_weakly_monotone =
      LooksWeaklyMonotone(pattern, &dict_, options);
  report.looks_monotone = LooksMonotone(pattern, &dict_, options);
  report.looks_subsumption_free =
      LooksSubsumptionFree(pattern, &dict_, options);
  return report;
}

}  // namespace rdfql
