#ifndef RDFQL_CORE_RDFQL_H_
#define RDFQL_CORE_RDFQL_H_

/// Umbrella header for the rdfql library — a from-scratch implementation
/// of the query languages, transformations and complexity reductions of
/// "Designing a Query Language for RDF: Marrying Open and Closed Worlds"
/// (Arenas & Ugarte, PODS 2016).

#include "algebra/builtin.h"            // built-in conditions R
#include "algebra/mapping.h"            // mappings µ
#include "algebra/mapping_set.h"        // mapping sets Ω and the algebra
#include "algebra/pattern.h"            // graph patterns (incl. NS, MINUS)
#include "algebra/pattern_printer.h"    // rendering patterns and tables
#include "algebra/result_io.h"          // CSV / JSON result serialization
#include "analysis/containment.h"       // CQ containment (freezing)
#include "analysis/fragments.h"         // SPARQL[·] / SP / USP classifiers
#include "analysis/monotonicity.h"      // randomized property testers
#include "analysis/well_designed.h"     // Definition 3.4
#include "complexity/cardinality.h"     // ϕ_k encodings (Thm 7.3)
#include "complexity/cnf.h"             // propositional substrate
#include "complexity/coloring.h"        // Exact-M_k-Colorability substrate
#include "complexity/combiner.h"        // Lemma H.1
#include "complexity/hierarchy_reductions.h"  // Thm 7.2 / Thm 7.3
#include "complexity/qbf.h"             // PSPACE backdrop (full SPARQL)
#include "complexity/sat_reduction.h"   // Thm 7.1
#include "complexity/sat_solver.h"      // DPLL oracle
#include "construct/construct_query.h"  // Section 6
#include "core/engine.h"                // the façade
#include "core/query_cache.h"           // sharded plan/result caches
#include "eval/evaluator.h"             // ⟦·⟧G
#include "eval/explain.h"               // EXPLAIN-style tracing
#include "eval/ns.h"                    // ⟦·⟧max
#include "eval/reference_evaluator.h"   // differential-testing oracle
#include "eval/wd_evaluator.h"          // top-down well-designed evaluation
#include "fo/fo_eval.h"                 // model checking
#include "fo/formula.h"                 // L^P_RDF formulas
#include "fo/interpolant_search.h"      // Theorem 4.1, made effective
#include "fo/sparql_to_fo.h"            // Lemmas C.1/C.2
#include "fo/structure.h"               // Definition C.5
#include "fo/ucq.h"                     // Lemma C.7
#include "fo/ucq_to_sparql.h"           // Theorem C.8
#include "optimize/optimizer.h"         // rule-based pattern optimizer
#include "optimize/stats.h"             // cardinality statistics
#include "parser/parser.h"              // the paper-syntax parser
#include "rdf/dictionary.h"             // IRI/variable interning
#include "rdf/dot.h"                    // Graphviz export
#include "rdf/graph.h"                  // RDF graphs
#include "rdf/ntriples.h"               // simplified N-Triples I/O
#include "transform/ns_elimination.h"   // Theorem 5.1
#include "update/update.h"              // SPARQL-Update-style mutation
#include "transform/opt_rewriter.h"     // OPT ≡ NS(...), MINUS desugaring
#include "transform/select_free.h"      // Definition F.1
#include "transform/union_normal_form.h"  // Prop D.1 / Lemma D.2
#include "transform/wd_to_simple.h"     // Proposition 5.6
#include "workload/graph_generator.h"   // synthetic data
#include "workload/pattern_generator.h" // random patterns
#include "workload/scenarios.h"         // the paper's figures
#include "workload/university_generator.h"  // LUBM-style dataset

#endif  // RDFQL_CORE_RDFQL_H_
