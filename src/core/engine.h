#ifndef RDFQL_CORE_ENGINE_H_
#define RDFQL_CORE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "analysis/monotonicity.h"
#include "construct/construct_query.h"
#include "core/query_cache.h"
#include "eval/evaluator.h"
#include "eval/explain.h"
#include "obs/accounting.h"
#include "obs/alerts.h"
#include "obs/history.h"
#include "obs/inflight.h"
#include "obs/metrics.h"
#include "obs/pipeline.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/telemetry.h"
#include "parser/parser.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "transform/union_normal_form.h"
#include "util/limits.h"
#include "util/status.h"

namespace rdfql {

/// EXPLAIN ANALYZE at the engine level: the per-operator plan (cardinality,
/// wall time, work counters) plus the query's phase timings.
struct QueryExplanation {
  Explanation explanation;  // result + instrumented plan tree
  uint64_t parse_ns = 0;
  uint64_t eval_ns = 0;
  /// Resource-accountant figures for this query: the high-water mark of
  /// live mappings / approximate bytes across all intermediate sets (result
  /// included), and the cumulative number of mappings materialized.
  uint64_t peak_mappings = 0;
  uint64_t peak_bytes = 0;
  uint64_t total_mappings = 0;
  /// The resource limits the query ran under (engine default or per-query
  /// override; all-zero when ungoverned).
  ResourceLimits limits;
  /// Query-log correlation id (0 when no QueryLog was attached). Also
  /// stamped on the plan root as the `correlation_id` counter, so a log
  /// record and an EXPLAIN plan can be joined after the fact.
  uint64_t correlation_id = 0;
  /// Engine-wide eval-latency percentiles (the engine.eval_ns histogram,
  /// this query included) at the time of the query. Populated when engine
  /// metrics are enabled; hist_queries stays 0 otherwise and the `time:`
  /// line is omitted.
  uint64_t hist_queries = 0;
  double eval_p50_ns = 0.0;
  double eval_p90_ns = 0.0;
  double eval_p99_ns = 0.0;
  /// Query-cache disposition, e.g. "plan=hit result=live" (EXPLAIN always
  /// evaluates — it never serves a materialized result, so its plan and
  /// counters are the uncached plan exactly). Empty — and the `cache:`
  /// line omitted — when the engine has no cache attached.
  std::string cache_note;

  const MappingSet& result() const { return explanation.result; }

  /// Phase header, limits line, cache line (with a cache attached),
  /// percentile line (with metrics enabled), then the plan tree, e.g.
  ///   parse: 3.1us  eval: 120.4us  mem: peak 42 mappings / 3.2KiB
  ///   limits: wall=100ms live_mappings=10000
  ///   cache: plan=hit result=live
  ///   time: eval p50=110.2us p90=118.9us p99=119.8us (n=12)
  ///   AND [1] (t=118.0us join_probes=4)
  ///     ...
  std::string ToString() const;
};

/// Which translation stages `Engine::TranslateExplained` runs, in pipeline
/// order: parse → optimize → select_free → wd_to_simple → ns_elimination →
/// desugar_minus → union_normal_form. Conditional stages only fire when the
/// pattern still uses the construct they remove.
struct TranslateOptions {
  bool optimize = true;
  /// Strip SELECT via Definition F.1 (when SELECT occurs).
  bool select_free = true;
  /// Prop 5.6 translation to a simple pattern; opt-in because it requires a
  /// well-designed input and changes the shape of everything downstream.
  bool wd_to_simple = false;
  /// Thm 5.1 NS-elimination (when NS occurs).
  bool eliminate_ns = true;
  /// Appendix D MINUS desugaring into OPT+FILTER; opt-in.
  bool desugar_minus = false;
  /// Prop D.1 UNION normal form (skipped while NS is still present —
  /// NS does not distribute over UNION).
  bool union_normal_form = true;
  NormalFormLimits limits;
  size_t max_subtrees = 1u << 16;
  /// Optional tracer to mirror the stages onto (one "STAGE" span each), so
  /// a translation and the following evaluation share a Chrome trace.
  Tracer* tracer = nullptr;
  /// Resource budgets for the pipeline itself: max_ast_nodes caps every
  /// stage's output (the exponential stages pre-flight it and refuse before
  /// materializing, naming the offending stage); max_wall_ms bounds the
  /// whole translation. Evaluation fields are ignored here.
  ResourceLimits resources;
  /// Optional external cancellation for the translation.
  CancellationToken* cancel = nullptr;
};

/// EXPLAIN for the translation pipeline: the input and output patterns plus
/// a per-stage PipelineReport (wall time, shape in/out, blowup ratio).
struct TranslationExplanation {
  PatternPtr input;
  PatternPtr output;
  PipelineReport report;

  std::string ToString() const { return report.ToText(); }
  std::string ToJson() const { return report.ToJson(); }
};

/// What the static and empirical analyzers say about a pattern — the
/// vocabulary of the paper in one struct.
struct PatternReport {
  std::string fragment;            // e.g. "SPARQL[AUF]", "SP-SPARQL"
  bool well_designed = false;      // Definition 3.4 (AOF)
  bool union_well_designed = false;  // Section 3.3 (AUOF)
  bool simple_pattern = false;     // Definition 5.3
  bool ns_pattern = false;         // Definition 5.7
  bool syntactically_subsumption_free = false;
  bool looks_weakly_monotone = false;   // randomized, Definition 3.2
  bool looks_monotone = false;          // randomized
  bool looks_subsumption_free = false;  // randomized, Section 5.2
};

/// The top-level façade: owns the dictionary and a set of named graphs,
/// and exposes parsing, evaluation, classification and the paper's
/// transformations behind one object. All examples and the REPL go
/// through this class; libraries embedding rdfql may also use the
/// per-module headers directly.
class Engine {
 public:
  Engine() = default;
  ~Engine();  // stops the telemetry sampler before members go away

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Dictionary* dict() { return &dict_; }

  /// Parses simplified N-Triples into (or on top of) the named graph.
  Status LoadGraphText(const std::string& name, std::string_view ntriples);

  /// Registers/replaces a graph under `name`.
  void PutGraph(const std::string& name, Graph graph);

  /// Fails with NotFound for unknown names.
  Result<const Graph*> GetGraph(const std::string& name) const;

  /// Parses a graph pattern in the paper's syntax.
  Result<PatternPtr> Parse(std::string_view query);

  /// Parses a CONSTRUCT query.
  Result<ConstructQuery> ParseConstructQuery(std::string_view query);

  /// Parse + evaluate against a named graph.
  Result<MappingSet> Query(const std::string& graph_name,
                           std::string_view query,
                           EvalOptions options = {});

  /// Parse + evaluate under a tracer: returns the results together with a
  /// per-operator EXPLAIN ANALYZE plan, phase timings and the query's peak
  /// mapping/byte figures. Honors `options`' join/NS choices (its
  /// tracer/trace_dict/accountant fields are overridden).
  Result<QueryExplanation> QueryExplained(const std::string& graph_name,
                                          std::string_view query,
                                          EvalOptions options = {});

  /// EXPLAIN for the translation pipeline: parses `query` and pushes it
  /// through the enabled transformation stages, recording wall time and
  /// size-in/size-out (AST nodes, vars, UNION width) per stage — the
  /// empirical face of the paper's blowup bounds. Fails with the first
  /// stage error (limits, non-well-designed input, parse errors).
  Result<TranslationExplanation> TranslateExplained(
      std::string_view query, const TranslateOptions& options = {});

  /// Evaluates a parsed pattern against a named graph.
  Result<MappingSet> Eval(const std::string& graph_name,
                          const PatternPtr& pattern,
                          EvalOptions options = {});

  /// ASK-style query: true iff the pattern has at least one answer.
  Result<bool> Ask(const std::string& graph_name, std::string_view query,
                   EvalOptions options = {});

  /// Query + CSV / W3C-style JSON serialization in one call.
  Result<std::string> QueryCsv(const std::string& graph_name,
                               std::string_view query,
                               EvalOptions options = {});
  Result<std::string> QueryJson(const std::string& graph_name,
                                std::string_view query,
                                EvalOptions options = {});

  /// Runs every classifier over the pattern (the randomized ones with
  /// `options`).
  PatternReport Classify(const PatternPtr& pattern,
                         const MonotonicityOptions& options = {});

  // --- Parallelism ---

  /// Engine-wide default for EvalOptions::threads. Queries whose options
  /// leave `threads` at 1 (the default) adopt this value and run on the
  /// engine's shared thread pool; options that explicitly ask for more
  /// threads keep their own setting. 1 (the default) keeps every query on
  /// the bit-for-bit serial path.
  void SetDefaultThreads(int threads);
  int default_threads() const { return default_threads_; }

  // --- Resource governance ---

  /// Engine-wide default ResourceLimits. Queries whose options carry no
  /// limits of their own adopt these; options with any limit set keep their
  /// own (per-query override wins wholesale, field-by-field merging would
  /// make overrides impossible to reason about). The default default —
  /// all zeros — enforces nothing. Rejections surface as
  /// kDeadlineExceeded / kResourceExhausted statuses and as
  /// `engine.queries_rejected` / `engine.queries_deadline_exceeded` /
  /// `engine.queries_cancelled` counters in the metrics registry.
  void SetDefaultLimits(const ResourceLimits& limits) {
    default_limits_ = limits;
  }
  const ResourceLimits& default_limits() const { return default_limits_; }

  // --- Observability ---

  /// Engine-wide default QueryLog. While set, Query / QueryExplained (and
  /// everything routed through them: Ask, QueryCsv, QueryJson) write one
  /// QueryLogRecord per query — identity, fragment, phase timings, memory
  /// figures and the typed outcome — to the sink. Queries whose options
  /// carry their own EvalOptions::query_log keep it (per-query override
  /// wins wholesale, mirroring the limits pattern). The log must outlive
  /// the engine or be detached with SetQueryLog(nullptr) first; null (the
  /// default) keeps the pre-log code path bit for bit.
  void SetQueryLog(QueryLog* log) { default_query_log_ = log; }
  QueryLog* query_log() const { return default_query_log_; }

  /// Engine-wide QueryCache. While set, the text-query entry points
  /// (Query, Ask, QueryCsv, QueryJson; QueryExplained for the plan side)
  /// consult it: the plan cache skips re-parsing repeated query text, the
  /// result cache (when the cache's sizing enables it) serves whole
  /// MappingSets keyed by (canonical query hash, graph name, graph epoch,
  /// options fingerprint) — bit-for-bit the uncached answer, since graph
  /// mutations move Graph::Epoch and stale entries can never hit. Queries
  /// whose options carry EvalOptions::use_plan_cache / use_result_cache
  /// override the default wholesale, mirroring the limits pattern. The
  /// cache must outlive the engine or be detached with
  /// SetQueryCache(nullptr) first; null (the default) keeps the pre-cache
  /// code path bit for bit. Pattern-based Eval() never caches — it has no
  /// query text to key on.
  void SetQueryCache(QueryCache* cache);
  QueryCache* query_cache() const { return query_cache_; }

  /// Turns metric collection on/off (off by default: the uninstrumented
  /// path stays zero-overhead). While enabled, every Query/Eval records
  /// `engine.*` phase timings and `eval.*` operator counters into this
  /// engine's registry.
  void EnableMetrics(bool on = true) { collect_metrics_ = on; }
  bool metrics_enabled() const { return collect_metrics_; }

  /// The engine's registry (always present; callers may add their own
  /// metrics next to the engine's).
  MetricsRegistry* metrics() { return &metrics_; }

  /// Point-in-time copy of every engine metric. Refreshes the inflight
  /// gauges (engine.queries_active, inflight.*) first, so a scrape sees the
  /// registry's current occupancy without per-query gauge writes.
  RegistrySnapshot MetricsSnapshot();

  /// Zeroes the engine's metrics (e.g. between bench cases).
  void ResetMetrics() { metrics_.Reset(); }

  // --- Live monitoring ---

  /// Turns the in-flight query registry on/off (off by default: the
  /// unmonitored path stays as cheap as before this feature existed).
  /// While enabled, every Query / QueryExplained / Eval registers a slot —
  /// correlation id, query hash, fragment, current phase, live memory
  /// figures, a cancellation handle — visible through InflightSnapshot(),
  /// the shell's `.ps` command and rdfql_top. Registration also wires the
  /// slot's accountant and token into queries that brought none of their
  /// own, which is what lets the watchdog cancel them mid-flight.
  void EnableLiveMonitoring(bool on = true) { live_monitoring_ = on; }
  bool live_monitoring_enabled() const { return live_monitoring_; }

  /// The registry itself (always present; populated only while live
  /// monitoring is on). The telemetry sampler and watchdog read it.
  InflightRegistry* inflight() { return &inflight_; }

  /// Point-in-time view of the queries running right now.
  rdfql::InflightSnapshot InflightSnapshot() const {
    return inflight_.Snapshot();
  }

  /// Starts the background telemetry sampler (and the watchdog, when
  /// `options.watchdog` enforces anything) over this engine's metrics and
  /// registry. Implies EnableLiveMonitoring(). Fails if already running.
  /// `options.interval_ms == 0` creates the sampler without a thread —
  /// drive it manually with telemetry()->TickNow() (tests, single-shot
  /// tools).
  Status StartTelemetry(const TelemetryOptions& options);

  /// Stops and destroys the sampler (takes a final tick first). Live
  /// monitoring stays enabled. No-op when not running.
  void StopTelemetry();

  /// The running sampler, or null.
  TelemetrySampler* telemetry() { return telemetry_.get(); }

  // --- Alerting ---

  /// Installs a declarative alert rule set (JSON, see obs/alerts.h for the
  /// grammar) together with the metrics-history ring the rules evaluate
  /// against. Implies EnableMetrics(). The rules come alive with the next
  /// StartTelemetry(): each tick records a history sample and advances the
  /// rule state machines; transitions append to the alert log described by
  /// `log_options`. Rules are immutable while installed — call again (or
  /// ClearAlertRules) between telemetry runs to change them; fails while
  /// the sampler is running. For every fragment named by some rule, the
  /// engine additionally observes a per-fragment latency histogram
  /// (FragmentMetricName), so fragment-scoped rules like
  /// `p99{fragment=SPARQL[AO]} > 50ms` have data to read. Queries that hit
  /// no fragment-scoped rule pay one pointer test — nothing else changes.
  Status SetAlertRules(const std::string& rules_json,
                       const AlertLogOptions& log_options = AlertLogOptions(),
                       const HistoryOptions& history_options = HistoryOptions());

  /// Drops the rule set and the history ring. Fails while telemetry runs.
  Status ClearAlertRules();

  /// Point-in-time view of every rule's state (empty when no rules are
  /// installed).
  rdfql::AlertSnapshot AlertSnapshot() const {
    return alerts_ != nullptr ? alerts_->Snapshot() : rdfql::AlertSnapshot{};
  }

  /// The installed alert engine / history ring, or null.
  AlertEngine* alerts() { return alerts_.get(); }
  MetricsHistory* history() { return history_.get(); }

  // --- Profiling ---

  /// Starts the sampling profiler at `hz` samples per second (97 by
  /// default — prime, so it cannot phase-lock with millisecond-periodic
  /// work). While running, every query pushes op/stage tags onto its
  /// thread's lock-free tag stack and the background sampler folds
  /// wall-clock samples — running, pool_queue_wait, lock_wait, idle —
  /// into a profile dumpable as folded stacks (DumpProfile), JSON or
  /// top-N hot tags. `hz == 0` creates the profiler without a thread;
  /// drive it with profiler()->TickNow() (tests, single-shot tools).
  /// Fails if this engine — or any other profiler in the process, the tag
  /// stacks are process-global — is already sampling. When off, the query
  /// path is bit-for-bit the pre-profiler path (one relaxed flag load per
  /// would-be tag).
  Status EnableProfiling(uint64_t hz = 97);

  /// Stops sampling (idempotent). The collected profile stays dumpable.
  void DisableProfiling();

  bool profiling() const {
    return profiler_ != nullptr && profiler_->running();
  }

  /// Folded-stack text of the collected profile ("" before any profiling):
  /// `Engine::Query;Eval;AND;JoinHash 123` per line, flamegraph.pl- and
  /// speedscope-ready.
  std::string DumpProfile() const {
    return profiler_ != nullptr ? profiler_->ToFolded() : std::string();
  }

  /// The profiler itself (null until EnableProfiling), for JSON dumps,
  /// TopTags and manual ticking.
  Profiler* profiler() { return profiler_.get(); }

 private:
  /// One text query's resolved cache decisions, threaded through the
  /// Query/QueryLogged/QueryExplained paths by the helpers below.
  struct CacheContext {
    QueryCache* cache = nullptr;  // null ⇒ no cache attached
    bool plan_on = false;
    bool result_on = false;
    bool bypass = false;    // cache attached, disabled per-query
    bool plan_hit = false;
    bool result_hit = false;
    bool epoch_known = false;  // graph epoch was read before evaluation
    uint64_t hash = 0;         // StableQueryHash of the canonical text
    uint64_t graph_epoch = 0;
    std::string canonical;  // CanonicalizeQueryText(query)

    /// The query log's cache-outcome token ("" ⇒ no cache attached).
    const char* LogOutcome() const {
      if (cache == nullptr) return "";
      if (bypass) return "bypass";
      if (result_hit) return "result_hit";
      if (plan_hit) return "plan_hit";
      return "miss";
    }
  };

  /// Resolves whether this query uses the attached cache: the cache's own
  /// sizing is the engine default, EvalOptions::use_*_cache == kOff wins
  /// wholesale (counted as a bypass when it turns everything off). When
  /// any caching is on, the canonical text and stable hash are computed
  /// here, once.
  CacheContext ResolveCache(std::string_view query,
                            const EvalOptions& options) const;

  /// Result-cache probe. Reads the graph's epoch *before* evaluation (the
  /// engine's no-writes-during-queries contract makes that the epoch the
  /// evaluation sees) and returns the shared cached set on a hit. An
  /// unknown graph turns result caching off and lets the normal path
  /// surface NotFound.
  std::shared_ptr<const MappingSet> CacheResultLookup(
      CacheContext* cc, const std::string& graph_name,
      const EvalOptions& options);

  /// Parse via the plan cache: a hit returns the shared immutable pattern
  /// (and its precomputed fragment, when `fragment` is non-null) without
  /// touching the parser; a miss parses and installs the new plan.
  Result<PatternPtr> ParseCached(CacheContext* cc, std::string_view query,
                                 std::string* fragment);

  /// Installs a successful evaluation's result under the epoch read by
  /// CacheResultLookup. No-op unless result caching is on for this query.
  void CacheStoreResult(const CacheContext& cc, const std::string& graph_name,
                        const EvalOptions& options, const MappingSet& result);

  /// Folds the cache's lifetime stats into the registry: monotone
  /// engine.cache_{hit,miss,eviction,bypass} counters (delta-tracked, so
  /// scrapes pay nothing per query) and live-size gauges. Called from
  /// MetricsSnapshot.
  void RefreshCacheMetrics();

  /// Applies the engine-wide thread default to per-query options.
  EvalOptions WithEngineDefaults(EvalOptions options) const;

  /// Query() with a resolved QueryLog sink: same evaluation pipeline, plus
  /// one record per query (parse failures and rejections included). The
  /// measured eval_ns is the same value the engine.eval_ns histogram
  /// observes, so log-side percentiles reproduce MetricsSnapshot exactly.
  Result<MappingSet> QueryLogged(const std::string& graph_name,
                                 std::string_view query, EvalOptions options,
                                 QueryLog* log);

  /// Recomputes the engine.graph_bytes / engine.graph_triples gauges after
  /// a graph mutation.
  void UpdateGraphGauges();

  /// Folds one query's accountant figures into the registry (peak gauges,
  /// total counter, per-query histograms).
  void RecordAccounting(const ResourceAccountant& acct);

  /// Counts a governance rejection (always recorded — rejections are rare
  /// and the registry exists regardless of the metrics opt-in). When the
  /// slot says the watchdog did it, engine.queries_watchdog_cancelled is
  /// counted on top of the plain cancellation counter.
  void RecordRejection(const Status& status, bool watchdog_cancelled = false);

  /// Copies the registry's occupancy into gauges/counters (called from
  /// MetricsSnapshot so scrapes stay current at zero per-query cost).
  void RefreshInflightGauges();

  /// Observes the per-fragment eval-latency histogram when some alert rule
  /// is scoped to `fragment`; no-op (one pointer test) otherwise.
  void ObserveFragmentLatency(const std::string& fragment, uint64_t eval_ns);

  Dictionary dict_;
  std::map<std::string, Graph> graphs_;
  MetricsRegistry metrics_;
  bool collect_metrics_ = false;
  QueryLog* default_query_log_ = nullptr;
  ResourceLimits default_limits_;
  int default_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // shared across queries; sized
                                      // default_threads_, created lazily
  bool live_monitoring_ = false;
  InflightRegistry inflight_;
  std::unique_ptr<TelemetrySampler> telemetry_;
  // History ring + alert engine (SetAlertRules); the sampler borrows raw
  // pointers to both, so they must outlive any running telemetry — which
  // SetAlertRules/ClearAlertRules enforce by refusing to run mid-sampling.
  std::unique_ptr<MetricsHistory> history_;
  std::unique_ptr<AlertEngine> alerts_;
  // For the engine.uptime_seconds gauge.
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::unique_ptr<Profiler> profiler_;
  QueryCache* query_cache_ = nullptr;
  // Last cache totals already folded into the registry's monotone
  // counters (RefreshCacheMetrics); rebased by SetQueryCache so attaching
  // a pre-used cache doesn't replay its history.
  uint64_t folded_cache_hits_ = 0;
  uint64_t folded_cache_misses_ = 0;
  uint64_t folded_cache_evictions_ = 0;
  uint64_t folded_cache_bypasses_ = 0;
};

}  // namespace rdfql

#endif  // RDFQL_CORE_ENGINE_H_
