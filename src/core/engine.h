#ifndef RDFQL_CORE_ENGINE_H_
#define RDFQL_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "analysis/monotonicity.h"
#include "construct/construct_query.h"
#include "eval/evaluator.h"
#include "eval/explain.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfql {

/// EXPLAIN ANALYZE at the engine level: the per-operator plan (cardinality,
/// wall time, work counters) plus the query's phase timings.
struct QueryExplanation {
  Explanation explanation;  // result + instrumented plan tree
  uint64_t parse_ns = 0;
  uint64_t eval_ns = 0;

  const MappingSet& result() const { return explanation.result; }

  /// Phase header followed by the plan tree, e.g.
  ///   parse: 3.1us  eval: 120.4us
  ///   AND [1] (t=118.0us join_probes=4)
  ///     ...
  std::string ToString() const;
};

/// What the static and empirical analyzers say about a pattern — the
/// vocabulary of the paper in one struct.
struct PatternReport {
  std::string fragment;            // e.g. "SPARQL[AUF]", "SP-SPARQL"
  bool well_designed = false;      // Definition 3.4 (AOF)
  bool union_well_designed = false;  // Section 3.3 (AUOF)
  bool simple_pattern = false;     // Definition 5.3
  bool ns_pattern = false;         // Definition 5.7
  bool syntactically_subsumption_free = false;
  bool looks_weakly_monotone = false;   // randomized, Definition 3.2
  bool looks_monotone = false;          // randomized
  bool looks_subsumption_free = false;  // randomized, Section 5.2
};

/// The top-level façade: owns the dictionary and a set of named graphs,
/// and exposes parsing, evaluation, classification and the paper's
/// transformations behind one object. All examples and the REPL go
/// through this class; libraries embedding rdfql may also use the
/// per-module headers directly.
class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Dictionary* dict() { return &dict_; }

  /// Parses simplified N-Triples into (or on top of) the named graph.
  Status LoadGraphText(const std::string& name, std::string_view ntriples);

  /// Registers/replaces a graph under `name`.
  void PutGraph(const std::string& name, Graph graph);

  /// Fails with NotFound for unknown names.
  Result<const Graph*> GetGraph(const std::string& name) const;

  /// Parses a graph pattern in the paper's syntax.
  Result<PatternPtr> Parse(std::string_view query);

  /// Parses a CONSTRUCT query.
  Result<ConstructQuery> ParseConstructQuery(std::string_view query);

  /// Parse + evaluate against a named graph.
  Result<MappingSet> Query(const std::string& graph_name,
                           std::string_view query,
                           EvalOptions options = {});

  /// Parse + evaluate under a tracer: returns the results together with a
  /// per-operator EXPLAIN ANALYZE plan and phase timings. Honors `options`'
  /// join/NS choices (its tracer/trace_dict fields are overridden).
  Result<QueryExplanation> QueryExplained(const std::string& graph_name,
                                          std::string_view query,
                                          EvalOptions options = {});

  /// Evaluates a parsed pattern against a named graph.
  Result<MappingSet> Eval(const std::string& graph_name,
                          const PatternPtr& pattern,
                          EvalOptions options = {});

  /// ASK-style query: true iff the pattern has at least one answer.
  Result<bool> Ask(const std::string& graph_name, std::string_view query,
                   EvalOptions options = {});

  /// Query + CSV / W3C-style JSON serialization in one call.
  Result<std::string> QueryCsv(const std::string& graph_name,
                               std::string_view query,
                               EvalOptions options = {});
  Result<std::string> QueryJson(const std::string& graph_name,
                                std::string_view query,
                                EvalOptions options = {});

  /// Runs every classifier over the pattern (the randomized ones with
  /// `options`).
  PatternReport Classify(const PatternPtr& pattern,
                         const MonotonicityOptions& options = {});

  // --- Parallelism ---

  /// Engine-wide default for EvalOptions::threads. Queries whose options
  /// leave `threads` at 1 (the default) adopt this value and run on the
  /// engine's shared thread pool; options that explicitly ask for more
  /// threads keep their own setting. 1 (the default) keeps every query on
  /// the bit-for-bit serial path.
  void SetDefaultThreads(int threads);
  int default_threads() const { return default_threads_; }

  // --- Observability ---

  /// Turns metric collection on/off (off by default: the uninstrumented
  /// path stays zero-overhead). While enabled, every Query/Eval records
  /// `engine.*` phase timings and `eval.*` operator counters into this
  /// engine's registry.
  void EnableMetrics(bool on = true) { collect_metrics_ = on; }
  bool metrics_enabled() const { return collect_metrics_; }

  /// The engine's registry (always present; callers may add their own
  /// metrics next to the engine's).
  MetricsRegistry* metrics() { return &metrics_; }

  /// Point-in-time copy of every engine metric.
  RegistrySnapshot MetricsSnapshot() const { return metrics_.Snapshot(); }

  /// Zeroes the engine's metrics (e.g. between bench cases).
  void ResetMetrics() { metrics_.Reset(); }

 private:
  /// Applies the engine-wide thread default to per-query options.
  EvalOptions WithEngineDefaults(EvalOptions options) const;

  Dictionary dict_;
  std::map<std::string, Graph> graphs_;
  MetricsRegistry metrics_;
  bool collect_metrics_ = false;
  int default_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // shared across queries; sized
                                      // default_threads_, created lazily
};

}  // namespace rdfql

#endif  // RDFQL_CORE_ENGINE_H_
