#ifndef RDFQL_CORE_ENGINE_H_
#define RDFQL_CORE_ENGINE_H_

#include <map>
#include <string>

#include "algebra/mapping_set.h"
#include "algebra/pattern.h"
#include "analysis/monotonicity.h"
#include "construct/construct_query.h"
#include "eval/evaluator.h"
#include "parser/parser.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfql {

/// What the static and empirical analyzers say about a pattern — the
/// vocabulary of the paper in one struct.
struct PatternReport {
  std::string fragment;            // e.g. "SPARQL[AUF]", "SP-SPARQL"
  bool well_designed = false;      // Definition 3.4 (AOF)
  bool union_well_designed = false;  // Section 3.3 (AUOF)
  bool simple_pattern = false;     // Definition 5.3
  bool ns_pattern = false;         // Definition 5.7
  bool syntactically_subsumption_free = false;
  bool looks_weakly_monotone = false;   // randomized, Definition 3.2
  bool looks_monotone = false;          // randomized
  bool looks_subsumption_free = false;  // randomized, Section 5.2
};

/// The top-level façade: owns the dictionary and a set of named graphs,
/// and exposes parsing, evaluation, classification and the paper's
/// transformations behind one object. All examples and the REPL go
/// through this class; libraries embedding rdfql may also use the
/// per-module headers directly.
class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Dictionary* dict() { return &dict_; }

  /// Parses simplified N-Triples into (or on top of) the named graph.
  Status LoadGraphText(const std::string& name, std::string_view ntriples);

  /// Registers/replaces a graph under `name`.
  void PutGraph(const std::string& name, Graph graph);

  /// Fails with NotFound for unknown names.
  Result<const Graph*> GetGraph(const std::string& name) const;

  /// Parses a graph pattern in the paper's syntax.
  Result<PatternPtr> Parse(std::string_view query);

  /// Parses a CONSTRUCT query.
  Result<ConstructQuery> ParseConstructQuery(std::string_view query);

  /// Parse + evaluate against a named graph.
  Result<MappingSet> Query(const std::string& graph_name,
                           std::string_view query,
                           EvalOptions options = {});

  /// Evaluates a parsed pattern against a named graph.
  Result<MappingSet> Eval(const std::string& graph_name,
                          const PatternPtr& pattern,
                          EvalOptions options = {});

  /// ASK-style query: true iff the pattern has at least one answer.
  Result<bool> Ask(const std::string& graph_name, std::string_view query,
                   EvalOptions options = {});

  /// Query + CSV / W3C-style JSON serialization in one call.
  Result<std::string> QueryCsv(const std::string& graph_name,
                               std::string_view query,
                               EvalOptions options = {});
  Result<std::string> QueryJson(const std::string& graph_name,
                                std::string_view query,
                                EvalOptions options = {});

  /// Runs every classifier over the pattern (the randomized ones with
  /// `options`).
  PatternReport Classify(const PatternPtr& pattern,
                         const MonotonicityOptions& options = {});

 private:
  Dictionary dict_;
  std::map<std::string, Graph> graphs_;
};

}  // namespace rdfql

#endif  // RDFQL_CORE_ENGINE_H_
