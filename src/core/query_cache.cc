#include "core/query_cache.h"

#include <utility>

#include "util/timed_lock.h"

namespace rdfql {
namespace {

/// 64-bit mix (splitmix64 finalizer) — spreads the FNV hash and the key
/// fields before shard selection / map hashing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t ShardOf(uint64_t hash) {
  return static_cast<size_t>(Mix(hash) & (kQueryCacheShards - 1));
}

uint64_t ResultMapHash(const ResultCacheKey& key) {
  uint64_t h = Mix(key.query_hash);
  for (char c : key.graph) {
    h = Mix(h ^ static_cast<unsigned char>(c));
  }
  h = Mix(h ^ key.graph_epoch);
  return Mix(h ^ key.options_fp);
}

}  // namespace

uint64_t EvalOptionsFingerprint(const EvalOptions& options) {
  // Version salt in the high bits so a future semantic change to the
  // fingerprint can never alias an old one within a process.
  return (1ull << 32) | (static_cast<uint64_t>(options.join) << 4) |
         static_cast<uint64_t>(options.ns);
}

struct QueryCache::PlanShard {
  struct Entry {
    uint64_t hash;
    CachedPlanPtr plan;
  };
  mutable std::mutex mu;
  // Front = most recently used. The map points into the list; 64-bit hash
  // collisions within a shard share one slot (last writer wins) — the
  // canonical-text check downgrades a cross-query collision to a miss.
  std::list<Entry> lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
};

struct QueryCache::ResultShard {
  struct Entry {
    ResultCacheKey key;
    std::string canonical_query;
    std::shared_ptr<const MappingSet> result;
    uint64_t bytes;
  };
  mutable std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
  uint64_t bytes = 0;
};

QueryCache::QueryCache(QueryCacheOptions options) : options_(options) {
  plan_shard_capacity_ = options_.plan_capacity / kQueryCacheShards;
  if (plan_enabled() && plan_shard_capacity_ == 0) plan_shard_capacity_ = 1;
  result_shard_budget_ = options_.result_max_bytes / kQueryCacheShards;
  if (result_enabled() && result_shard_budget_ == 0) result_shard_budget_ = 1;
  plan_shards_ = std::make_unique<PlanShard[]>(kQueryCacheShards);
  result_shards_ = std::make_unique<ResultShard[]>(kQueryCacheShards);
}

QueryCache::~QueryCache() = default;

CachedPlanPtr QueryCache::GetPlan(uint64_t hash, std::string_view canonical) {
  if (!plan_enabled()) return nullptr;
  PlanShard& shard = plan_shards_[ShardOf(hash)];
  {
    TimedExclusiveLock<std::mutex> lock(shard.mu, &lock_wait_,
                                        "QueryCache::shard");
    auto it = shard.map.find(hash);
    if (it != shard.map.end() &&
        it->second->plan->canonical_query == canonical) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->plan;
    }
  }
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

CachedPlanPtr QueryCache::PeekPlan(uint64_t hash,
                                   std::string_view canonical) const {
  if (!plan_enabled()) return nullptr;
  const PlanShard& shard = plan_shards_[ShardOf(hash)];
  TimedExclusiveLock<std::mutex> lock(shard.mu, &lock_wait_,
                                        "QueryCache::shard");
  auto it = shard.map.find(hash);
  if (it != shard.map.end() && it->second->plan->canonical_query == canonical) {
    return it->second->plan;
  }
  return nullptr;
}

void QueryCache::PutPlan(uint64_t hash, CachedPlanPtr plan) {
  if (!plan_enabled() || plan == nullptr) return;
  PlanShard& shard = plan_shards_[ShardOf(hash)];
  uint64_t evicted = 0;
  {
    TimedExclusiveLock<std::mutex> lock(shard.mu, &lock_wait_,
                                        "QueryCache::shard");
    auto it = shard.map.find(hash);
    if (it != shard.map.end()) {
      it->second->plan = std::move(plan);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(PlanShard::Entry{hash, std::move(plan)});
      shard.map.emplace(hash, shard.lru.begin());
      while (shard.map.size() > plan_shard_capacity_) {
        shard.map.erase(shard.lru.back().hash);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted != 0) {
    plan_evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
}

std::shared_ptr<const MappingSet> QueryCache::GetResult(
    const ResultCacheKey& key, std::string_view canonical) {
  if (!result_enabled()) return nullptr;
  uint64_t map_hash = ResultMapHash(key);
  ResultShard& shard = result_shards_[ShardOf(key.query_hash)];
  {
    TimedExclusiveLock<std::mutex> lock(shard.mu, &lock_wait_,
                                        "QueryCache::shard");
    auto it = shard.map.find(map_hash);
    if (it != shard.map.end() && it->second->key == key &&
        it->second->canonical_query == canonical) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      result_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->result;
    }
  }
  result_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void QueryCache::PutResult(const ResultCacheKey& key,
                           std::string_view canonical,
                           const MappingSet& result) {
  if (!result_enabled()) return;
  // Size and copy outside the lock. The copy is made with no thread-local
  // accountant in scope at the engine call sites; DetachAccounting() makes
  // that unconditional, so a cached set never points at a dead accountant.
  uint64_t bytes = result.ApproxBytes();
  if (bytes > options_.result_entry_max_bytes || bytes > result_shard_budget_) {
    result_oversize_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto copy = std::make_shared<MappingSet>(result);
  copy->DetachAccounting();
  uint64_t map_hash = ResultMapHash(key);
  ResultShard& shard = result_shards_[ShardOf(key.query_hash)];
  uint64_t evicted = 0;
  {
    TimedExclusiveLock<std::mutex> lock(shard.mu, &lock_wait_,
                                        "QueryCache::shard");
    auto it = shard.map.find(map_hash);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->bytes;
      it->second->key = key;
      it->second->canonical_query = std::string(canonical);
      it->second->result = std::move(copy);
      it->second->bytes = bytes;
      shard.bytes += bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(ResultShard::Entry{key, std::string(canonical),
                                              std::move(copy), bytes});
      shard.map.emplace(map_hash, shard.lru.begin());
      shard.bytes += bytes;
    }
    while (shard.bytes > result_shard_budget_ && shard.lru.size() > 1) {
      const ResultShard::Entry& tail = shard.lru.back();
      shard.bytes -= tail.bytes;
      shard.map.erase(ResultMapHash(tail.key));
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted != 0) {
    result_evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
}

void QueryCache::Clear() {
  for (size_t i = 0; i < kQueryCacheShards; ++i) {
    {
      TimedExclusiveLock<std::mutex> lock(plan_shards_[i].mu, &lock_wait_,
                                          "QueryCache::shard");
      plan_shards_[i].lru.clear();
      plan_shards_[i].map.clear();
    }
    {
      TimedExclusiveLock<std::mutex> lock(result_shards_[i].mu, &lock_wait_,
                                          "QueryCache::shard");
      result_shards_[i].lru.clear();
      result_shards_[i].map.clear();
      result_shards_[i].bytes = 0;
    }
  }
}

QueryCacheStats QueryCache::Stats() const {
  QueryCacheStats s;
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.result_misses = result_misses_.load(std::memory_order_relaxed);
  s.result_evictions = result_evictions_.load(std::memory_order_relaxed);
  s.result_oversize = result_oversize_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kQueryCacheShards; ++i) {
    {
      TimedExclusiveLock<std::mutex> lock(plan_shards_[i].mu, &lock_wait_,
                                          "QueryCache::shard");
      s.plan_entries += plan_shards_[i].map.size();
    }
    {
      TimedExclusiveLock<std::mutex> lock(result_shards_[i].mu, &lock_wait_,
                                          "QueryCache::shard");
      s.result_entries += result_shards_[i].map.size();
      s.result_bytes += result_shards_[i].bytes;
    }
  }
  return s;
}

}  // namespace rdfql
