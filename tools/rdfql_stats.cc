// Offline workload analysis over JSONL query logs (see
// docs/observability.md, "Query log"):
//
//   rdfql_stats queries.jsonl              # text report
//   rdfql_stats --json a.jsonl b.jsonl     # same report as JSON
//   rdfql_stats --check queries.jsonl      # validate every line, count
//   rdfql_stats --top=10 queries.jsonl     # widen the top-N tables
//   rdfql_stats --top-hashes=10 q.jsonl    # most-repeated query hashes
//   rdfql_stats --lint-openmetrics=metrics.txt
//
// --top-hashes=N replaces the report with the N most-repeated canonical
// query hashes (count, eval p50/p99, example text) — the workload's
// cache-hit potential at a glance; combine with --json for machines.
//
// --check and --lint-openmetrics exit non-zero on the first violation, so
// CI can gate on them. Aggregation uses the same power-of-two-bucket
// histograms as the engine's metrics registry: the per-fragment latency
// percentiles reported here are exactly the ones Engine::MetricsSnapshot
// computes for the same workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/openmetrics.h"
#include "obs/query_log.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--json] [--top=N] [--top-hashes=N] "
               "[--lint-openmetrics=FILE] LOG.jsonl [LOG.jsonl ...]\n",
               argv0);
  return 2;
}

/// Reads one JSONL file into the aggregator. In check mode every record is
/// still added (so --check can double as a dry-run of the report); a
/// malformed line fails immediately either way — a query log with garbage
/// in it should never aggregate silently.
bool ReadLogFile(const std::string& path, rdfql::QueryLogAggregator* agg,
                 uint64_t* lines_read) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdfql_stats: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    rdfql::QueryLogRecord record;
    std::string error;
    if (!rdfql::ParseQueryLogLine(line, &record, &error)) {
      std::fprintf(stderr, "rdfql_stats: %s:%llu: %s\n", path.c_str(),
                   static_cast<unsigned long long>(line_no), error.c_str());
      return false;
    }
    agg->Add(record);
    ++*lines_read;
  }
  return true;
}

bool LintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdfql_stats: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  if (!rdfql::LintOpenMetrics(text, &error)) {
    std::fprintf(stderr, "rdfql_stats: %s: openmetrics lint: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  std::printf("%s: openmetrics OK\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool json = false;
  bool top_hashes = false;
  size_t top_n = 5;
  size_t top_hashes_n = 10;
  std::vector<std::string> log_paths;
  std::vector<std::string> lint_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<size_t>(std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("--top-hashes=", 0) == 0) {
      top_hashes = true;
      top_hashes_n = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::strlen("--top-hashes="), nullptr,
                        10));
    } else if (arg.rfind("--lint-openmetrics=", 0) == 0) {
      lint_paths.push_back(arg.substr(std::strlen("--lint-openmetrics=")));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rdfql_stats: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      log_paths.push_back(arg);
    }
  }
  if (log_paths.empty() && lint_paths.empty()) return Usage(argv[0]);

  for (const std::string& path : lint_paths) {
    if (!LintFile(path)) return 1;
  }

  if (log_paths.empty()) return 0;
  rdfql::QueryLogAggregator agg;
  uint64_t lines = 0;
  for (const std::string& path : log_paths) {
    if (!ReadLogFile(path, &agg, &lines)) return 1;
  }
  if (check) {
    std::printf("%llu record(s) OK\n", static_cast<unsigned long long>(lines));
    return 0;
  }
  std::string report =
      top_hashes ? (json ? agg.TopHashesJson(top_hashes_n)
                         : agg.TopHashesText(top_hashes_n))
                 : (json ? agg.ToJson(top_n) : agg.ToText(top_n));
  std::fwrite(report.data(), 1, report.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}
