// Offline workload analysis over JSONL query logs (see
// docs/observability.md, "Query log"):
//
//   rdfql_stats queries.jsonl              # text report
//   rdfql_stats --json a.jsonl b.jsonl     # same report as JSON
//   rdfql_stats --check queries.jsonl      # validate every line, count
//   rdfql_stats --top=10 queries.jsonl     # widen the top-N tables
//   rdfql_stats --top-hashes=10 q.jsonl    # most-repeated query hashes
//   rdfql_stats --since=2026-08-07T12:00:00Z q.jsonl   # drop older records
//   rdfql_stats --last=500 q.jsonl         # only the final 500 records
//   rdfql_stats --lint-openmetrics=metrics.txt
//   rdfql_stats --alerts=alerts.jsonl      # summarize an alert log
//
// --since keeps records whose start time is at or after the given UTC
// instant (ISO 8601, date-only or date+time with optional trailing Z);
// --last keeps the final N records across all files in read order. Both
// compose with every report mode, so "what changed in the last hour" is
// one flag away.
//
// --top-hashes=N replaces the report with the N most-repeated canonical
// query hashes (count, eval p50/p99, example text) — the workload's
// cache-hit potential at a glance; combine with --json for machines.
//
// --check and --lint-openmetrics exit non-zero on the first violation, so
// CI can gate on them. Aggregation uses the same power-of-two-bucket
// histograms as the engine's metrics registry: the per-fragment latency
// percentiles reported here are exactly the ones Engine::MetricsSnapshot
// computes for the same workload.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/json_util.h"
#include "obs/openmetrics.h"
#include "obs/query_log.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--json] [--top=N] [--top-hashes=N] "
               "[--since=ISO8601] [--last=N] "
               "[--lint-openmetrics=FILE] [--alerts=FILE] "
               "LOG.jsonl [LOG.jsonl ...]\n",
               argv0);
  return 2;
}

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD[T ]HH:MM:SS[Z]" as a UTC instant into
/// milliseconds since the epoch. Returns false on any other shape. The
/// civil-to-days conversion is the classic Howard Hinnant formula, so the
/// tool needs no non-portable timegm().
bool ParseIso8601Ms(const std::string& text, uint64_t* out_ms) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, sec = 0;
  char sep = 'T';
  int n = std::sscanf(text.c_str(), "%d-%d-%d%c%d:%d:%d", &y, &mo, &d, &sep,
                      &h, &mi, &sec);
  if (n != 3 && n != 7) return false;
  if (n == 7 && sep != 'T' && sep != ' ') return false;
  if (n == 7 && text.size() > 19 && !(text.size() == 20 && text[19] == 'Z')) {
    return false;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || sec > 60) {
    return false;
  }
  y -= mo <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (mo + (mo > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const int64_t days = era * 146097LL + doe - 719468;
  int64_t secs = days * 86400 + h * 3600 + mi * 60 + sec;
  if (secs < 0) return false;
  *out_ms = static_cast<uint64_t>(secs) * 1000;
  return true;
}

/// Reads one JSONL file into `records`, dropping records older than
/// `since_ms` (0 = keep all). In check mode every record is still parsed
/// (so --check can double as a dry-run of the report); a malformed line
/// fails immediately either way — a query log with garbage in it should
/// never aggregate silently.
bool ReadLogFile(const std::string& path, uint64_t since_ms,
                 std::deque<rdfql::QueryLogRecord>* records,
                 uint64_t* lines_read) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdfql_stats: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    rdfql::QueryLogRecord record;
    std::string error;
    if (!rdfql::ParseQueryLogLine(line, &record, &error)) {
      std::fprintf(stderr, "rdfql_stats: %s:%llu: %s\n", path.c_str(),
                   static_cast<unsigned long long>(line_no), error.c_str());
      return false;
    }
    ++*lines_read;
    if (since_ms != 0 && record.unix_ms < since_ms) continue;
    records->push_back(std::move(record));
  }
  return true;
}

bool LintFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdfql_stats: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  if (!rdfql::LintOpenMetrics(text, &error)) {
    std::fprintf(stderr, "rdfql_stats: %s: openmetrics lint: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  std::printf("%s: openmetrics OK\n", path.c_str());
  return true;
}

/// Per-rule roll-up of an alert log (--alerts).
struct AlertRuleAgg {
  std::string severity;
  std::string fragment;
  uint64_t pending = 0;
  uint64_t firing = 0;
  uint64_t resolved = 0;
  std::string last_state;
  uint64_t last_unix_ms = 0;
  double last_value = 0;
  double threshold = 0;
};

/// Reads alert-transition JSONL files and prints the roll-up: totals by
/// state, then one row per rule. A malformed line fails immediately, same
/// policy as the query-log reader.
bool AlertsReport(const std::vector<std::string>& paths, bool json,
                  uint64_t since_ms) {
  std::vector<rdfql::AlertTransition> transitions;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "rdfql_stats: cannot open '%s'\n", path.c_str());
      return false;
    }
    std::string line;
    uint64_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      rdfql::AlertTransition t;
      std::string error;
      if (!rdfql::ParseAlertLogLine(line, &t, &error)) {
        std::fprintf(stderr, "rdfql_stats: %s:%llu: %s\n", path.c_str(),
                     static_cast<unsigned long long>(line_no), error.c_str());
        return false;
      }
      if (since_ms != 0 && t.unix_ms < since_ms) continue;
      transitions.push_back(std::move(t));
    }
  }
  uint64_t pending = 0, firing = 0, resolved = 0;
  std::map<std::string, AlertRuleAgg> rules;
  for (const rdfql::AlertTransition& t : transitions) {
    AlertRuleAgg& agg = rules[t.rule];
    agg.severity = t.severity;
    agg.fragment = t.fragment;
    agg.threshold = t.threshold;
    if (t.state == "pending") {
      ++agg.pending;
      ++pending;
    } else if (t.state == "firing") {
      ++agg.firing;
      ++firing;
    } else if (t.state == "resolved") {
      ++agg.resolved;
      ++resolved;
    }
    agg.last_state = t.state;
    agg.last_unix_ms = t.unix_ms;
    agg.last_value = t.value;
  }
  if (json) {
    namespace ju = rdfql::jsonutil;
    std::string out = "{";
    bool first = true;
    ju::AppendUint("transitions", transitions.size(), &first, &out);
    ju::AppendUint("pending", pending, &first, &out);
    ju::AppendUint("firing", firing, &first, &out);
    ju::AppendUint("resolved", resolved, &first, &out);
    out += ",\"rules\":[";
    bool first_rule = true;
    for (const auto& [name, agg] : rules) {
      if (!first_rule) out += ",";
      first_rule = false;
      out += "{";
      bool f = true;
      ju::AppendString("rule", name, &f, &out);
      ju::AppendString("severity", agg.severity, &f, &out);
      ju::AppendString("fragment", agg.fragment, &f, &out);
      ju::AppendUint("pending", agg.pending, &f, &out);
      ju::AppendUint("firing", agg.firing, &f, &out);
      ju::AppendUint("resolved", agg.resolved, &f, &out);
      ju::AppendString("last_state", agg.last_state, &f, &out);
      ju::AppendUint("last_unix_ms", agg.last_unix_ms, &f, &out);
      ju::AppendDouble("last_value", agg.last_value, &f, &out);
      ju::AppendDouble("threshold", agg.threshold, &f, &out);
      out += "}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return true;
  }
  std::printf("alerts: %llu transition(s), %llu rule(s) | pending=%llu "
              "firing=%llu resolved=%llu\n",
              static_cast<unsigned long long>(transitions.size()),
              static_cast<unsigned long long>(rules.size()),
              static_cast<unsigned long long>(pending),
              static_cast<unsigned long long>(firing),
              static_cast<unsigned long long>(resolved));
  if (!rules.empty()) {
    std::printf("  %-28s %-8s %5s %5s %5s  %-9s %10s %10s\n", "rule", "sev",
                "pend", "fire", "res", "last", "value", "threshold");
    for (const auto& [name, agg] : rules) {
      std::string label = name;
      if (!agg.fragment.empty()) label += "{" + agg.fragment + "}";
      std::printf("  %-28s %-8s %5llu %5llu %5llu  %-9s %10.4g %10.4g\n",
                  label.c_str(), agg.severity.c_str(),
                  static_cast<unsigned long long>(agg.pending),
                  static_cast<unsigned long long>(agg.firing),
                  static_cast<unsigned long long>(agg.resolved),
                  agg.last_state.c_str(), agg.last_value, agg.threshold);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool json = false;
  bool top_hashes = false;
  size_t top_n = 5;
  size_t top_hashes_n = 10;
  uint64_t since_ms = 0;
  uint64_t last_n = 0;
  std::vector<std::string> log_paths;
  std::vector<std::string> lint_paths;
  std::vector<std::string> alert_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<size_t>(std::strtoull(arg.c_str() + 6, nullptr, 10));
    } else if (arg.rfind("--top-hashes=", 0) == 0) {
      top_hashes = true;
      top_hashes_n = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::strlen("--top-hashes="), nullptr,
                        10));
    } else if (arg.rfind("--since=", 0) == 0) {
      std::string value = arg.substr(std::strlen("--since="));
      if (!ParseIso8601Ms(value, &since_ms) || since_ms == 0) {
        std::fprintf(stderr,
                     "rdfql_stats: --since wants ISO 8601 UTC "
                     "(e.g. 2026-08-07T12:00:00Z), got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg.rfind("--last=", 0) == 0) {
      last_n = std::strtoull(arg.c_str() + std::strlen("--last="), nullptr, 10);
      if (last_n == 0) {
        std::fprintf(stderr, "rdfql_stats: --last wants a positive count\n");
        return 2;
      }
    } else if (arg.rfind("--lint-openmetrics=", 0) == 0) {
      lint_paths.push_back(arg.substr(std::strlen("--lint-openmetrics=")));
    } else if (arg.rfind("--alerts=", 0) == 0) {
      alert_paths.push_back(arg.substr(std::strlen("--alerts=")));
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "rdfql_stats: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      log_paths.push_back(arg);
    }
  }
  if (log_paths.empty() && lint_paths.empty() && alert_paths.empty()) {
    return Usage(argv[0]);
  }

  for (const std::string& path : lint_paths) {
    if (!LintFile(path)) return 1;
  }
  if (!alert_paths.empty() && !AlertsReport(alert_paths, json, since_ms)) {
    return 1;
  }

  if (log_paths.empty()) return 0;
  std::deque<rdfql::QueryLogRecord> records;
  uint64_t lines = 0;
  for (const std::string& path : log_paths) {
    if (!ReadLogFile(path, since_ms, &records, &lines)) return 1;
  }
  if (last_n != 0) {
    while (records.size() > last_n) records.pop_front();
  }
  if (check) {
    std::printf("%llu record(s) OK", static_cast<unsigned long long>(lines));
    if (since_ms != 0 || last_n != 0) {
      std::printf(", %llu selected",
                  static_cast<unsigned long long>(records.size()));
    }
    std::printf("\n");
    return 0;
  }
  rdfql::QueryLogAggregator agg;
  for (const rdfql::QueryLogRecord& record : records) {
    agg.Add(record);
  }
  std::string report =
      top_hashes ? (json ? agg.TopHashesJson(top_hashes_n)
                         : agg.TopHashesText(top_hashes_n))
                 : (json ? agg.ToJson(top_n) : agg.ToText(top_n));
  std::fwrite(report.data(), 1, report.size(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}
