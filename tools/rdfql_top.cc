// rdfql_top — a `top`-style terminal dashboard over a running engine.
//
//   rdfql_top SNAPSHOT.json                 follow the file, redraw per tick
//   rdfql_top --once SNAPSHOT.json          render one frame and exit
//   rdfql_top --interval-ms=N ...           redraw period (default 500)
//   rdfql_top --frames=N ...                exit after N redraws (scripts)
//   rdfql_top --no-color ...                plain text, no ANSI escapes
//                                           (auto when stdout is not a tty)
//
// SNAPSHOT.json is the file a TelemetrySampler rewrites atomically every
// tick (`--telemetry-out=PATH` on rdfql_shell, or
// TelemetryOptions::snapshot_path in an embedding). rdfql_top only reads
// that file — it needs no connection to the engine process, works across
// restarts, and multiple instances can watch the same engine. Plain ANSI
// escapes, no terminal library.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/telemetry.h"

namespace {

std::string PhaseString(double ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 10'000'000'000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", ns / 1e9);
  }
  return buf;
}

std::string TimeString(uint64_t unix_ms) {
  std::time_t secs = static_cast<std::time_t>(unix_ms / 1000);
  std::tm tm_buf{};
  gmtime_r(&secs, &tm_buf);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%H:%M:%S", &tm_buf);
  return buf;
}

/// QPS-per-window sparkline: one ASCII character per retained window,
/// oldest on the left, scaled against the busiest window.
std::string Sparkline(const std::vector<rdfql::TelemetryWindow>& windows) {
  static const char kLevels[] = " .:-=+*#%@";
  double max_rate = 0;
  for (const rdfql::TelemetryWindow& w : windows) {
    if (w.seconds > 0) {
      max_rate = std::max(max_rate, static_cast<double>(w.queries) / w.seconds);
    }
  }
  std::string out;
  for (const rdfql::TelemetryWindow& w : windows) {
    double rate = w.seconds > 0 ? static_cast<double>(w.queries) / w.seconds : 0;
    size_t level =
        max_rate > 0
            ? static_cast<size_t>(rate / max_rate * (sizeof(kLevels) - 2))
            : 0;
    out.push_back(kLevels[level]);
  }
  return out;
}

std::string RenderFrame(const rdfql::TelemetrySnapshot& snap,
                        const std::string& path) {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof(line),
                "rdfql_top — %s  %s UTC  tick %" PRIu64 " (every %" PRIu64
                "ms)%s%s\n",
                path.c_str(), TimeString(snap.unix_ms).c_str(), snap.ticks,
                snap.interval_ms, snap.build_sha.empty() ? "" : "  build ",
                snap.build_sha.c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "queries: %" PRIu64 " total, %.2f/s | rejected: %" PRIu64
                " (%.2f/s) | watchdog-cancelled: %" PRIu64 " | active: %lld\n",
                snap.queries_total, snap.qps, snap.rejected_total,
                snap.rejections_per_s, snap.watchdog_cancelled_total,
                static_cast<long long>(snap.queries_active));
  out += line;
  std::snprintf(line, sizeof(line), "eval latency (windowed): p50=%s p99=%s\n",
                PhaseString(snap.eval_p50_ns).c_str(),
                PhaseString(snap.eval_p99_ns).c_str());
  out += line;
  if (!snap.windows.empty()) {
    out += "qps [" + Sparkline(snap.windows) + "]\n";
  }
  if (snap.has_alerts) {
    // Present only when the engine side runs an alert engine. Firing rules
    // first (they are why anyone is staring at this screen), then the rest.
    out += "\n" + snap.alerts.ToText();
  }
  if (!snap.hot_tags.empty()) {
    // Present only while the engine side runs a sampling profiler: a bar
    // per tag, scaled to the hottest, so the panel reads like `perf top`.
    out += "\nhot tags (profiler, self samples)\n";
    uint64_t max_self = snap.hot_tags.front().second;
    for (const auto& [tag, self] : snap.hot_tags) {
      if (self > max_self) max_self = self;
    }
    for (const auto& [tag, self] : snap.hot_tags) {
      int width = max_self > 0 ? static_cast<int>(self * 24 / max_self) : 0;
      std::snprintf(line, sizeof(line), "  %-28s %8" PRIu64 " %.*s\n",
                    tag.c_str(), self, width,
                    "========================");
      out += line;
    }
  }
  out += "\n";
  out += snap.inflight.ToText();
  return out;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  // ANSI clear/home only when a human is watching: piping into a file or a
  // test harness gets plain text frames without asking.
  bool color = isatty(fileno(stdout)) != 0;
  uint64_t interval_ms = 500;
  uint64_t frames = 0;  // 0 = forever
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--no-color") {
      color = false;
    } else if (arg.rfind("--interval-ms=", 0) == 0) {
      interval_ms = std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--frames=", 0) == 0) {
      frames = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: rdfql_top [--once] [--no-color] [--interval-ms=N] "
                   "[--frames=N] SNAPSHOT.json\n");
      return 1;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: rdfql_top [--once] SNAPSHOT.json\n");
    return 1;
  }
  uint64_t rendered = 0;
  while (true) {
    std::string json;
    rdfql::TelemetrySnapshot snap;
    std::string error;
    if (!ReadFile(path, &json)) {
      if (once) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
      }
      // Live mode: the engine may not have ticked yet — keep waiting.
      std::fprintf(stdout, "waiting for %s ...\n", path.c_str());
    } else if (!rdfql::ParseTelemetrySnapshot(json, &snap, &error)) {
      if (once) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
        return 1;
      }
      std::fprintf(stdout, "unreadable snapshot (%s), retrying ...\n",
                   error.c_str());
    } else {
      // Clear + home, then the frame: flicker-free enough without curses.
      if (!once && color) std::fputs("\033[2J\033[H", stdout);
      std::fputs(RenderFrame(snap, path).c_str(), stdout);
      std::fflush(stdout);
      ++rendered;
    }
    if (once || (frames != 0 && rendered >= frames)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
