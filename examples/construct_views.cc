// CONSTRUCT as a view mechanism (Section 6): runs the Example 6.1 query
// over the Figure 3 graph to build the Figure 4 graph, *composes* queries
// by querying the constructed view (the composability motivation of
// Section 6), and shows Lemma 6.5's monotone normal form and Prop 6.7's
// SELECT elimination.

#include <cstdio>

#include "core/rdfql.h"

int main() {
  rdfql::Engine engine;
  rdfql::Graph professors =
      rdfql::scenarios::ProfessorsGraph(engine.dict());
  engine.PutGraph("professors", professors);

  std::printf("=== Example 6.1: building an affiliation view ===\n");
  rdfql::ConstructQuery q =
      engine
          .ParseConstructQuery(rdfql::scenarios::Example61ConstructQuery())
          .value();
  rdfql::Graph view = q.Answer(professors);
  std::printf("ans(Q, G):\n%s\n",
              rdfql::WriteNTriples(view, *engine.dict()).c_str());

  std::printf("=== Composition: querying the constructed view ===\n");
  engine.PutGraph("view", view);
  const char* follow_up =
      "(SELECT {?n} WHERE ((?n affiliated_to PUC_Chile) AND "
      "(?n email ?e)))";
  rdfql::Result<rdfql::MappingSet> reachable =
      engine.Query("view", follow_up);
  std::printf("PUC Chile affiliates with an email:\n%s\n",
              rdfql::MappingTable(*reachable, *engine.dict()).c_str());

  std::printf("=== Lemma 6.5: the monotone normal form ===\n");
  rdfql::ConstructQuery nf = rdfql::MonotoneNormalForm(q, engine.dict());
  std::printf("pattern grew from %zu to %zu nodes; answers agree: %s\n",
              q.pattern()->SizeInNodes(), nf.pattern()->SizeInNodes(),
              q.Answer(professors) == nf.Answer(professors) ? "yes" : "no");
  std::printf("normal-form pattern is weakly monotone (empirical): %s\n\n",
              rdfql::LooksWeaklyMonotone(nf.pattern(), engine.dict())
                  ? "yes"
                  : "no");

  std::printf("=== Proposition 6.7: CONSTRUCT[AUFS] -> CONSTRUCT[AUF] "
              "===\n");
  rdfql::ConstructQuery with_select =
      engine
          .ParseConstructQuery(
              "CONSTRUCT { (?x colleague ?y) } WHERE "
              "(SELECT {?x ?y} WHERE ((?x works_at ?u) AND "
              "(?y works_at ?u)))")
          .value();
  rdfql::ConstructQuery auf =
      rdfql::EliminateSelect(with_select, engine.dict());
  std::printf("SELECT-free pattern: %s\n",
              rdfql::PatternToString(auf.pattern(), *engine.dict()).c_str());
  std::printf("answers agree: %s\n\n",
              with_select.Answer(professors) == auf.Answer(professors)
                  ? "yes"
                  : "no");

  std::printf("=== Theorem 6.6 / Corollary 6.8: the full pipeline ===\n");
  rdfql::ConstructQuery helpers =
      engine
          .ParseConstructQuery(
              "CONSTRUCT { (?x helps ?o) } WHERE "
              "((?x works_at ?o) UNION (?x email ?o))")
          .value();
  rdfql::Result<rdfql::AufConstructTranslation> pipeline =
      rdfql::MonotoneConstructToAuf(helpers, engine.dict());
  if (pipeline.ok() && pipeline->verified) {
    std::printf("monotone CONSTRUCT rewritten into CONSTRUCT[AUF]; "
                "answers agree: %s\n",
                helpers.Answer(professors) ==
                        pipeline->query.Answer(professors)
                    ? "yes"
                    : "no");
  }
  return 0;
}
