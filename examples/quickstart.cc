// Quickstart: load an RDF graph, parse a query in the paper's syntax,
// evaluate it, and print the result table — Example 2.2 of the paper
// (founders and supporters of organizations standing for sharing rights,
// over the Figure 1 graph).

#include <cstdio>

#include "core/rdfql.h"

int main() {
  rdfql::Engine engine;

  // 1. Load data (simplified N-Triples; every string is an IRI).
  rdfql::Status st = engine.LoadGraphText("pirate_bay", R"(
    Gottfrid_Svartholm founder The_Pirate_Bay .
    Fredrik_Neij founder The_Pirate_Bay .
    Peter_Sunde founder The_Pirate_Bay .
    founder sub_property supporter .
    The_Pirate_Bay stands_for sharing_rights .
    Carl_Lundstrom supporter The_Pirate_Bay .
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Parse a graph pattern (SELECT / AND / UNION, Example 2.2).
  const char* query =
      "(SELECT {?p} WHERE ((?o stands_for sharing_rights) AND "
      "((?p founder ?o) UNION (?p supporter ?o))))";
  rdfql::Result<rdfql::PatternPtr> pattern = engine.Parse(query);
  if (!pattern.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 pattern.status().ToString().c_str());
    return 1;
  }

  // 3. Evaluate and print.
  rdfql::Result<rdfql::MappingSet> result = engine.Eval("pirate_bay",
                                                        pattern.value());
  if (!result.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n%s", query,
              rdfql::MappingTable(*result, *engine.dict()).c_str());

  // 4. Ask the analyzers about the query.
  rdfql::PatternReport report = engine.Classify(pattern.value());
  std::printf("\nfragment: %s | monotone (empirical): %s\n",
              report.fragment.c_str(),
              report.looks_monotone ? "yes" : "no");
  return 0;
}
