# Telemetry round-trip smoke test: a scripted 1000-query shell session with
# --query-log must leave exactly 1000 well-formed JSONL records, and the
# rdfql_stats CLI must validate the log, render the workload report, and
# lint the OpenMetrics snapshot the shell wrote at exit.
#
# Run as: cmake -DSHELL=<path to rdfql_shell> -DSTATS=<path to rdfql_stats>
#               -DOUT_DIR=<scratch dir> -P querylog_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED STATS OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
          "pass -DSHELL=<rdfql_shell> -DSTATS=<rdfql_stats> -DOUT_DIR=<dir>")
endif()

set(log "${OUT_DIR}/querylog_smoke.jsonl")
set(metrics "${OUT_DIR}/querylog_smoke_metrics.txt")
file(REMOVE "${log}" "${metrics}")

# Two triples, then 1000 queries cycling through four shapes (two fragments,
# one parse error, one missing graph) so the report has several outcome and
# fragment rows to aggregate.
set(script "triple g Juan was_born_in Chile\n")
string(APPEND script "triple g Juan email juan@puc.cl\n")
foreach(i RANGE 1 250)
  string(APPEND script "query g (?x was_born_in ?c)\n")
  string(APPEND script
         "query g (?x was_born_in ?c) OPT (?x email ?e)\n")
  string(APPEND script "query g this is ( not a pattern\n")
  string(APPEND script "query nosuchgraph (?x was_born_in ?c)\n")
endforeach()
string(APPEND script "quit\n")
file(WRITE "${OUT_DIR}/querylog_smoke_input.txt" "${script}")

execute_process(
  COMMAND "${SHELL}" --query-log=${log} --slow-ms=10000
          --metrics-out=${metrics}
  INPUT_FILE "${OUT_DIR}/querylog_smoke_input.txt"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# Every query line — including the rejected ones — must have produced
# exactly one valid JSONL record.
execute_process(
  COMMAND "${STATS}" --check "${log}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_stats --check failed (${rc})\n${out}${err}")
endif()
if(NOT out MATCHES "1000 record\\(s\\) OK")
  message(FATAL_ERROR "expected 1000 records, got:\n${out}")
endif()

# The text report must aggregate all three outcomes and both fragments.
execute_process(
  COMMAND "${STATS}" "${log}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_stats report failed (${rc})\n${out}${err}")
endif()
foreach(needle
        "1000 record\\(s\\)" "ok +500" "parse_error +250" "not_found +250"
        "SPARQL\\[triple\\]" "SPARQL\\[O\\]")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "report missing `${needle}`:\n${out}")
  endif()
endforeach()

# The JSON report must parse-roundtrip at least superficially.
execute_process(
  COMMAND "${STATS}" --json "${log}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"records\": *1000")
  message(FATAL_ERROR "rdfql_stats --json failed (${rc})\n${out}${err}")
endif()

# The OpenMetrics snapshot the shell wrote at exit must pass the linter.
execute_process(
  COMMAND "${STATS}" --lint-openmetrics=${metrics}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "openmetrics lint failed (${rc})\n${out}${err}")
endif()

# A corrupted log must be rejected with a file:line diagnostic.
file(READ "${log}" logtext)
file(WRITE "${OUT_DIR}/querylog_smoke_bad.jsonl"
     "${logtext}{\"v\":1,\"id\":9,\"truncated")
execute_process(
  COMMAND "${STATS}" --check "${OUT_DIR}/querylog_smoke_bad.jsonl"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "corrupted log unexpectedly passed --check")
endif()
if(NOT err MATCHES "querylog_smoke_bad.jsonl:1001")
  message(FATAL_ERROR "expected a file:line diagnostic, got:\n${err}")
endif()
