# Alerting smoke test: the whole loop on a scripted shell session. A
# fragment-scoped latency rule must move pending -> firing while an
# injected slow SPARQL[A] cross product runs, resolve once the workload
# stops and its observations age out of the rule's window, show up in
# `.alerts` and the rdfql_top panel, and leave a JSONL alert log that
# rdfql_stats --alerts aggregates. rdfql_top --no-color must emit plain
# frames (no ANSI escapes) for harnesses like this one.
#
# Run as: cmake -DSHELL=<rdfql_shell> -DSTATS=<rdfql_stats>
#               -DTOP=<rdfql_top> -DOUT_DIR=<scratch dir>
#               -P alerts_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED STATS OR NOT DEFINED TOP
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DSHELL= -DSTATS= -DTOP= -DOUT_DIR=")
endif()

set(rules "${OUT_DIR}/alerts_smoke_rules.json")
set(alert_log "${OUT_DIR}/alerts_smoke_alerts.jsonl")
set(telemetry "${OUT_DIR}/alerts_smoke_telemetry.json")
file(REMOVE "${alert_log}" "${telemetry}")

# One rule: the median SPARQL[A] latency over the last second must stay
# under 1 ms. The injected cross product takes far longer; ordinary
# triple-pattern queries are not SPARQL[A] and never touch the series.
file(WRITE "${rules}" "{\"version\":1,\"rules\":[
  {\"name\":\"and-slow\",\"agg\":\"p50\",\"metric\":\"engine.eval_ns\",
   \"fragment\":\"SPARQL[A]\",\"op\":\">\",\"threshold\":\"1ms\",
   \"windows\":[\"1s\"],\"severity\":\"page\"}]}\n")

# 60 disjoint p-edges: the 3-way cross product materializes 60^3 = 216000
# mappings — comfortably past 1 ms on any machine, finished in well under
# a second.
set(script "")
foreach(i RANGE 1 60)
  string(APPEND script "triple g s${i} p o${i}\n")
endforeach()
string(APPEND script
       "query g ((?a p ?x) AND ((?b p ?y) AND (?c p ?z)))\n")
# Let the 100 ms sampler tick a few times: record the latency into the
# history ring, evaluate the rule, fire it.
string(APPEND script ".sleep 500\n")
string(APPEND script ".alerts\n")
# Well-behaved traffic while the rule is firing (different fragment).
string(APPEND script "query g (?x p ?y)\n")
# Workload stops: after the observations age out of the 1 s window the
# rule must resolve on its own.
string(APPEND script ".sleep 1800\n")
string(APPEND script ".alerts\n")
string(APPEND script "quit\n")
file(WRITE "${OUT_DIR}/alerts_smoke_input.txt" "${script}")

execute_process(
  COMMAND "${SHELL}" --alert-rules=${rules} --alert-log=${alert_log}
          --telemetry-interval-ms=100 --telemetry-out=${telemetry}
  INPUT_FILE "${OUT_DIR}/alerts_smoke_input.txt"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
  TIMEOUT 120)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# First `.alerts`: the rule is firing with its fragment attributed.
# Second `.alerts`: it resolved once the workload stopped.
foreach(needle
        "firing +and-slow" "severity page" "fragment SPARQL\\[A\\]"
        "resolved +and-slow")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "shell output missing `${needle}`:\n${out}")
  endif()
endforeach()

# The alert log carries the full lifecycle in order.
file(READ "${alert_log}" log_text)
if(NOT log_text MATCHES
   "\"state\":\"pending\".*\"state\":\"firing\".*\"state\":\"resolved\"")
  message(FATAL_ERROR
          "alert log missing pending->firing->resolved:\n${log_text}")
endif()
if(NOT log_text MATCHES "\"rule\":\"and-slow\"")
  message(FATAL_ERROR "alert log missing the rule name:\n${log_text}")
endif()

# rdfql_stats aggregates the log: one fire, one resolve, last state
# resolved.
execute_process(
  COMMAND "${STATS}" --alerts=${alert_log}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_stats --alerts failed (${rc})\n${out}${err}")
endif()
foreach(needle
        "3 transition\\(s\\)" "firing=1" "resolved=1"
        "and-slow\\{SPARQL\\[A\\]\\}" "resolved")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "stats alert report missing `${needle}`:\n${out}")
  endif()
endforeach()

# rdfql_top renders the final snapshot's alert panel, and --no-color frames
# carry no ANSI escapes.
execute_process(
  COMMAND "${TOP}" --once --no-color "${telemetry}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_top --once failed (${rc})\n${out}${err}")
endif()
foreach(needle "alerts \\(1 rule\\)" "and-slow")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "rdfql_top frame missing `${needle}`:\n${out}")
  endif()
endforeach()
string(ASCII 27 esc)
string(FIND "${out}" "${esc}" esc_at)
if(NOT esc_at EQUAL -1)
  message(FATAL_ERROR "--no-color frame contains an ANSI escape:\n${out}")
endif()
