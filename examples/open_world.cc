// Open-world semantics demo: the heart of the paper. Shows (1) the
// weakly-monotone OPT query of Example 3.1 whose answers *grow in
// information* as the graph grows, (2) the non-weakly-monotone query of
// Example 3.3 whose answer *vanishes* when a triple is added — the
// closed-world behaviour the paper's NS fragments rule out — and (3) the
// same optional information retrieved with the paper's NS operator.

#include <cstdio>

#include "core/rdfql.h"

namespace {

void Show(rdfql::Engine* engine, const char* title, const char* graph,
          const rdfql::PatternPtr& p) {
  rdfql::Result<rdfql::MappingSet> r = engine->Eval(graph, p);
  std::printf("%s over %s:\n%s\n", title, graph,
              rdfql::MappingTable(*r, *engine->dict()).c_str());
}

}  // namespace

int main() {
  rdfql::Engine engine;
  // Figure 2's graphs: G2 extends G1 with Juan's email.
  engine.PutGraph("G1", rdfql::scenarios::ChileGraphG1(engine.dict()));
  engine.PutGraph("G2", rdfql::scenarios::ChileGraphG2(engine.dict()));

  std::printf("=== Example 3.1: optional information, the open-world way "
              "===\n");
  rdfql::PatternPtr p31 =
      engine.Parse(rdfql::scenarios::Example31Query()).value();
  Show(&engine, "P = (?X born Chile) OPT (?X email ?Y)", "G1", p31);
  Show(&engine, "P", "G2", p31);
  rdfql::PatternReport r31 = engine.Classify(p31);
  std::printf("well designed: %s | weakly monotone (empirical): %s | "
              "monotone: %s\n\n",
              r31.well_designed ? "yes" : "no",
              r31.looks_weakly_monotone ? "yes" : "no",
              r31.looks_monotone ? "yes" : "no");

  std::printf("=== Example 3.3: a query that closes the world ===\n");
  rdfql::PatternPtr p33 =
      engine.Parse(rdfql::scenarios::Example33Query()).value();
  Show(&engine, "P'", "G1", p33);
  Show(&engine, "P' (the answer VANISHED)", "G2", p33);
  std::optional<rdfql::PropertyCounterexample> ce =
      rdfql::FindWeakMonotonicityCounterexample(p33, engine.dict());
  if (ce.has_value()) {
    std::printf("weak-monotonicity counterexample found automatically: "
                "%s\n\n",
                ce->explanation.c_str());
  }

  std::printf("=== Section 5.1: OPT via the NS operator ===\n");
  const char* ns_query =
      "NS((?X was_born_in Chile) UNION "
      "((?X was_born_in Chile) AND (?X email ?Y)))";
  rdfql::PatternPtr pns = engine.Parse(ns_query).value();
  Show(&engine, "NS(P1 UNION (P1 AND P2))", "G1", pns);
  Show(&engine, "NS(P1 UNION (P1 AND P2))", "G2", pns);
  std::printf("NS-SPARQL can be compiled away (Theorem 5.1):\n");
  rdfql::Result<rdfql::PatternPtr> compiled = rdfql::EliminateNs(pns);
  std::printf("  %s\n",
              rdfql::PatternToString(compiled.value(), *engine.dict())
                  .c_str());
  return 0;
}
