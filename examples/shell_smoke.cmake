# Scripted-stdin smoke test for rdfql_shell: malformed commands, a deeply
# nested pattern and an unknown command must each print an error while the
# REPL stays alive — the session still answers the final query and exits 0.
#
# Run as: cmake -DSHELL=<path to rdfql_shell> -DOUT_DIR=<scratch dir>
#               -P shell_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DSHELL=<rdfql_shell> -DOUT_DIR=<scratch dir>")
endif()

# A pattern nested far past the parser's depth limit: the guard must turn
# it into a parse error instead of a stack overflow.
string(REPEAT "(" 100000 OPEN)
string(REPEAT ")" 100000 CLOSE)

set(lines
  "triple g Juan was_born_in Chile"
  "triple g Ana was_born_in Chile"
  "query g this is ( not a pattern"
  "frobnicate g (?x was_born_in ?c)"
  "query g ${OPEN}(?x was_born_in ?c)${CLOSE}"
  "query nosuchgraph (?x was_born_in ?c)"
  "query g (?x was_born_in ?c)"
  "quit")
string(JOIN "\n" script ${lines})
file(WRITE "${OUT_DIR}/shell_smoke_input.txt" "${script}\n")

execute_process(
  COMMAND "${SHELL}" --timeout-ms=10000 --max-mb=512
  INPUT_FILE "${OUT_DIR}/shell_smoke_input.txt"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "error:")
  message(FATAL_ERROR "expected at least one `error:` line\n${out}")
endif()
if(NOT out MATCHES "nesting too deep")
  message(FATAL_ERROR "expected the deep-nesting parse error\n${out}")
endif()
if(NOT out MATCHES "unknown command: frobnicate")
  message(FATAL_ERROR "expected the unknown-command error\n${out}")
endif()
if(NOT out MATCHES "no graph named")
  message(FATAL_ERROR "expected the missing-graph error\n${out}")
endif()
# The REPL must still answer the final query after all of the above.
if(NOT out MATCHES "Juan")
  message(FATAL_ERROR "expected results from the final query\n${out}")
endif()
