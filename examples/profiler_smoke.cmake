# Sampling-profiler smoke test: a scripted shell session with the profiler
# running at ~1 kHz must write a folded-stack profile (--profile-out) in
# which every line is well-formed (`tag;tag;... COUNT`), at least one stack
# carries an evaluator operator tag (a sample landed mid-evaluation), and
# at least one frame is a wait state (`pool_queue_wait` / `lock_wait`) —
# the whole point of wait-state attribution. `.prof` must also render the
# hot-tag table mid-session.
#
# Sampling is probabilistic: a quiet scheduling run can miss the eval
# window, so the session retries up to 3 times before failing.
#
# Run as: cmake -DSHELL=<rdfql_shell> -DOUT_DIR=<scratch dir>
#               -P profiler_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DSHELL=<rdfql_shell> -DOUT_DIR=<dir>")
endif()

set(folded "${OUT_DIR}/profiler_smoke.folded")

# A hub graph (200 spokes in, 200 out) makes (?x p ?y) AND (?y p ?z) a
# 40k-row hash join with heavy probe chunks, so the join parallelizes
# (probe >= the kernel's min input) and ParallelFor callers actually block
# at the barrier: four spawned copies plus a foreground one against a
# 4-thread pool yield samples in evaluator frames, in pool_task chunks,
# and in pool_queue_wait. A disjoint-edge graph would not work — its
# cross product falls back to the serial nested loop and never touches
# the pool.
set(script "")
foreach(i RANGE 1 200)
  string(APPEND script "triple g s${i} p h\n")
  string(APPEND script "triple g h p t${i}\n")
endforeach()
foreach(i RANGE 1 4)
  string(APPEND script "spawn g ((?x p ?y) AND (?y p ?z))\n")
endforeach()
string(APPEND script "query g (?x p ?y) AND (?y p ?z)\n")
string(APPEND script ".wait\n")
string(APPEND script ".prof 5\n")
string(APPEND script "quit\n")
file(WRITE "${OUT_DIR}/profiler_smoke_input.txt" "${script}")

set(ok FALSE)
foreach(attempt RANGE 1 3)
  file(REMOVE "${folded}")
  execute_process(
    COMMAND "${SHELL}" --no-cache --threads=4 --profile-hz=997
            --profile-out=${folded}
    INPUT_FILE "${OUT_DIR}/profiler_smoke_input.txt"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc
    TIMEOUT 120)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()

  # `.prof` rendered the hot-tag table mid-session.
  if(NOT out MATCHES "ticks=[0-9]+ samples=[0-9]+")
    message(FATAL_ERROR ".prof header missing:\n${out}")
  endif()

  if(NOT EXISTS "${folded}")
    message(FATAL_ERROR "--profile-out wrote nothing")
  endif()
  file(READ "${folded}" text)
  if(text STREQUAL "")
    message(FATAL_ERROR "folded profile is empty")
  endif()

  # Every line must be `stack COUNT` with a semicolon-joined, space-free
  # stack (tags are sanitized at intern time).
  # Tags contain `;` (the folded separator), which is also cmake's list
  # separator — lines cannot ride in a list, so validate the whole file
  # with one anchored regex: every line is `stack COUNT` with a space-free
  # stack (tags are sanitized at intern time).
  if(NOT text MATCHES "^([^ \n]+ [0-9]+\n)+$")
    message(FATAL_ERROR "malformed folded profile:\n${text}")
  endif()

  # Probabilistic assertions: an evaluator-op frame and a wait-state frame.
  set(ok TRUE)
  if(NOT text MATCHES "(AND|TRIPLE|Join)")
    set(ok FALSE)
  endif()
  if(NOT text MATCHES "(pool_queue_wait|lock_wait)")
    set(ok FALSE)
  endif()
  if(ok)
    break()
  endif()
  message(STATUS "attempt ${attempt}: sampler missed a window, retrying\n"
                 "${text}")
endforeach()

if(NOT ok)
  message(FATAL_ERROR
          "no attempt produced both an evaluator-op frame and a wait-state "
          "frame:\n${text}")
endif()
