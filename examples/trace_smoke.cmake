# Chrome-trace smoke test: both trace paths — the session-wide
# `--trace-out=FILE` (one tracer spanning every foreground query) and the
# interactive `.trace FILE` (re-run the last query under a fresh tracer) —
# must write trace_event JSON that actually parses (cmake's string(JSON))
# and contains at least one complete-phase span.
#
# Run as: cmake -DSHELL=<rdfql_shell> -DOUT_DIR=<scratch dir>
#               -P trace_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DSHELL=<rdfql_shell> -DOUT_DIR=<dir>")
endif()

set(session_trace "${OUT_DIR}/trace_smoke_session.json")
set(inline_trace "${OUT_DIR}/trace_smoke_inline.json")
file(REMOVE "${session_trace}" "${inline_trace}")

set(script "triple g a p b\n")
string(APPEND script "triple g b p c\n")
string(APPEND script "query g (?x p ?y) AND (?y p ?z)\n")
string(APPEND script "query g (?x p ?y) OPT (?y p ?z)\n")
string(APPEND script ".trace ${inline_trace}\n")
string(APPEND script "quit\n")
file(WRITE "${OUT_DIR}/trace_smoke_input.txt" "${script}")

execute_process(
  COMMAND "${SHELL}" --trace-out=${session_trace}
  INPUT_FILE "${OUT_DIR}/trace_smoke_input.txt"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
  TIMEOUT 60)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# Validate each file: parses as JSON, traceEvents is a non-empty array,
# and the first event is a complete-phase ("X") span with a name.
foreach(trace "${session_trace}" "${inline_trace}")
  if(NOT EXISTS "${trace}")
    message(FATAL_ERROR "${trace} was not written\n${out}")
  endif()
  file(READ "${trace}" text)
  string(JSON n ERROR_VARIABLE jerr LENGTH "${text}" traceEvents)
  if(NOT jerr STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${trace} is not valid trace JSON: ${jerr}\n${text}")
  endif()
  if(n EQUAL 0)
    message(FATAL_ERROR "${trace} has no trace events\n${text}")
  endif()
  string(JSON ph ERROR_VARIABLE jerr GET "${text}" traceEvents 0 ph)
  string(JSON name ERROR_VARIABLE jerr2 GET "${text}" traceEvents 0 name)
  if(NOT ph STREQUAL "X" OR NOT jerr2 STREQUAL "NOTFOUND")
    message(FATAL_ERROR
            "${trace} event 0 is not a named complete span\n${text}")
  endif()
endforeach()
