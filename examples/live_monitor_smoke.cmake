# Live-monitoring smoke test: the whole loop on a scripted shell session.
# A spawned cross-product query must show up in `.ps` mid-flight (eval
# phase, live memory figures), the watchdog must cancel it while well-
# behaved queries pass untouched, the cancellation must appear as the
# typed `watchdog_cancelled` outcome in the query log / rdfql_stats, the
# sampler's snapshot file must render through rdfql_top --once, and the
# OpenMetrics exposition (build info included) must lint clean.
#
# Run as: cmake -DSHELL=<rdfql_shell> -DSTATS=<rdfql_stats>
#               -DTOP=<rdfql_top> -DOUT_DIR=<scratch dir>
#               -P live_monitor_smoke.cmake
if(NOT DEFINED SHELL OR NOT DEFINED STATS OR NOT DEFINED TOP
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "pass -DSHELL= -DSTATS= -DTOP= -DOUT_DIR=")
endif()

set(log "${OUT_DIR}/live_monitor_smoke.jsonl")
set(metrics "${OUT_DIR}/live_monitor_smoke_metrics.txt")
set(telemetry "${OUT_DIR}/live_monitor_smoke_telemetry.json")
file(REMOVE "${log}" "${metrics}" "${telemetry}")

# A graph of 200 disjoint p-edges: the spawned 4-way cross product is
# 200^4 pairs — minutes of work, so only the watchdog ends it.
set(script "")
foreach(i RANGE 1 200)
  string(APPEND script "triple g s${i} p o${i}\n")
endforeach()
string(APPEND script
       "spawn g ((?a p ?x) AND ((?b p ?y) AND ((?c p ?z) AND (?d p ?w))))\n")
# Sleep to mid-flight (budget is 500ms), then look at the registry while
# the offender is still running.
string(APPEND script ".sleep 250\n")
string(APPEND script ".ps\n")
# A well-behaved query in the same session: must pass untouched.
string(APPEND script "query g (?x p ?y)\n")
string(APPEND script ".wait\n")
string(APPEND script ".jobs\n")
string(APPEND script ".stats\n")
string(APPEND script "quit\n")
file(WRITE "${OUT_DIR}/live_monitor_smoke_input.txt" "${script}")

execute_process(
  COMMAND "${SHELL}" --watchdog-wall-ms=500 --telemetry-interval-ms=100
          --telemetry-out=${telemetry} --query-log=${log}
          --metrics-out=${metrics}
  INPUT_FILE "${OUT_DIR}/live_monitor_smoke_input.txt"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
  TIMEOUT 120)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "shell exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# `.ps` mid-flight: one registered query, in the eval phase, with the
# live-figure columns present and the right fragment attributed.
foreach(needle
        "in-flight: 1" "LIVE-MB" " eval " "SPARQL\\[A\\]"
        "watchdog: query exceeded max_wall_ms=500")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "shell output missing `${needle}`:\n${out}")
  endif()
endforeach()
# The well-behaved query ran to completion (its result table includes the
# last edge) while the offender was being cancelled.
if(NOT out MATCHES "s200")
  message(FATAL_ERROR "fast query did not complete:\n${out}")
endif()

# The query log carries the typed outcome, and rdfql_stats aggregates it.
execute_process(
  COMMAND "${STATS}" "${log}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_stats report failed (${rc})\n${out}${err}")
endif()
foreach(needle "watchdog_cancelled +1" "ok +1")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "stats report missing `${needle}`:\n${out}")
  endif()
endforeach()

# rdfql_top renders the sampler's final snapshot (written by the shell's
# StopTelemetry tick on exit).
execute_process(
  COMMAND "${TOP}" --once "${telemetry}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdfql_top --once failed (${rc})\n${out}${err}")
endif()
foreach(needle "watchdog-cancelled: 1" "in-flight: 0" "queries:")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "rdfql_top frame missing `${needle}`:\n${out}")
  endif()
endforeach()

# The OpenMetrics exposition lints clean and carries the new series.
execute_process(
  COMMAND "${STATS}" --lint-openmetrics=${metrics}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "openmetrics lint failed (${rc})\n${out}${err}")
endif()
file(READ "${metrics}" metrics_text)
foreach(needle
        "rdfql_build_info" "rdfql_engine_queries_watchdog_cancelled_total 1"
        "rdfql_engine_queries_active 0")
  if(NOT metrics_text MATCHES "${needle}")
    message(FATAL_ERROR "metrics missing `${needle}`:\n${metrics_text}")
  endif()
endforeach()
