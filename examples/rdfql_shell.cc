// An interactive / scriptable shell over the Engine façade.
//
// Commands (one per line, `#` starts a comment):
//   load <graph> <file>        load simplified N-Triples from a file
//   triple <graph> s p o       insert one triple
//   query <graph> <pattern>    evaluate and print the result table
//   ask <graph> <pattern>      print yes/no
//   csv <graph> <pattern>      evaluate, print CSV
//   json <graph> <pattern>     evaluate, print W3C-style JSON
//   construct <graph> <query>  evaluate a CONSTRUCT query, print triples
//   insertwhere <graph> <q>    CONSTRUCT-shaped update: insert instantiations
//   deletewhere <graph> <q>    CONSTRUCT-shaped update: delete instantiations
//   classify <pattern>         run the paper's classifiers
//   optimize <graph> <pattern> show the optimized form for that graph
//   explain <graph> <pattern>  evaluate with a per-operator trace
//   dot <graph>                print the graph in Graphviz DOT
//   graphs                     list loaded graphs
//   spawn <graph> <pattern>    run a query on a background thread (a job)
//   .jobs                      list spawned jobs and their outcomes
//   .wait                      join every spawned job
//   .sleep <ms>                pause the script (lets jobs make progress)
//   .ps                        in-flight query table (live registry)
//   .stats                     workload report over this session's queries
//   .metrics                   engine metrics in OpenMetrics text format
//   .cache                     query-cache hit/miss/size counters
//   .cache clear               drop all cached plans and results
//   .prof [N]                  top-N hot tags from the sampling profiler
//   .trace FILE                re-run the last query traced, write Chrome JSON
//   .alerts                    alert rule states (with --alert-rules)
//   quit
//
// With no stdin redirection it reads interactively; a built-in demo script
// runs when invoked with `--demo`.
//
// Flags: `--timeout-ms=N` and `--max-mb=N` set engine-wide resource limits
// (wall clock / live mapping memory) for every query in the session; a
// query that trips one prints the typed error and the REPL continues.
// Telemetry flags: `--query-log=PATH` appends one JSONL record per query
// (analyze offline with tools/rdfql_stats), `--slow-ms=N` marks queries
// past N ms as slow and captures their EXPLAIN ANALYZE into the log,
// `--sample=N` keeps every Nth successful record (slow/failed always
// kept), `--metrics-out=PATH` writes the OpenMetrics exposition at exit.
// Live monitoring: `--watchdog-wall-ms=N` / `--watchdog-max-mb=N` arm the
// slow-query watchdog (offenders are cancelled mid-flight and logged as
// watchdog_cancelled), `--telemetry-out=PATH` has the sampler rewrite a
// TelemetrySnapshot JSON file every tick (watch it with tools/rdfql_top),
// `--telemetry-interval-ms=N` sets the tick period (default 1000).
// Alerting (docs/observability.md, "Alerting & SLOs"): `--alert-rules=FILE`
// installs a declarative rule set (JSON) evaluated by the telemetry tick
// against the metrics history ring — it implies telemetry, so combine it
// with `--telemetry-interval-ms=N` to control the evaluation cadence;
// `--alert-log=PATH` appends one JSONL record per state transition
// (summarize offline with rdfql_stats --alerts), and `.alerts` shows the
// live rule states.
// Caching: the shell attaches a query cache by default (plans + results;
// see docs/performance.md, "Query caching") so repeated queries hit warm;
// `--no-cache` runs the session without one, and `.cache` inspects it.
// Profiling (docs/observability.md, "Profiling"): `--profile-hz=N` starts
// the engine's sampling profiler at N Hz, `--profile-out=FILE` writes the
// folded-stack profile at exit (either flag enables the profiler; the
// default rate is a phase-lock-avoiding 97 Hz), and `.prof [N]` prints the
// hottest tags mid-session. Tracing: `--trace-out=FILE` attaches one
// session tracer to every foreground query and writes the combined Chrome
// trace_event JSON at exit; `.trace FILE` re-runs the most recent query
// under a fresh tracer and writes its trace immediately.
// `--threads=N` sets the engine's default per-query parallelism.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rdfql.h"
#include "obs/openmetrics.h"
#include "obs/query_log.h"
#include "obs/tracer.h"
#include "util/string_util.h"

namespace {

using rdfql::Engine;

/// One `spawn`ed background query. The worker writes `outcome` then
/// releases `done`; readers check `done` (acquire) before touching it.
struct Job {
  int id = 0;
  std::string query;
  std::thread thread;
  std::atomic<bool> done{false};
  std::string outcome;
};

std::vector<std::unique_ptr<Job>>& Jobs() {
  static std::vector<std::unique_ptr<Job>> jobs;
  return jobs;
}

void JoinJobs(bool print) {
  for (std::unique_ptr<Job>& job : Jobs()) {
    if (job->thread.joinable()) job->thread.join();
    if (print) {
      std::printf("job %d: %s  # %s\n", job->id, job->outcome.c_str(),
                  job->query.c_str());
    }
  }
}

/// Session state the command loop mutates: the optional session tracer
/// (--trace-out) and the last foreground query, which `.trace FILE` re-runs.
struct ShellSession {
  rdfql::Tracer* tracer = nullptr;
  std::string last_graph;
  std::string last_query;
};

ShellSession& Session() {
  static ShellSession session;
  return session;
}

void DoQuery(Engine* engine, const std::string& graph,
             const std::string& text) {
  rdfql::EvalOptions options;
  // The span tree is single-threaded by contract, so only foreground
  // queries feed the session tracer (spawned jobs never do).
  options.tracer = Session().tracer;
  rdfql::Result<rdfql::MappingSet> r = engine->Query(graph, text, options);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%s", rdfql::MappingTable(*r, *engine->dict()).c_str());
}

void DoConstruct(Engine* engine, const std::string& graph,
                 const std::string& text) {
  rdfql::Result<rdfql::ConstructQuery> q =
      engine->ParseConstructQuery(text);
  if (!q.ok()) {
    std::printf("error: %s\n", q.status().ToString().c_str());
    return;
  }
  rdfql::Result<const rdfql::Graph*> g = engine->GetGraph(graph);
  if (!g.ok()) {
    std::printf("error: %s\n", g.status().ToString().c_str());
    return;
  }
  std::printf("%s",
              rdfql::WriteNTriples(q->Answer(**g), *engine->dict()).c_str());
}

void DoClassify(Engine* engine, const std::string& text) {
  rdfql::Result<rdfql::PatternPtr> p = engine->Parse(text);
  if (!p.ok()) {
    std::printf("error: %s\n", p.status().ToString().c_str());
    return;
  }
  rdfql::PatternReport r = engine->Classify(p.value());
  std::printf(
      "fragment=%s wd=%d uwd=%d simple=%d ns=%d wm*=%d mono*=%d sf*=%d\n",
      r.fragment.c_str(), r.well_designed, r.union_well_designed,
      r.simple_pattern, r.ns_pattern, r.looks_weakly_monotone,
      r.looks_monotone, r.looks_subsumption_free);
}

void DoOptimize(Engine* engine, const std::string& graph,
                const std::string& text) {
  rdfql::Result<rdfql::PatternPtr> p = engine->Parse(text);
  if (!p.ok()) {
    std::printf("error: %s\n", p.status().ToString().c_str());
    return;
  }
  rdfql::Result<const rdfql::Graph*> g = engine->GetGraph(graph);
  if (!g.ok()) {
    std::printf("error: %s\n", g.status().ToString().c_str());
    return;
  }
  rdfql::GraphStats stats = rdfql::GraphStats::Collect(**g);
  rdfql::Optimizer opt(&stats);
  std::printf("%s\n",
              rdfql::PatternToString(opt.Optimize(p.value()),
                                     *engine->dict())
                  .c_str());
}

bool HandleLine(Engine* engine, const std::string& raw) {
  std::string line(rdfql::StripWhitespace(raw));
  if (line.empty() || line[0] == '#') return true;
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == ".stats") {
    rdfql::QueryLog* log = engine->query_log();
    if (log == nullptr) {
      std::printf("no query log attached\n");
    } else {
      rdfql::QueryLogAggregator agg;
      for (const rdfql::QueryLogRecord& r : log->Snapshot()) agg.Add(r);
      std::printf("%s", agg.ToText().c_str());
    }
    return true;
  }
  if (cmd == ".metrics") {
    std::printf("%s",
                rdfql::RenderOpenMetrics(engine->MetricsSnapshot()).c_str());
    return true;
  }
  if (cmd == ".ps") {
    std::printf("%s", engine->InflightSnapshot().ToText().c_str());
    return true;
  }
  if (cmd == ".alerts") {
    if (engine->alerts() == nullptr) {
      std::printf("no alert rules installed (start with --alert-rules=FILE)\n");
    } else {
      std::printf("%s", engine->AlertSnapshot().ToText().c_str());
    }
    return true;
  }
  if (cmd == ".cache") {
    rdfql::QueryCache* cache = engine->query_cache();
    if (cache == nullptr) {
      std::printf("no query cache attached (started with --no-cache)\n");
      return true;
    }
    std::string sub;
    in >> sub;
    if (sub == "clear") {
      cache->Clear();
      std::printf("cache cleared\n");
      return true;
    }
    rdfql::QueryCacheStats s = cache->Stats();
    std::printf(
        "plan:   %llu hits, %llu misses, %llu evictions, %zu entries\n"
        "result: %llu hits, %llu misses, %llu evictions, %llu oversize, "
        "%zu entries, %zu bytes\n"
        "bypasses: %llu\n",
        static_cast<unsigned long long>(s.plan_hits),
        static_cast<unsigned long long>(s.plan_misses),
        static_cast<unsigned long long>(s.plan_evictions), s.plan_entries,
        static_cast<unsigned long long>(s.result_hits),
        static_cast<unsigned long long>(s.result_misses),
        static_cast<unsigned long long>(s.result_evictions),
        static_cast<unsigned long long>(s.result_oversize), s.result_entries,
        s.result_bytes, static_cast<unsigned long long>(s.bypasses));
    return true;
  }
  if (cmd == ".prof") {
    rdfql::Profiler* prof = engine->profiler();
    if (prof == nullptr) {
      std::printf("profiler not enabled (start with --profile-hz=N)\n");
      return true;
    }
    size_t n = 10;
    in >> n;
    if (n == 0) n = 10;
    std::printf("ticks=%llu samples=%llu\n",
                static_cast<unsigned long long>(prof->ticks()),
                static_cast<unsigned long long>(prof->samples()));
    std::printf("%-28s %10s %10s\n", "tag", "self", "total");
    for (const rdfql::ProfileTagTotal& t : prof->TopTags(n)) {
      std::printf("%-28s %10llu %10llu\n", t.tag.c_str(),
                  static_cast<unsigned long long>(t.self),
                  static_cast<unsigned long long>(t.total));
    }
    return true;
  }
  if (cmd == ".trace") {
    std::string file;
    in >> file;
    if (file.empty()) {
      std::printf("usage: .trace FILE\n");
      return true;
    }
    if (Session().last_query.empty()) {
      std::printf("no query to trace yet (run `query` first)\n");
      return true;
    }
    rdfql::Tracer tracer;
    rdfql::EvalOptions options;
    options.tracer = &tracer;
    // A cached result would leave nothing to trace; force a live run.
    options.use_result_cache = rdfql::CacheMode::kOff;
    rdfql::Result<rdfql::MappingSet> r =
        engine->Query(Session().last_graph, Session().last_query, options);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return true;
    }
    std::ofstream out(file);
    if (!out) {
      std::printf("error: cannot write %s\n", file.c_str());
      return true;
    }
    out << tracer.ToChromeTraceJson();
    std::printf("trace of `%s` (%zu rows) written to %s\n",
                Session().last_query.c_str(), r->size(), file.c_str());
    return true;
  }
  if (cmd == ".jobs") {
    for (const std::unique_ptr<Job>& job : Jobs()) {
      bool done = job->done.load(std::memory_order_acquire);
      std::printf("job %d: %s  # %s\n", job->id,
                  done ? job->outcome.c_str() : "running",
                  job->query.c_str());
    }
    return true;
  }
  if (cmd == ".wait") {
    JoinJobs(/*print=*/true);
    return true;
  }
  if (cmd == ".sleep") {
    uint64_t ms = 0;
    in >> ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return true;
  }
  if (cmd == "dot") {
    std::string graph_name;
    in >> graph_name;
    rdfql::Result<const rdfql::Graph*> gr = engine->GetGraph(graph_name);
    if (!gr.ok()) {
      std::printf("error: %s\n", gr.status().ToString().c_str());
    } else {
      std::printf("%s", rdfql::WriteDot(**gr, *engine->dict()).c_str());
    }
    return true;
  }
  if (cmd == "graphs") {
    std::printf("(use load/triple to create graphs)\n");
    return true;
  }
  std::string graph;
  if (cmd == "load") {
    std::string file;
    in >> graph >> file;
    std::ifstream f(file);
    if (!f) {
      std::printf("error: cannot open %s\n", file.c_str());
      return true;
    }
    std::stringstream buffer;
    buffer << f.rdbuf();
    rdfql::Status st = engine->LoadGraphText(graph, buffer.str());
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    return true;
  }
  if (cmd == "triple") {
    std::string s, p, o;
    in >> graph >> s >> p >> o;
    rdfql::Status st = engine->LoadGraphText(graph, s + " " + p + " " + o);
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    return true;
  }
  std::string rest;
  if (cmd == "classify") {
    std::getline(in, rest);
    DoClassify(engine, rest);
    return true;
  }
  in >> graph;
  std::getline(in, rest);
  if (cmd == "spawn") {
    auto job = std::make_unique<Job>();
    job->id = static_cast<int>(Jobs().size()) + 1;
    job->query = std::string(rdfql::StripWhitespace(rest));
    Job* j = job.get();
    std::string graph_copy = graph;
    std::string text = job->query;
    // Reads-only against the engine: safe to run concurrently with other
    // queries, but don't load/mutate graphs while jobs are in flight.
    job->thread = std::thread([engine, j, graph_copy, text] {
      rdfql::Result<rdfql::MappingSet> r = engine->Query(graph_copy, text);
      j->outcome = r.ok() ? "ok rows=" + std::to_string(r->size())
                          : r.status().ToString();
      j->done.store(true, std::memory_order_release);
    });
    std::printf("job %d spawned\n", j->id);
    Jobs().push_back(std::move(job));
    return true;
  }
  if (cmd == "query") {
    Session().last_graph = graph;
    Session().last_query = std::string(rdfql::StripWhitespace(rest));
    DoQuery(engine, graph, rest);
  } else if (cmd == "ask") {
    rdfql::Result<bool> r = engine->Ask(graph, rest);
    std::printf("%s\n", r.ok() ? (*r ? "yes" : "no")
                                : r.status().ToString().c_str());
  } else if (cmd == "csv") {
    rdfql::Result<std::string> r = engine->QueryCsv(graph, rest);
    std::printf("%s", r.ok() ? r->c_str() : r.status().ToString().c_str());
  } else if (cmd == "json") {
    rdfql::Result<std::string> r = engine->QueryJson(graph, rest);
    std::printf("%s\n", r.ok() ? r->c_str()
                                : r.status().ToString().c_str());
  } else if (cmd == "explain") {
    rdfql::Result<rdfql::QueryExplanation> e =
        engine->QueryExplained(graph, rest);
    if (!e.ok()) {
      std::printf("error: %s\n", e.status().ToString().c_str());
    } else {
      std::printf("%s(%zu results, %zu intermediate mappings)\n",
                  e->ToString().c_str(), e->result().size(),
                  e->explanation.TotalIntermediate());
    }
  } else if (cmd == "construct") {
    DoConstruct(engine, graph, rest);
  } else if (cmd == "insertwhere" || cmd == "deletewhere") {
    rdfql::Result<rdfql::ConstructQuery> q =
        engine->ParseConstructQuery(rest);
    rdfql::Result<const rdfql::Graph*> gr = engine->GetGraph(graph);
    if (!q.ok() || !gr.ok()) {
      std::printf("error: %s\n",
                  (!q.ok() ? q.status() : gr.status()).ToString().c_str());
    } else {
      rdfql::Graph mutated = **gr;
      size_t changed =
          cmd == "insertwhere"
              ? rdfql::InsertWhere(&mutated, q->templ(), q->pattern())
              : rdfql::DeleteWhere(&mutated, q->templ(), q->pattern());
      engine->PutGraph(graph, std::move(mutated));
      std::printf("%zu triples %s\n", changed,
                  cmd == "insertwhere" ? "inserted" : "deleted");
    }
  } else if (cmd == "optimize") {
    DoOptimize(engine, graph, rest);
  } else {
    std::printf("unknown command: %s\n", cmd.c_str());
  }
  return true;
}

int RunDemo(Engine* engine) {
  const char* script[] = {
      "triple g Juan was_born_in Chile",
      "triple g Juan email juan@puc.cl",
      "triple g Ana was_born_in Chile",
      "query g (?x was_born_in Chile) OPT (?x email ?e)",
      "classify (?x was_born_in Chile) OPT (?x email ?e)",
      "query g NS((?x was_born_in Chile) UNION ((?x was_born_in Chile) AND "
      "(?x email ?e)))",
      "construct g CONSTRUCT { (?x reachable ?e) } WHERE (?x email ?e)",
      "ask g (Juan email ?e)",
      "csv g (?x was_born_in ?c)",
      "explain g ((?x was_born_in Chile) AND (?x email ?e)) FILTER ?x = "
      "Juan",
      "optimize g ((?x was_born_in Chile) AND (?x email ?e)) FILTER ?x = "
      "Juan",
  };
  for (const char* line : script) {
    std::printf("rdfql> %s\n", line);
    HandleLine(engine, line);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Engine engine;
  bool demo = false;
  bool no_cache = false;
  rdfql::ResourceLimits limits;
  rdfql::QueryLogOptions log_options;
  rdfql::TelemetryOptions telemetry_options;
  bool want_telemetry = false;
  std::string alert_rules_path;
  std::string alert_log_path;
  std::string metrics_out;
  std::string profile_out;
  std::string trace_out;
  uint64_t profile_hz = 0;
  bool want_profiler = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      limits.max_wall_ms = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--max-mb=", 0) == 0) {
      limits.max_bytes =
          std::strtoull(arg.c_str() + 9, nullptr, 10) * 1'000'000ull;
    } else if (arg.rfind("--query-log=", 0) == 0) {
      log_options.path = arg.substr(12);
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      log_options.slow_ms = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--sample=", 0) == 0) {
      log_options.sample_every = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg.rfind("--watchdog-wall-ms=", 0) == 0) {
      telemetry_options.watchdog.defaults.max_wall_ms =
          std::strtoull(arg.c_str() + 19, nullptr, 10);
      want_telemetry = true;
    } else if (arg.rfind("--watchdog-max-mb=", 0) == 0) {
      telemetry_options.watchdog.defaults.max_live_bytes =
          std::strtoull(arg.c_str() + 18, nullptr, 10) * 1'000'000ull;
      want_telemetry = true;
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_options.snapshot_path = arg.substr(16);
      want_telemetry = true;
    } else if (arg.rfind("--telemetry-interval-ms=", 0) == 0) {
      telemetry_options.interval_ms =
          std::strtoull(arg.c_str() + 24, nullptr, 10);
      want_telemetry = true;
    } else if (arg.rfind("--alert-rules=", 0) == 0) {
      alert_rules_path = arg.substr(14);
      want_telemetry = true;
    } else if (arg.rfind("--alert-log=", 0) == 0) {
      alert_log_path = arg.substr(12);
    } else if (arg.rfind("--profile-hz=", 0) == 0) {
      profile_hz = std::strtoull(arg.c_str() + 13, nullptr, 10);
      want_profiler = true;
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = arg.substr(14);
      want_profiler = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s (try --demo --no-cache --timeout-ms=N "
                   "--max-mb=N --query-log=PATH --slow-ms=N --sample=N "
                   "--metrics-out=PATH --watchdog-wall-ms=N "
                   "--watchdog-max-mb=N --telemetry-out=PATH "
                   "--telemetry-interval-ms=N --alert-rules=FILE "
                   "--alert-log=PATH --profile-hz=N "
                   "--profile-out=FILE --trace-out=FILE --threads=N)\n",
                   arg.c_str());
      return 1;
    }
  }
  engine.SetDefaultLimits(limits);
  // The shell always keeps a session log (ring-only without --query-log, so
  // `.stats` works out of the box) and always collects metrics for
  // `.metrics` — interactive convenience over the last few percent of
  // throughput; embedders wanting the zero-overhead path leave both off.
  rdfql::QueryLog query_log(log_options);
  if (!query_log.ok()) {
    std::fprintf(stderr, "error: %s\n", query_log.error().c_str());
    return 1;
  }
  engine.SetQueryLog(&query_log);
  engine.EnableMetrics();
  // Same convenience-over-throughput call as the log/metrics: repeated
  // queries in a session hit warm unless --no-cache opted out.
  rdfql::QueryCache query_cache{rdfql::QueryCacheOptions{}};
  if (!no_cache) engine.SetQueryCache(&query_cache);
  // `.ps` works out of the box; the sampler/watchdog thread only starts
  // when a telemetry or watchdog flag asked for it.
  engine.EnableLiveMonitoring();
  if (threads > 0) engine.SetDefaultThreads(threads);
  if (want_profiler) {
    rdfql::Status st =
        profile_hz != 0 ? engine.EnableProfiling(profile_hz)
                        : engine.EnableProfiling();
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  rdfql::Tracer session_tracer;
  if (!trace_out.empty()) Session().tracer = &session_tracer;
  if (!alert_rules_path.empty()) {
    std::ifstream rules_in(alert_rules_path);
    if (!rules_in) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   alert_rules_path.c_str());
      return 1;
    }
    std::stringstream rules_buf;
    rules_buf << rules_in.rdbuf();
    rdfql::AlertLogOptions alert_log_options;
    alert_log_options.path = alert_log_path;
    rdfql::Status st =
        engine.SetAlertRules(rules_buf.str(), alert_log_options);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  } else if (!alert_log_path.empty()) {
    std::fprintf(stderr, "error: --alert-log needs --alert-rules=FILE\n");
    return 1;
  }
  if (want_telemetry) {
    rdfql::Status st = engine.StartTelemetry(telemetry_options);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  int rc = 0;
  if (demo) {
    rc = RunDemo(&engine);
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!HandleLine(&engine, line)) break;
    }
  }
  JoinJobs(/*print=*/false);
  // Final tick lands the end-state snapshot in --telemetry-out.
  engine.StopTelemetry();
  if (want_profiler) {
    engine.DisableProfiling();
    if (!profile_out.empty()) {
      std::ofstream out(profile_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", profile_out.c_str());
        return 1;
      }
      out << engine.DumpProfile();
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    out << session_tracer.ToChromeTraceJson();
  }
  if (!metrics_out.empty()) {
    std::string text = rdfql::RenderOpenMetrics(engine.MetricsSnapshot());
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << text;
  }
  engine.SetQueryLog(nullptr);
  engine.SetQueryCache(nullptr);
  return rc;
}
