// A guided tour of Section 7 made executable: shows, for tiny inputs, the
// actual reduction artifacts — graphs, patterns, mappings — behind each
// completeness result, then *decides* the source problems by running the
// SPARQL engine on them.

#include <cstdio>

#include "core/rdfql.h"

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void ShowInstance(rdfql::Dictionary* dict, const rdfql::EvalInstance& inst,
                  bool expected, const char* what) {
  std::printf("graph (%zu triples), pattern (%zu nodes)\n",
              inst.graph.size(), inst.pattern->SizeInNodes());
  std::printf("queried mapping: %s\n",
              inst.mapping.ToString(*dict).c_str());
  bool got = rdfql::DecideByEvaluation(inst);
  std::printf("%s: engine says %s, oracle says %s %s\n", what,
              got ? "YES" : "no", expected ? "YES" : "no",
              got == expected ? "[agree]" : "[MISMATCH!]");
}

}  // namespace

int main() {
  rdfql::Dictionary dict;
  rdfql::Rng rng(2016);

  Banner("Theorem 7.1: Eval(SP-SPARQL) is DP-complete — SAT-UNSAT");
  // ϕ = (x1 ∨ x2) ∧ (¬x1): satisfiable. ψ = x1 ∧ ¬x1: unsatisfiable.
  rdfql::Cnf phi;
  phi.num_vars = 2;
  phi.AddClause({1, 2});
  phi.AddClause({-1});
  rdfql::Cnf psi;
  psi.num_vars = 1;
  psi.AddClause({1});
  psi.AddClause({-1});
  rdfql::EvalInstance dp =
      rdfql::SatUnsatToSimplePattern(phi, psi, &dict, "lab_dp");
  std::printf("simple pattern: %s\n",
              rdfql::PatternToString(dp.pattern, dict).substr(0, 120).c_str());
  ShowInstance(&dict, dp, true, "(phi SAT, psi UNSAT)?");

  Banner("Theorem 7.2 machinery: exact chromatic number via USP-SPARQL");
  rdfql::SimpleGraph c5;
  c5.n = 5;
  for (int i = 0; i < 5; ++i) c5.edges.emplace_back(i, (i + 1) % 5);
  std::printf("C5 has chromatic number %d\n", rdfql::ChromaticNumber(c5));
  rdfql::EvalInstance usp = rdfql::ExactColorSetToUsp(c5, {3}, &dict);
  ShowInstance(&dict, usp, true, "chi(C5) in {3}?");

  Banner("Theorem 7.3: MAX-ODD-SAT via USP-SPARQL");
  // ϕ = (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2) ∧ ¬x3: max true vars = 1 (odd).
  rdfql::Cnf modd;
  modd.num_vars = 3;
  modd.AddClause({1, 2});
  modd.AddClause({-1, -2});
  modd.AddClause({-3});
  std::printf("IsMaxOddSat oracle: %s\n",
              rdfql::IsMaxOddSat(modd) ? "true" : "false");
  rdfql::EvalInstance mo = rdfql::MaxOddSatToUsp(modd, &dict);
  ShowInstance(&dict, mo, rdfql::IsMaxOddSat(modd), "MAX-ODD-SAT?");

  Banner("PSPACE backdrop: QBF via full SPARQL (OPT through MINUS)");
  // ∀x ∃y. (x ∨ y) ∧ (¬x ∨ ¬y): true.
  rdfql::Qbf qbf;
  qbf.matrix.num_vars = 2;
  qbf.matrix.AddClause({1, 2});
  qbf.matrix.AddClause({-1, -2});
  qbf.prefix = {{rdfql::Qbf::Quant::kForall, 1},
                {rdfql::Qbf::Quant::kExists, 2}};
  rdfql::EvalInstance qi = rdfql::QbfToPattern(qbf, &dict, "lab_qbf");
  std::printf("pattern: %s\n",
              rdfql::PatternToString(qi.pattern, dict).c_str());
  ShowInstance(&dict, qi, rdfql::SolveQbf(qbf), "forall x exists y ...?");

  std::printf(
      "\nSummary (Section 7): SP-SPARQL is DP-complete, USP-SPARQL_k is\n"
      "BH_2k-complete, USP-SPARQL is PNP||-complete, CONSTRUCT[AUF] is\n"
      "NP-complete — all strictly below well-designed-with-projection\n"
      "(Sigma_p_2) and full SPARQL (PSPACE).\n");
  return 0;
}
