// The "query doctor": a small CLI that classifies a graph pattern in the
// paper's vocabulary (fragment, well-designedness, empirical weak
// monotonicity / monotonicity / subsumption-freeness) and, when possible,
// rewrites it into the open-world-safe languages the paper proposes
// (simple patterns, ns-patterns, SPARQL[AUFS] under ≡s).
//
// Usage:
//   query_doctor                       # runs a demo suite
//   query_doctor '<pattern>'           # diagnose one pattern

#include <cstdio>
#include <string>
#include <vector>

#include "core/rdfql.h"

namespace {

void Diagnose(rdfql::Engine* engine, const std::string& text) {
  std::printf("----------------------------------------------------------\n");
  std::printf("pattern: %s\n", text.c_str());
  rdfql::Result<rdfql::PatternPtr> parsed = engine->Parse(text);
  if (!parsed.ok()) {
    std::printf("  parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  rdfql::PatternPtr p = parsed.value();
  rdfql::PatternReport report = engine->Classify(p);
  std::printf("  fragment:              %s\n", report.fragment.c_str());
  std::printf("  well designed:         %s\n",
              report.well_designed ? "yes" : "no");
  std::printf("  union of WD:           %s\n",
              report.union_well_designed ? "yes" : "no");
  std::printf("  simple pattern:        %s\n",
              report.simple_pattern ? "yes" : "no");
  std::printf("  ns-pattern:            %s\n",
              report.ns_pattern ? "yes" : "no");
  std::printf("  weakly monotone*:      %s\n",
              report.looks_weakly_monotone ? "yes" : "no");
  std::printf("  monotone*:             %s\n",
              report.looks_monotone ? "yes" : "no");
  std::printf("  subsumption free*:     %s      (*empirical)\n",
              report.looks_subsumption_free ? "yes" : "no");

  if (!report.looks_weakly_monotone) {
    std::printf("  verdict: NOT open-world safe — answers can vanish as "
                "the graph grows.\n");
    return;
  }

  // Suggest the open-world-safe rewritings of Sections 4-5.
  if (report.well_designed) {
    rdfql::Result<rdfql::PatternPtr> simple =
        rdfql::WellDesignedToSimple(p);
    if (simple.ok()) {
      std::printf("  Prop 5.6 rewrite into SP-SPARQL:\n    %s\n",
                  rdfql::PatternToString(simple.value(), *engine->dict())
                      .c_str());
    }
  } else if (report.looks_subsumption_free && !report.simple_pattern &&
             !report.ns_pattern) {
    // Corollary 5.2, effective: NS of the monotone envelope.
    rdfql::Result<rdfql::AufsTranslation> sp =
        rdfql::FindSimplePatternTranslation(p, engine->dict());
    if (sp.ok() && sp->verified) {
      std::printf("  Cor 5.2 rewrite into SP-SPARQL:\n    %s\n",
                  rdfql::PatternToString(sp->q, *engine->dict()).c_str());
    }
  }
  rdfql::Result<rdfql::AufsTranslation> t =
      rdfql::FindAufsTranslation(p, engine->dict());
  if (t.ok() && t->verified) {
    std::printf("  Thm 4.1 ≡s-translation into SPARQL[AUFS]:\n    %s\n",
                rdfql::PatternToString(t->q, *engine->dict()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  rdfql::Engine engine;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Diagnose(&engine, argv[i]);
    return 0;
  }
  std::vector<std::string> demo = {
      rdfql::scenarios::Example31Query(),
      rdfql::scenarios::Example33Query(),
      rdfql::scenarios::Theorem35Witness(),
      rdfql::scenarios::Theorem36Witness(),
      "NS((?x a ?y) UNION ((?x a ?y) AND (?y b ?z)))",
      "(SELECT {?p} WHERE ((?o stands_for w) AND ((?p founder ?o) UNION "
      "(?p supporter ?o))))",
  };
  for (const std::string& q : demo) Diagnose(&engine, q);
  return 0;
}
