#!/usr/bin/env bash
# One-shot reproduction driver: configure, build, run the full test suite
# and every benchmark, recording the outputs the repository's
# EXPERIMENTS.md refers to.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p bench/out
: > bench_output.txt
for b in build/bench/bench_*; do
  name=$(basename "$b")
  [ "$name" = bench_json_check ] && continue
  echo "================ $b" | tee -a bench_output.txt
  "$b" --json="bench/out/BENCH_$name.json" 2>&1 | tee -a bench_output.txt
done
build/bench/bench_json_check bench/out/BENCH_*.json | tee -a bench_output.txt

echo "Done. See test_output.txt, bench_output.txt and bench/out/*.json."
