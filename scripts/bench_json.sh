#!/usr/bin/env bash
# Builds the bench binaries, runs each with --json, and collects the emitted
# BENCH_<name>.json files under bench/out/, validating every file with
# bench_json_check afterwards. Pass extra google-benchmark flags through,
# e.g.: scripts/bench_json.sh --benchmark_min_time=0.01
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build --target \
  bench_examples bench_separations bench_interpolation bench_ns_elimination \
  bench_wd_to_simple bench_opt_vs_ns bench_complexity bench_eval_scaling \
  bench_ns_ablation bench_construct bench_optimizer bench_storage \
  bench_university bench_parallel_scaling bench_json_check bench_diff

out=bench/out
mkdir -p "$out"

failures=0
for b in build/bench/bench_*; do
  name=$(basename "$b")
  [ "$name" = bench_json_check ] && continue
  [ "$name" = bench_diff ] && continue
  echo "================ $name"
  if ! "$b" --json="$out/BENCH_$name.json" "$@"; then
    echo "$name: FAILED" >&2
    failures=$((failures + 1))
  fi
done

build/bench/bench_json_check "$out"/BENCH_*.json || failures=$((failures + 1))

if [ "$failures" -ne 0 ]; then
  echo "bench_json.sh: $failures failure(s)" >&2
  exit 1
fi
echo "Done. JSON reports in $out/."
