#!/usr/bin/env bash
# Capture or check the committed bench baselines under bench/baselines/.
#
#   scripts/bench_baseline.sh capture   re-runs the baseline benches and
#                                       overwrites bench/baselines/*.json
#   scripts/bench_baseline.sh check     re-runs them and diffs against the
#                                       committed baselines with bench_diff
#
# Baselines travel across machines, so the check runs bench_diff with
# --ignore-time: only the deterministic counters/metrics (output sizes,
# blowup ratios, answer counts) gate; wall times are compared by the
# same-machine ctest entries instead.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-check}
case "$mode" in
  capture|check) ;;
  *) echo "usage: $0 [capture|check]" >&2; exit 2 ;;
esac

cmake -B build >/dev/null
cmake --build build --target \
  bench_ns_elimination bench_wd_to_simple bench_diff >/dev/null

# <bench binary> <family filter>: restricted to the transformation-size
# families whose counters are machine-independent.
benches=(
  "bench_ns_elimination BM_EliminateNs"
  "bench_wd_to_simple BM_WdToSimple"
)

mkdir -p bench/baselines bench/out
failures=0
for entry in "${benches[@]}"; do
  read -r name filter <<<"$entry"
  fresh=bench/out/BENCH_$name.json
  base=bench/baselines/BENCH_$name.json
  build/bench/"$name" --json="$fresh" --benchmark_filter="$filter" \
    --benchmark_min_time=0.01 >/dev/null
  if [ "$mode" = capture ]; then
    cp "$fresh" "$base"
    echo "captured $base"
  elif [ ! -f "$base" ]; then
    echo "$name: no baseline ($base); run '$0 capture' first" >&2
    failures=$((failures + 1))
  elif build/bench/bench_diff --ignore-time --require-cases \
      "$base" "$fresh"; then
    echo "$name: OK"
  else
    echo "$name: REGRESSION vs $base" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "bench_baseline.sh: $failures failure(s)" >&2
  exit 1
fi
