#!/usr/bin/env bash
# Race-checks the parallel evaluator under ThreadSanitizer: configures a
# separate build tree with -DRDFQL_SANITIZE=thread and runs the tests that
# exercise the thread pool, the partitioned join/minus kernels, parallel NS
# pruning, the concurrent subtree evaluation, the sharded query cache
# (hit/miss/eviction races, epoch invalidation), the live-monitoring
# surface (in-flight registry, telemetry sampler, watchdog cancellation —
# all inherently cross-thread), and the sampling profiler (tag-stack
# snapshots racing pushes, sampler start/stop racing thread
# registration, timed-lock contention accounting), and the alerting stack
# (history ring records racing window queries, alert evaluation on the
# sampler thread racing query traffic, watchdog escalation reads). Pass
# extra ctest args through, e.g.:
# scripts/tsan_check.sh -j4
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -DRDFQL_SANITIZE=thread >/dev/null
cmake --build build-tsan --target \
  thread_pool_test parallel_sweeps_test mapping_set_test ns_test \
  evaluator_test engine_test inflight_test telemetry_test \
  query_cache_test profiler_test history_test alerts_test || exit 1

# halt_on_error: fail the run on the first report instead of limping on.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

ctest --test-dir build-tsan --output-on-failure \
  -R '^(ThreadPoolTest|AllStrategies/ParallelSweep|MappingSetTest|NsTest|EvaluatorTest|EngineTest|InflightRegistryTest|InflightScopeTest|EngineInflightTest|Threads/EngineInflightConcurrencyTest|WatchdogPolicyTest|TelemetryEngineTest|QueryCacheTest|EngineCacheTest|Threads/CacheRaceTest|ProfileSlotTest|ProfileRegistryTest|WaitStatsTest|TimedLockTest|PoolProfilingTest|ProfilerTest|EngineProfilingTest|Threads/ProfiledIdenticalTest|Threads/ProfilerRaceTest|HistorySampleTest|MetricsHistoryTest|AlertsTest|AlertStateMachineTest|AlertEngineIntegrationTest|Threads/AlertsIdenticalTest)' \
  "$@"
status=$?
if [ $status -eq 0 ]; then
  echo "tsan_check: no data races detected."
else
  echo "tsan_check: FAILED (see output above)." >&2
fi
exit $status
