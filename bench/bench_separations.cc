// E4/E5 (DESIGN.md): the expressiveness-separation witnesses of Theorems
// 3.5 and 3.6. The bench (a) re-verifies the proof-level facts — each
// witness is weakly monotone yet fails the well-designedness conditions,
// and behaves on the appendix graph families exactly as the proofs claim —
// and (b) times classification and evaluation as the graphs scale.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/monotonicity.h"
#include "analysis/well_designed.h"
#include "core/engine.h"
#include "eval/evaluator.h"
#include "util/check.h"
#include "workload/graph_generator.h"
#include "workload/scenarios.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

PatternPtr MustParse(Engine* engine, const std::string& text) {
  Result<PatternPtr> r = engine->Parse(text);
  RDFQL_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.value();
}

void PrintSeparationFacts() {
  Engine engine;
  std::printf("== E4: Theorem 3.5 witness ==\n");
  PatternPtr w35 = MustParse(&engine, scenarios::Theorem35Witness());
  std::string why;
  std::printf("pattern: %s\n", scenarios::Theorem35Witness().c_str());
  std::printf("well designed?           %s (%s)\n",
              IsWellDesigned(w35, &why) ? "yes" : "no", why.c_str());
  std::printf("weakly monotone (test)?  %s\n",
              LooksWeaklyMonotone(w35, engine.dict()) ? "yes" : "no");

  std::printf("\n== E5: Theorem 3.6 witness ==\n");
  PatternPtr w36 = MustParse(&engine, scenarios::Theorem36Witness());
  why.clear();
  std::printf("pattern: %s\n", scenarios::Theorem36Witness().c_str());
  std::printf("union of well designed?  %s\n",
              IsUnionOfWellDesigned(w36, &why) ? "yes" : "no");
  std::printf("weakly monotone (test)?  %s\n",
              LooksWeaklyMonotone(w36, engine.dict()) ? "yes" : "no");
  // The G1..G4 behaviour of Appendix B.
  RDFQL_CHECK(engine.LoadGraphText("g4", "1 a b .\n1 c 2 .\n1 d 3 .").ok());
  Result<MappingSet> r4 = engine.Eval("g4", w36);
  RDFQL_CHECK(r4.ok());
  std::printf(
      "over G4 the two answers are compatible — impossible for any single "
      "well-designed disjunct (Proposition B.1): %zu answers\n\n",
      r4->size());
}

// Classification cost of the witnesses as the refutation budget grows.
void BM_WeakMonotonicityTesting35(benchmark::State& state) {
  Engine engine;
  PatternPtr p = MustParse(&engine, scenarios::Theorem35Witness());
  MonotonicityOptions opts;
  opts.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindWeakMonotonicityCounterexample(p, engine.dict(), opts));
  }
  state.SetLabel("trials=" + std::to_string(opts.trials));
}
BENCHMARK(BM_WeakMonotonicityTesting35)->Arg(10)->Arg(100)->Arg(300);

// Example 3.3's counterexample discovery time (a non-weakly-monotone
// pattern is refuted quickly).
void BM_RefuteExample33(benchmark::State& state) {
  Engine engine;
  PatternPtr p = MustParse(&engine, scenarios::Example33Query());
  for (auto _ : state) {
    auto ce = FindWeakMonotonicityCounterexample(p, engine.dict());
    RDFQL_CHECK(ce.has_value());
    benchmark::DoNotOptimize(ce);
  }
}
BENCHMARK(BM_RefuteExample33);

// Witness evaluation over growing synthetic graphs: weakly-monotone OPT
// queries stay data-polynomial.
void BM_Witness36EvalScaling(benchmark::State& state) {
  Engine engine;
  PatternPtr p = MustParse(&engine, scenarios::Theorem36Witness());
  Rng rng(1);
  Graph g = GenerateRandomGraph(static_cast<int>(state.range(0)), 30,
                                engine.dict(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Witness36EvalScaling)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oAuto);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintSeparationFacts();
  return rdfql::bench::BenchMain(argc, argv, "bench_separations");
}
