// Parallel scaling sweep: the same workloads at threads ∈ {1, 2, 4, 8}.
// The argument is the thread count, NOT a problem size, so wall time is
// expected to FALL as the argument grows on multi-core hosts (its JSON
// check therefore runs without --expect-growth). threads=1 runs the exact
// serial path and doubles as the baseline; every parallel case asserts its
// results equal that baseline before timing.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/rdfql.h"
#include "eval/ns.h"
#include "util/check.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/university_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

// Pool shared by the timed iterations of one case (startup excluded).
std::unique_ptr<ThreadPool> MakePool(int threads) {
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

// The full university query mix at a fixed scale, threads swept.
void BM_ParallelUniversityMix(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Engine engine;
  UniversitySpec spec;
  spec.num_universities = 2;
  Graph g = GenerateUniversityGraph(spec, engine.dict());
  std::vector<PatternPtr> patterns;
  for (const NamedUniversityQuery& q : UniversityQueryMix()) {
    Result<PatternPtr> p = engine.Parse(q.text);
    RDFQL_CHECK(p.ok());
    patterns.push_back(p.value());
  }
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  EvalOptions options;
  options.threads = threads;
  options.pool = pool.get();
  // Determinism contract: parallel answers are byte-identical to serial.
  size_t answers = 0;
  for (const PatternPtr& p : patterns) {
    MappingSet parallel = EvalPattern(g, p, options);
    RDFQL_CHECK(parallel.mappings() == EvalPattern(g, p).mappings());
    answers += parallel.size();
  }
  for (auto _ : state) {
    for (const PatternPtr& p : patterns) {
      MappingSet r = EvalPattern(g, p, options);
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["triples"] = static_cast<double>(g.size());
}
BENCHMARK(BM_ParallelUniversityMix)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The NS-heavy shape from bench_ns_ablation: many mappings over a few
// distinct domains, where bucketed pruning compares projections pairwise —
// the kernel the parallel NS path partitions by bucket.
MappingSet MakeNsWorkload(int n, int num_vars, int num_domains, Rng* rng) {
  std::vector<std::vector<VarId>> domains;
  for (int d = 0; d < num_domains; ++d) {
    std::vector<VarId> dom;
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      if (rng->NextBool(0.6)) dom.push_back(v);
    }
    if (dom.empty()) dom.push_back(0);
    domains.push_back(std::move(dom));
  }
  MappingSet out;
  while (static_cast<int>(out.size()) < n) {
    const std::vector<VarId>& dom = domains[rng->NextBelow(domains.size())];
    Mapping m;
    for (VarId v : dom) m.Set(v, static_cast<TermId>(rng->NextBelow(50)));
    out.Add(m);
  }
  return out;
}

void BM_ParallelNsPruning(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(15);
  MappingSet input = MakeNsWorkload(4096, 8, 8, &rng);
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  RDFQL_CHECK(RemoveSubsumedBucketed(input, pool.get()).mappings() ==
              RemoveSubsumedBucketed(input).mappings());
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemoveSubsumedBucketed(input, pool.get()));
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["input"] = static_cast<double>(input.size());
}
BENCHMARK(BM_ParallelNsPruning)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The partitioned hash-join probe kernel on large mapping sets.
void BM_ParallelHashJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(7);
  auto random_set = [&rng](int n, int vars) {
    MappingSet s;
    while (static_cast<int>(s.size()) < n) {
      Mapping m;
      for (VarId v = 0; v < static_cast<VarId>(vars); ++v) {
        if (rng.NextBool(0.7)) m.Set(v, rng.NextBelow(60));
      }
      s.Add(m);
    }
    return s;
  };
  MappingSet a = random_set(2048, 4);
  MappingSet b = random_set(2048, 4);
  std::unique_ptr<ThreadPool> pool = MakePool(threads);
  RDFQL_CHECK(MappingSet::Join(a, b, pool.get()).mappings() ==
              MappingSet::Join(a, b).mappings());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MappingSet::Join(a, b, pool.get()));
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelHashJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace rdfql

RDFQL_BENCH_MAIN("bench_parallel_scaling")
