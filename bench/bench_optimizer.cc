// Optimizer ablation: raw vs optimized evaluation of filter- and
// join-heavy queries over the synthetic social graph, plus the cost of
// optimization itself. (Supplementary to the paper: the §8 "practical
// studies" direction, in the spirit of the static-optimization line
// [23]/[32] the paper cites.)

#include <benchmark/benchmark.h>

#include "core/rdfql.h"
#include "util/check.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

// A deliberately badly-written query: big cross-ish joins first, selective
// triple last, filters at the top.
constexpr const char* kBadQuery =
    "(((?x works_at ?u) AND (?y works_at ?u) AND (?x founder ?o)) "
    "FILTER ?u = org_0) FILTER ?x = person_1";

constexpr const char* kFilterHeavy =
    "(((?x was_born_in ?c) AND (?x email ?e)) AND (?x name ?n)) "
    "FILTER (?c = country_0 | ?c = country_1)";

void RunQuery(benchmark::State& state, const char* text, bool optimize) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  Result<PatternPtr> p = engine.Parse(text);
  RDFQL_CHECK(p.ok());
  PatternPtr query = p.value();
  GraphStats stats = GraphStats::Collect(g);
  if (optimize) {
    Optimizer opt(&stats);
    PatternPtr optimized = opt.Optimize(query);
    // Spot-check equivalence once per configuration.
    RDFQL_CHECK(EvalPattern(g, query) == EvalPattern(g, optimized));
    query = optimized;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, query));
  }
  state.SetComplexityN(state.range(0));
}

void BM_BadJoinOrderRaw(benchmark::State& state) {
  RunQuery(state, kBadQuery, false);
}
BENCHMARK(BM_BadJoinOrderRaw)->RangeMultiplier(4)->Range(64, 1024);

void BM_BadJoinOrderOptimized(benchmark::State& state) {
  RunQuery(state, kBadQuery, true);
}
BENCHMARK(BM_BadJoinOrderOptimized)->RangeMultiplier(4)->Range(64, 1024);

void BM_FilterHeavyRaw(benchmark::State& state) {
  RunQuery(state, kFilterHeavy, false);
}
BENCHMARK(BM_FilterHeavyRaw)->RangeMultiplier(4)->Range(64, 4096);

void BM_FilterHeavyOptimized(benchmark::State& state) {
  RunQuery(state, kFilterHeavy, true);
}
BENCHMARK(BM_FilterHeavyOptimized)->RangeMultiplier(4)->Range(64, 4096);

void BM_OptimizeCost(benchmark::State& state) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = 512;
  Graph g = GenerateSocialGraph(spec, engine.dict());
  GraphStats stats = GraphStats::Collect(g);
  Result<PatternPtr> p = engine.Parse(kBadQuery);
  RDFQL_CHECK(p.ok());
  Optimizer opt(&stats);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.Optimize(p.value()));
  }
}
BENCHMARK(BM_OptimizeCost);

void BM_StatsCollection(benchmark::State& state) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphStats::Collect(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StatsCollection)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace rdfql

RDFQL_BENCH_MAIN("bench_optimizer")
