// E14 (DESIGN.md): the CONSTRUCT machinery of Section 6 — evaluation
// scaling of CONSTRUCT[AUF] (Thm 7.4's fragment), the blow-up and cost of
// Lemma 6.5's monotone normal form and of Proposition 6.7's SELECT
// elimination.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "construct/construct_query.h"
#include "core/engine.h"
#include "util/check.h"
#include "workload/graph_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

constexpr const char* kAufConstruct =
    "CONSTRUCT { (?x helps ?o) } WHERE "
    "((?x founder ?o) UNION (?x supporter ?o))";

constexpr const char* kOptConstruct =
    "CONSTRUCT { (?n affiliated_to ?u) (?n reachable_at ?e) } WHERE "
    "(((?p name ?n) AND (?p works_at ?u)) OPT (?p email ?e))";

constexpr const char* kAufsConstruct =
    "CONSTRUCT { (?x colleague ?y) } WHERE "
    "(SELECT {?x ?y} WHERE ((?x works_at ?u) AND (?y works_at ?u)))";

ConstructQuery MustParseQ(Engine* engine, const char* text) {
  Result<ConstructQuery> q = engine->ParseConstructQuery(text);
  RDFQL_CHECK_MSG(q.ok(), q.status().ToString().c_str());
  return std::move(q).value();
}

void PrintNormalFormSizes() {
  Engine engine;
  std::printf(
      "== E14: CONSTRUCT transformations (Section 6) ==\n"
      "query        | pattern nodes | Lemma 6.5 NF nodes | Prop 6.7 AUF "
      "nodes\n");
  const char* names[] = {"AUF", "OPT", "AUFS"};
  const char* texts[] = {kAufConstruct, kOptConstruct, kAufsConstruct};
  for (int i = 0; i < 3; ++i) {
    Engine e;
    ConstructQuery q = MustParseQ(&e, texts[i]);
    ConstructQuery nf = MonotoneNormalForm(q, e.dict());
    ConstructQuery auf = EliminateSelect(q, e.dict());
    std::printf("%12s | %13zu | %18zu | %17zu\n", names[i],
                q.pattern()->SizeInNodes(), nf.pattern()->SizeInNodes(),
                auf.pattern()->SizeInNodes());
  }
  std::printf("\n");
}

void RunConstruct(benchmark::State& state, const char* text) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  ConstructQuery q = MustParseQ(&engine, text);
  size_t out_triples = 0;
  for (auto _ : state) {
    Graph out = q.Answer(g);
    out_triples = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out_triples"] = static_cast<double>(out_triples);
  state.SetComplexityN(state.range(0));
}

void BM_ConstructAuf(benchmark::State& state) {
  RunConstruct(state, kAufConstruct);
}
BENCHMARK(BM_ConstructAuf)->RangeMultiplier(4)->Range(64, 4096);

void BM_ConstructOpt(benchmark::State& state) {
  RunConstruct(state, kOptConstruct);
}
BENCHMARK(BM_ConstructOpt)->RangeMultiplier(4)->Range(64, 4096);

void BM_ConstructAufsColleagues(benchmark::State& state) {
  RunConstruct(state, kAufsConstruct);
}
BENCHMARK(BM_ConstructAufsColleagues)->RangeMultiplier(4)->Range(64, 1024);

// Lemma 6.5 normal form: transformation cost and equivalent evaluation.
void BM_MonotoneNormalFormTransform(benchmark::State& state) {
  Engine engine;
  ConstructQuery q = MustParseQ(&engine, kOptConstruct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MonotoneNormalForm(q, engine.dict()));
  }
}
BENCHMARK(BM_MonotoneNormalFormTransform);

void BM_MonotoneNormalFormEval(benchmark::State& state) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  ConstructQuery q = MustParseQ(&engine, kAufConstruct);
  ConstructQuery nf = MonotoneNormalForm(q, engine.dict());
  // Spot check the equivalence before timing.
  RDFQL_CHECK(q.Answer(g) == nf.Answer(g));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.Answer(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MonotoneNormalFormEval)->RangeMultiplier(4)->Range(64, 512);

void BM_SelectEliminationEval(benchmark::State& state) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  ConstructQuery q = MustParseQ(&engine, kAufsConstruct);
  ConstructQuery auf = EliminateSelect(q, engine.dict());
  RDFQL_CHECK(q.Answer(g) == auf.Answer(g));
  for (auto _ : state) {
    benchmark::DoNotOptimize(auf.Answer(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectEliminationEval)->RangeMultiplier(4)->Range(64, 512);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintNormalFormSizes();
  return rdfql::bench::BenchMain(argc, argv, "bench_construct");
}
