// E13/E16 (DESIGN.md): evaluation scaling per fragment over the synthetic
// social graph, plus the join-engine ablation (indexed hash join vs the
// nested-loop reference) — data complexity is polynomial for every
// fragment; the constants differ.

#include <benchmark/benchmark.h>

#include <string>

#include "core/engine.h"
#include "eval/evaluator.h"
#include "util/check.h"
#include "workload/graph_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

struct NamedQuery {
  const char* name;
  const char* text;
};

// One representative query per fragment of the paper.
constexpr NamedQuery kQueries[] = {
    {"AF", "((?x was_born_in ?c) AND (?x email ?e)) FILTER !(?c = ?e)"},
    {"AUF",
     "((?x founder ?o) UNION (?x supporter ?o)) AND (?o stands_for ?w)"},
    {"AUFS",
     "(SELECT {?x ?w} WHERE (((?x founder ?o) UNION (?x supporter ?o)) AND "
     "(?o stands_for ?w)))"},
    {"WD-AOF", "((?x was_born_in ?c) AND (?x name ?n)) OPT (?x email ?e)"},
    {"SP",
     "NS(((?x was_born_in ?c) AND (?x name ?n)) UNION "
     "(((?x was_born_in ?c) AND (?x name ?n)) AND (?x email ?e)))"},
    {"USP",
     "NS((?x founder ?o) UNION ((?x founder ?o) AND (?x email ?e))) UNION "
     "NS((?x supporter ?o) UNION ((?x supporter ?o) AND (?x email ?e)))"},
};

void RunFragmentQuery(benchmark::State& state, const char* family,
                      const NamedQuery& q, EvalOptions options) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  Result<PatternPtr> p = engine.Parse(q.text);
  RDFQL_CHECK(p.ok());
  options.threads = bench::CliThreads();
  ResourceAccountant acct;
  options.accountant = &acct;
  size_t answers = 0;
  for (auto _ : state) {
    MappingSet r = EvalPattern(g, p.value(), options);
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["triples"] = static_cast<double>(g.size());
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_mappings"] =
      static_cast<double>(acct.peak_mappings());
  // Embed the memory figures as a per-case metrics snapshot (the --json
  // document's "metrics" object; google-benchmark's State has no name
  // accessor, so the case name is rebuilt from family + arg).
  RegistrySnapshot snap;
  snap.gauges["engine.peak_mappings"] =
      static_cast<int64_t>(acct.peak_mappings());
  snap.gauges["engine.peak_bytes"] = static_cast<int64_t>(acct.peak_bytes());
  snap.counters["engine.total_mappings"] = acct.total_mappings();
  bench::SetCaseMetrics(
      std::string(family) + "/" + std::to_string(state.range(0)), snap);
  state.SetComplexityN(state.range(0));
}

void BM_FragmentAF(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentAF", kQueries[0], {});
}
void BM_FragmentAUF(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentAUF", kQueries[1], {});
}
void BM_FragmentAUFS(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentAUFS", kQueries[2], {});
}
void BM_FragmentWdAof(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentWdAof", kQueries[3], {});
}
void BM_FragmentSP(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentSP", kQueries[4], {});
}
void BM_FragmentUSP(benchmark::State& state) {
  RunFragmentQuery(state, "BM_FragmentUSP", kQueries[5], {});
}
BENCHMARK(BM_FragmentAF)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_FragmentAUF)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_FragmentAUFS)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_FragmentWdAof)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_FragmentSP)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_FragmentUSP)->RangeMultiplier(4)->Range(64, 4096);

// Join ablation on the join-heaviest query.
void BM_JoinHash(benchmark::State& state) {
  EvalOptions options;
  options.join = EvalOptions::Join::kHash;
  RunFragmentQuery(state, "BM_JoinHash", kQueries[1], options);
}
BENCHMARK(BM_JoinHash)->RangeMultiplier(4)->Range(64, 2048);

void BM_JoinNestedLoop(benchmark::State& state) {
  EvalOptions options;
  options.join = EvalOptions::Join::kNestedLoop;
  RunFragmentQuery(state, "BM_JoinNestedLoop", kQueries[1], options);
}
BENCHMARK(BM_JoinNestedLoop)->RangeMultiplier(4)->Range(64, 2048);

void BM_JoinIndexNestedLoop(benchmark::State& state) {
  EvalOptions options;
  options.join = EvalOptions::Join::kIndexNestedLoop;
  RunFragmentQuery(state, "BM_JoinIndexNestedLoop", kQueries[1], options);
}
BENCHMARK(BM_JoinIndexNestedLoop)->RangeMultiplier(4)->Range(64, 2048);

// Micro ablation of the Mapping kernels inside the join inner loop:
// disjoint VarId ranges take the concatenation fast path, overlapping
// ranges take the full merge walk. The delta between the two families is
// the fast path's saving at each mapping width.
void RunMappingOps(benchmark::State& state, bool disjoint) {
  const VarId width = static_cast<VarId>(state.range(0));
  Mapping a, b;
  for (VarId i = 0; i < width; ++i) a.Set(i, i + 1);
  const VarId offset = disjoint ? width : width / 2;
  for (VarId i = 0; i < width; ++i) b.Set(offset + i, offset + i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CompatibleWith(b));
    Mapping u = a.UnionWith(b);
    benchmark::DoNotOptimize(u);
  }
  state.counters["bindings_out"] =
      static_cast<double>(a.UnionWith(b).size());
  state.SetComplexityN(state.range(0));
}

void BM_MappingOpsDisjoint(benchmark::State& state) {
  RunMappingOps(state, /*disjoint=*/true);
}
BENCHMARK(BM_MappingOpsDisjoint)->RangeMultiplier(4)->Range(8, 512);

void BM_MappingOpsOverlapping(benchmark::State& state) {
  RunMappingOps(state, /*disjoint=*/false);
}
BENCHMARK(BM_MappingOpsOverlapping)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace rdfql

RDFQL_BENCH_MAIN("bench_eval_scaling")
