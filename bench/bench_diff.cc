// bench_diff: compare a fresh BENCH_*.json against a committed baseline and
// fail on regression. The regression gate of scripts/bench_baseline.sh and
// the CI workflow.
//
// Usage:
//   bench_diff [flags] <baseline.json> <fresh.json>
//     --time-tol=F      allowed per-case real_ns growth, fraction (default
//                       0.5: fresh may be up to 50% slower). One-sided —
//                       getting faster never fails.
//     --counter-tol=F   allowed relative drift in counters/metrics, fraction
//                       (default 0.25). Two-sided: work counters are
//                       deterministic, so drift either way is a behavior
//                       change. Keys containing "_ns" (embedded timings)
//                       are always skipped.
//     --ignore-time     skip the real_ns check (for cross-machine diffs
//                       against a committed baseline).
//     --require-cases   baseline cases missing from the fresh run fail the
//                       diff (default: warn).
//
//   bench_diff --inflate=F <in.json> <out.json>
//     writes a copy of <in.json> with real_ns and every counter multiplied
//     by F — a synthetic regression for testing the gate itself.
//
// Exit codes: 0 ok, 1 regression detected, 2 usage/IO/parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench_reporting.h"

namespace rdfql {
namespace bench {
namespace {

bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool IsTimingKey(std::string_view name) {
  return name.find("_ns") != std::string_view::npos;
}

const BenchCase* FindCase(const ParsedBenchDoc& doc,
                          const std::string& name) {
  for (const BenchCase& c : doc.cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

double FindValue(const std::vector<std::pair<std::string, double>>& kv,
                 const std::string& key, bool* found) {
  for (const auto& [k, v] : kv) {
    if (k == key) {
      *found = true;
      return v;
    }
  }
  *found = false;
  return 0;
}

/// Two-sided relative comparison for deterministic counters/metrics.
bool WithinTolerance(double base, double fresh, double tol) {
  if (base == fresh) return true;
  double mag = base < 0 ? -base : base;
  if (mag < 1e-12) return fresh > -tol && fresh < tol;
  double drift = (fresh - base) / mag;
  if (drift < 0) drift = -drift;
  return drift <= tol;
}

struct DiffOptions {
  double time_tol = 0.5;
  double counter_tol = 0.25;
  bool ignore_time = false;
  bool require_cases = false;
};

int Diff(const ParsedBenchDoc& base, const ParsedBenchDoc& fresh,
         const DiffOptions& opts) {
  int regressions = 0;
  size_t compared = 0;
  for (const BenchCase& b : base.cases) {
    const BenchCase* f = FindCase(fresh, b.name);
    if (f == nullptr) {
      std::fprintf(stderr, "%s: case \"%s\" missing from fresh run\n",
                   opts.require_cases ? "FAIL" : "warn", b.name.c_str());
      if (opts.require_cases) ++regressions;
      continue;
    }
    ++compared;
    if (!opts.ignore_time && f->real_ns > b.real_ns * (1.0 + opts.time_tol)) {
      std::fprintf(stderr,
                   "FAIL %s: real_ns %.0f -> %.0f (+%.0f%%, tol +%.0f%%)\n",
                   b.name.c_str(), b.real_ns, f->real_ns,
                   (f->real_ns / b.real_ns - 1.0) * 100, opts.time_tol * 100);
      ++regressions;
    }
    // Counters and metrics share the comparison: exact-name match, skip
    // embedded timings, two-sided tolerance.
    const std::pair<const char*,
                    const std::vector<std::pair<std::string, double>>*>
        groups[2] = {{"counter", &b.counters}, {"metric", &b.metrics}};
    for (const auto& [kind, base_kv] : groups) {
      const auto& fresh_kv =
          std::strcmp(kind, "counter") == 0 ? f->counters : f->metrics;
      for (const auto& [key, base_value] : *base_kv) {
        if (IsTimingKey(key)) continue;
        bool found = false;
        double fresh_value = FindValue(fresh_kv, key, &found);
        if (!found) {
          std::fprintf(stderr, "%s %s: %s \"%s\" missing from fresh run\n",
                       opts.require_cases ? "FAIL" : "warn", b.name.c_str(),
                       kind, key.c_str());
          if (opts.require_cases) ++regressions;
          continue;
        }
        if (!WithinTolerance(base_value, fresh_value, opts.counter_tol)) {
          std::fprintf(
              stderr, "FAIL %s: %s \"%s\" %g -> %g (tol ±%.0f%%)\n",
              b.name.c_str(), kind, key.c_str(), base_value, fresh_value,
              opts.counter_tol * 100);
          ++regressions;
        }
      }
    }
  }
  std::fprintf(stderr, "bench_diff: %zu case(s) compared, %d regression(s)\n",
               compared, regressions);
  return regressions == 0 ? 0 : 1;
}

int Inflate(const char* in_path, const char* out_path, double factor) {
  std::string text;
  if (!ReadFile(in_path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", in_path);
    return 2;
  }
  ParsedBenchDoc doc;
  std::string error;
  if (!ParseBenchJson(text, &doc, &error)) {
    std::fprintf(stderr, "%s: %s\n", in_path, error.c_str());
    return 2;
  }
  for (BenchCase& c : doc.cases) {
    c.real_ns *= factor;
    c.cpu_ns *= factor;
    for (auto& [name, value] : c.counters) value *= factor;
    for (auto& [name, value] : c.metrics) value *= factor;
  }
  std::string out = RenderBenchJson(doc.bench, doc.cases);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (x%g)\n", out_path, factor);
  return 0;
}

int Main(int argc, char** argv) {
  DiffOptions opts;
  double inflate = 0;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--time-tol=", 0) == 0) {
      opts.time_tol = std::strtod(argv[i] + 11, nullptr);
    } else if (a.rfind("--counter-tol=", 0) == 0) {
      opts.counter_tol = std::strtod(argv[i] + 14, nullptr);
    } else if (a == "--ignore-time") {
      opts.ignore_time = true;
    } else if (a == "--require-cases") {
      opts.require_cases = true;
    } else if (a.rfind("--inflate=", 0) == 0) {
      inflate = std::strtod(argv[i] + 10, nullptr);
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [flags] <baseline.json> <fresh.json>\n"
                 "       bench_diff --inflate=F <in.json> <out.json>\n");
    return 2;
  }
  if (inflate > 0) return Inflate(paths[0], paths[1], inflate);

  std::string base_text, fresh_text;
  if (!ReadFile(paths[0], &base_text)) {
    std::fprintf(stderr, "cannot read %s\n", paths[0]);
    return 2;
  }
  if (!ReadFile(paths[1], &fresh_text)) {
    std::fprintf(stderr, "cannot read %s\n", paths[1]);
    return 2;
  }
  ParsedBenchDoc base, fresh;
  std::string error;
  if (!ParseBenchJson(base_text, &base, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[0], error.c_str());
    return 2;
  }
  if (!ParseBenchJson(fresh_text, &fresh, &error)) {
    std::fprintf(stderr, "%s: %s\n", paths[1], error.c_str());
    return 2;
  }
  return Diff(base, fresh, opts);
}

}  // namespace
}  // namespace bench
}  // namespace rdfql

int main(int argc, char** argv) { return rdfql::bench::Main(argc, argv); }
