// What do the cooperative cancellation checkpoints cost? Three variants of
// the full university query mix (2 universities):
//
//   BM_MixUngoverned        plain Evaluator::Eval — no token installed, so
//                           every checkpoint is one relaxed load + null
//                           test. This is the path every caller without
//                           limits takes.
//   BM_MixGovernedDisabled  EvalChecked with all-zero limits — must match
//                           the ungoverned run (it resolves to the same
//                           path); proves governance is free until opted
//                           into.
//   BM_MixGovernedArmed     EvalChecked under generous limits — token
//                           installed, caps armed on an accountant, every
//                           checkpoint pays an atomic load (plus a clock
//                           read at operator granularity).
//
// Before google-benchmark runs, a paired pre-pass interleaves the three
// variants and prints their relative overheads to stderr; the per-sweep
// medians are attached to the emitted JSON as `paired_*_ns` metrics
// (timing-named, so bench_diff skips them across machines).
// docs/robustness.md records the measured figures; the budget for the
// disabled path is <2%.
//
// A second pair does the same for the query log at the Engine::Query
// level: BM_MixQueryLogOff (no log attached — the pre-log code path,
// byte for byte) vs BM_MixQueryLogOn (ring-only QueryLog recording every
// query). The paired medians land in the JSON as `paired_log_*_ns`; the
// budget for the disabled path is <2% (docs/observability.md).
//
// A third pair does the same for live monitoring: BM_MixMonitorOff (the
// in-flight registry disabled — the pre-registry path) vs BM_MixMonitorOn
// (every query claims a registry slot, carries the slot's accountant and
// token, and runs the checkpointed path). Medians land as
// `paired_monitor_*_ns`; the budget for the disabled path is <2%
// (docs/observability.md, "Live monitoring").
//
// A fourth pair covers the sampling profiler: BM_MixProfileOff (profiler
// detached — every ProfileFrame is one relaxed flag load) vs
// BM_MixProfileOn (profiler running at the default 97 Hz, every frame
// push/pop live, the sampler walking thread stacks in the background).
// Medians land as `paired_profile_*_ns`; budgets: off <2%, on at 97 Hz
// <5% (docs/observability.md, "Profiling").
//
// A fifth pair covers the metrics history ring + alert engine:
// BM_MixAlertsOff (no rules installed, metrics collection off — the
// pre-history path, byte for byte) vs BM_MixAlertsOn (a three-rule set
// including a fragment-scoped p99 rule, history recording and rule
// evaluation on a live 1 s telemetry tick). Medians land as
// `paired_alerts_*_ns`; budgets: off <2%, on at a 1 s tick <5%
// (docs/observability.md, "Alerting & SLOs").

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/rdfql.h"
#include "util/check.h"
#include "workload/university_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

struct Mix {
  Graph graph;
  std::vector<PatternPtr> patterns;
};

Engine& SharedEngine() {
  static Engine engine;
  return engine;
}

const Mix& SharedMix() {
  static Mix mix = [] {
    Mix m;
    UniversitySpec spec;
    spec.num_universities = 2;
    m.graph = GenerateUniversityGraph(spec, SharedEngine().dict());
    for (const NamedUniversityQuery& q : UniversityQueryMix()) {
      Result<PatternPtr> p = SharedEngine().Parse(q.text);
      RDFQL_CHECK(p.ok());
      m.patterns.push_back(p.value());
    }
    return m;
  }();
  return mix;
}

EvalOptions ArmedOptions() {
  EvalOptions options;
  options.limits.max_wall_ms = 600'000;
  options.limits.max_live_mappings = 1ull << 40;
  options.limits.max_bytes = 1ull << 40;
  return options;
}

size_t RunMixPlain(const Evaluator& evaluator) {
  size_t answers = 0;
  for (const PatternPtr& p : SharedMix().patterns) {
    answers += evaluator.Eval(p).size();
  }
  return answers;
}

size_t RunMixChecked(const Evaluator& evaluator) {
  size_t answers = 0;
  for (const PatternPtr& p : SharedMix().patterns) {
    Result<MappingSet> r = evaluator.EvalChecked(p);
    RDFQL_CHECK(r.ok());
    answers += r->size();
  }
  return answers;
}

void BM_MixUngoverned(benchmark::State& state) {
  Evaluator evaluator(&SharedMix().graph);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixPlain(evaluator);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixUngoverned)->Unit(benchmark::kMillisecond);

void BM_MixGovernedDisabled(benchmark::State& state) {
  Evaluator evaluator(&SharedMix().graph);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixChecked(evaluator);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixGovernedDisabled)->Unit(benchmark::kMillisecond);

void BM_MixGovernedArmed(benchmark::State& state) {
  Evaluator evaluator(&SharedMix().graph, ArmedOptions());
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixChecked(evaluator);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixGovernedArmed)->Unit(benchmark::kMillisecond);

// --- Query-log overhead, measured at the Engine::Query level (the log
// hooks live there, not in the evaluator) ---

void EnsureMixGraph() {
  static bool registered = [] {
    SharedEngine().PutGraph("mix", SharedMix().graph);
    return true;
  }();
  (void)registered;
}

size_t RunMixEngine() {
  size_t answers = 0;
  for (const NamedUniversityQuery& q : UniversityQueryMix()) {
    Result<MappingSet> r = SharedEngine().Query("mix", q.text);
    RDFQL_CHECK(r.ok());
    answers += r->size();
  }
  return answers;
}

QueryLog& RingOnlyLog() {
  static QueryLog log;  // no path: ring buffer only, no file I/O
  return log;
}

void BM_MixQueryLogOff(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryLog(nullptr);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixQueryLogOff)->Unit(benchmark::kMillisecond);

void BM_MixQueryLogOn(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().SetQueryLog(&RingOnlyLog());
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().SetQueryLog(nullptr);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixQueryLogOn)->Unit(benchmark::kMillisecond);

void BM_MixMonitorOff(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().EnableLiveMonitoring(false);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixMonitorOff)->Unit(benchmark::kMillisecond);

void BM_MixMonitorOn(benchmark::State& state) {
  EnsureMixGraph();
  SharedEngine().EnableLiveMonitoring(true);
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().EnableLiveMonitoring(false);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixMonitorOn)->Unit(benchmark::kMillisecond);

void BM_MixProfileOff(benchmark::State& state) {
  EnsureMixGraph();
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixProfileOff)->Unit(benchmark::kMillisecond);

void BM_MixProfileOn(benchmark::State& state) {
  EnsureMixGraph();
  RDFQL_CHECK(SharedEngine().EnableProfiling(97).ok());
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  SharedEngine().DisableProfiling();
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixProfileOn)->Unit(benchmark::kMillisecond);

// Rules that evaluate every tick but never fire: a global rate ceiling, a
// fragment-scoped latency objective (exercises the per-fragment histogram
// observation on the query path), and a multi-window burn rate.
const char kAlertRules[] = R"({"version":1,"rules":[
  {"name":"qps-ceiling","agg":"rate","metric":"engine.queries",
   "op":">","threshold":1e15,"windows":["30s","5m"]},
  {"name":"and-p99","agg":"p99","metric":"engine.eval_ns",
   "fragment":"SPARQL[A]","op":">","threshold":"1h","windows":["30s"],
   "for":"10s"},
  {"name":"reject-burn","agg":"burn_rate",
   "metric":"engine.queries_rejected","denominator":"engine.queries",
   "objective":0.01,"op":">","threshold":1e6,"windows":["1m","10m"]}]})";

void AlertsOff() {
  if (SharedEngine().telemetry() != nullptr) SharedEngine().StopTelemetry();
  if (SharedEngine().alerts() != nullptr) {
    RDFQL_CHECK(SharedEngine().ClearAlertRules().ok());
  }
  SharedEngine().EnableMetrics(false);
}

void AlertsOn() {
  RDFQL_CHECK(SharedEngine().SetAlertRules(kAlertRules).ok());
  TelemetryOptions options;
  options.interval_ms = 1000;  // the live tick the budget is stated for
  RDFQL_CHECK(SharedEngine().StartTelemetry(options).ok());
}

void BM_MixAlertsOff(benchmark::State& state) {
  EnsureMixGraph();
  AlertsOff();
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixAlertsOff)->Unit(benchmark::kMillisecond);

void BM_MixAlertsOn(benchmark::State& state) {
  EnsureMixGraph();
  AlertsOn();
  size_t answers = 0;
  for (auto _ : state) {
    answers = RunMixEngine();
    benchmark::DoNotOptimize(answers);
  }
  AlertsOff();
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MixAlertsOn)->Unit(benchmark::kMillisecond);

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Median(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Paired pre-pass: interleave the three variants so they share the same
// cache/frequency conditions, then compare medians.
void ReportPairedOverhead() {
  Evaluator plain(&SharedMix().graph);
  Evaluator armed(&SharedMix().graph, ArmedOptions());
  // Warm up graph indexes and allocator.
  RunMixPlain(plain);
  RunMixChecked(armed);
  constexpr int kReps = 11;
  std::vector<uint64_t> ungoverned, disabled, armed_ns;
  for (int i = 0; i < kReps; ++i) {
    uint64_t t0 = NowNs();
    size_t a = RunMixPlain(plain);
    uint64_t t1 = NowNs();
    size_t b = RunMixChecked(plain);
    uint64_t t2 = NowNs();
    size_t c = RunMixChecked(armed);
    uint64_t t3 = NowNs();
    RDFQL_CHECK(a == b && b == c);
    ungoverned.push_back(t1 - t0);
    disabled.push_back(t2 - t1);
    armed_ns.push_back(t3 - t2);
  }
  double u = static_cast<double>(Median(ungoverned));
  double d = static_cast<double>(Median(disabled));
  double g = static_cast<double>(Median(armed_ns));
  std::fprintf(stderr,
               "limits-overhead (paired medians over %d mix sweeps): "
               "ungoverned=%.2fms disabled=%.2fms (%+.2f%%) "
               "armed=%.2fms (%+.2f%%); budget for disabled: <2%%\n",
               kReps, u / 1e6, d / 1e6, (d / u - 1.0) * 100, g / 1e6,
               (g / u - 1.0) * 100);
  for (const char* name :
       {"BM_MixUngoverned", "BM_MixGovernedDisabled", "BM_MixGovernedArmed"}) {
    bench::AddCaseMetric(name, "paired_ungoverned_ns", u);
    bench::AddCaseMetric(name, "paired_disabled_ns", d);
    bench::AddCaseMetric(name, "paired_armed_ns", g);
  }
}

// Same discipline for the query log: interleaved engine-level sweeps with
// the log detached vs attached (ring-only), medians to stderr and JSON.
void ReportQueryLogOverhead() {
  EnsureMixGraph();
  SharedEngine().SetQueryLog(nullptr);
  RunMixEngine();  // warm up
  constexpr int kReps = 11;
  std::vector<uint64_t> off_ns, on_ns;
  for (int i = 0; i < kReps; ++i) {
    SharedEngine().SetQueryLog(nullptr);
    uint64_t t0 = NowNs();
    size_t a = RunMixEngine();
    uint64_t t1 = NowNs();
    SharedEngine().SetQueryLog(&RingOnlyLog());
    size_t b = RunMixEngine();
    uint64_t t2 = NowNs();
    SharedEngine().SetQueryLog(nullptr);
    RDFQL_CHECK(a == b);
    off_ns.push_back(t1 - t0);
    on_ns.push_back(t2 - t1);
  }
  double off = static_cast<double>(Median(off_ns));
  double on = static_cast<double>(Median(on_ns));
  std::fprintf(stderr,
               "query-log overhead (paired medians over %d mix sweeps): "
               "off=%.2fms on=%.2fms (%+.2f%%); budget for off (vs the "
               "pre-log path): <2%% — off IS the pre-log path\n",
               kReps, off / 1e6, on / 1e6, (on / off - 1.0) * 100);
  for (const char* name : {"BM_MixQueryLogOff", "BM_MixQueryLogOn"}) {
    bench::AddCaseMetric(name, "paired_log_off_ns", off);
    bench::AddCaseMetric(name, "paired_log_on_ns", on);
  }
}

// And for live monitoring: registry off (the pre-registry path) vs on
// (slot registration + slot-wired accountant/token per query).
void ReportMonitorOverhead() {
  EnsureMixGraph();
  SharedEngine().EnableLiveMonitoring(false);
  RunMixEngine();  // warm up
  constexpr int kReps = 11;
  std::vector<uint64_t> off_ns, on_ns;
  for (int i = 0; i < kReps; ++i) {
    SharedEngine().EnableLiveMonitoring(false);
    uint64_t t0 = NowNs();
    size_t a = RunMixEngine();
    uint64_t t1 = NowNs();
    SharedEngine().EnableLiveMonitoring(true);
    size_t b = RunMixEngine();
    uint64_t t2 = NowNs();
    SharedEngine().EnableLiveMonitoring(false);
    RDFQL_CHECK(a == b);
    off_ns.push_back(t1 - t0);
    on_ns.push_back(t2 - t1);
  }
  double off = static_cast<double>(Median(off_ns));
  double on = static_cast<double>(Median(on_ns));
  std::fprintf(stderr,
               "live-monitoring overhead (paired medians over %d mix "
               "sweeps): off=%.2fms on=%.2fms (%+.2f%%); budget for off (vs "
               "the pre-registry path): <2%% — off IS the pre-registry "
               "path\n",
               kReps, off / 1e6, on / 1e6, (on / off - 1.0) * 100);
  for (const char* name : {"BM_MixMonitorOff", "BM_MixMonitorOn"}) {
    bench::AddCaseMetric(name, "paired_monitor_off_ns", off);
    bench::AddCaseMetric(name, "paired_monitor_on_ns", on);
  }
}

// And for the profiler: detached (the pre-profiler path — one relaxed
// flag load per would-be frame) vs running at the default 97 Hz (frames
// pushed/popped for real, the sampler thread walking stacks behind the
// queries).
void ReportProfilerOverhead() {
  EnsureMixGraph();
  RunMixEngine();  // warm up
  constexpr int kReps = 11;
  std::vector<uint64_t> off_ns, on_ns;
  for (int i = 0; i < kReps; ++i) {
    uint64_t t0 = NowNs();
    size_t a = RunMixEngine();
    uint64_t t1 = NowNs();
    RDFQL_CHECK(SharedEngine().EnableProfiling(97).ok());
    size_t b = RunMixEngine();
    SharedEngine().DisableProfiling();
    uint64_t t2 = NowNs();
    RDFQL_CHECK(a == b);
    off_ns.push_back(t1 - t0);
    on_ns.push_back(t2 - t1);
  }
  double off = static_cast<double>(Median(off_ns));
  double on = static_cast<double>(Median(on_ns));
  std::fprintf(stderr,
               "profiler overhead (paired medians over %d mix sweeps): "
               "off=%.2fms on@97Hz=%.2fms (%+.2f%%); budgets: off (vs the "
               "pre-profiler path) <2%% — off IS the pre-profiler path; "
               "on <5%%\n",
               kReps, off / 1e6, on / 1e6, (on / off - 1.0) * 100);
  for (const char* name : {"BM_MixProfileOff", "BM_MixProfileOn"}) {
    bench::AddCaseMetric(name, "paired_profile_off_ns", off);
    bench::AddCaseMetric(name, "paired_profile_on_ns", on);
  }
}

// And for history + alerting: rules detached and metrics off (the
// pre-history path) vs the three-rule set evaluated on a live 1 s
// telemetry tick, with per-fragment latency observation on the query path.
void ReportAlertsOverhead() {
  EnsureMixGraph();
  AlertsOff();
  RunMixEngine();  // warm up
  constexpr int kReps = 11;
  std::vector<uint64_t> off_ns, on_ns;
  for (int i = 0; i < kReps; ++i) {
    AlertsOff();
    uint64_t t0 = NowNs();
    size_t a = RunMixEngine();
    uint64_t t1 = NowNs();
    AlertsOn();
    size_t b = RunMixEngine();
    uint64_t t2 = NowNs();
    AlertsOff();
    RDFQL_CHECK(a == b);  // alerting must not change query results
    off_ns.push_back(t1 - t0);
    on_ns.push_back(t2 - t1);
  }
  double off = static_cast<double>(Median(off_ns));
  double on = static_cast<double>(Median(on_ns));
  std::fprintf(stderr,
               "alerts overhead (paired medians over %d mix sweeps): "
               "off=%.2fms on@1s-tick=%.2fms (%+.2f%%); budgets: off (vs "
               "the pre-history path) <2%% — off IS the pre-history path; "
               "on <5%%\n",
               kReps, off / 1e6, on / 1e6, (on / off - 1.0) * 100);
  for (const char* name : {"BM_MixAlertsOff", "BM_MixAlertsOn"}) {
    bench::AddCaseMetric(name, "paired_alerts_off_ns", off);
    bench::AddCaseMetric(name, "paired_alerts_on_ns", on);
  }
}

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::ReportPairedOverhead();
  rdfql::ReportQueryLogOverhead();
  rdfql::ReportMonitorOverhead();
  rdfql::ReportProfilerOverhead();
  rdfql::ReportAlertsOverhead();
  return rdfql::bench::BenchMain(argc, argv, "bench_limits_overhead");
}
