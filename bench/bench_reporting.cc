#include "bench_reporting.h"

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string_view>

#include "obs/metrics.h"

// Stamped into every emitted BENCH_*.json; the build provides both via
// target_compile_definitions (see bench/CMakeLists.txt).
#ifndef RDFQL_GIT_SHA
#define RDFQL_GIT_SHA "unknown"
#endif
#ifndef RDFQL_BUILD_TYPE
#define RDFQL_BUILD_TYPE "unknown"
#endif

namespace rdfql {
namespace bench {
namespace {

std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  // Enough digits to round-trip timings; integers print exactly.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

bool IsInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Collects finished runs for the JSON document while delegating the usual
/// console rendering to the base class.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(std::vector<BenchCase>* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred ||
          r.report_big_o || r.report_rms) {
        continue;
      }
      BenchCase c;
      c.name = r.benchmark_name();
      std::string_view rest = c.name;
      size_t slash = rest.find('/');
      c.family = std::string(rest.substr(0, slash));
      while (slash != std::string_view::npos) {
        rest = rest.substr(slash + 1);
        slash = rest.find('/');
        std::string_view seg = rest.substr(0, slash);
        if (IsInteger(seg)) {
          c.args.push_back(std::strtoll(std::string(seg).c_str(), nullptr, 10));
        }
      }
      c.iterations = static_cast<int64_t>(r.iterations);
      double iters = r.iterations == 0 ? 1.0 : static_cast<double>(r.iterations);
      c.real_ns = r.real_accumulated_time / iters * 1e9;
      c.cpu_ns = r.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, counter] : r.counters) {
        c.counters.emplace_back(name, static_cast<double>(counter));
      }
      sink_->push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<BenchCase>* sink_;
};

// --- A minimal JSON reader for the validator (objects, arrays, strings,
// numbers, bools, null — no surrogate handling; our emitters stay ASCII).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    bool ok = ParseValue(out) && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = "JSON parse error near offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->obj.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->arr.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
          case 'f':
            out->push_back(' ');
            break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // keep validation simple: skip the code point
            out->push_back('?');
            break;
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Metrics attached to cases by name while the benchmark runs; folded into
/// the emitted document by BenchMain.
std::map<std::string, std::vector<std::pair<std::string, double>>>&
CaseMetricsStore() {
  static std::map<std::string, std::vector<std::pair<std::string, double>>>
      store;
  return store;
}

}  // namespace

void SetCaseMetrics(const std::string& case_name,
                    const RegistrySnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> flat;
  for (const auto& [name, value] : snapshot.counters) {
    flat.emplace_back(name, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    flat.emplace_back(name, static_cast<double>(value));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    flat.emplace_back(name + ".count", static_cast<double>(h.count));
    flat.emplace_back(name + ".sum", static_cast<double>(h.sum));
    flat.emplace_back(name + ".p50", h.Percentile(0.5));
    flat.emplace_back(name + ".p90", h.Percentile(0.9));
    flat.emplace_back(name + ".p99", h.Percentile(0.99));
  }
  CaseMetricsStore()[case_name] = std::move(flat);
}

void AddCaseMetric(const std::string& case_name, const std::string& metric,
                   double value) {
  auto& flat = CaseMetricsStore()[case_name];
  for (auto& [name, v] : flat) {
    if (name == metric) {
      v = value;
      return;
    }
  }
  flat.emplace_back(metric, value);
}

std::string RenderBenchJson(const std::string& bench_name,
                            const std::vector<BenchCase>& cases) {
  std::string out = "{\"schema\":\"";
  out += kBenchJsonSchema;
  out += "\",\"bench\":\"";
  AppendJsonEscaped(bench_name, &out);
  out += "\",\"git_sha\":\"";
  AppendJsonEscaped(RDFQL_GIT_SHA, &out);
  out += "\",\"build_type\":\"";
  AppendJsonEscaped(RDFQL_BUILD_TYPE, &out);
  out += "\",\"timestamp\":\"";
  AppendJsonEscaped(IsoTimestampUtc(), &out);
  out += "\",\"cases\":[\n";
  bool first = true;
  for (const BenchCase& c : cases) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\":\"";
    AppendJsonEscaped(c.name, &out);
    out += "\",\"family\":\"";
    AppendJsonEscaped(c.family, &out);
    out += "\",\"args\":[";
    for (size_t i = 0; i < c.args.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(c.args[i]);
    }
    out += "],\"iterations\":" + std::to_string(c.iterations) +
           ",\"real_ns\":";
    AppendDouble(c.real_ns, &out);
    out += ",\"cpu_ns\":";
    AppendDouble(c.cpu_ns, &out);
    out += ",\"threads\":" + std::to_string(c.threads);
    out += ",\"counters\":{";
    for (size_t i = 0; i < c.counters.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      AppendJsonEscaped(c.counters[i].first, &out);
      out += "\":";
      AppendDouble(c.counters[i].second, &out);
    }
    out += "},\"metrics\":{";
    for (size_t i = 0; i < c.metrics.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      AppendJsonEscaped(c.metrics[i].first, &out);
      out += "\":";
      AppendDouble(c.metrics[i].second, &out);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool ParseBenchJson(const std::string& json, ParsedBenchDoc* out,
                    std::string* error) {
  out->schema.clear();
  out->bench.clear();
  out->cases.clear();
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    return Fail(error, "top level is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      (schema->str != kBenchJsonSchema &&
       schema->str != kBenchJsonSchemaV2)) {
    return Fail(error, std::string("missing or wrong \"schema\" (want ") +
                           kBenchJsonSchema + " or " + kBenchJsonSchemaV2 +
                           ")");
  }
  out->schema = schema->str;
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || bench->type != JsonValue::Type::kString ||
      bench->str.empty()) {
    return Fail(error, "missing \"bench\" name");
  }
  out->bench = bench->str;
  // The provenance stamp is mandatory from v3 on; v2 baselines predate it.
  for (const auto& [key, field] :
       {std::pair<const char*, std::string*>{"git_sha", &out->git_sha},
        {"build_type", &out->build_type},
        {"timestamp", &out->timestamp}}) {
    const JsonValue* v = root.Find(key);
    if (v != nullptr && v->type == JsonValue::Type::kString) {
      *field = v->str;
    } else if (out->schema == kBenchJsonSchema) {
      return Fail(error, std::string("missing \"") + key + "\" stamp");
    }
  }
  const JsonValue* cases = root.Find("cases");
  if (cases == nullptr || cases->type != JsonValue::Type::kArray) {
    return Fail(error, "missing \"cases\" array");
  }
  if (cases->arr.empty()) return Fail(error, "\"cases\" is empty");

  for (size_t i = 0; i < cases->arr.size(); ++i) {
    const JsonValue& c = cases->arr[i];
    std::string at = "case " + std::to_string(i) + ": ";
    if (c.type != JsonValue::Type::kObject) {
      return Fail(error, at + "not an object");
    }
    BenchCase parsed;
    const JsonValue* name = c.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->str.empty()) {
      return Fail(error, at + "missing \"name\"");
    }
    parsed.name = name->str;
    at = "case \"" + name->str + "\": ";
    const JsonValue* family = c.Find("family");
    if (family == nullptr || family->type != JsonValue::Type::kString ||
        family->str.empty()) {
      return Fail(error, at + "missing \"family\"");
    }
    parsed.family = family->str;
    const JsonValue* args = c.Find("args");
    if (args == nullptr || args->type != JsonValue::Type::kArray) {
      return Fail(error, at + "missing \"args\"");
    }
    for (const JsonValue& a : args->arr) {
      if (a.type != JsonValue::Type::kNumber) {
        return Fail(error, at + "non-numeric arg");
      }
      parsed.args.push_back(static_cast<int64_t>(a.number));
    }
    const JsonValue* iterations = c.Find("iterations");
    if (iterations == nullptr ||
        iterations->type != JsonValue::Type::kNumber ||
        iterations->number <= 0) {
      return Fail(error, at + "missing or non-positive \"iterations\"");
    }
    parsed.iterations = static_cast<int64_t>(iterations->number);
    const JsonValue* real_ns = c.Find("real_ns");
    if (real_ns == nullptr || real_ns->type != JsonValue::Type::kNumber ||
        real_ns->number < 0) {
      return Fail(error, at + "missing or negative \"real_ns\"");
    }
    parsed.real_ns = real_ns->number;
    const JsonValue* cpu_ns = c.Find("cpu_ns");
    if (cpu_ns == nullptr || cpu_ns->type != JsonValue::Type::kNumber) {
      return Fail(error, at + "missing \"cpu_ns\"");
    }
    parsed.cpu_ns = cpu_ns->number;
    const JsonValue* threads = c.Find("threads");
    if (threads == nullptr || threads->type != JsonValue::Type::kNumber ||
        threads->number < 1) {
      return Fail(error, at + "missing or non-positive \"threads\"");
    }
    parsed.threads = static_cast<int>(threads->number);
    const JsonValue* counters = c.Find("counters");
    if (counters == nullptr || counters->type != JsonValue::Type::kObject) {
      return Fail(error, at + "missing \"counters\" object");
    }
    for (const auto& [cname, cvalue] : counters->obj) {
      if (cvalue.type != JsonValue::Type::kNumber) {
        return Fail(error, at + "counter \"" + cname + "\" not numeric");
      }
      parsed.counters.emplace_back(cname, cvalue.number);
    }
    const JsonValue* metrics = c.Find("metrics");
    if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
      return Fail(error, at + "missing \"metrics\" object");
    }
    for (const auto& [mname, mvalue] : metrics->obj) {
      if (mvalue.type != JsonValue::Type::kNumber) {
        return Fail(error, at + "metric \"" + mname + "\" not numeric");
      }
      parsed.metrics.emplace_back(mname, mvalue.number);
    }
    out->cases.push_back(std::move(parsed));
  }
  return true;
}

bool ValidateBenchJson(const std::string& json, bool expect_growth,
                       std::string* error) {
  ParsedBenchDoc doc;
  if (!ParseBenchJson(json, &doc, error)) return false;
  if (!expect_growth) return true;

  // family -> (arg, real_ns), only for single-argument cases.
  std::map<std::string, std::vector<std::pair<int64_t, double>>> by_family;
  for (const BenchCase& c : doc.cases) {
    if (c.args.size() == 1) {
      by_family[c.family].emplace_back(c.args[0], c.real_ns);
    }
  }

  for (auto& [family, points] : by_family) {
    if (points.size() < 2) continue;
    std::sort(points.begin(), points.end());
    if (points.front().first == points.back().first) continue;
    for (size_t i = 1; i < points.size(); ++i) {
      // Growth with a 10% noise allowance per step.
      if (points[i].second < 0.9 * points[i - 1].second) {
        return Fail(error,
                    "family \"" + family + "\": real_ns not monotone at arg " +
                        std::to_string(points[i].first));
      }
    }
    if (points.back().second <= points.front().second) {
      return Fail(error, "family \"" + family +
                             "\": largest instance is not slower than the "
                             "smallest");
    }
  }
  return true;
}

namespace {
int cli_threads = 1;
uint64_t cli_timeout_ms = 0;
uint64_t cli_max_mb = 0;
bool cli_warm_cache = false;
std::string cli_query_log_path;
std::unique_ptr<QueryLog> cli_query_log;
}  // namespace

int CliThreads() { return cli_threads; }

uint64_t CliTimeoutMs() { return cli_timeout_ms; }

uint64_t CliMaxMb() { return cli_max_mb; }

bool CliWarmCache() { return cli_warm_cache; }

const std::string& CliQueryLogPath() { return cli_query_log_path; }

QueryLog* CliQueryLog() { return cli_query_log.get(); }

int BenchMain(int argc, char** argv, const char* bench_name) {
  bool emit_json = false;
  std::string json_path = std::string("BENCH_") + bench_name + ".json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--json") {
      emit_json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      emit_json = true;
      json_path = std::string(a.substr(7));
    } else if (a.rfind("--threads=", 0) == 0) {
      cli_threads =
          static_cast<int>(std::strtol(std::string(a.substr(10)).c_str(),
                                       nullptr, 10));
      if (cli_threads < 1) cli_threads = 1;
    } else if (a.rfind("--timeout-ms=", 0) == 0) {
      cli_timeout_ms =
          std::strtoull(std::string(a.substr(13)).c_str(), nullptr, 10);
    } else if (a.rfind("--max-mb=", 0) == 0) {
      cli_max_mb =
          std::strtoull(std::string(a.substr(9)).c_str(), nullptr, 10);
    } else if (a == "--warm-cache") {
      cli_warm_cache = true;
    } else if (a.rfind("--query-log=", 0) == 0) {
      cli_query_log_path = std::string(a.substr(12));
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!cli_query_log_path.empty()) {
    QueryLogOptions log_options;
    log_options.path = cli_query_log_path;
    cli_query_log = std::make_unique<QueryLog>(log_options);
    if (!cli_query_log->ok()) {
      std::fprintf(stderr, "%s\n", cli_query_log->error().c_str());
      return 1;
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());

  std::vector<BenchCase> cases;
  CollectingReporter reporter(&cases);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (emit_json) {
    const auto& store = CaseMetricsStore();
    for (BenchCase& c : cases) {
      c.threads = cli_threads;
      auto it = store.find(c.name);
      if (it != store.end()) c.metrics = it->second;
    }
    std::string doc = RenderBenchJson(bench_name, cases);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu cases)\n", json_path.c_str(),
                 cases.size());
  }
  return 0;
}

}  // namespace bench
}  // namespace rdfql
