// E15 (DESIGN.md): ablation of the NS (max-answer) implementation — the
// naive O(n²) pairwise subsumption scan vs the domain-bucketed projection
// probing — across result-set sizes and domain diversities.

#include <benchmark/benchmark.h>

#include "eval/ns.h"
#include "util/check.h"
#include "util/random.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

// Builds a mapping set with `n` mappings over `num_domains` distinct
// domains drawn from `num_vars` variables — the shape produced by unions
// of OPT branches.
MappingSet MakeWorkload(int n, int num_vars, int num_domains, Rng* rng) {
  // Pre-draw the domain shapes.
  std::vector<std::vector<VarId>> domains;
  for (int d = 0; d < num_domains; ++d) {
    std::vector<VarId> dom;
    for (VarId v = 0; v < static_cast<VarId>(num_vars); ++v) {
      if (rng->NextBool(0.6)) dom.push_back(v);
    }
    if (dom.empty()) dom.push_back(0);
    domains.push_back(std::move(dom));
  }
  MappingSet out;
  while (static_cast<int>(out.size()) < n) {
    const std::vector<VarId>& dom = domains[rng->NextBelow(domains.size())];
    Mapping m;
    for (VarId v : dom) m.Set(v, static_cast<TermId>(rng->NextBelow(50)));
    out.Add(m);
  }
  return out;
}

void BM_NsNaive(benchmark::State& state) {
  Rng rng(15);
  MappingSet input = MakeWorkload(static_cast<int>(state.range(0)), 8,
                                  static_cast<int>(state.range(1)), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemoveSubsumedNaive(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NsNaive)
    ->ArgsProduct({{64, 256, 1024, 4096}, {2, 8}});

void BM_NsBucketed(benchmark::State& state) {
  Rng rng(15);
  MappingSet input = MakeWorkload(static_cast<int>(state.range(0)), 8,
                                  static_cast<int>(state.range(1)), &rng);
  // Sanity: both algorithms agree.
  RDFQL_CHECK(RemoveSubsumedNaive(input) == RemoveSubsumedBucketed(input));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RemoveSubsumedBucketed(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NsBucketed)
    ->ArgsProduct({{64, 256, 1024, 4096}, {2, 8}});

}  // namespace
}  // namespace rdfql

RDFQL_BENCH_MAIN("bench_ns_ablation")
