// E1/E2/E3 (DESIGN.md): regenerates the paper's worked artefacts — the
// result tables of Examples 2.2, 3.1, 3.3 and 6.1 over the Figure 1-4
// graphs — and times their evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algebra/pattern_printer.h"
#include "core/engine.h"
#include "eval/evaluator.h"
#include "rdf/ntriples.h"
#include "util/check.h"
#include "workload/scenarios.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

PatternPtr MustParse(Engine* engine, const std::string& text) {
  Result<PatternPtr> r = engine->Parse(text);
  RDFQL_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  return r.value();
}

void PrintPaperTables() {
  Engine engine;
  std::printf("== E1: Example 2.2 over the Figure 1 graph ==\n");
  Graph pirate = scenarios::PirateBayGraph(engine.dict());
  PatternPtr q22 = MustParse(&engine, scenarios::Example22Query());
  std::printf("query: %s\n%s\n",
              PatternToString(q22, *engine.dict()).c_str(),
              MappingTable(EvalPattern(pirate, q22), *engine.dict()).c_str());

  std::printf("== E2: Examples 3.1/3.3 over the Figure 2 graphs ==\n");
  Graph g1 = scenarios::ChileGraphG1(engine.dict());
  Graph g2 = scenarios::ChileGraphG2(engine.dict());
  PatternPtr p31 = MustParse(&engine, scenarios::Example31Query());
  PatternPtr p33 = MustParse(&engine, scenarios::Example33Query());
  std::printf("P(3.1) over G1:\n%s",
              MappingTable(EvalPattern(g1, p31), *engine.dict()).c_str());
  std::printf("P(3.1) over G2 (answer extended, weakly monotone):\n%s",
              MappingTable(EvalPattern(g2, p31), *engine.dict()).c_str());
  std::printf("P(3.3) over G1:\n%s",
              MappingTable(EvalPattern(g1, p33), *engine.dict()).c_str());
  std::printf("P(3.3) over G2 (answer LOST, not weakly monotone):\n%s\n",
              MappingTable(EvalPattern(g2, p33), *engine.dict()).c_str());

  std::printf("== E3: Example 6.1 CONSTRUCT over the Figure 3 graph ==\n");
  Graph profs = scenarios::ProfessorsGraph(engine.dict());
  Result<ConstructQuery> q61 =
      engine.ParseConstructQuery(scenarios::Example61ConstructQuery());
  RDFQL_CHECK(q61.ok());
  Graph fig4 = q61->Answer(profs);
  std::printf("ans(Q,G) (= the Figure 4 graph):\n%s\n",
              WriteNTriples(fig4, *engine.dict()).c_str());
}

void BM_Example22(benchmark::State& state) {
  Engine engine;
  Graph g = scenarios::PirateBayGraph(engine.dict());
  PatternPtr p = MustParse(&engine, scenarios::Example22Query());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, p));
  }
}
BENCHMARK(BM_Example22);

void BM_Example31(benchmark::State& state) {
  Engine engine;
  Graph g = scenarios::ChileGraphG2(engine.dict());
  PatternPtr p = MustParse(&engine, scenarios::Example31Query());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, p));
  }
}
BENCHMARK(BM_Example31);

void BM_Example61Construct(benchmark::State& state) {
  Engine engine;
  Graph g = scenarios::ProfessorsGraph(engine.dict());
  Result<ConstructQuery> q =
      engine.ParseConstructQuery(scenarios::Example61ConstructQuery());
  RDFQL_CHECK(q.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->Answer(g));
  }
}
BENCHMARK(BM_Example61Construct);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintPaperTables();
  return rdfql::bench::BenchMain(argc, argv, "bench_examples");
}
