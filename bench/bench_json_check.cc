// Standalone validator for the BENCH_<name>.json files the bench binaries
// emit under --json. Exits 0 iff every given file matches the
// rdfql-bench-v2 schema; with --expect-growth it additionally checks that
// wall time grows with the single numeric size argument within each
// benchmark family (the empirical shadow of the Thm 7.1-7.4 scaling
// claims). Used by the `bench_json_smoke` ctest entry and by
// scripts/bench_json.sh.
//
// Usage: bench_json_check [--expect-growth] file.json [file2.json ...]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_reporting.h"

int main(int argc, char** argv) {
  bool expect_growth = false;
  int checked = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-growth") == 0) {
      expect_growth = true;
      continue;
    }
    ++checked;
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (rdfql::bench::ValidateBenchJson(buf.str(), expect_growth, &error)) {
      std::printf("%s: OK\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: FAIL: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "usage: bench_json_check [--expect-growth] file.json ...\n");
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
