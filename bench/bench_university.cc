// The LUBM-style university workload: the full query mix across dataset
// scales, with and without the optimizer — a second, structurally richer
// data point for the fragment-cost story of EXPERIMENTS.md E16.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/rdfql.h"
#include "util/check.h"
#include "workload/university_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

Graph MakeGraph(Engine* engine, int universities) {
  UniversitySpec spec;
  spec.num_universities = universities;
  return GenerateUniversityGraph(spec, engine->dict());
}

void PrintMixSummary() {
  Engine engine;
  Graph g = MakeGraph(&engine, 2);
  std::printf("== University workload (2 universities, %zu triples) ==\n",
              g.size());
  std::printf("%-26s | answers | fragment\n", "query");
  for (const NamedUniversityQuery& q : UniversityQueryMix()) {
    Result<PatternPtr> p = engine.Parse(q.text);
    RDFQL_CHECK(p.ok());
    MappingSet r = EvalPattern(g, p.value());
    std::printf("%-26s | %7zu | %s\n", q.name.c_str(), r.size(),
                DescribeFragment(p.value()).c_str());
  }
  std::printf("\n");
}

void RunMixQuery(benchmark::State& state, const char* family,
                 size_t query_index, bool optimize) {
  Engine engine;
  Graph g = MakeGraph(&engine, static_cast<int>(state.range(0)));
  NamedUniversityQuery q = UniversityQueryMix()[query_index];
  Result<PatternPtr> parsed = engine.Parse(q.text);
  RDFQL_CHECK(parsed.ok());
  PatternPtr pattern = parsed.value();
  if (optimize) {
    GraphStats stats = GraphStats::Collect(g);
    Optimizer opt(&stats);
    PatternPtr optimized = opt.Optimize(pattern);
    RDFQL_CHECK(EvalPattern(g, pattern) == EvalPattern(g, optimized));
    pattern = optimized;
  }
  EvalOptions options;
  options.threads = bench::CliThreads();
  options.limits.max_wall_ms = bench::CliTimeoutMs();
  options.limits.max_bytes = bench::CliMaxMb() * 1'000'000ull;
  ResourceAccountant acct;
  options.accountant = &acct;
  Evaluator evaluator(&g, options);
  // With --warm-cache the timing loop goes through the engine façade with a
  // query cache attached and pre-warmed, so the emitted numbers measure the
  // cache-hit path; diff against a run without the flag for the speedup.
  QueryCache cache{QueryCacheOptions{}};
  if (bench::CliWarmCache()) {
    engine.PutGraph("university", g);
    engine.SetQueryCache(&cache);
    EvalOptions warm = options;
    warm.accountant = nullptr;
    RDFQL_CHECK(engine.Query("university", q.text, warm).ok());
  }
  size_t answers = 0;
  for (auto _ : state) {
    if (bench::CliWarmCache()) {
      EvalOptions warm = options;
      warm.accountant = nullptr;
      Result<MappingSet> r = engine.Query("university", q.text, warm);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      answers = r->size();
      benchmark::DoNotOptimize(r);
      continue;
    }
    Result<MappingSet> r = evaluator.EvalChecked(pattern);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    answers = r->size();
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(q.name + (optimize ? " (optimized)" : ""));
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["triples"] = static_cast<double>(g.size());
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_mappings"] =
      static_cast<double>(acct.peak_mappings());
  RegistrySnapshot snap;
  snap.gauges["engine.peak_mappings"] =
      static_cast<int64_t>(acct.peak_mappings());
  snap.gauges["engine.peak_bytes"] = static_cast<int64_t>(acct.peak_bytes());
  snap.counters["engine.total_mappings"] = acct.total_mappings();
  bench::SetCaseMetrics(
      std::string(family) + "/" + std::to_string(state.range(0)), snap);
  // With --query-log=PATH, leave one record per case next to the
  // BENCH_*.json: a single engine-level run of the same query, so
  // rdfql_stats can slice the workload by fragment afterwards.
  if (QueryLog* log = bench::CliQueryLog()) {
    engine.PutGraph("university", g);
    engine.SetQueryLog(log);
    EvalOptions logged = options;
    logged.accountant = nullptr;  // the engine accounts this run itself
    Result<MappingSet> r = engine.Query("university", q.text, logged);
    RDFQL_CHECK(r.ok());
    engine.SetQueryLog(nullptr);
  }
}

void BM_UniStudentTeacher(benchmark::State& state) {
  RunMixQuery(state, "BM_UniStudentTeacher", 0, false);
}
BENCHMARK(BM_UniStudentTeacher)->Arg(1)->Arg(2)->Arg(4);

void BM_UniStudentTeacherOptimized(benchmark::State& state) {
  RunMixQuery(state, "BM_UniStudentTeacherOptimized", 0, true);
}
BENCHMARK(BM_UniStudentTeacherOptimized)->Arg(1)->Arg(2)->Arg(4);

void BM_UniMembersUnion(benchmark::State& state) {
  RunMixQuery(state, "BM_UniMembersUnion", 1, false);
}
BENCHMARK(BM_UniMembersUnion)->Arg(1)->Arg(2)->Arg(4);

void BM_UniAdvisorEmailOpt(benchmark::State& state) {
  RunMixQuery(state, "BM_UniAdvisorEmailOpt", 2, false);
}
BENCHMARK(BM_UniAdvisorEmailOpt)->Arg(1)->Arg(2)->Arg(4);

void BM_UniCourseInfoNestedOpt(benchmark::State& state) {
  RunMixQuery(state, "BM_UniCourseInfoNestedOpt", 3, false);
}
BENCHMARK(BM_UniCourseInfoNestedOpt)->Arg(1)->Arg(2)->Arg(4);

void BM_UniAdvisorEmailSimple(benchmark::State& state) {
  RunMixQuery(state, "BM_UniAdvisorEmailSimple", 4, false);
}
BENCHMARK(BM_UniAdvisorEmailSimple)->Arg(1)->Arg(2)->Arg(4);

void BM_UniFullProfDepts(benchmark::State& state) {
  RunMixQuery(state, "BM_UniFullProfDepts", 5, false);
}
BENCHMARK(BM_UniFullProfDepts)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintMixSummary();
  return rdfql::bench::BenchMain(argc, argv, "bench_university");
}
