// E9 (DESIGN.md): the paper's Section 8 question — "what are the practical
// consequences of replacing the operator OPTIONAL by the operator NS?" —
// measured on the synthetic social workload: the same optional-information
// query expressed with OPT and with NS(P1 ∪ (P1 AND P2)), across data
// sizes and optional-data densities.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.h"
#include "eval/evaluator.h"
#include "util/check.h"
#include "workload/graph_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

constexpr const char* kOptQuery =
    "((?x was_born_in ?c) AND (?x name ?n)) OPT (?x email ?e)";
constexpr const char* kNsQuery =
    "NS(((?x was_born_in ?c) AND (?x name ?n)) UNION "
    "(((?x was_born_in ?c) AND (?x name ?n)) AND (?x email ?e)))";

Graph MakeGraph(Engine* engine, int people, double email_probability) {
  SocialGraphSpec spec;
  spec.num_people = people;
  spec.email_probability = email_probability;
  return GenerateSocialGraph(spec, engine->dict());
}

void RunQuery(benchmark::State& state, const char* query,
              double email_probability) {
  Engine engine;
  Graph g = MakeGraph(&engine, static_cast<int>(state.range(0)),
                      email_probability);
  Result<PatternPtr> p = engine.Parse(query);
  RDFQL_CHECK(p.ok());
  size_t answers = 0;
  for (auto _ : state) {
    MappingSet r = EvalPattern(g, p.value());
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetComplexityN(state.range(0));
}

void BM_OptHalfEmails(benchmark::State& state) {
  RunQuery(state, kOptQuery, 0.5);
}
BENCHMARK(BM_OptHalfEmails)->RangeMultiplier(4)->Range(64, 4096);

void BM_NsHalfEmails(benchmark::State& state) {
  RunQuery(state, kNsQuery, 0.5);
}
BENCHMARK(BM_NsHalfEmails)->RangeMultiplier(4)->Range(64, 4096);

void BM_OptDenseEmails(benchmark::State& state) {
  RunQuery(state, kOptQuery, 1.0);
}
BENCHMARK(BM_OptDenseEmails)->RangeMultiplier(4)->Range(64, 4096);

void BM_NsDenseEmails(benchmark::State& state) {
  RunQuery(state, kNsQuery, 1.0);
}
BENCHMARK(BM_NsDenseEmails)->RangeMultiplier(4)->Range(64, 4096);

void BM_OptNoEmails(benchmark::State& state) { RunQuery(state, kOptQuery, 0.0); }
BENCHMARK(BM_OptNoEmails)->RangeMultiplier(4)->Range(64, 4096);

void BM_NsNoEmails(benchmark::State& state) { RunQuery(state, kNsQuery, 0.0); }
BENCHMARK(BM_NsNoEmails)->RangeMultiplier(4)->Range(64, 4096);

void PrintAgreementCheck() {
  Engine engine;
  Graph g = MakeGraph(&engine, 256, 0.5);
  Result<PatternPtr> opt = engine.Parse(kOptQuery);
  Result<PatternPtr> ns = engine.Parse(kNsQuery);
  RDFQL_CHECK(opt.ok() && ns.ok());
  MappingSet r_opt = EvalPattern(g, opt.value());
  MappingSet r_ns = EvalPattern(g, ns.value());
  std::printf(
      "== E9: OPT vs NS on the social workload (256 people) ==\n"
      "answers(OPT) = %zu, answers(NS) = %zu, equal = %s "
      "(well-designed OPT is subsumption-free, so the encodings agree)\n\n",
      r_opt.size(), r_ns.size(), r_opt == r_ns ? "yes" : "no");
}

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintAgreementCheck();
  return rdfql::bench::BenchMain(argc, argv, "bench_opt_vs_ns");
}
