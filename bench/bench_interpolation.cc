// E6 (DESIGN.md): the Theorem 4.1 pipeline made effective. Measures
// (a) the SPARQL → FO translation sizes (Lemmas C.1/C.2), (b) the FO →
// UCQ≠ → SPARQL[AUFS] round trip (Lemma C.7 / Theorem C.8), and (c) the
// AUFS translation search (pattern trees / envelopes with randomized ≡s
// verification) over a curated suite of weakly-monotone patterns.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.h"
#include "fo/interpolant_search.h"
#include "fo/sparql_to_fo.h"
#include "fo/ucq.h"
#include "fo/ucq_to_sparql.h"
#include "util/check.h"
#include "workload/scenarios.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

struct SuiteEntry {
  const char* name;
  std::string text;
};

std::vector<SuiteEntry> Suite() {
  return {
      {"Example 3.1 (WD OPT)", scenarios::Example31Query()},
      {"Thm 3.5 witness", scenarios::Theorem35Witness()},
      {"Thm 3.6 witness", scenarios::Theorem36Witness()},
      {"nested WD OPT",
       "(((?x a ?y) OPT (?y b ?z)) OPT (?x c ?w))"},
      {"ns-pattern",
       "NS((?x a ?y) UNION ((?x a ?y) AND (?y b ?z))) UNION NS((?x c ?v))"},
      {"monotone AUFS",
       "(SELECT {?x} WHERE ((?x a ?y) AND (?y b ?z))) UNION (?x c d)"},
      {"Example 3.3 (NOT w.m.)", scenarios::Example33Query()},
  };
}

void PrintTranslationTable() {
  std::printf(
      "== E6: Theorem 4.1 pipeline ==\n"
      "%-24s | %-18s | verified ≡s | |P| -> |Q| nodes\n", "pattern",
      "method");
  for (const SuiteEntry& entry : Suite()) {
    Engine engine;
    Result<PatternPtr> p = engine.Parse(entry.text);
    RDFQL_CHECK(p.ok());
    Result<AufsTranslation> t = FindAufsTranslation(p.value(), engine.dict());
    RDFQL_CHECK(t.ok());
    const char* method =
        t->method == TranslationMethod::kWellDesignedTree ? "pattern tree"
        : t->method == TranslationMethod::kNsPatternUnion ? "NS-child union"
                                                          : "mono envelope";
    std::printf("%-24s | %-18s | %-11s | %zu -> %zu\n", entry.name, method,
                t->verified ? "yes" : "NO (refuted)",
                p.value()->SizeInNodes(), t->q->SizeInNodes());
  }
  std::printf(
      "(the refuted row is Example 3.3 — not weakly monotone, so no AUFS\n"
      " pattern can be ≡s to it; exactly what Corollary 4.2 predicts)\n\n");

  // FO pipeline sizes for AUFS inputs.
  std::printf("FO round trip (Lemma C.2 / C.7 / Thm C.8):\n"
              "%-24s | φ_P nodes | UCQ disjuncts | Q nodes\n", "pattern");
  const char* aufs_suite[] = {
      "(?x a ?y)",
      "(?x a ?y) AND (?y b ?z)",
      "(SELECT {?x} WHERE (?x a ?y))",
      "((?x a ?y) FILTER !(?x = ?y)) UNION (?x b c)",
  };
  for (const char* text : aufs_suite) {
    Engine engine;
    Result<PatternPtr> p = engine.Parse(text);
    RDFQL_CHECK(p.ok());
    Result<FoFormulaPtr> phi = SparqlToFo(p.value());
    RDFQL_CHECK(phi.ok());
    Result<Ucq> ucq =
        PositiveExistentialToUcq(*phi, p.value()->Vars(), engine.dict());
    RDFQL_CHECK(ucq.ok());
    Result<PatternPtr> q = UcqToSparql(*ucq, engine.dict());
    RDFQL_CHECK(q.ok());
    std::printf("%-24s | %9zu | %13zu | %7zu\n", text,
                (*phi)->SizeInNodes(), ucq->disjuncts.size(),
                q.value()->SizeInNodes());
  }
  std::printf("\n");
}

void BM_SparqlToFo(benchmark::State& state) {
  Engine engine;
  Result<PatternPtr> p =
      engine.Parse("((?x a ?y) OPT (?y b ?z)) UNION (?x c ?w)");
  RDFQL_CHECK(p.ok());
  for (auto _ : state) {
    Result<FoFormulaPtr> phi = SparqlToFo(p.value());
    RDFQL_CHECK(phi.ok());
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_SparqlToFo);

void BM_UcqRoundTrip(benchmark::State& state) {
  Engine engine;
  Result<PatternPtr> p =
      engine.Parse("((?x a ?y) FILTER !(?x = ?y)) UNION (?x b c)");
  RDFQL_CHECK(p.ok());
  Result<FoFormulaPtr> phi = SparqlToFo(p.value());
  RDFQL_CHECK(phi.ok());
  for (auto _ : state) {
    Result<Ucq> ucq =
        PositiveExistentialToUcq(*phi, p.value()->Vars(), engine.dict());
    RDFQL_CHECK(ucq.ok());
    Result<PatternPtr> q = UcqToSparql(*ucq, engine.dict());
    RDFQL_CHECK(q.ok());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_UcqRoundTrip);

void BM_FindSimplePatternTranslation(benchmark::State& state) {
  Engine engine;
  Result<PatternPtr> p = engine.Parse(scenarios::Theorem35Witness());
  RDFQL_CHECK(p.ok());
  MonotonicityOptions opts;
  opts.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Result<AufsTranslation> t =
        FindSimplePatternTranslation(p.value(), engine.dict(), opts);
    RDFQL_CHECK(t.ok() && t->verified);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FindSimplePatternTranslation)->Arg(30)->Arg(100)->Arg(300);

void BM_FindAufsTranslationWd(benchmark::State& state) {
  Engine engine;
  Result<PatternPtr> p =
      engine.Parse("(((?x a ?y) OPT (?y b ?z)) OPT (?x c ?w))");
  RDFQL_CHECK(p.ok());
  MonotonicityOptions opts;
  opts.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Result<AufsTranslation> t =
        FindAufsTranslation(p.value(), engine.dict(), opts);
    RDFQL_CHECK(t.ok() && t->verified);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FindAufsTranslationWd)->Arg(30)->Arg(100)->Arg(300);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintTranslationTable();
  return rdfql::bench::BenchMain(argc, argv, "bench_interpolation");
}
