// Storage ablation: the mutable sorted-index `Graph` vs the immutable
// per-predicate CSR `StaticGraph`, across the probe shapes triple-pattern
// evaluation issues (predicate-bound prefix scans dominate real queries).

#include <benchmark/benchmark.h>

#include "core/rdfql.h"
#include "rdf/static_graph.h"
#include "util/check.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

Graph MakeGraph(int people, Dictionary* dict) {
  SocialGraphSpec spec;
  spec.num_people = people;
  return GenerateSocialGraph(spec, dict);
}

void BM_GraphPrefixScan(benchmark::State& state) {
  Dictionary dict;
  Graph g = MakeGraph(static_cast<int>(state.range(0)), &dict);
  TermId born = dict.InternIri("was_born_in");
  size_t n = 0;
  for (auto _ : state) {
    n = g.CountMatches(kInvalidTermId, born, kInvalidTermId);
    benchmark::DoNotOptimize(n);
  }
  state.counters["matches"] = static_cast<double>(n);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphPrefixScan)->RangeMultiplier(4)->Range(256, 16384);

void BM_StaticGraphPrefixScan(benchmark::State& state) {
  Dictionary dict;
  Graph g = MakeGraph(static_cast<int>(state.range(0)), &dict);
  StaticGraph sg = StaticGraph::Build(g);
  TermId born = dict.InternIri("was_born_in");
  size_t n = 0;
  for (auto _ : state) {
    n = sg.CountMatches(kInvalidTermId, born, kInvalidTermId);
    benchmark::DoNotOptimize(n);
  }
  state.counters["matches"] = static_cast<double>(n);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StaticGraphPrefixScan)->RangeMultiplier(4)->Range(256, 16384);

void BM_GraphPointLookups(benchmark::State& state) {
  Dictionary dict;
  Graph g = MakeGraph(1024, &dict);
  TermId email = dict.InternIri("email");
  std::vector<TermId> subjects;
  for (int i = 0; i < 1024; ++i) {
    subjects.push_back(dict.InternIri("person_" + std::to_string(i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g.CountMatches(subjects[i % subjects.size()], email,
                       kInvalidTermId));
    ++i;
  }
}
BENCHMARK(BM_GraphPointLookups);

void BM_StaticGraphPointLookups(benchmark::State& state) {
  Dictionary dict;
  Graph g = MakeGraph(1024, &dict);
  StaticGraph sg = StaticGraph::Build(g);
  TermId email = dict.InternIri("email");
  std::vector<TermId> subjects;
  for (int i = 0; i < 1024; ++i) {
    subjects.push_back(dict.InternIri("person_" + std::to_string(i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sg.CountMatches(subjects[i % subjects.size()], email,
                        kInvalidTermId));
    ++i;
  }
}
BENCHMARK(BM_StaticGraphPointLookups);

// Interleaved insert/match: the workload that used to thrash the sorted
// indexes (every insert invalidated all three, so each probe after an
// insert re-sorted from scratch). With the side-buffer design the probes
// only sort the small overflow array between rebuilds.
void BM_GraphInterleavedInsertMatch(benchmark::State& state) {
  Dictionary dict;
  Graph src = MakeGraph(static_cast<int>(state.range(0)), &dict);
  TermId born = dict.InternIri("was_born_in");
  const std::vector<Triple>& triples = src.triples();
  size_t matches = 0;
  for (auto _ : state) {
    Graph g;
    size_t i = 0;
    for (const Triple& t : triples) {
      g.Insert(t);
      if (++i % 8 == 0) {
        matches = g.CountMatches(kInvalidTermId, born, kInvalidTermId);
        benchmark::DoNotOptimize(matches);
      }
    }
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["triples"] = static_cast<double>(triples.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphInterleavedInsertMatch)
    ->RangeMultiplier(4)
    ->Range(256, 4096);

void BM_StaticGraphBuild(benchmark::State& state) {
  Dictionary dict;
  Graph g = MakeGraph(static_cast<int>(state.range(0)), &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StaticGraph::Build(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StaticGraphBuild)->RangeMultiplier(4)->Range(256, 16384);

}  // namespace
}  // namespace rdfql

RDFQL_BENCH_MAIN("bench_storage")
