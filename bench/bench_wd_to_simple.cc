// E8 (DESIGN.md): Proposition 5.6 — translating well-designed patterns
// with nested OPT into simple patterns (one top-level NS). Prints the size
// of the produced AUF union per OPT-nesting depth and compares evaluation
// cost of the original vs the simple form.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "eval/wd_evaluator.h"
#include "transform/wd_to_simple.h"
#include "util/check.h"
#include "workload/graph_generator.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

// (...((t0 OPT t1) OPT t2) ... OPT tk): a left-deep well-designed chain.
std::string OptChain(int k) {
  std::string p = "(?x r0 ?y0)";
  for (int i = 1; i <= k; ++i) {
    p = "(" + p + " OPT (?x r" + std::to_string(i) + " ?y" +
        std::to_string(i) + "))";
  }
  return p;
}

// A binary tree of OPTs (each child hangs off the root block).
std::string OptTree(int depth, int* counter) {
  int id = (*counter)++;
  std::string node = "(?x t" + std::to_string(id) + " ?v" +
                     std::to_string(id) + ")";
  if (depth == 0) return node;
  return "((" + node + " OPT " + OptTree(depth - 1, counter) + ") OPT " +
         OptTree(depth - 1, counter) + ")";
}

void PrintTranslationTable() {
  std::printf(
      "== E8: well-designed -> simple pattern (Proposition 5.6) ==\n"
      "OPT chain length | input nodes | simple-pattern nodes | disjuncts\n");
  for (int k = 1; k <= 6; ++k) {
    Engine engine;
    Result<PatternPtr> p = engine.Parse(OptChain(k));
    RDFQL_CHECK(p.ok());
    Result<PatternPtr> simple = WellDesignedToSimple(p.value());
    RDFQL_CHECK(simple.ok());
    size_t disjuncts = 1;
    {
      // Count top-level UNION disjuncts of the NS child.
      std::vector<PatternPtr> stack = {simple.value()->child()};
      disjuncts = 0;
      while (!stack.empty()) {
        PatternPtr q = stack.back();
        stack.pop_back();
        if (q->kind() == PatternKind::kUnion) {
          stack.push_back(q->left());
          stack.push_back(q->right());
        } else {
          ++disjuncts;
        }
      }
    }
    std::printf("%16d | %11zu | %20zu | %9zu\n", k, p.value()->SizeInNodes(),
                simple.value()->SizeInNodes(), disjuncts);
  }
  std::printf("\n");
}

// Shared tail: one instrumented run for the measured Prop 5.6 blowup.
void RecordBlowup(benchmark::State& state, const std::string& case_name,
                  const PatternPtr& p) {
  PipelineReport report;
  Result<PatternPtr> simple =
      WellDesignedToSimple(p, /*max_subtrees=*/1u << 16, &report);
  RDFQL_CHECK(simple.ok());
  const PipelineStage* stage = report.Find("wd_to_simple");
  RDFQL_CHECK(stage != nullptr);
  state.counters["node_blowup"] = stage->NodeBlowup();
  bench::AddCaseMetric(case_name, "wd_to_simple.node_blowup",
                       stage->NodeBlowup());
  bench::AddCaseMetric(case_name, "wd_to_simple.nodes_out",
                       static_cast<double>(stage->out.nodes));
}

void BM_WdToSimpleChain(benchmark::State& state) {
  Engine engine;
  Result<PatternPtr> p =
      engine.Parse(OptChain(static_cast<int>(state.range(0))));
  RDFQL_CHECK(p.ok());
  for (auto _ : state) {
    Result<PatternPtr> simple = WellDesignedToSimple(p.value());
    RDFQL_CHECK(simple.ok());
    benchmark::DoNotOptimize(simple);
  }
  RecordBlowup(state,
               "BM_WdToSimpleChain/" + std::to_string(state.range(0)),
               p.value());
}
BENCHMARK(BM_WdToSimpleChain)->DenseRange(1, 6);

void BM_WdToSimpleTree(benchmark::State& state) {
  Engine engine;
  int counter = 0;
  Result<PatternPtr> p =
      engine.Parse(OptTree(static_cast<int>(state.range(0)), &counter));
  RDFQL_CHECK(p.ok());
  for (auto _ : state) {
    Result<PatternPtr> simple = WellDesignedToSimple(p.value());
    RDFQL_CHECK(simple.ok());
    benchmark::DoNotOptimize(simple);
  }
  RecordBlowup(state,
               "BM_WdToSimpleTree/" + std::to_string(state.range(0)),
               p.value());
}
BENCHMARK(BM_WdToSimpleTree)->DenseRange(1, 3);

// Evaluation cost comparison: nested OPT vs single NS over AUF union, on
// the synthetic social graph (people with optional emails).
void EvalComparison(benchmark::State& state, bool use_simple) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  Result<PatternPtr> p = engine.Parse(
      "((?x name ?n) OPT (?x email ?e)) OPT (?x was_born_in ?c)");
  RDFQL_CHECK(p.ok());
  PatternPtr query = p.value();
  if (use_simple) {
    Result<PatternPtr> simple = WellDesignedToSimple(query);
    RDFQL_CHECK(simple.ok());
    query = simple.value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, query));
  }
  state.SetComplexityN(state.range(0));
}

void BM_EvalWdOptForm(benchmark::State& state) {
  EvalComparison(state, /*use_simple=*/false);
}
BENCHMARK(BM_EvalWdOptForm)->RangeMultiplier(4)->Range(64, 1024);

void BM_EvalSimpleForm(benchmark::State& state) {
  EvalComparison(state, /*use_simple=*/true);
}
BENCHMARK(BM_EvalSimpleForm)->RangeMultiplier(4)->Range(64, 1024);

// Third WD evaluation strategy: the seeded top-down pattern-tree walk.
void BM_EvalTopDownTree(benchmark::State& state) {
  Engine engine;
  SocialGraphSpec spec;
  spec.num_people = static_cast<int>(state.range(0));
  Graph g = GenerateSocialGraph(spec, engine.dict());
  Result<PatternPtr> p = engine.Parse(
      "((?x name ?n) OPT (?x email ?e)) OPT (?x was_born_in ?c)");
  RDFQL_CHECK(p.ok());
  // Sanity: all three strategies agree.
  Result<MappingSet> top_down = EvalWellDesignedTopDown(g, p.value());
  RDFQL_CHECK(top_down.ok());
  RDFQL_CHECK(*top_down == EvalPattern(g, p.value()));
  for (auto _ : state) {
    Result<MappingSet> r = EvalWellDesignedTopDown(g, p.value());
    RDFQL_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvalTopDownTree)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintTranslationTable();
  return rdfql::bench::BenchMain(argc, argv, "bench_wd_to_simple");
}
