// E10-E13 (DESIGN.md): the Section 7 complexity landscape, measured. For
// each fragment the combined complexity predicts worst-case exponential
// cost in the *query* and polynomial cost in the *data* for any correct
// evaluator; this bench generates reduction instances (Theorems 7.1-7.3)
// of growing size and times their evaluation, and prints the summary table
// of Section 7 alongside the measured growth.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/fragments.h"
#include "complexity/hierarchy_reductions.h"
#include "complexity/qbf.h"
#include "complexity/sat_solver.h"
#include "core/engine.h"
#include "util/check.h"
#include "util/random.h"

#include "bench_reporting.h"

namespace rdfql {
namespace {

void PrintComplexityTable() {
  std::printf(
      "== Section 7: combined complexity of Eval (paper's results) ==\n"
      "fragment                      | combined complexity\n"
      "SPARQL[AUFS]                  | NP-complete            [37]\n"
      "well-designed SPARQL[AOF]     | coNP-complete          [29]\n"
      "SP-SPARQL (simple patterns)   | DP-complete            (Thm 7.1)\n"
      "USP-SPARQL_k                  | BH_2k-complete         (Thm 7.2)\n"
      "USP-SPARQL                    | PNP||-complete         (Thm 7.3)\n"
      "CONSTRUCT[AUF]                | NP-complete            (Thm 7.4)\n"
      "wd + top SELECT               | Sigma^p_2-complete     [23]\n\n");
}

// --- E10: Theorem 7.1 (DP) — SAT-UNSAT instances, #vars sweep. ---
void BM_SatUnsatEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7100 + n);
  Dictionary dict;
  // Random pairs near the 2-SAT-ish density so both outcomes occur.
  Cnf phi = RandomCnf(n, 2 * n, 2, &rng);
  Cnf psi = RandomCnf(n, 3 * n, 2, &rng);
  EvalInstance inst = SatUnsatToSimplePattern(phi, psi, &dict, "b");
  bool expected =
      SolveSat(phi).satisfiable && !SolveSat(psi).satisfiable;
  for (auto _ : state) {
    bool got = DecideByEvaluation(inst);
    RDFQL_CHECK(got == expected);
    benchmark::DoNotOptimize(got);
  }
  state.counters["pattern_nodes"] =
      static_cast<double>(inst.pattern->SizeInNodes());
}
BENCHMARK(BM_SatUnsatEvaluation)->DenseRange(2, 8);

// --- E11: Theorem 7.2 (BH_2k) — exact color sets, k sweep. ---
void BM_ExactColorSetEvaluation(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Dictionary dict;
  // C5 (χ=3); color sets {3}, {3,4}, {3,4,5}, ... of width k.
  SimpleGraph c5;
  c5.n = 5;
  for (int i = 0; i < 5; ++i) c5.edges.emplace_back(i, (i + 1) % 5);
  std::vector<int> colors;
  for (int m = 3; m < 3 + k; ++m) colors.push_back(m);
  EvalInstance inst = ExactColorSetToUsp(c5, colors, &dict);
  bool expected = IsExactColorSetColorable(c5, colors);
  for (auto _ : state) {
    bool got = DecideByEvaluation(inst);
    RDFQL_CHECK(got == expected);
    benchmark::DoNotOptimize(got);
  }
  state.counters["disjuncts"] = static_cast<double>(k);
  state.counters["pattern_nodes"] =
      static_cast<double>(inst.pattern->SizeInNodes());
}
BENCHMARK(BM_ExactColorSetEvaluation)->DenseRange(1, 3);

// --- E12: Theorem 7.3 (PNP||) — MAX-ODD-SAT, #vars sweep. ---
void BM_MaxOddSatEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7300 + n);
  Dictionary dict;
  Cnf phi = RandomCnf(n, n, 2, &rng);
  EvalInstance inst = MaxOddSatToUsp(phi, &dict);
  bool expected = IsMaxOddSat(phi);
  for (auto _ : state) {
    bool got = DecideByEvaluation(inst);
    RDFQL_CHECK(got == expected);
    benchmark::DoNotOptimize(got);
  }
  state.counters["disjuncts"] =
      static_cast<double>(NsPatternWidth(inst.pattern));
}
BENCHMARK(BM_MaxOddSatEvaluation)->DenseRange(2, 5);

// --- E13 (data complexity side): a FIXED simple pattern over growing
// graphs stays polynomial — the flip side of combined hardness. ---
void BM_FixedPatternGrowingData(benchmark::State& state) {
  Rng rng(13);
  Dictionary dict;
  Cnf phi = RandomCnf(3, 5, 2, &rng);
  Cnf psi = RandomCnf(3, 7, 2, &rng);
  EvalInstance inst = SatUnsatToSimplePattern(phi, psi, &dict, "fix");
  // Pad the graph with unrelated triples.
  Graph g = inst.graph;
  for (int i = 0; i < state.range(0); ++i) {
    g.Insert(dict.InternIri("pad" + std::to_string(i)),
             dict.InternIri("padp"), dict.InternIri("pado"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPattern(g, inst.pattern));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FixedPatternGrowingData)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity(benchmark::oAuto);

// --- The PSPACE backdrop: QBF instances through full SPARQL. The
// alternation depth drives the cost — each ∀ doubles the complement
// work, which is the PSPACE-hardness showing up empirically. ---
void BM_QbfEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7400 + n);
  Dictionary dict;
  Qbf qbf = RandomQbf(n, n + 1, 2, &rng, /*start_with_forall=*/true);
  EvalInstance inst = QbfToPattern(qbf, &dict, "qbf");
  bool expected = SolveQbf(qbf);
  for (auto _ : state) {
    bool got = DecideByEvaluation(inst);
    RDFQL_CHECK(got == expected);
    benchmark::DoNotOptimize(got);
  }
  state.counters["alternations"] = static_cast<double>(n);
}
BENCHMARK(BM_QbfEvaluation)->DenseRange(2, 6);

// --- The SAT substrate itself (reference oracle cost). ---
void BM_DpllRandom3Sat(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(4242);
  std::vector<Cnf> instances;
  for (int i = 0; i < 20; ++i) {
    instances.push_back(RandomCnf(n, static_cast<int>(n * 4.26), 3, &rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSat(instances[i % instances.size()]));
    ++i;
  }
}
BENCHMARK(BM_DpllRandom3Sat)->Arg(10)->Arg(20)->Arg(30);

}  // namespace
}  // namespace rdfql

int main(int argc, char** argv) {
  rdfql::PrintComplexityTable();
  return rdfql::bench::BenchMain(argc, argv, "bench_complexity");
}
