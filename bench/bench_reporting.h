#ifndef RDFQL_BENCH_BENCH_REPORTING_H_
#define RDFQL_BENCH_BENCH_REPORTING_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_log.h"

namespace rdfql {
namespace bench {

/// One benchmark case as emitted into BENCH_<name>.json.
struct BenchCase {
  std::string name;    // full google-benchmark name, e.g. "BM_Foo/64"
  std::string family;  // name up to the first '/', e.g. "BM_Foo"
  std::vector<int64_t> args;  // numeric '/'-segments, e.g. [64]
  int64_t iterations = 0;
  double real_ns = 0;  // wall time per iteration
  double cpu_ns = 0;   // cpu time per iteration
  int threads = 1;     // the --threads=N the binary ran under
  std::vector<std::pair<std::string, double>> counters;
  /// Flattened engine-metrics snapshot attached via SetCaseMetrics:
  /// counters and gauges by name, histograms as <name>.count/<name>.sum/
  /// <name>.p50/<name>.p90/<name>.p99 (interpolated percentiles).
  std::vector<std::pair<std::string, double>> metrics;
};

/// The schema tag every emitted file carries; bump on breaking change.
/// v2 added the per-case "threads" and "metrics" fields; v3 the top-level
/// provenance stamp ("git_sha"/"build_type"/"timestamp") so BENCH_*.json
/// history tracks the perf trajectory across commits.
inline constexpr char kBenchJsonSchema[] = "rdfql-bench-v3";
/// Still accepted by ParseBenchJson, so baselines committed before the
/// stamp (bench/baselines/*.json) keep diffing clean.
inline constexpr char kBenchJsonSchemaV2[] = "rdfql-bench-v2";

/// Renders the shared BENCH_<name>.json document:
///   {"schema":"rdfql-bench-v3","bench":"<name>","git_sha":..,
///    "build_type":..,"timestamp":"<ISO-8601 UTC>","cases":[
///     {"name":..,"family":..,"args":[..],"iterations":..,
///      "real_ns":..,"cpu_ns":..,"threads":..,"counters":{..},
///      "metrics":{..}}, ...]}
std::string RenderBenchJson(const std::string& bench_name,
                            const std::vector<BenchCase>& cases);

/// A parsed BENCH_*.json document (the inverse of RenderBenchJson), shared
/// by the validator and the bench_diff regression tool.
struct ParsedBenchDoc {
  std::string schema;
  std::string bench;
  /// Provenance stamp; empty for v2 documents.
  std::string git_sha;
  std::string build_type;
  std::string timestamp;
  std::vector<BenchCase> cases;
};

/// Parses and field-checks a BENCH_*.json document. Returns true on
/// success; otherwise fills *error with the first violation.
bool ParseBenchJson(const std::string& json, ParsedBenchDoc* out,
                    std::string* error);

/// Associates a flattened metrics snapshot with the named case (full
/// google-benchmark name, e.g. "BM_Foo/64"); BenchMain embeds it into that
/// case's "metrics" JSON object when emitting. Call from inside the bench
/// function after the timing loop; the last call per name wins.
void SetCaseMetrics(const std::string& case_name,
                    const RegistrySnapshot& snapshot);

/// Adds a single metric to the named case's snapshot (e.g. a blowup ratio
/// measured from a PipelineReport) without replacing metrics already set.
void AddCaseMetric(const std::string& case_name, const std::string& metric,
                   double value);

/// Validates `json` against the schema above. With `expect_growth`, also
/// asserts that within every family whose cases carry a single numeric
/// argument, wall time grows with the argument: each successive case may
/// dip at most 10% below its predecessor (noise allowance) and the largest
/// instance must be strictly slower than the smallest — the empirical
/// shadow of the Thm 7.1–7.4 scaling claims. Returns true on success;
/// otherwise fills *error.
bool ValidateBenchJson(const std::string& json, bool expect_growth,
                       std::string* error);

/// Shared main for every bench binary:
///  - strips `--json[=path]` from argv (default path: BENCH_<name>.json in
///    the current directory),
///  - strips `--threads=N`, exposed to cases via CliThreads() so any bench
///    can be rerun parallel and its BENCH_<name>.json diffed against the
///    serial run (same cases, serial-vs-parallel real_ns),
///  - runs google-benchmark as usual (console output preserved),
///  - when --json was given, additionally writes the schema file above.
/// Returns the process exit code.
int BenchMain(int argc, char** argv, const char* bench_name);

/// The `--threads=N` value BenchMain parsed, 1 when absent. Benches that
/// evaluate queries put this into EvalOptions::threads (and typically echo
/// it back as a `threads` case counter).
int CliThreads();

/// The `--timeout-ms=N` value BenchMain parsed, 0 (unlimited) when absent.
/// Benches put this into ResourceLimits::max_wall_ms so a runaway workload
/// fails typed instead of hanging the bench job.
uint64_t CliTimeoutMs();

/// The `--max-mb=N` value BenchMain parsed, 0 (unlimited) when absent; maps
/// to ResourceLimits::max_bytes (decimal megabytes).
uint64_t CliMaxMb();

/// Whether `--warm-cache` was passed. Benches that evaluate through an
/// Engine attach a QueryCache and pre-run their workload once before the
/// timing loop, so the emitted numbers measure the cache-hit path; diff the
/// resulting BENCH_*.json against a run without the flag to read the warm
/// speedup off a real workload.
bool CliWarmCache();

/// The `--query-log=PATH` value BenchMain parsed; empty when absent.
const std::string& CliQueryLogPath();

/// The JSONL QueryLog sink BenchMain opened at CliQueryLogPath(), or null
/// when the flag is absent. Benches that evaluate through an Engine pass
/// it to Engine::SetQueryLog so a bench run leaves an rdfql_stats-readable
/// trail next to its BENCH_*.json. Owned by bench_reporting; valid for the
/// rest of the process.
QueryLog* CliQueryLog();

}  // namespace bench
}  // namespace rdfql

/// Drop-in replacement for BENCHMARK_MAIN() with JSON emission.
#define RDFQL_BENCH_MAIN(bench_name)                      \
  int main(int argc, char** argv) {                       \
    return rdfql::bench::BenchMain(argc, argv, bench_name); \
  }

#endif  // RDFQL_BENCH_BENCH_REPORTING_H_
